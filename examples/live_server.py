#!/usr/bin/env python3
"""A live web site on a real TCP port — the full Figure 1 deployment.

Mounts the URL-query application (DB2WWW via CGI), the library catalog,
all four Section 6 baseline gateways and a static home page on one
threaded HTTP server, then drives it once with the bundled browser to
prove it is up.

Run:  python examples/live_server.py [--serve]

With ``--serve`` the server stays up until Ctrl-C so you can point curl
or a real browser at it, e.g.::

    curl http://127.0.0.1:PORT/
    curl http://127.0.0.1:PORT/cgi-bin/db2www/urlquery.d2w/input
    curl 'http://127.0.0.1:PORT/cgi-bin/db2www/urlquery.d2w/report?SEARCH=ib&USE_URL=yes&DBFIELDS=title'
"""

import sys

from repro.apps import guestbook as guestbook_app
from repro.apps import library as library_app
from repro.apps import paging as paging_app
from repro.apps import urlquery
from repro.apps.site import build_site
from repro.baselines import gsql, plsql, rawcgi, wdb
from repro.browser.client import Browser
from repro.http.accesslog import AccessLog
from repro.http.client import HttpClient

HOME_PAGE = """
<HTML><HEAD><TITLE>repro: DB2 WWW Connection</TITLE></HEAD>
<BODY>
<H1>Welcome to the 1996 Web</H1>
<P>Applications on this server:</P>
<UL>
<LI><A HREF="/cgi-bin/db2www/urlquery.d2w/input">URL database query</A>
 (the paper's Appendix A)
<LI><A HREF="/cgi-bin/db2www/library.d2w/input">Library catalog</A>
<LI><A HREF="/cgi-bin/db2www/browse.d2w/input">Browse URLs (paged)</A>
<LI><A HREF="/cgi-bin/db2www/guestbook.d2w/input">Guestbook</A>
<LI><A HREF="/cgi-bin/rawcgi/input">URL query, hand-coded CGI</A>
<LI><A HREF="/cgi-bin/gsql/input">URL query, GSQL style</A>
<LI><A HREF="/cgi-bin/wdb/input">URL query, WDB style</A>
<LI><A HREF="/cgi-bin/owa/urlquery_form">URL query, PL/SQL style</A>
</UL>
</BODY></HTML>
"""


def build():
    app = urlquery.install(rows=80)
    library_app.install(registry=app.registry, library=app.library)
    # The browse and guestbook apps need their own engines (exec
    # commands / hardening), so they get their own db2www mounts below
    # via shared library + per-app programs; simplest is to share the
    # registry+library and reuse the urlquery engine where possible.
    paging = paging_app.install(registry=app.registry,
                                library=app.library)
    app.engine.exec_runner = paging.engine.exec_runner
    guestbook_app.install(registry=app.registry, library=app.library)
    site = build_site(app.engine, app.library, home_page=HOME_PAGE)
    site.router.access_log = AccessLog()
    site.gateway.install("rawcgi", rawcgi.RawCgiUrlQuery(app.registry))
    site.gateway.install("gsql", gsql.install_urlquery(app.registry))
    site.gateway.install("wdb", wdb.install_urlquery(app.registry))
    site.gateway.install("owa", plsql.install_urlquery(app.registry))
    return site


def main() -> None:
    site = build()
    server = site.serve()
    print(f"serving on {server.base_url}")
    try:
        browser = Browser(HttpClient(), base_url=server.base_url)
        home = browser.get("/")
        print("\nHome page over real TCP:")
        print(home.render())
        page = browser.follow("URL database query")
        form = page.form(0)
        form.set("SEARCH", "ibm")
        report = browser.submit(form, click="Submit Query")
        hits = [link.href for link in report.links if "/page" in link.href]
        print(f"Submitted a search over TCP: {len(hits)} matching "
              f"URL(s), first: {hits[0] if hits else '-'}")
        guest = browser.get("/cgi-bin/db2www/guestbook.d2w/report")
        print(f"Guestbook page: HTTP {guest.status}")
        log = site.router.access_log
        print(f"Access log: {log.stats()}")
        if "--serve" in sys.argv[1:]:
            print("\nServer running; press Ctrl-C to stop.")
            import signal
            signal.pause()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        print("server stopped.")


if __name__ == "__main__":
    main()
