#!/usr/bin/env python3
"""Quickstart: a complete DB2 WWW application in ~40 lines.

Defines a macro inline (HTML input form + SQL query + HTML report tied
together by variable substitution), runs it in input mode, then in
report mode with user input — the two invocations of the paper's
Figure 6.

Run:  python examples/quickstart.py
"""

from repro.core import MacroEngine, parse_macro
from repro.sql import DatabaseRegistry

MACRO = """
%DEFINE DATABASE = "SHOP"

%SQL{
SELECT name, price FROM products WHERE name LIKE '$(q)%' ORDER BY name
%SQL_REPORT{
<UL>
%ROW{<LI>$(V_name) costs $(V_price)
%}
</UL>
<P>$(ROW_NUM) product(s) matched '$(q)'.</P>
%}
%}

%HTML_INPUT{<H1>Product Search</H1>
<FORM METHOD="post" ACTION="/cgi-bin/db2www/shop.d2w/report">
Name prefix: <INPUT TYPE="text" NAME="q">
<INPUT TYPE="submit" VALUE="Search">
</FORM>
%}

%HTML_REPORT{<H1>Search Results</H1>
%EXEC_SQL
%}
"""


def main() -> None:
    # 1. A database for the macro's DATABASE variable to resolve to.
    registry = DatabaseRegistry()
    database = registry.register_memory("SHOP")
    with database.connect() as conn:
        conn.executescript("""
            CREATE TABLE products (name TEXT, price REAL);
            INSERT INTO products VALUES
                ('bikes', 250.0), ('boots', 89.0), ('bells', 4.5);
        """)

    # 2. Parse the macro and build the run-time engine.
    macro = parse_macro(MACRO)
    engine = MacroEngine(registry)

    # 3. Input mode: what the user sees first.
    print("=== input mode (the fill-in form) ===")
    print(engine.execute_input(macro).html)

    # 4. Report mode: the user typed "b" and pressed Search.
    print("=== report mode (q=b) ===")
    result = engine.execute_report(macro, [("q", "b")])
    print(result.html)
    print("SQL executed:", result.statements[0])


if __name__ == "__main__":
    main()
