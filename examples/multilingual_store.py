#!/usr/bin/env python3
"""Section 5 practical issues: multi-byte data, per-language pages,
authentication and a host filter.

A small multilingual product catalog served three ways:

1. one shared macro whose UI strings come from a message catalog,
   selected by Accept-Language negotiation;
2. UTF-8 (multi-byte) product names flowing client -> SQL -> report;
3. the admin macro behind HTTP Basic authentication and a firewall-style
   host filter.

Run:  python examples/multilingual_store.py
"""

from repro.apps.site import build_site
from repro.cgi.gateway import Db2WwwProgram
from repro.core import MacroEngine, MacroLibrary, parse_macro
from repro.security.auth import (
    BasicAuthenticator,
    HostFilter,
    ProtectedProgram,
    basic_credentials,
)
from repro.security.i18n import MessageCatalog, negotiate_language
from repro.sql import DatabaseRegistry

CATALOG_MACRO = """
%DEFINE DATABASE = "STORE"
%SQL{
SELECT name, price FROM products WHERE name LIKE '%$(q)%'
%SQL_REPORT{
<H2>$(msg_results)</H2>
<UL>
%ROW{<LI>$(V_name) — $(V_price)
%}
</UL>
%}
%}
%HTML_INPUT{<H1>$(msg_title)</H1>
<FORM METHOD="get" ACTION="/cgi-bin/db2www/store.d2w/report">
$(msg_prompt): <INPUT TYPE="text" NAME="q">
<INPUT TYPE="submit" VALUE="$(msg_go)">
</FORM>
%}
%HTML_REPORT{%EXEC_SQL%}
"""

ADMIN_MACRO = """
%DEFINE DATABASE = "STORE"
%SQL{ SELECT COUNT(*) AS n FROM products
%SQL_REPORT{%ROW{<P>Catalog size: $(V_n) products.</P>%}%}
%}
%HTML_REPORT{<H1>Store admin</H1>%EXEC_SQL%}
"""


def build_catalog() -> MessageCatalog:
    catalog = MessageCatalog()
    catalog.add("en", {
        "msg_title": "Product Catalog",
        "msg_prompt": "Search",
        "msg_go": "Go",
        "msg_results": "Matching products",
    })
    catalog.add("fr", {
        "msg_title": "Catalogue de produits",
        "msg_prompt": "Recherche",
        "msg_go": "Chercher",
        "msg_results": "Produits correspondants",
    })
    catalog.add("ja", {
        "msg_title": "製品カタログ",
        "msg_prompt": "検索",
        "msg_go": "実行",
        "msg_results": "該当する製品",
    })
    return catalog


def main() -> None:
    registry = DatabaseRegistry()
    database = registry.register_memory("STORE")
    with database.connect() as conn:
        conn.executescript("""
            CREATE TABLE products (name TEXT, price TEXT);
            INSERT INTO products VALUES
                ('bicycle',  '$250'),
                ('bicyclette', '230 F'),
                ('自転車',   '¥28,000'),
                ('helmet',   '$45');
        """)
    engine = MacroEngine(registry)
    macro = parse_macro(CATALOG_MACRO)
    messages = build_catalog()

    print("=" * 68)
    print("Language negotiation: one macro, three languages")
    print("=" * 68)
    for header in ("en", "fr-CA, fr;q=0.9, en;q=0.1", "ja, en;q=0.5"):
        language = negotiate_language(header, messages.languages())
        result = engine.execute_input(
            macro, messages.defines_for(language))
        title = result.html.split("<H1>")[1].split("</H1>")[0]
        print(f"  Accept-Language: {header!r:38} -> {language}: {title}")
    print()

    print("=" * 68)
    print("Multi-byte search term through the whole pipeline")
    print("=" * 68)
    result = engine.execute_report(
        macro, messages.defines_for("ja") + [("q", "自転")])
    for line in result.html.splitlines():
        if "<LI>" in line or "<H2>" in line:
            print("  " + line.strip())
    print()

    print("=" * 68)
    print("Protected admin page: Basic auth + host filter")
    print("=" * 68)
    library = MacroLibrary()
    library.add_text("store.d2w", CATALOG_MACRO)
    library.add_text("admin.d2w", ADMIN_MACRO)
    site = build_site(engine, library)
    authenticator = BasicAuthenticator(realm="store-admin")
    authenticator.add_user("admin", "s3cret")
    host_filter = HostFilter(default_allow=False).allow("127.0.0.0/8")
    site.gateway.install("admin", host_filter.wrap(ProtectedProgram(
        Db2WwwProgram(engine, library), authenticator)))

    browser = site.new_browser()
    denied = browser.get("/cgi-bin/admin/admin.d2w/report")
    print(f"  without credentials: HTTP {denied.status}")
    from repro.http.headers import Headers
    from repro.http.message import HttpRequest
    from repro.http.urls import Url
    url = Url.parse("http://www.example.com/cgi-bin/admin/"
                    "admin.d2w/report")
    headers = Headers()
    headers.set("Authorization", basic_credentials("admin", "s3cret"))
    response = site.transport.fetch(
        url, HttpRequest(target=url.request_target, headers=headers))
    print(f"  with credentials:    HTTP {response.status} — "
          + response.text.split("<P>")[1].split("</P>")[0])


if __name__ == "__main__":
    main()
