#!/usr/bin/env python3
"""The paper's Appendix A application, end to end.

Installs the URL database application, then drives it with the simulated
browser exactly as the paper's figures show:

* Figure 7 — the input form, rendered as a text-mode browser would show
  it;
* Figure 3 — the variable bindings the Web client sends for the user's
  selections;
* Figure 8 — the report with hyperlinked URLs.

Run:  python examples/urlquery_app.py
"""

from repro.apps import build_site
from repro.apps import urlquery


def main() -> None:
    app = urlquery.install(rows=60)
    site = build_site(app.engine, app.library)
    browser = site.browser

    # -- Figure 7: the input form ------------------------------------
    page = browser.get(app.input_path)
    print("=" * 68)
    print("FIGURE 7 — the application input form, as displayed")
    print("=" * 68)
    print(page.render())

    # -- Figure 3: the user's selections and what the client sends ----
    form = page.form(0)
    form.set("SEARCH", "ib")           # the paper's example search
    form["DBFIELDS"].select("Description")
    pairs = form.submission_pairs(click="Submit Query")
    print("=" * 68)
    print("FIGURE 3 — HTML input variables sent by the Web client")
    print("=" * 68)
    for name, value in pairs:
        print(f'    {name} = "{value}"')
    print()

    # -- Figure 8: the query result report -----------------------------
    report = browser.submit(form, click="Submit Query")
    print("=" * 68)
    print("FIGURE 8 — the report form (URL query result)")
    print("=" * 68)
    print(report.render())

    # -- The hidden-variable idiom, visible in the raw markup ---------
    print("=" * 68)
    print("The $$ escape at work")
    print("=" * 68)
    option_line = next(line for line in page.html.splitlines()
                       if "hidden_a" in line)
    print("input page option value (a literal):", option_line.strip())
    print("client echoed:",
          [v for n, v in pairs if n == "DBFIELDS"])
    print("report mode resolved them to the real column names "
          "(title, description).")


if __name__ == "__main__":
    main()
