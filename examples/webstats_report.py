#!/usr/bin/env python3
"""Dogfooding: the gateway reporting on its own traffic.

Serves the URL-query application with a Common Log Format access log
attached, generates some traffic with the simulated browser (including
a 404), then loads the log into a relational table and reports on it —
through the very same macro gateway.

Run:  python examples/webstats_report.py
"""

from repro.apps import urlquery, webstats
from repro.apps.site import build_site
from repro.html.render import render_markup
from repro.http.accesslog import AccessLog


def generate_traffic(site, app) -> AccessLog:
    log = AccessLog()
    site.router.access_log = log
    browser = site.new_browser()
    for _ in range(3):
        browser.get(app.input_path)
    page = browser.get(app.input_path)
    form = page.form(0)
    form.set("SEARCH", "ibm")
    browser.submit(form, click="Submit Query")
    browser.get("/cgi-bin/db2www/nope.d2w/input")   # a 404
    browser.get("/no-such-page.html")               # another 404
    return log


def main() -> None:
    app = urlquery.install(rows=40)
    site = build_site(app.engine, app.library)
    log = generate_traffic(site, app)
    print(f"captured {len(log)} requests; stats: {log.stats()}\n")

    print("Raw log (Common Log Format):")
    for entry in log.entries():
        print("  " + entry.format())
    print()

    stats = webstats.install(log.entries())
    macro = stats.library.load(webstats.MACRO_NAME)
    for view in ("top_pages", "status_summary", "errors"):
        result = stats.engine.execute_report(macro, [("view", view)])
        print("=" * 60)
        print(render_markup(result.html))


if __name__ == "__main__":
    main()
