#!/usr/bin/env python3
"""Order search and entry: conditional SQL assembly and transactions.

Part 1 reproduces Section 3.1.3: the WHERE clause assembles itself from
whichever form fields the user filled, through list + conditional
variables.

Part 2 demonstrates Section 5's two transaction modes with a
two-statement order-entry macro whose second statement is made to fail:
auto-commit keeps the first insert, single-transaction mode rolls both
back.

Run:  python examples/order_entry.py
"""

from repro.apps import orders
from repro.sql.transactions import TransactionMode


def show_search(app, label, bindings):
    macro = app.library.load(orders.SEARCH_MACRO_NAME)
    result = app.engine.execute_report(
        macro, bindings + [("SHOWSQL", "YES")])
    sql = result.html.split("<TT>")[1].split("</TT>")[0]
    matched = result.html.split("</TABLE>")[1].split("order(s)")[0]
    print(f"--- {label}")
    print(f"    SQL: {' '.join(sql.split())}")
    print(f"    matched:{matched.split('<P>')[-1]} order(s)")
    print()


def order_count(app) -> int:
    conn = app.registry.connect(orders.DATABASE_NAME)
    try:
        return conn.execute("SELECT COUNT(*) FROM orders").fetchone()[0]
    finally:
        conn.close()


def main() -> None:
    print("=" * 68)
    print("PART 1 — Section 3.1.3: conditional WHERE assembly")
    print("=" * 68)
    app = orders.install()
    show_search(app, "customer and product",
                [("cust_inp", "10100"), ("prod_inp", "bike")])
    show_search(app, "customer only", [("cust_inp", "10100")])
    show_search(app, "product only", [("prod_inp", "tent")])
    show_search(app, "no filters (full listing, RPT_MAXROWS=25)", [])

    print("=" * 68)
    print("PART 2 — Section 5: transaction modes under failure")
    print("=" * 68)
    entry_inputs = [("order_cust", "10100"), ("order_prod", "bikes"),
                    ("order_qty", "3")]

    for mode in (TransactionMode.AUTO_COMMIT, TransactionMode.SINGLE):
        # with_audit_table=False makes the macro's second INSERT fail.
        app = orders.install(with_audit_table=False,
                             transaction_mode=mode)
        before = order_count(app)
        macro = app.library.load(orders.ENTRY_MACRO_NAME)
        result = app.engine.execute_report(macro, entry_inputs)
        after = order_count(app)
        print(f"--- {mode.value}")
        print(f"    first INSERT ok, second failed "
              f"(aborted={result.aborted})")
        print(f"    orders table: {before} -> {after} "
              f"({'kept' if after > before else 'rolled back'})")
        print()


if __name__ == "__main__":
    main()
