"""The Section 6 baseline gateways, each serving the URL-query workload."""

import pytest

from repro.apps import urlquery as urlquery_app
from repro.baselines import comparison, gsql, plsql, rawcgi, wdb
from repro.cgi.environ import CgiEnvironment
from repro.cgi.request import CgiRequest


@pytest.fixture(scope="module")
def app():
    return urlquery_app.install(rows=60)


def request_for(path_info: str, query: str = "") -> CgiRequest:
    return CgiRequest(CgiEnvironment(path_info=path_info,
                                     query_string=query))


class TestRawCgi:
    @pytest.fixture()
    def program(self, app):
        return rawcgi.RawCgiUrlQuery(app.registry)

    def test_input_form(self, program):
        response = program.run(request_for("/input"))
        assert b'NAME="SEARCH"' in response.body

    def test_report_or_search(self, program):
        response = program.run(request_for(
            "/report", "SEARCH=ib&USE_URL=yes&USE_TITLE=yes"))
        assert b"<LI>" in response.body
        assert b"http://www.ibm.com" in response.body

    def test_field_allowlist_blocks_injection_via_dbfields(self, program):
        response = program.run(request_for(
            "/report",
            "SEARCH=ib&USE_URL=yes&DBFIELDS=url%3B%20DROP%20TABLE"))
        assert response.status == 200  # hostile field name ignored

    def test_quote_escaping_in_search(self, program):
        response = program.run(request_for(
            "/report", "SEARCH=O%27Brien&USE_TITLE=yes"))
        assert response.status == 200

    def test_no_checkboxes_lists_all(self, program, app):
        response = program.run(request_for("/report", "SEARCH=x"))
        assert response.body.count(b"<LI>") == app.rows


class TestGsql:
    def test_proc_file_parses(self):
        proc = gsql.ProcFile.parse(gsql.URLQUERY_PROC)
        assert proc.title.startswith("Query URL")
        assert proc.fields[0].name == "SEARCH"
        assert "$SEARCH" in proc.sql_template

    def test_malformed_proc_file(self):
        with pytest.raises(gsql.ProcFileError):
            gsql.ProcFile.parse("TITLE no colon separator here--")
        with pytest.raises(gsql.ProcFileError):
            gsql.ProcFile.parse("TITLE: x")  # no SQL
        with pytest.raises(gsql.ProcFileError):
            gsql.ProcFile.parse("FIELD: onlyname\nSQL: SELECT 1")
        with pytest.raises(gsql.ProcFileError):
            gsql.ProcFile.parse("OPTION: ghost|A|a\nSQL: SELECT 1")
        with pytest.raises(gsql.ProcFileError):
            gsql.ProcFile.parse("NOVERB: x\nSQL: SELECT 1")

    def test_substitution_escapes_quotes(self):
        proc = gsql.ProcFile.parse(
            "SQL: SELECT * FROM t WHERE a = '$X'")
        assert proc.build_sql({"X": "O'Brien"}) == \
            "SELECT * FROM t WHERE a = 'O''Brien'"

    def test_missing_input_becomes_empty(self):
        # The restrictive substitution the paper criticises: no
        # conditionals, so the template degrades to a catch-all.
        proc = gsql.ProcFile.parse("SQL: SELECT 1 WHERE a LIKE '%$X%'")
        assert proc.build_sql({}) == "SELECT 1 WHERE a LIKE '%%'"

    def test_auto_form_and_report(self, app):
        program = gsql.install_urlquery(app.registry)
        form = program.run(request_for("/input"))
        assert b"Run Query" in form.body
        report = program.run(request_for("/report", "SEARCH=ib"))
        assert b"<TABLE" in report.body

    def test_sql_error_rendered_not_raised(self, app):
        proc = gsql.ProcFile.parse("SQL: SELECT * FROM missing")
        program = gsql.GsqlProgram(proc, app.registry, "URLDB")
        response = program.run(request_for("/report"))
        assert b"Query failed" in response.body

    def test_select_field_renders_options(self, app):
        proc = gsql.ProcFile.parse(
            "FIELD: F|Pick|select\nOPTION: F|One|1\nOPTION: F|Two|2\n"
            "SQL: SELECT '$F'")
        program = gsql.GsqlProgram(proc, app.registry, "URLDB")
        form = program.run(request_for("/input"))
        assert form.body.count(b"<OPTION") == 2


class TestWdb:
    def test_fdf_generated_from_catalog(self, app):
        fdf = wdb.generate_fdf(app.registry, "URLDB", "urldb")
        assert fdf.table == "urldb"
        assert [f.column for f in fdf.fields] == \
            ["url", "title", "description"]
        assert all(f.type_name == "char" for f in fdf.fields)
        text = fdf.serialize()
        assert "TABLE urldb" in text
        assert "FIELD url" in text

    def test_auto_form_has_field_per_column(self, app):
        program = wdb.install_urlquery(app.registry)
        form = program.run(request_for("/input"))
        assert form.body.count(b'TYPE="text"') == 3

    def test_report_ands_filled_fields(self, app):
        program = wdb.install_urlquery(app.registry)
        report = program.run(request_for(
            "/report", "title=Ibm&description=downloads"))
        assert report.status == 200
        assert b"row(s) shown" in report.body

    def test_wildcards_in_user_input_are_literal(self, app):
        program = wdb.install_urlquery(app.registry)
        report = program.run(request_for("/report", "title=100%25"))
        assert b"0 row(s) shown" in report.body

    def test_max_rows_cap(self, app):
        program = wdb.WdbProgram(
            wdb.generate_fdf(app.registry, "URLDB", "urldb"),
            app.registry, "URLDB", max_rows=5)
        report = program.run(request_for("/report"))
        assert report.body.count(b"<TR>") == 6  # header + 5 rows


class TestPlsql:
    def test_form_procedure(self, app):
        program = plsql.install_urlquery(app.registry)
        response = program.run(request_for("/urlquery_form"))
        assert b"Submit Query" in response.body

    def test_report_procedure(self, app):
        program = plsql.install_urlquery(app.registry)
        response = program.run(request_for(
            "/urlquery_report", "SEARCH=ib&USE_TITLE=yes"))
        assert b"<LI>" in response.body

    def test_unknown_procedure_404(self, app):
        program = plsql.install_urlquery(app.registry)
        assert program.run(request_for("/nope")).status == 404
        assert program.run(request_for("")).status == 404

    def test_registry_decorator(self):
        registry = plsql.ProcedureRegistry()

        @registry.register("p")
        def proc(htp, params, conn):
            htp.print("x")

        assert registry.names() == ["p"]
        assert registry.get("p") is proc


class TestComparison:
    def test_profiles_cover_five_gateways(self):
        names = [p.name for p in comparison.profiles()]
        assert names == ["db2www", "gsql", "wdb", "rawcgi", "plsql"]

    def test_db2www_has_most_capabilities(self):
        ranked = sorted(comparison.profiles(),
                        key=lambda p: p.capability_count(), reverse=True)
        assert ranked[0].name == "db2www"

    def test_db2www_needs_no_coding_but_rawcgi_does(self):
        by_name = {p.name: p for p in comparison.profiles()}
        assert by_name["db2www"].capabilities["no_coding"]
        assert not by_name["rawcgi"].capabilities["no_coding"]

    def test_capability_table_renders_all_axes(self):
        table = comparison.capability_table()
        for key, _ in comparison.CAPABILITIES:
            assert key in table
        assert "developer_loc" in table

    def test_developer_loc_counts_positive(self):
        by_name = {p.name: p for p in comparison.profiles()}
        assert by_name["db2www"].developer_loc > 0
        assert by_name["rawcgi"].developer_loc > \
            by_name["gsql"].developer_loc
        assert by_name["wdb"].developer_loc == 0


class TestCrossGatewayConsistency:
    """Different gateways, same database, same logical query: the
    result *rows* must agree even though page markup differs."""

    def _urls_from(self, body: bytes) -> set[str]:
        import re
        return set(re.findall(rb'HREF="(http://[^"]+)"', body))

    def test_db2www_and_rawcgi_agree_on_hits(self, app):
        from repro.apps.site import build_site
        site = build_site(app.engine, app.library)
        db2_response = site.gateway.dispatch(
            "db2www",
            request_for("/urlquery.d2w/report",
                        "SEARCH=ibm&USE_URL=yes&DBFIELDS=title"))
        raw_program = rawcgi.RawCgiUrlQuery(app.registry)
        raw_response = raw_program.run(request_for(
            "/report", "SEARCH=ibm&USE_URL=yes&DBFIELDS=title"))
        db2_urls = self._urls_from(db2_response.body)
        raw_urls = self._urls_from(raw_response.body)
        # Drop the navigation links only the db2www page carries.
        db2_urls = {u for u in db2_urls if b"/page" in u}
        raw_urls = {u for u in raw_urls if b"/page" in u}
        assert db2_urls == raw_urls
        assert db2_urls  # non-trivial comparison

    def test_plsql_subset_of_db2www_title_search(self, app):
        from repro.apps.site import build_site
        site = build_site(app.engine, app.library)
        db2_response = site.gateway.dispatch(
            "db2www",
            request_for("/urlquery.d2w/report",
                        "SEARCH=web&USE_TITLE=yes&DBFIELDS=title"))
        plsql_program = plsql.install_urlquery(app.registry)
        plsql_response = plsql_program.run(request_for(
            "/urlquery_report", "SEARCH=web&USE_TITLE=yes"))
        db2_urls = {u for u in self._urls_from(db2_response.body)
                    if b"/page" in u}
        plsql_urls = {u for u in self._urls_from(plsql_response.body)
                      if b"/page" in u}
        assert plsql_urls == db2_urls


class TestFdfEditing:
    """The skeleton FDF is editable, per WDB's workflow."""

    def test_unlisted_column_excluded_from_report(self, app):
        fdf = wdb.generate_fdf(app.registry, "URLDB", "urldb")
        description = next(f for f in fdf.fields
                           if f.column == "description")
        description.listed = False
        program = wdb.WdbProgram(fdf, app.registry, "URLDB")
        report = program.run(request_for("/report", "title=Ibm"))
        assert b"<TH>description</TH>" not in report.body
        assert b"<TH>url</TH>" in report.body

    def test_unsearchable_column_excluded_from_form(self, app):
        fdf = wdb.generate_fdf(app.registry, "URLDB", "urldb")
        next(f for f in fdf.fields
             if f.column == "url").searchable = False
        program = wdb.WdbProgram(fdf, app.registry, "URLDB")
        form = program.run(request_for("/input"))
        assert form.body.count(b'TYPE="text"') == 2
