"""Section 5 practical issues: SQL safety, auth, firewall, i18n."""

import pytest

from repro.cgi.environ import CgiEnvironment
from repro.cgi.gateway import FunctionProgram
from repro.cgi.request import CgiRequest, CgiResponse
from repro.security.auth import (
    BasicAuthenticator,
    HostFilter,
    ProtectedProgram,
    basic_credentials,
)
from repro.security.i18n import (
    MessageCatalog,
    localized_macro_name,
    negotiate_language,
    parse_accept_language,
)
from repro.security.sqlsafe import (
    SqlPolicy,
    UnsafeSqlError,
    assert_single_statement,
    assert_verb_allowed,
    strip_strings_and_comments,
)


class TestSqlPolicy:
    def test_single_statement_accepts_normal_sql(self):
        sql = "SELECT * FROM urldb WHERE title LIKE '%a%'"
        assert assert_single_statement(sql) == sql

    def test_semicolon_in_string_is_fine(self):
        assert_single_statement("SELECT 'a;b' FROM t")

    def test_trailing_semicolon_tolerated(self):
        assert_single_statement("SELECT 1;")

    def test_piggybacked_statement_rejected(self):
        with pytest.raises(UnsafeSqlError):
            assert_single_statement(
                "SELECT * FROM t WHERE x = 1; DROP TABLE t")

    def test_comment_hidden_semicolon_rejected_only_if_effective(self):
        # A semicolon inside a comment is not a second statement.
        assert_single_statement("SELECT 1 -- tail; DROP TABLE t")

    def test_strip_strings_and_comments(self):
        skeleton = strip_strings_and_comments(
            "SELECT 'a;b', \"c;d\" /* e;f */ -- g;h")
        assert ";" not in skeleton

    def test_verb_allowlist(self):
        assert_verb_allowed("SELECT 1", {"SELECT"})
        with pytest.raises(UnsafeSqlError):
            assert_verb_allowed("DROP TABLE t", {"SELECT", "INSERT"})

    def test_policy_composes(self):
        policy = SqlPolicy(verbs={"select"})
        policy.check("SELECT 1")
        with pytest.raises(UnsafeSqlError):
            policy.check("DELETE FROM t")
        with pytest.raises(UnsafeSqlError):
            policy.check("SELECT 1; SELECT 2")


class TestInjectionDemonstration:
    """The faithful engine is injectable; the policy layer stops it."""

    def test_injection_against_faithful_engine(self, shop_registry):
        from repro.core import MacroEngine, parse_macro
        engine = MacroEngine(shop_registry)
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items WHERE name = '$(n)' %}
%HTML_REPORT{%EXEC_SQL%}
""")
        # The classic OR-1=1: data leaks past the intended filter.
        result = engine.execute_report(
            macro, [("n", "nope' OR '1'='1")])
        assert result.html.count("<TD>") == 3  # everything leaked

    def test_policy_layer_would_catch_piggyback(self):
        hostile = ("SELECT name FROM items WHERE name = 'x'; "
                   "DROP TABLE items; --'")
        with pytest.raises(UnsafeSqlError):
            SqlPolicy().check(hostile)


class TestBasicAuth:
    @pytest.fixture()
    def auth(self):
        authenticator = BasicAuthenticator(realm="db2www")
        authenticator.add_user("tam", "sigmod96")
        return authenticator

    def test_verify(self, auth):
        assert auth.verify("tam", "sigmod96")
        assert not auth.verify("tam", "wrong")
        assert not auth.verify("ghost", "sigmod96")

    def test_header_check(self, auth):
        good = basic_credentials("tam", "sigmod96")
        assert auth.check_header(good)
        assert not auth.check_header("Basic !!!notbase64!!!")
        assert not auth.check_header("Bearer token")
        assert not auth.check_header("")

    def test_header_check_returns_verified_username(self, auth):
        # Regression: callers (tenancy, REMOTE_USER) need the identity,
        # not just a boolean.
        assert auth.check_header(
            basic_credentials("tam", "sigmod96")) == "tam"
        assert auth.check_header(
            basic_credentials("tam", "wrong")) is None
        assert auth.check_header(
            basic_credentials("ghost", "sigmod96")) is None

    def test_empty_username_rejected(self, auth):
        # Regression: ":password" base64-decodes to an empty username;
        # it must neither register nor verify.
        with pytest.raises(ValueError):
            auth.add_user("", "anything")
        assert not auth.verify("", "sigmod96")
        assert auth.check_header(
            basic_credentials("", "sigmod96")) is None

    def test_protected_program_flow(self, auth):
        inner = FunctionProgram(lambda r: CgiResponse(body=b"secret"))
        protected = ProtectedProgram(inner, auth)
        denied = protected.run(CgiRequest(CgiEnvironment()))
        assert denied.status == 401
        assert 'realm="db2www"' in denied.header("WWW-Authenticate")
        allowed = protected.run(CgiRequest(CgiEnvironment(
            http_headers={"Authorization":
                          basic_credentials("tam", "sigmod96")})))
        assert allowed.body == b"secret"

    def test_protected_program_sets_remote_user(self, auth):
        seen = {}

        def capture(request):
            seen["user"] = request.environ.remote_user
            return CgiResponse(body=b"ok")

        protected = ProtectedProgram(FunctionProgram(capture), auth)
        protected.run(CgiRequest(CgiEnvironment(
            http_headers={"Authorization":
                          basic_credentials("tam", "sigmod96")})))
        assert seen["user"] == "tam"


class TestHostFilter:
    def test_deny_wins_over_allow(self):
        filt = (HostFilter(default_allow=False)
                .allow("10.0.0.0/8").deny("10.9.0.0/16"))
        assert filt.permits("10.1.2.3")
        assert not filt.permits("10.9.1.1")
        assert not filt.permits("192.168.1.1")

    def test_default_allow(self):
        filt = HostFilter().deny("203.0.113.0/24")
        assert filt.permits("8.8.8.8")
        assert not filt.permits("203.0.113.9")

    def test_garbage_address_denied(self):
        assert not HostFilter().permits("not-an-ip")

    def test_ipv4_mapped_ipv6_hits_ipv4_deny_rule(self):
        # Regression: a dual-stack listener reports IPv4 peers as
        # ::ffff:a.b.c.d; the textual form must not slip past an IPv4
        # CIDR deny rule.
        filt = HostFilter().deny("192.0.2.0/24")
        assert not filt.permits("192.0.2.7")
        assert not filt.permits("::ffff:192.0.2.7")
        assert filt.permits("::ffff:198.51.100.7")

    def test_ipv4_literal_hits_mapped_ipv6_deny_rule(self):
        # ...and the reverse direction: a deny written in mapped-IPv6
        # notation must still block the plain IPv4 spelling.
        filt = HostFilter().deny("::ffff:192.0.2.0/120")
        assert not filt.permits("192.0.2.7")
        assert not filt.permits("::ffff:192.0.2.7")
        assert filt.permits("192.0.3.7")

    def test_ipv4_mapped_allow_rule_admits_both_spellings(self):
        filt = HostFilter(default_allow=False).allow("10.0.0.0/8")
        assert filt.permits("10.1.2.3")
        assert filt.permits("::ffff:10.1.2.3")
        assert not filt.permits("::1")

    def test_wrapped_program(self):
        filt = HostFilter(default_allow=False).allow("127.0.0.1/32")
        program = filt.wrap(FunctionProgram(
            lambda r: CgiResponse(body=b"in")))
        ok = program.run(CgiRequest(CgiEnvironment(
            remote_addr="127.0.0.1")))
        assert ok.body == b"in"
        blocked = program.run(CgiRequest(CgiEnvironment(
            remote_addr="198.51.100.7")))
        assert blocked.status == 403


class TestI18n:
    def test_parse_accept_language_quality_order(self):
        assert parse_accept_language(
            "fr-CA;q=0.8, en;q=0.9, ja") == ["ja", "en", "fr-ca"]

    def test_zero_quality_excluded(self):
        assert parse_accept_language("en;q=0, fr") == ["fr"]

    def test_negotiate_exact_and_base_fallback(self):
        assert negotiate_language("fr-CA, en", ["en", "fr"]) == "fr"
        assert negotiate_language("de", ["en", "fr"]) == "en"
        assert negotiate_language("", ["en"]) == "en"

    def test_localized_macro_name(self):
        assert localized_macro_name("urlquery.d2w", "fr") == \
            "urlquery.fr.d2w"
        assert localized_macro_name("plain", "ja") == "plain.ja"

    def test_catalog_fallback_chain(self):
        catalog = MessageCatalog()
        catalog.add("en", {"title": "URL Query", "go": "Submit"})
        catalog.add("fr", {"title": "Requête URL"})
        assert catalog.get("title", "fr") == "Requête URL"
        assert catalog.get("go", "fr") == "Submit"       # en fallback
        assert catalog.get("missing", "fr") == "missing"  # key fallback
        assert catalog.languages() == ["en", "fr"]

    def test_defines_for_merges_languages(self):
        catalog = MessageCatalog()
        catalog.add("en", {"a": "A", "b": "B"})
        catalog.add("ja", {"a": "あ"})
        pairs = dict(catalog.defines_for("ja"))
        assert pairs == {"a": "あ", "b": "B"}

    def test_multibyte_through_full_engine(self, shop_registry):
        # Section 5: multi-byte character support.  UTF-8 Japanese text
        # flows client -> QUERY_STRING -> SQL -> report unharmed.
        from repro.core import MacroEngine, parse_macro
        conn = shop_registry.connect("SHOP")
        conn.execute("INSERT INTO items VALUES ('自転車', 300.0, 2)")
        conn.close()
        engine = MacroEngine(shop_registry)
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items WHERE name = '$(q)'
%SQL_REPORT{%ROW{<P>$(V1) あり</P>%}%}
%}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = engine.execute_report(macro, [("q", "自転車")])
        assert "<P>自転車 あり</P>" in result.html
