"""Shared fixtures: seeded databases, installed applications, sites.

Chaos mode: ``pytest --inject-faults SPEC`` installs an *ambient* fault
injector for the whole run (see :mod:`repro.resilience.faults`).  The
gateway then injects transient faults into idempotent reads and absorbs
them with a default retry policy — the full tier-1 suite must stay
green under ``--inject-faults prob:0.05`` (CI's ``chaos`` job runs
exactly that).
"""

from __future__ import annotations

import pytest

from repro.apps import build_site
from repro.apps import library as library_app
from repro.apps import orders as orders_app
from repro.apps import urlquery as urlquery_app
from repro.core.engine import MacroEngine
from repro.sql.gateway import DatabaseRegistry


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--inject-faults", default=None, metavar="SPEC",
        help="run the whole suite under ambient database fault "
             "injection, e.g. prob:0.05 (see repro.resilience.faults)")


def pytest_configure(config: pytest.Config) -> None:
    spec = config.getoption("--inject-faults")
    if spec:
        from repro.resilience import faults
        faults.set_ambient_injector(faults.FaultInjector.parse(spec))


def pytest_unconfigure(config: pytest.Config) -> None:
    if config.getoption("--inject-faults"):
        from repro.resilience import faults
        faults.set_ambient_injector(None)


@pytest.fixture()
def fault_spec(request: pytest.FixtureRequest) -> str:
    """The chaos spec for fault-driven tests (CLI override or default)."""
    return request.config.getoption("--inject-faults") or "prob:0.05"


@pytest.fixture()
def registry() -> DatabaseRegistry:
    return DatabaseRegistry()


@pytest.fixture()
def shop_registry() -> DatabaseRegistry:
    """A tiny one-table database registered as SHOP."""
    registry = DatabaseRegistry()
    db = registry.register_memory("SHOP")
    with db.connect() as conn:
        conn.executescript(
            """
            CREATE TABLE items (
                name  TEXT NOT NULL,
                price REAL NOT NULL,
                qty   INTEGER NOT NULL
            );
            INSERT INTO items VALUES
                ('bikes', 250.0, 4),
                ('helmets', 45.5, 10),
                ('tents', 120.0, 2);
            """)
    return registry


@pytest.fixture()
def shop_engine(shop_registry) -> MacroEngine:
    return MacroEngine(shop_registry)


@pytest.fixture(scope="session")
def urlquery():
    """The Appendix A application, installed once per test session."""
    return urlquery_app.install(rows=80)


@pytest.fixture(scope="session")
def urlquery_site(urlquery):
    return build_site(urlquery.engine, urlquery.library)


@pytest.fixture()
def orders():
    return orders_app.install()


@pytest.fixture()
def books():
    return library_app.install(books=60)
