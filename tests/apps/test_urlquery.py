"""The Appendix A application, driven directly through the engine."""

import re

from repro.apps.urlquery import FIGURE3_BINDINGS


class TestInputMode:
    def test_figure7_input_page(self, urlquery):
        macro = urlquery.library.load(urlquery.macro_name)
        result = urlquery.engine.execute_input(macro)
        assert "Query URL Information" in result.html
        assert 'NAME="SEARCH"' in result.html
        # The hidden-variable escape: the page carries the *literal*
        # $(hidden_a), not its value — hidden_a is defined after the
        # input section (positional visibility) AND escaped with $$.
        assert 'VALUE="$(hidden_a)"' in result.html
        assert "title" not in result.html.split("SELECT")[1] \
            .split("</SELECT>")[0].replace("> Title", "")

    def test_no_sql_runs_in_input_mode(self, urlquery):
        macro = urlquery.library.load(urlquery.macro_name)
        result = urlquery.engine.execute_input(macro)
        assert result.statements == []


def result_list(html: str) -> str:
    """The <UL> holding the query results (not the footer links)."""
    marker = "Select any of the following"
    assert marker in html
    after = html.split(marker, 1)[1]
    return after.split("</UL>", 1)[0]


class TestReportMode:
    def _report(self, urlquery, bindings):
        macro = urlquery.library.load(urlquery.macro_name)
        return urlquery.engine.execute_report(macro, bindings)

    def test_figure3_bindings_produce_or_search(self, urlquery):
        result = self._report(
            urlquery, FIGURE3_BINDINGS + [("SHOWSQL", "YES")])
        sql = result.statements[0]
        assert "urldb.url LIKE '%%'" in sql
        assert " OR " in sql
        assert "description" not in sql.split("FROM")[1]
        assert "ORDER BY title" in sql

    def test_hidden_variable_round_trip(self, urlquery):
        # The client echoes back the literal "$(hidden_a)"; report mode
        # dereferences it to the real column name.
        result = self._report(urlquery, [
            ("SEARCH", "ib"), ("USE_TITLE", "yes"),
            ("DBFIELDS", "$(hidden_a)"), ("DBFIELDS", "$(hidden_b)"),
            ("SHOWSQL", "YES")])
        sql = result.statements[0]
        assert "SELECT url, title , description" in sql

    def test_report_contains_hyperlinked_urls(self, urlquery):
        result = self._report(urlquery, [
            ("SEARCH", "ibm"), ("USE_URL", "yes"),
            ("DBFIELDS", "title")])
        links = re.findall(r'<A HREF="(http://[^"]+)">', result.html)
        assert links, "Figure 8 shows hyperlinked result URLs"
        assert all("ibm" in link for link in links)

    def test_conditional_d2_d3_columns(self, urlquery):
        # With only one extra field, $(V3) is undefined so D3 is null.
        one = result_list(self._report(urlquery, [
            ("SEARCH", "ib"), ("USE_URL", "yes"),
            ("DBFIELDS", "title")]).html)
        assert one.count("<BR>") == one.count("<LI>")
        two = result_list(self._report(urlquery, [
            ("SEARCH", "ib"), ("USE_URL", "yes"),
            ("DBFIELDS", "title"), ("DBFIELDS", "description")]).html)
        assert two.count("<BR>") == 2 * two.count("<LI>")

    def test_unchecking_everything_lists_all_urls(self, urlquery):
        result = self._report(urlquery, [("SEARCH", "zzz-no-match"),
                                         ("DBFIELDS", "title")])
        # "If you unselect all of the above checkboxes, all of the URLs
        # in the database will be displayed on output."
        assert result_list(result.html).count("<LI>") == urlquery.rows

    def test_no_match_produces_empty_list(self, urlquery):
        result = self._report(urlquery, [
            ("SEARCH", "zzz-no-match"), ("USE_URL", "yes"),
            ("DBFIELDS", "title")])
        assert result_list(result.html).count("<LI>") == 0
        assert "<UL>" in result.html  # header/footer still printed
