"""Every macro this repository ships must satisfy its own linter.

If the linter and the applications disagree, one of them is wrong —
either the macro has a latent authoring bug or the linter produces
false positives on legitimate paper idioms.  Either way this test
fails and names it.
"""

import pytest

from repro.apps.guestbook import GUESTBOOK_MACRO
from repro.apps.library import LIBRARY_MACRO
from repro.apps.orders import ENTRY_MACRO, SEARCH_MACRO
from repro.apps.paging import BROWSE_MACRO
from repro.apps.urlquery import URLQUERY_MACRO
from repro.apps.webstats import WEBSTATS_MACRO
from repro.apps.wizard import (
    CONFIRM_MACRO,
    CUSTOMER_MACRO,
    PRODUCT_MACRO,
)
from repro.core.lint import lint_macro
from repro.core.parser import parse_macro

ALL_MACROS = {
    "urlquery": URLQUERY_MACRO,
    "ordersearch": SEARCH_MACRO,
    "orderentry": ENTRY_MACRO,
    "library": LIBRARY_MACRO,
    "browse": BROWSE_MACRO,
    "guestbook": GUESTBOOK_MACRO,
    "webstats": WEBSTATS_MACRO,
    "wizard_customer": CUSTOMER_MACRO,
    "wizard_product": PRODUCT_MACRO,
    "wizard_confirm": CONFIRM_MACRO,
}

#: Findings that are deliberate in specific macros, with justification.
ACCEPTED = {
    # The wizard's step-1 and step-2 macros have no %HTML_INPUT: they
    # are report-only pages whose form posts to the *next* macro.
    ("wizard_customer", "no-input-section"),
    ("wizard_product", "no-input-section"),
    ("wizard_confirm", "no-input-section"),
    # Step 2/3 receive wiz_* variables from the previous step's form,
    # which the linter cannot see across macro files.
    ("wizard_product", "undefined-variable"),
    ("wizard_confirm", "undefined-variable"),
    # The webstats report is driven by a SELECT on its own input page,
    # but the listing/noop sections are dispatched via %EXEC_SQL($(view))
    # — suppressed automatically; nothing expected here.
}


@pytest.mark.parametrize("name", sorted(ALL_MACROS))
def test_macro_lints_clean(name):
    findings = lint_macro(parse_macro(ALL_MACROS[name], source=name))
    unexpected = [
        finding for finding in findings
        if (name, finding.code) not in ACCEPTED
    ]
    assert not unexpected, "\n".join(
        finding.render(name) for finding in unexpected)


def test_accepted_list_is_not_stale():
    """Every ACCEPTED entry must still be produced — otherwise the
    waiver is dead weight and should be deleted."""
    live = set()
    for name, text in ALL_MACROS.items():
        for finding in lint_macro(parse_macro(text, source=name)):
            live.add((name, finding.code))
    stale = ACCEPTED - live
    assert not stale, f"stale waivers: {sorted(stale)}"
