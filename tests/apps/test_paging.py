"""The scrollable-cursor (paging) application."""

import pytest

from repro.apps import paging
from repro.apps.site import build_site


@pytest.fixture(scope="module")
def site_and_app():
    app = paging.install(rows=25)  # page size 10 -> pages of 10/10/5
    return build_site(app.engine, app.library), app


@pytest.fixture()
def browser(site_and_app):
    site, _ = site_and_app
    return site.new_browser()


def list_items(page) -> int:
    return page.html.count("<LI>")


class TestPaging:
    def test_first_page_window(self, browser, site_and_app):
        _, app = site_and_app
        page = browser.get(app.report_path + "?q=")
        assert list_items(page) == 10
        assert "#1 " in page.html
        assert "#10 " in page.html
        assert "#11 " not in page.html
        assert "of\n25 total matches" in page.html or \
            "of 25 total matches" in page.html.replace("\n", " ")

    def test_first_page_has_next_but_no_previous(self, browser,
                                                 site_and_app):
        _, app = site_and_app
        page = browser.get(app.report_path + "?q=")
        texts = [l.text for l in page.links]
        assert "Next page" in texts
        assert "Previous page" not in texts

    def test_middle_page_has_both_links(self, browser, site_and_app):
        _, app = site_and_app
        browser.get(app.report_path + "?q=")
        middle = browser.follow("Next page")
        texts = [l.text for l in middle.links]
        assert "Next page" in texts and "Previous page" in texts
        assert "#11 " in middle.html and "#20 " in middle.html

    def test_last_page_is_short_and_has_no_next(self, browser,
                                                site_and_app):
        _, app = site_and_app
        browser.get(app.report_path + "?q=")
        browser.follow("Next page")
        last = browser.follow("Next page")
        assert list_items(last) == 5
        texts = [l.text for l in last.links]
        assert "Next page" not in texts
        assert "Previous page" in texts

    def test_previous_returns_to_same_window(self, browser,
                                             site_and_app):
        _, app = site_and_app
        first = browser.get(app.report_path + "?q=")
        second = browser.follow("Next page")
        back = browser.follow("Previous page")
        assert back.html == first.html

    def test_state_travels_in_the_url(self, browser, site_and_app):
        # "relating multiple client-server interactions ... as part of
        # the same application": the gateway is stateless; the page
        # carries START_ROW_NUM forward.
        _, app = site_and_app
        page = browser.get(app.report_path + "?q=")
        next_link = page.link("Next page")
        assert "START_ROW_NUM=11" in next_link.href
        assert "q=" in next_link.href  # the search term travels too

    def test_direct_jump_to_offset(self, browser, site_and_app):
        _, app = site_and_app
        page = browser.get(app.report_path + "?q=&START_ROW_NUM=21")
        assert "#21 " in page.html
        assert list_items(page) == 5

    def test_search_term_constrains_and_pages(self, browser,
                                              site_and_app):
        _, app = site_and_app
        page = browser.get(app.report_path + "?q=Ibm")
        assert 0 < list_items(page) <= 10


class TestExecRunnerCommands:
    def test_page_next_arithmetic(self):
        runner = paging.paging_exec_runner()
        assert runner.run("page_next 1 10 25") == ("11", "")
        assert runner.run("page_next 21 10 25") == ("", "")
        assert runner.run("page_next 11 10 25") == ("21", "")

    def test_page_prev_arithmetic(self):
        runner = paging.paging_exec_runner()
        assert runner.run("page_prev 1 10") == ("", "")
        assert runner.run("page_prev 11 10") == ("1", "")
        assert runner.run("page_prev 6 10") == ("1", "")  # clamped

    def test_bad_arguments_become_error_code(self):
        runner = paging.paging_exec_runner()
        output, error = runner.run("page_next one two three")
        assert output == ""
        assert error.startswith("ValueError")
