"""Webstats: the gateway reporting on its own access log."""

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps import webstats
from repro.apps.site import build_site
from repro.http.accesslog import AccessLog
from repro.http.message import HttpRequest


def synthetic_entries():
    """A small deterministic log."""
    log = AccessLog()
    from repro.http.message import HttpResponse
    specs = [
        ("/index.html", 200, 1000, "10.0.0.1"),
        ("/index.html", 200, 1000, "10.0.0.2"),
        ("/index.html", 200, 1000, "10.0.0.1"),
        ("/products.html", 200, 2500, "10.0.0.2"),
        ("/ghost.html", 404, 200, "10.0.0.3"),
        ("/ghost.html", 404, 200, "10.0.0.3"),
        ("/cgi-bin/db2www/urlquery.d2w/report", 200, 4000, "10.0.0.1"),
    ]
    for path, status, size, host in specs:
        log.record(HttpRequest(target=path),
                   HttpResponse(status=status, body=b"x" * size),
                   remote_addr=host)
    return log.entries()


@pytest.fixture()
def app():
    return webstats.install(synthetic_entries())


def report(app, view: str) -> str:
    macro = app.library.load(webstats.MACRO_NAME)
    result = app.engine.execute_report(macro, [("view", view)])
    assert result.ok
    return result.html


class TestReports:
    def test_import_count(self, app):
        assert app.imported == 7

    def test_top_pages_ordered_by_hits(self, app):
        html = report(app, "top_pages")
        assert html.index("/index.html") < html.index("/ghost.html")
        assert "<TD>/index.html</TD><TD>3</TD><TD>3000</TD>" in html

    def test_status_summary(self, app):
        html = report(app, "status_summary")
        assert "<LI>200: 5 request(s)" in html
        assert "<LI>404: 2 request(s)" in html

    def test_top_hosts(self, app):
        html = report(app, "top_hosts")
        assert html.index("10.0.0.1") < html.index("10.0.0.3")

    def test_errors_view(self, app):
        html = report(app, "errors")
        assert "404 on /ghost.html: 2 time(s)" in html
        assert "1 distinct error source(s)" in html

    def test_default_view_is_top_pages(self, app):
        macro = app.library.load(webstats.MACRO_NAME)
        result = app.engine.execute_report(macro)
        assert "Most requested pages" in result.html

    def test_reload_replaces_data(self, app):
        app.reload([])
        html = report(app, "status_summary")
        assert "request(s)" not in html


class TestDogfooding:
    def test_stats_on_the_gateways_own_traffic(self):
        """Serve the urlquery app with a live access log, then report
        on that log through webstats — the full loop."""
        log = AccessLog()
        url_app = urlquery_app.install(rows=20)
        site = build_site(url_app.engine, url_app.library)
        site.router.access_log = log
        browser = site.new_browser()
        browser.get(url_app.input_path)
        browser.get(url_app.input_path)
        browser.get("/cgi-bin/db2www/missing.d2w/input")  # a 404

        stats_app = webstats.install(log.entries())
        html = report(stats_app, "status_summary")
        assert "<LI>200: 2 request(s)" in html
        assert "<LI>404: 1 request(s)" in html
        top = report(stats_app, "top_pages")
        assert "/cgi-bin/db2www/urlquery.d2w/input" in top
