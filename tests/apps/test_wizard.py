"""The three-step order wizard: hidden-field state across requests."""

import pytest

from repro.apps import wizard
from repro.apps.site import build_site


@pytest.fixture()
def site_and_app():
    app = wizard.install()
    return build_site(app.engine, app.library), app


def order_count(app) -> int:
    conn = app.registry.connect(wizard.DATABASE_NAME)
    try:
        return conn.execute("SELECT COUNT(*) FROM orders").fetchone()[0]
    finally:
        conn.close()


class TestWizardFlow:
    def test_full_walk_records_order(self, site_and_app):
        site, app = site_and_app
        before = order_count(app)
        browser = site.new_browser()

        step1 = browser.get(app.start_path)
        assert "Step 1 of 3" in step1.html
        form1 = step1.form(0)
        form1["wiz_cust"].select("10300")

        step2 = browser.submit(form1)
        assert "Step 2 of 3" in step2.html
        form2 = step2.form(0)
        # The chosen customer rides along as a hidden field.
        assert form2["wiz_cust"].kind == "hidden"
        assert form2["wiz_cust"].value == "10300"
        form2["wiz_prod"].select("tents")
        form2.set("wiz_qty", "3")

        step3 = browser.submit(form2)
        assert "Step 3 of 3" in step3.html
        assert "id 10300" in step3.html
        assert "tents, 3 unit(s)" in step3.html
        assert "Order recorded" in step3.html
        assert order_count(app) == before + 1

        conn = app.registry.connect(wizard.DATABASE_NAME)
        row = conn.execute(
            "SELECT custid, product_name, quantity FROM orders "
            "ORDER BY order_id DESC LIMIT 1").fetchone()
        conn.close()
        assert row == (10300, "tents", 3)

    def test_customer_options_come_from_the_database(self, site_and_app):
        site, app = site_and_app
        page = site.new_browser().get(app.start_path)
        options = page.form(0)["wiz_cust"].options
        assert len(options) == 40  # seeded customer count
        assert all(option.value.isdigit() for option in options)

    def test_bad_quantity_surfaces_message_not_crash(self, site_and_app):
        site, app = site_and_app
        before = order_count(app)
        browser = site.new_browser()
        step1 = browser.get(app.start_path)
        step2 = browser.submit(step1.form(0))
        form2 = step2.form(0)
        form2["wiz_prod"].select("bikes")
        form2.set("wiz_qty", "0")  # violates CHECK (quantity > 0)
        step3 = browser.submit(form2)
        assert "Could not record the order" in step3.html
        assert order_count(app) == before

    def test_two_wizards_do_not_interfere(self, site_and_app):
        site, app = site_and_app
        alice, bob = site.new_browser(), site.new_browser()
        a2 = alice.submit(alice.get(app.start_path).form(0))
        b1 = bob.get(app.start_path)
        b1.form(0)["wiz_cust"].select("10500")
        b2 = bob.submit(b1.form(0))
        # Each browser's hidden state is its own.
        assert a2.form(0)["wiz_cust"].value != "10500"
        assert b2.form(0)["wiz_cust"].value == "10500"
