"""The order-search/entry and lending-library applications."""

import pytest

from repro.apps import library as library_app
from repro.apps import orders as orders_app
from repro.sql.transactions import TransactionMode


class TestOrderSearch:
    def _run(self, orders, bindings):
        macro = orders.library.load(orders_app.SEARCH_MACRO_NAME)
        return orders.engine.execute_report(macro, bindings)

    def test_both_filters(self, orders):
        result = self._run(orders, [("cust_inp", "10100"),
                                    ("prod_inp", "bike")])
        sql = result.statements[0]
        assert "o.custid = 10100" in sql
        assert "o.product_name LIKE 'bike%'" in sql
        assert result.ok

    def test_customer_only(self, orders):
        sql = self._run(orders, [("cust_inp", "10100")]).statements[0]
        assert "custid = 10100" in sql
        assert "LIKE" not in sql

    def test_no_filters_lists_everything(self, orders):
        result = self._run(orders, [])
        assert "WHERE c.custid = o.custid ORDER BY" in \
            result.statements[0]
        assert result.ok

    def test_rpt_maxrows_caps_report(self, orders):
        result = self._run(orders, [])
        assert result.html.count("<TR><TD>") <= 25  # RPT_MAXROWS = 25

    def test_custom_message_for_missing_table(self, orders):
        conn = orders.registry.connect(orders_app.DATABASE_NAME)
        conn.executescript("ALTER TABLE orders RENAME TO orders_gone;")
        conn.close()
        result = self._run(orders, [])
        assert "order database is not available" in result.html
        assert not result.ok


class TestPaperFragment:
    def test_four_combinations_match_section_313(self, orders):
        macro = orders.library.load("paperfragment.d2w")
        cases = {
            (("cust_inp", "10100"), ("prod_inp", "bikes")):
                "WHERE custid = 10100 AND product_name LIKE 'bikes%'",
            (("cust_inp", "10100"),): "WHERE custid = 10100",
            (("prod_inp", "bikes"),):
                "WHERE product_name LIKE 'bikes%'",
            (): "",
        }
        for bindings, expected in cases.items():
            result = orders.engine.execute_report(macro, list(bindings))
            assert f"clause: [{expected}]" in result.html


class TestOrderEntry:
    def _entry(self, orders, **inputs):
        macro = orders.library.load(orders_app.ENTRY_MACRO_NAME)
        return orders.engine.execute_report(macro, list(inputs.items()))

    def _order_count(self, orders) -> int:
        conn = orders.registry.connect(orders_app.DATABASE_NAME)
        try:
            return conn.execute(
                "SELECT COUNT(*) FROM orders").fetchone()[0]
        finally:
            conn.close()

    def test_successful_entry_writes_both_tables(self, orders):
        before = self._order_count(orders)
        result = self._entry(orders, order_cust="10100",
                             order_prod="bikes", order_qty="2")
        assert result.ok
        assert "Order recorded" in result.html
        assert "Audit trail written" in result.html
        assert self._order_count(orders) == before + 1

    def test_quantity_default_from_define(self, orders):
        result = self._entry(orders, order_cust="10100",
                             order_prod="tents")
        assert result.ok
        conn = orders.registry.connect(orders_app.DATABASE_NAME)
        qty = conn.execute(
            "SELECT quantity FROM orders ORDER BY order_id DESC "
            "LIMIT 1").fetchone()[0]
        conn.close()
        assert qty == 1

    def test_constraint_failure_uses_message_section(self, orders):
        result = self._entry(orders, order_cust="10100",
                             order_prod="bikes", order_qty="0")
        assert "Could not record the order" in result.html
        assert not result.ok

    def test_autocommit_keeps_first_insert_on_second_failure(self):
        orders = orders_app.install(with_audit_table=False)
        macro = orders.library.load(orders_app.ENTRY_MACRO_NAME)
        result = orders.engine.execute_report(macro, [
            ("order_cust", "10100"), ("order_prod", "bikes")])
        assert not result.ok
        conn = orders.registry.connect(orders_app.DATABASE_NAME)
        count = conn.execute(
            "SELECT COUNT(*) FROM orders WHERE custid=10100 "
            "AND product_name='bikes'").fetchone()[0]
        conn.close()
        assert count >= 1  # the first INSERT survived (auto-commit)

    def test_single_mode_rolls_back_first_insert(self):
        orders = orders_app.install(
            with_audit_table=False,
            transaction_mode=TransactionMode.SINGLE)
        conn = orders.registry.connect(orders_app.DATABASE_NAME)
        before = conn.execute(
            "SELECT COUNT(*) FROM orders").fetchone()[0]
        conn.close()
        macro = orders.library.load(orders_app.ENTRY_MACRO_NAME)
        result = orders.engine.execute_report(macro, [
            ("order_cust", "10100"), ("order_prod", "bikes")])
        assert not result.ok
        conn = orders.registry.connect(orders_app.DATABASE_NAME)
        after = conn.execute(
            "SELECT COUNT(*) FROM orders").fetchone()[0]
        conn.close()
        assert after == before  # Section 5: rollback on any failure


class TestLibraryApp:
    def _search(self, books, **inputs):
        macro = books.library.load(library_app.MACRO_NAME)
        return books.engine.execute_report(macro, list(inputs.items()))

    def test_default_command_is_by_title(self, books):
        result = self._search(books, term="Web")
        assert "Books matching title" in result.html
        assert result.ok

    def test_runtime_dispatch_by_author(self, books):
        result = self._search(books, term="Codd", sqlcmd="by_author")
        assert "Books by authors matching" in result.html
        assert "by_author" not in result.statements[0]

    def test_runtime_dispatch_availability(self, books):
        result = self._search(books, term="", sqlcmd="availability")
        assert "Availability" in result.html
        assert "LEFT JOIN loans" in result.statements[0]

    def test_unknown_command_rejected(self, books):
        from repro.errors import UnknownSqlSectionError
        with pytest.raises(UnknownSqlSectionError):
            self._search(books, term="x", sqlcmd="drop_tables")

    def test_input_form_lists_three_choices(self, books):
        macro = books.library.load(library_app.MACRO_NAME)
        html = books.engine.execute_input(macro).html
        assert html.count('NAME="sqlcmd"') == 3
