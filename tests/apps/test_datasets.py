"""Dataset generators: determinism and schema expectations."""

from repro.apps.datasets import (
    generate_urls,
    seed_library,
    seed_orders,
    seed_urldb,
)
from repro.sql.catalog import describe_table, list_tables, row_count
from repro.sql.connection import connect


class TestUrlGenerator:
    def test_deterministic_for_seed(self):
        first = list(generate_urls(20, seed=1))
        second = list(generate_urls(20, seed=1))
        assert first == second

    def test_different_seeds_differ(self):
        assert list(generate_urls(20, seed=1)) != \
            list(generate_urls(20, seed=2))

    def test_row_shape(self):
        url, title, description = next(generate_urls(1))
        assert url.startswith("http://www.")
        assert title and description

    def test_urls_unique(self):
        urls = [row[0] for row in generate_urls(500)]
        assert len(set(urls)) == len(urls)


class TestSeeding:
    def test_seed_urldb(self):
        conn = connect()
        inserted = seed_urldb(conn, 50)
        assert inserted == 50
        assert row_count(conn, "urldb") == 50
        info = describe_table(conn, "urldb")
        assert info.column_names == ["url", "title", "description"]
        conn.close()

    def test_seed_orders_counts_and_key_alignment(self):
        conn = connect()
        counts = seed_orders(conn, customers=10, orders=40)
        assert counts == {"customers": 10, "products": 16,
                          "orders": 40}
        assert list_tables(conn) == ["customers", "products", "orders"]
        # The paper's worked example uses custid 10100; it must exist.
        assert conn.execute(
            "SELECT COUNT(*) FROM customers WHERE custid = 10100"
        ).fetchone() == (1,)
        # Referential integrity of the generated orders.
        dangling = conn.execute(
            "SELECT COUNT(*) FROM orders o LEFT JOIN customers c "
            "ON c.custid = o.custid WHERE c.custid IS NULL").fetchone()
        assert dangling == (0,)
        conn.close()

    def test_seed_library(self):
        conn = connect()
        assert seed_library(conn, books=30) == 30
        assert row_count(conn, "books") == 30
        years = conn.execute(
            "SELECT MIN(year), MAX(year) FROM books").fetchone()
        assert 1968 <= years[0] <= years[1] <= 1996
        conn.close()
