"""The guestbook: update access, hardening, and its sharp edges."""

import pytest

from repro.apps import guestbook
from repro.apps.site import build_site


@pytest.fixture()
def site_and_app():
    app = guestbook.install()
    return build_site(app.engine, app.library), app


def sign(site, app, visitor, message):
    browser = site.new_browser()
    page = browser.get(app.input_path)
    form = page.form(0)
    form.set("visitor", visitor)
    form.set("message", message)
    return browser.submit(form, click="Sign the book")


class TestSigning:
    def test_entry_recorded_and_listed(self, site_and_app):
        site, app = site_and_app
        report = sign(site, app, "Ada", "Lovely gateway!")
        assert "Thanks for signing" in report.html
        assert "<B>Ada</B>" in report.html
        assert "Lovely gateway!" in report.html
        # newest first: Ada before the seeded webmaster entry
        assert report.html.index("Ada") < report.html.index("webmaster")

    def test_read_only_visit_does_not_insert(self, site_and_app):
        site, app = site_and_app
        browser = site.new_browser()
        report = browser.get(app.report_path)
        assert "Thanks for signing" not in report.html
        assert "1 entr(y/ies)" in report.html  # just the seed row

    def test_textarea_content_travels(self, site_and_app):
        site, app = site_and_app
        report = sign(site, app, "Grace",
                      "line one\nline two & <three>")
        assert "line one" in report.html
        assert "&amp; &lt;three&gt;" in report.html

    def test_empty_name_rejected_politely(self, site_and_app):
        site, app = site_and_app
        report = sign(site, app, "", "anonymous note")
        assert "Please tell us your name" in report.html
        # continue action: the listing still rendered
        assert "entr(y/ies) in the book" in report.html
        assert "anonymous note" not in report.html


class TestHardening:
    def test_listing_escapes_markup_in_entries(self, site_and_app):
        # escape_report_values=True protects the *report* from stored
        # markup — the 1996 default would have emitted it raw.
        site, app = site_and_app
        report = sign(site, app, "<script>alert(1)</script>", "hi")
        listing = report.html.split("<DL>")[1]
        assert "<script>" not in listing
        assert "&lt;script&gt;" in listing

    def test_acknowledgement_line_is_the_documented_sharp_edge(
            self, site_and_app):
        # $(visitor) in the acknowledgement is a *client* variable, not
        # a report value, so escape_report_values does not cover it —
        # documented in the macro and asserted here so a future fix is
        # a conscious behaviour change.
        site, app = site_and_app
        report = sign(site, app, "<i>sly</i>", "hello")
        acknowledgement = report.html.split("<DL>")[0]
        assert "<i>sly</i>" in acknowledgement

    def test_quote_in_name_surfaces_sql_error_not_crash(self,
                                                        site_and_app):
        # The faithful text-substitution reality: O'Brien breaks the
        # INSERT's quoting.  The %SQL_MESSAGE default rule catches it
        # and the page still renders (continue).
        site, app = site_and_app
        report = sign(site, app, "O'Brien", "hello")
        assert report.status == 200
        assert "Could not record your entry" in report.html
        assert "entr(y/ies) in the book" in report.html


class TestAccumulation:
    def test_multiple_visitors_accumulate(self, site_and_app):
        site, app = site_and_app
        for i in range(3):
            sign(site, app, f"visitor{i}", f"message {i}")
        report = site.new_browser().get(app.report_path)
        assert "4 entr(y/ies)" in report.html  # 3 + seeded webmaster

    def test_rpt_maxrows_bounds_the_page(self, site_and_app):
        site, app = site_and_app
        for i in range(25):
            sign(site, app, f"v{i}", "x")
        report = site.new_browser().get(app.report_path)
        assert report.html.count("<DT>") == 20  # RPT_MAXROWS
        assert "26 entr(y/ies)" in report.html  # ROW_NUM counts all
