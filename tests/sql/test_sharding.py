"""The sharded SQL tier: routing, replicas, scatter-gather merge,
degradation, and the ORDER BY recognizer behind the ordered merge."""

import threading
import time

import pytest

from repro.errors import DeadlineExceededError, SQLError
from repro.resilience.deadline import Deadline
from repro.resilience.faults import FaultInjector, wrap_factory
from repro.sql.connection import Connection, MemoryDatabase
from repro.sql.gateway import DatabaseRegistry
from repro.sql.querycache import QueryResultCache
from repro.sql.sharding import (
    ShardedSqlSession,
    ShardMap,
    build_shard_map,
    parse_order_by,
    parse_trailing_limit,
)
from repro.sql.transactions import TransactionMode

SHARDS = 4
ROWS_PER_SHARD = 10


@pytest.fixture()
def registry():
    """Four shard primaries, each pre-seeded with distinct rows."""
    reg = DatabaseRegistry()
    for index in range(SHARDS):
        seed_shard(reg, f"INV#{index}", index)
    return reg


def seed_shard(reg, name, index, rows=ROWS_PER_SHARD):
    db = reg.register_memory(name)
    conn = db.connect()
    conn.executescript(
        "CREATE TABLE parts (id INTEGER, name TEXT, qty INTEGER);")
    for j in range(rows):
        conn.execute(f"INSERT INTO parts VALUES "
                     f"({index * 100 + j}, 'p{index}-{j}', {j})")
    conn.commit()
    conn.close()
    return db


@pytest.fixture()
def shard_map(registry):
    smap = ShardMap("INV")
    for index in range(SHARDS):
        smap.add_shard(f"INV#{index}")
    registry.register_sharded("INV", smap)
    return smap


def session(registry, smap, **kwargs):
    return ShardedSqlSession(registry, smap, **kwargs)


class TestRouting:
    def test_hash_routing_is_deterministic(self, registry, shard_map):
        first = shard_map.route("customer-42")
        assert all(shard_map.route("customer-42") is first
                   for _ in range(10))

    def test_hash_routing_spreads_keys(self, registry, shard_map):
        hit = {shard_map.route(f"key-{i}").index for i in range(100)}
        assert hit == set(range(SHARDS))

    def test_range_routing_by_bounds(self):
        smap = ShardMap("R", strategy="range")
        smap.add_shard("R#0", upper="100")
        smap.add_shard("R#1", upper="200")
        smap.add_shard("R#2")
        assert smap.route("5").index == 0
        assert smap.route("99.9").index == 0
        assert smap.route("100").index == 1
        assert smap.route("150").index == 1
        assert smap.route("999").index == 2
        # non-numeric keys sort after all numerics → catch-all
        assert smap.route("zebra").index == 2

    def test_range_validation_rejects_missing_bounds(self):
        smap = ShardMap("R", strategy="range")
        smap.add_shard("R#0")
        smap.add_shard("R#1")
        with pytest.raises(ValueError, match="upper bound"):
            smap.validate()

    def test_range_validation_rejects_unsorted_bounds(self):
        smap = ShardMap("R", strategy="range")
        smap.add_shard("R#0", upper="200")
        smap.add_shard("R#1", upper="100")
        smap.add_shard("R#2")
        with pytest.raises(ValueError, match="ascend"):
            smap.validate()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            ShardMap("X", strategy="round-robin")

    def test_keyed_statement_touches_one_shard(self, registry, shard_map):
        s = session(registry, shard_map, shard_key="pin")
        shard = shard_map.route("pin")
        s.execute("INSERT INTO parts VALUES (777, 'pinned', 1)")
        s.finish()
        total = 0
        for index in range(SHARDS):
            conn = registry.connect(f"INV#{index}")
            rows = conn.execute(
                "SELECT COUNT(*) FROM parts WHERE id = 777").fetchall()
            conn.close()
            count = rows[0][0]
            total += count
            if index == shard.index:
                assert count == 1
        assert total == 1

    def test_keyless_write_fans_out_to_all_shards(self, registry,
                                                  shard_map):
        s = session(registry, shard_map)
        result = s.execute("DELETE FROM parts WHERE qty = 0")
        s.finish()
        assert result.rowcount == SHARDS  # one qty=0 row per shard
        assert shard_map.stats()["fanout_writes"] == 1

    def test_single_mode_requires_shard_key(self, registry, shard_map):
        s = session(registry, shard_map, mode=TransactionMode.SINGLE)
        with pytest.raises(SQLError) as excinfo:
            s.execute("SELECT 1")
        assert excinfo.value.sqlstate == "0A000"
        s.finish()

    def test_single_mode_with_key_brackets_one_shard(self, registry,
                                                     shard_map):
        s = session(registry, shard_map, shard_key="pin",
                    mode=TransactionMode.SINGLE)
        s.execute("INSERT INTO parts VALUES (888, 'tx', 1)")
        s.finish(success=False)  # rollback
        shard = shard_map.route("pin")
        conn = registry.connect(shard.database)
        rows = conn.execute(
            "SELECT COUNT(*) FROM parts WHERE id = 888").fetchall()
        conn.close()
        assert rows[0][0] == 0

    def test_registration_requires_physical_endpoints(self, registry):
        smap = ShardMap("BAD")
        smap.add_shard("NOT-REGISTERED")
        with pytest.raises(SQLError, match="unregistered"):
            registry.register_sharded("BAD", smap)

    def test_logical_name_must_not_shadow_physical(self, registry):
        smap = ShardMap("INV#0")
        smap.add_shard("INV#1")
        with pytest.raises(SQLError, match="already registered"):
            registry.register_sharded("INV#0", smap)

    def test_physical_name_must_not_shadow_logical(self, registry,
                                                   shard_map, tmp_path):
        """The mirror check: the engine resolves shard maps first, so a
        later physical registration under 'INV' would be unreachable."""
        for attempt in (
                lambda: registry.register_path(
                    "INV", str(tmp_path / "x.db")),
                lambda: registry.register_memory("INV"),
                lambda: registry.register_factory(
                    "INV", MemoryDatabase().connect)):
            with pytest.raises(SQLError) as excinfo:
                attempt()
            assert excinfo.value.sqlstate == "42710"

    def test_sharded_name_visible_in_registry(self, registry, shard_map):
        assert "INV" in registry
        assert "INV" in registry.names()


class TestScatterGather:
    def test_scatter_merges_all_shards(self, registry, shard_map):
        s = session(registry, shard_map)
        result = s.execute("SELECT id, name FROM parts")
        s.finish()
        assert len(result.rows) == SHARDS * ROWS_PER_SHARD
        ids = {row[0] for row in result.rows}
        assert len(ids) == SHARDS * ROWS_PER_SHARD

    def test_order_by_produces_globally_sorted_rows(self, registry,
                                                    shard_map):
        s = session(registry, shard_map)
        result = s.execute("SELECT id, name FROM parts ORDER BY id")
        s.finish()
        assert [row[0] for row in result.rows] == sorted(
            row[0] for row in result.rows)
        assert shard_map.stats()["ordered_merges"] == 1

    def test_order_by_desc(self, registry, shard_map):
        s = session(registry, shard_map)
        result = s.execute("SELECT id FROM parts ORDER BY id DESC")
        s.finish()
        ids = [row[0] for row in result.rows]
        assert ids == sorted(ids, reverse=True)

    def test_unrecognized_order_falls_back_to_interleave(self, registry,
                                                         shard_map):
        s = session(registry, shard_map)
        # lower(name) is an expression → arrival-order interleave
        result = s.execute(
            "SELECT id, name FROM parts ORDER BY lower(name)")
        s.finish()
        assert len(result.rows) == SHARDS * ROWS_PER_SHARD
        assert shard_map.stats()["interleaved_merges"] == 1

    def test_streaming_scatter_rides_row_iter(self, registry, shard_map):
        s = session(registry, shard_map)
        result = s.execute("SELECT id FROM parts ORDER BY id",
                           stream=True)
        assert result.streaming
        rows = list(result.iter_rows())
        s.finish()
        assert len(rows) == SHARDS * ROWS_PER_SHARD
        assert result.rows_fetched == SHARDS * ROWS_PER_SHARD
        assert [r[0] for r in rows] == sorted(r[0] for r in rows)

    def test_abandoned_stream_stops_workers(self, registry, shard_map):
        s = session(registry, shard_map)
        result = s.execute("SELECT id FROM parts ORDER BY id",
                           stream=True)
        iterator = result.iter_rows()
        next(iterator)
        iterator.close()  # consumer walks away mid-merge
        s.finish()
        # workers unwound; the session is reusable state-wise
        assert threading.active_count() < 50

    def test_columns_available_on_merged_result(self, registry,
                                                shard_map):
        s = session(registry, shard_map)
        result = s.execute("SELECT id, name, qty FROM parts")
        s.finish()
        assert result.columns == ["id", "name", "qty"]

    def test_pragma_goes_to_first_primary_only(self, registry, shard_map):
        s = session(registry, shard_map)
        result = s.execute("PRAGMA table_info(parts)")
        s.finish()
        # one shard's answer, not SHARDS copies of the schema
        assert len(result.rows) == 3
        assert shard_map.stats().get("scatter_queries", 0) == 0

    def test_finished_session_refuses_new_statements(self, registry,
                                                     shard_map):
        """A finish() racing a lazy endpoint-session creation must not
        leak a connection: creations after finish are refused."""
        s = session(registry, shard_map, shard_key="pin")
        s.execute("SELECT id FROM parts")
        s.finish()
        with pytest.raises(SQLError) as excinfo:
            s.execute("SELECT id FROM parts")
        assert excinfo.value.sqlstate == "08003"


class TestScatterLimit:
    """A trailing LIMIT/OFFSET must be the *global* row window, not a
    per-shard one — 4 shards × LIMIT 10 is 10 rows, not 40, and OFFSET
    skips merged rows, not rows on every shard."""

    # Global id order: shard 0 holds 0..9, shard 1 holds 100..109, ...

    def test_limit_is_global_not_per_shard(self, registry, shard_map):
        s = session(registry, shard_map)
        result = s.execute("SELECT id FROM parts ORDER BY id LIMIT 10")
        s.finish()
        assert [row[0] for row in result.rows] == list(range(10))

    def test_offset_skips_merged_rows_once(self, registry, shard_map):
        s = session(registry, shard_map)
        result = s.execute(
            "SELECT id FROM parts ORDER BY id LIMIT 5 OFFSET 8")
        s.finish()
        assert [row[0] for row in result.rows] == [8, 9, 100, 101, 102]

    def test_comma_offset_form(self, registry, shard_map):
        s = session(registry, shard_map)
        result = s.execute("SELECT id FROM parts ORDER BY id LIMIT 8, 5")
        s.finish()
        assert [row[0] for row in result.rows] == [8, 9, 100, 101, 102]

    def test_desc_limit_takes_global_tail(self, registry, shard_map):
        s = session(registry, shard_map)
        result = s.execute(
            "SELECT id FROM parts ORDER BY id DESC LIMIT 3")
        s.finish()
        assert [row[0] for row in result.rows] == [309, 308, 307]

    def test_limit_without_order_by_truncates(self, registry, shard_map):
        all_ids = {index * 100 + j
                   for index in range(SHARDS) for j in range(ROWS_PER_SHARD)}
        s = session(registry, shard_map)
        result = s.execute("SELECT id FROM parts LIMIT 7")
        s.finish()
        assert len(result.rows) == 7
        assert {row[0] for row in result.rows} <= all_ids

    def test_streaming_limit_counts_only_window_rows(self, registry,
                                                     shard_map):
        s = session(registry, shard_map)
        result = s.execute(
            "SELECT id FROM parts ORDER BY id LIMIT 6 OFFSET 2",
            stream=True)
        rows = list(result.iter_rows())
        s.finish()
        assert [row[0] for row in rows] == [2, 3, 4, 5, 6, 7]
        assert result.rows_fetched == 6  # offset rows are not counted

    def test_limited_result_cached_globally_correct(self, registry,
                                                    shard_map):
        cache = QueryResultCache()
        sql = "SELECT id FROM parts ORDER BY id LIMIT 10"
        s = session(registry, shard_map, cache=cache)
        s.execute(sql)
        s.finish()
        s = session(registry, shard_map, cache=cache)
        result = s.execute(sql)
        assert s.cache_hits == 1
        s.finish()
        assert [row[0] for row in result.rows] == list(range(10))

    def test_limit_zero_returns_no_rows(self, registry, shard_map):
        s = session(registry, shard_map)
        result = s.execute("SELECT id FROM parts ORDER BY id LIMIT 0")
        s.finish()
        assert result.rows == []

    def test_negative_limit_is_unbounded_offset_still_global(
            self, registry, shard_map):
        s = session(registry, shard_map)
        result = s.execute(
            "SELECT id FROM parts ORDER BY id LIMIT -1 OFFSET 38")
        s.finish()
        assert [row[0] for row in result.rows] == [308, 309]

    def test_non_literal_limit_refused(self, registry, shard_map):
        s = session(registry, shard_map)
        with pytest.raises(SQLError) as excinfo:
            s.execute("SELECT id FROM parts ORDER BY id LIMIT 1+1")
        s.finish()
        assert excinfo.value.sqlstate == "0A000"

    def test_unmergeable_order_by_with_limit_refused(self, registry,
                                                     shard_map):
        """ORDER BY the merge cannot map degrades to interleave — but
        with a LIMIT that would pick the wrong rows, so it refuses."""
        s = session(registry, shard_map)
        with pytest.raises(SQLError) as excinfo:
            s.execute(
                "SELECT id, name FROM parts ORDER BY lower(name) LIMIT 5")
        s.finish()
        assert excinfo.value.sqlstate == "0A000"


class TestDegradation:
    def two_shard_registry(self, *, down_index=1):
        reg = DatabaseRegistry()
        seed_shard(reg, "S#0", 0)
        db = seed_shard(reg, "S#1", 1)
        if down_index == 1:
            injector = FaultInjector.parse("down")
            reg.register_factory("S#1",
                                 wrap_factory(db.connect, injector))
        smap = ShardMap("S")
        smap.add_shard("S#0")
        smap.add_shard("S#1")
        reg.register_sharded("S", smap)
        return reg, smap

    def test_shard_down_fails_scatter_without_degrade(self):
        reg, smap = self.two_shard_registry()
        s = session(reg, smap)
        with pytest.raises(SQLError):
            result = s.execute("SELECT id FROM parts ORDER BY id")
            list(result.iter_rows())
        s.finish()

    def test_shard_down_degrades_to_partial_result(self):
        reg, smap = self.two_shard_registry()
        s = session(reg, smap, degrade=True)
        result = s.execute("SELECT id FROM parts ORDER BY id")
        s.finish()
        assert result.partial
        assert result.failed_shards == ("1",)
        assert len(result.rows) == ROWS_PER_SHARD  # survivors only
        assert smap.stats()["partial_results"] == 1
        assert smap.stats()["1_failures"] == 1

    def test_partial_results_are_never_cached(self):
        reg, smap = self.two_shard_registry()
        cache = QueryResultCache()
        s = session(reg, smap, degrade=True, cache=cache)
        result = s.execute("SELECT id FROM parts ORDER BY id")
        s.finish()
        assert result.partial
        assert cache.stats()["stores"] == 0

    def test_shard_budget_degrades_slow_shard(self):
        reg = DatabaseRegistry()
        seed_shard(reg, "T#0", 0)
        seed_shard(reg, "T#1", 1)
        injector = FaultInjector.parse("slow:1.0:0.2")
        db1 = MemoryDatabase()
        conn = db1.connect()
        conn.executescript(
            "CREATE TABLE parts (id INTEGER, name TEXT, qty INTEGER);"
            "INSERT INTO parts VALUES (900, 'slow', 1);")
        conn.commit()
        conn.close()
        reg.register_factory("T#1", wrap_factory(db1.connect, injector))
        smap = ShardMap("T", shard_timeout=0.05)
        smap.add_shard("T#0")
        smap.add_shard("T#1")
        reg.register_sharded("T", smap)
        s = session(reg, smap, degrade=True)
        result = s.execute("SELECT id FROM parts ORDER BY id")
        s.finish()
        assert result.partial
        assert result.failed_shards == ("1",)
        assert all(r[0] < 100 for r in result.rows)  # only shard 0 rows

    def test_request_deadline_caps_merge_wait(self):
        reg, smap = self.two_shard_registry(down_index=-1)
        # Replace shard 1 with a factory that hangs long enough to
        # outlive the request budget.
        db = MemoryDatabase()
        conn = db.connect()
        conn.executescript(
            "CREATE TABLE parts (id INTEGER, name TEXT, qty INTEGER);")
        conn.commit()
        conn.close()

        def slow_connect():
            time.sleep(0.3)
            return db.connect()

        reg.register_factory("S#1", slow_connect)
        deadline = Deadline.after(0.08)
        s = session(reg, smap, deadline=deadline)
        with pytest.raises((SQLError, DeadlineExceededError)):
            result = s.execute("SELECT id FROM parts ORDER BY id")
            list(result.iter_rows())
        s.finish()


class TestOrderByParser:
    COLS = ["id", "name", "qty"]

    def test_simple_column(self):
        assert parse_order_by("SELECT * FROM t ORDER BY id",
                              self.COLS) == [(0, False)]

    def test_desc_and_multiple_terms(self):
        assert parse_order_by(
            "SELECT * FROM t ORDER BY qty DESC, name",
            self.COLS) == [(2, True), (1, False)]

    def test_ordinal_terms(self):
        assert parse_order_by("SELECT * FROM t ORDER BY 2 DESC",
                              self.COLS) == [(1, True)]

    def test_ordinal_out_of_range_bails(self):
        assert parse_order_by("SELECT * FROM t ORDER BY 9",
                              self.COLS) is None

    def test_qualified_and_quoted_names(self):
        assert parse_order_by('SELECT * FROM t ORDER BY t.id',
                              self.COLS) == [(0, False)]
        assert parse_order_by('SELECT * FROM t ORDER BY "name"',
                              self.COLS) == [(1, False)]

    def test_unselected_column_bails(self):
        assert parse_order_by("SELECT * FROM t ORDER BY missing",
                              self.COLS) is None

    def test_expression_bails(self):
        assert parse_order_by("SELECT * FROM t ORDER BY qty + 1",
                              self.COLS) is None

    def test_no_order_by(self):
        assert parse_order_by("SELECT * FROM t", self.COLS) is None

    def test_trailing_limit_allowed(self):
        assert parse_order_by(
            "SELECT * FROM t ORDER BY id LIMIT 10",
            self.COLS) == [(0, False)]

    def test_subquery_order_by_is_not_trailing(self):
        # ORDER BY inside parentheses must not be mistaken for the
        # statement's own trailing clause.
        sql = ("SELECT * FROM (SELECT id FROM t ORDER BY id LIMIT 5)")
        assert parse_order_by(sql, self.COLS) is None


class TestTrailingLimitParser:
    def test_no_limit(self):
        sql = "SELECT * FROM t ORDER BY id"
        assert parse_trailing_limit(sql) == (sql, None, 0)

    def test_plain_limit(self):
        assert parse_trailing_limit(
            "SELECT * FROM t ORDER BY id LIMIT 10") == \
            ("SELECT * FROM t ORDER BY id", 10, 0)

    def test_limit_offset(self):
        assert parse_trailing_limit(
            "SELECT * FROM t LIMIT 10 OFFSET 5;") == \
            ("SELECT * FROM t", 10, 5)

    def test_comma_form_swaps_operands(self):
        assert parse_trailing_limit(
            "SELECT * FROM t LIMIT 5, 10") == ("SELECT * FROM t", 10, 5)

    def test_negative_limit_means_unbounded(self):
        assert parse_trailing_limit(
            "SELECT * FROM t LIMIT -1 OFFSET 3") == \
            ("SELECT * FROM t", None, 3)

    def test_negative_offset_clamped(self):
        assert parse_trailing_limit(
            "SELECT * FROM t LIMIT 4 OFFSET -2") == \
            ("SELECT * FROM t", 4, 0)

    def test_subquery_limit_is_not_trailing(self):
        sql = "SELECT * FROM (SELECT id FROM t LIMIT 5)"
        assert parse_trailing_limit(sql) == (sql, None, 0)

    def test_non_literal_bound_raises(self):
        with pytest.raises(ValueError, match="integer literal"):
            parse_trailing_limit("SELECT * FROM t LIMIT n")
        with pytest.raises(ValueError, match="integer literal"):
            parse_trailing_limit("SELECT * FROM t LIMIT 10 OFFSET x")


class TestBuildShardMap:
    def test_build_registers_primaries_and_replicas(self, tmp_path):
        reg = DatabaseRegistry()
        paths = [str(tmp_path / f"s{i}.db") for i in range(2)]
        replica = str(tmp_path / "s0-replica.db")
        smap = build_shard_map(reg, "LOG", paths,
                               replica_paths={0: [replica]})
        assert "LOG#0" in reg and "LOG#1" in reg
        assert "LOG#0.r1" in reg
        assert reg.shard_map("LOG") is smap
        assert smap.shards[0].replicas[0].database == "LOG#0.r1"
