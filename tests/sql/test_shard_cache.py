"""Cross-shard cache correctness: composite tuple stamps, per-shard
invalidation scope, the commit/rollback window (PR 1's review fixes,
composed across shards), replica routing, and pool lifecycle."""

import pytest

from repro.errors import PoolExhaustedError, SQLConnectError
from repro.resilience.faults import FaultInjector, wrap_factory
from repro.sql.connection import MemoryDatabase
from repro.sql.gateway import DatabaseRegistry
from repro.sql.querycache import QueryResultCache
from repro.sql.sharding import ShardedSqlSession, ShardMap

MERGED_SELECT = "SELECT id, label FROM stock ORDER BY id"


def make_tier(tmp_path, shards=2, replicas=0):
    """File-backed shard tier (writers must not block readers)."""
    registry = DatabaseRegistry()
    shard_map = ShardMap("LOG")
    for index in range(shards):
        path = tmp_path / f"shard{index}.db"
        registry.register_path(f"LOG#{index}", str(path))
        with registry.connect(f"LOG#{index}") as conn:
            conn.executescript(
                "CREATE TABLE stock (id INTEGER, label TEXT);")
            conn.execute(f"INSERT INTO stock VALUES "
                         f"({index * 10}, 'base{index}')")
            conn.commit()
        names = []
        for r_index in range(1, replicas + 1):
            # A replica registered over the same file: perfectly
            # caught-up replication, which is what routing tests need.
            name = f"LOG#{index}.r{r_index}"
            registry.register_path(name, str(path))
            names.append(name)
        shard_map.add_shard(f"LOG#{index}", replicas=tuple(names))
    registry.register_sharded("LOG", shard_map)
    return registry, shard_map


def shard_session(registry, shard_map, cache, **kwargs):
    return ShardedSqlSession(registry, shard_map, cache=cache, **kwargs)


def key_for(shard_map, index):
    """A shard key that hash-routes to ``index``."""
    for attempt in range(1000):
        key = f"k{attempt}"
        if shard_map.route(key).index == index:
            return key
    raise AssertionError(f"no key found for shard {index}")


class TestCompositeStamps:
    def test_merged_result_is_cached_and_reused(self, tmp_path):
        registry, smap = make_tier(tmp_path)
        cache = QueryResultCache()
        s1 = shard_session(registry, smap, cache)
        first = s1.execute(MERGED_SELECT)
        s1.finish()
        s2 = shard_session(registry, smap, cache)
        second = s2.execute(MERGED_SELECT)
        s2.finish()
        assert second is first  # served from cache
        assert s2.cache_hits == 1

    def test_write_to_shard_a_invalidates_merge_but_not_shard_b(
            self, tmp_path):
        """The correctness core of the sharded tier, end to end."""
        registry, smap = make_tier(tmp_path)
        cache = QueryResultCache()
        key_a, key_b = key_for(smap, 0), key_for(smap, 1)

        # Populate: one cross-shard merge + one shard-B-only entry.
        s = shard_session(registry, smap, cache)
        s.execute(MERGED_SELECT)
        s.finish()
        s = shard_session(registry, smap, cache, shard_key=key_b)
        s.execute("SELECT label FROM stock")
        s.finish()

        # Write routed to shard A bumps only shard A's generation.
        s = shard_session(registry, smap, cache, shard_key=key_a)
        s.execute("INSERT INTO stock VALUES (99, 'fresh')")
        s.finish()

        # The merge re-executes (stale tuple stamp) and sees the row…
        s = shard_session(registry, smap, cache)
        merged = s.execute(MERGED_SELECT)
        assert s.cache_hits == 0
        assert any(row[0] == 99 for row in merged.rows)
        s.finish()

        # …while the shard-B entry still validates.
        s = shard_session(registry, smap, cache, shard_key=key_b)
        s.execute("SELECT label FROM stock")
        assert s.cache_hits == 1
        s.finish()

    def test_chaos_mixed_readwrite_serves_zero_stale_hits(self, tmp_path):
        """1k mixed reads/writes: every cache hit must reflect every
        committed write (acceptance criterion's staleness audit)."""
        registry, smap = make_tier(tmp_path)
        cache = QueryResultCache()
        expected = {0: "base0", 10: "base1"}
        next_id = 100
        for step in range(1000):
            if step % 10 == 3:  # ~10% writes, alternating shards
                index = (step // 10) % 2
                key = key_for(smap, index)
                s = shard_session(registry, smap, cache, shard_key=key)
                s.execute(f"INSERT INTO stock VALUES "
                          f"({next_id}, 'v{step}')")
                s.finish()
                expected[next_id] = f"v{step}"
                next_id += 1
            else:
                s = shard_session(registry, smap, cache)
                result = s.execute(MERGED_SELECT)
                s.finish()
                assert {row[0]: row[1] for row in result.rows} == expected

    def test_commit_window_entry_retired_across_shards(self, tmp_path):
        """A merge cached during shard A's uncommitted write window must
        be retired by the COMMIT-time bump (PR 1's fix, composed)."""
        registry, smap = make_tier(tmp_path)
        cache = QueryResultCache()

        writer = registry.connect("LOG#0")
        writer.begin()
        writer.execute("UPDATE stock SET label = 'DIRTY' WHERE id = 0")
        # Merge runs inside the window: snapshots pre-commit data.
        s = shard_session(registry, smap, cache)
        windowed = s.execute(MERGED_SELECT)
        s.finish()
        assert ("base0" in {r[1] for r in windowed.rows}
                or "DIRTY" in {r[1] for r in windowed.rows})
        writer.commit()
        writer.close()

        s = shard_session(registry, smap, cache)
        after = s.execute(MERGED_SELECT)
        assert s.cache_hits == 0  # windowed entry never served
        assert "DIRTY" in {r[1] for r in after.rows}
        s.finish()

    def test_rollback_window_also_retires_entry(self, tmp_path):
        """Rollback bumps too — conservative misses, never stale hits."""
        registry, smap = make_tier(tmp_path)
        cache = QueryResultCache()

        writer = registry.connect("LOG#1")
        writer.begin()
        writer.execute("UPDATE stock SET label = 'GONE' WHERE id = 10")
        s = shard_session(registry, smap, cache)
        s.execute(MERGED_SELECT)
        s.finish()
        writer.rollback()
        writer.close()

        s = shard_session(registry, smap, cache)
        after = s.execute(MERGED_SELECT)
        assert s.cache_hits == 0  # miss, not a stale hit
        assert "GONE" not in {r[1] for r in after.rows}
        s.finish()

    def test_factory_registered_shard_writes_invalidate(self):
        """Regression: MemoryDatabase factories pre-attach their own
        generation counter; the shard session must re-point the
        connection at the counter its stamps come from, or writes bump
        a counter no cache validation ever reads."""
        registry = DatabaseRegistry()
        smap = ShardMap("MEM")
        db = MemoryDatabase()
        conn = db.connect()
        conn.executescript("CREATE TABLE stock (id INTEGER, label TEXT);")
        conn.execute("INSERT INTO stock VALUES (1, 'old')")
        conn.commit()
        conn.close()
        registry.register_factory("MEM#0", db.connect)
        smap.add_shard("MEM#0")
        registry.register_sharded("MEM", smap)
        cache = QueryResultCache()

        s = shard_session(registry, smap, cache, shard_key="k")
        s.execute("SELECT label FROM stock")
        s.finish()
        s = shard_session(registry, smap, cache, shard_key="k")
        s.execute("UPDATE stock SET label = 'new'")
        s.finish()
        s = shard_session(registry, smap, cache, shard_key="k")
        result = s.execute("SELECT label FROM stock")
        assert s.cache_hits == 0
        assert result.rows == [("new",)]
        s.finish()

    def test_single_shard_entries_scoped_per_shard(self, tmp_path):
        """Two shards caching the same SQL text must not collide: the
        shard index is part of the cache namespace."""
        registry, smap = make_tier(tmp_path)
        cache = QueryResultCache()
        key_a, key_b = key_for(smap, 0), key_for(smap, 1)
        s = shard_session(registry, smap, cache, shard_key=key_a)
        rows_a = s.execute("SELECT label FROM stock").rows
        s.finish()
        s = shard_session(registry, smap, cache, shard_key=key_b)
        rows_b = s.execute("SELECT label FROM stock").rows
        assert s.cache_hits == 0  # different shard, different entry
        s.finish()
        assert rows_a != rows_b


class TestReplicaRouting:
    def test_cacheable_select_prefers_replica(self, tmp_path):
        registry, smap = make_tier(tmp_path, replicas=1)
        s = shard_session(registry, smap, None,
                          shard_key=key_for(smap, 0))
        s.execute("SELECT label FROM stock")
        s.finish()
        stats = smap.stats()
        assert stats["0_replica_reads"] == 1

    def test_pragma_always_goes_to_primary(self, tmp_path):
        """Regression: replica eligibility consults is_cacheable_query,
        not is_query — PRAGMA/EXPLAIN return rows but touch
        per-connection state, so they must hit the primary."""
        registry, smap = make_tier(tmp_path, replicas=1)
        key = key_for(smap, 0)
        for sql in ("PRAGMA table_info(stock)",
                    "EXPLAIN SELECT * FROM stock"):
            s = shard_session(registry, smap, None, shard_key=key)
            s.execute(sql)
            endpoints = {endpoint for (_, endpoint) in s._sessions}
            s.finish()
            assert endpoints == {"LOG#0"}, sql
        assert smap.stats().get("0_replica_reads", 0) == 0

    def test_writes_always_go_to_primary(self, tmp_path):
        registry, smap = make_tier(tmp_path, replicas=1)
        s = shard_session(registry, smap, None,
                          shard_key=key_for(smap, 0))
        s.execute("INSERT INTO stock VALUES (5, 'w')")
        endpoints = {endpoint for (_, endpoint) in s._sessions}
        s.finish()
        assert endpoints == {"LOG#0"}

    def test_lagged_replica_skipped(self, tmp_path):
        registry, smap = make_tier(tmp_path, replicas=1)
        smap.lag_bound = 0.5
        smap.replica(0, "LOG#0.r1").lag = 2.0  # behind the bound
        s = shard_session(registry, smap, None,
                          shard_key=key_for(smap, 0))
        s.execute("SELECT label FROM stock")
        endpoints = {endpoint for (_, endpoint) in s._sessions}
        s.finish()
        assert endpoints == {"LOG#0"}
        assert smap.stats()["replica_lagged"] >= 1

    def test_dead_replica_falls_back_to_primary(self, tmp_path):
        registry, smap = make_tier(tmp_path, replicas=1)
        down = FaultInjector.parse("down")
        db = MemoryDatabase()
        registry.register_factory("LOG#0.r1",
                                  wrap_factory(db.connect, down))
        s = shard_session(registry, smap, None,
                          shard_key=key_for(smap, 0))
        result = s.execute("SELECT label FROM stock")
        s.finish()
        assert result.rows  # the read still succeeded
        assert smap.stats()["0_replica_fallbacks"] == 1

    def test_replica_session_reads_but_never_stores(self, tmp_path):
        """A replica session may serve primary-stamped cache hits (the
        entry is primary data) but must never store its own rows."""
        registry, smap = make_tier(tmp_path, replicas=1)
        cache = QueryResultCache()
        key = key_for(smap, 0)
        smap.replica(0, "LOG#0.r1").lag = 9.9  # force the primary
        s = shard_session(registry, smap, cache, shard_key=key)
        s.execute("SELECT label FROM stock")  # primary-served, stored
        s.finish()
        assert cache.stats()["stores"] == 1
        smap.replica(0, "LOG#0.r1").lag = 0.0
        s = shard_session(registry, smap, cache, shard_key=key)
        s.execute("SELECT label FROM stock")
        assert s.cache_hits == 1  # replica session served the hit…
        s.execute("SELECT id FROM stock")  # …replica-executed: not stored
        s.finish()
        assert cache.stats()["stores"] == 1
        # A primary write still retires the primary-stored entry.
        s = shard_session(registry, smap, cache, shard_key=key)
        s.execute("INSERT INTO stock VALUES (7, 'new')")
        s.finish()
        smap.replica(0, "LOG#0.r1").lag = 9.9
        s = shard_session(registry, smap, cache, shard_key=key)
        result = s.execute("SELECT label FROM stock")
        assert s.cache_hits == 0
        assert "new" in {row[0] for row in result.rows}
        s.finish()

    def test_lagging_replica_cannot_poison_cache(self):
        """Regression: a replica inside the lag bound can still serve
        pre-write rows after the primary's generation was bumped; had
        that result been cached it would validate until the *next*
        write.  Replica-served results must never be stored."""
        registry = DatabaseRegistry()
        primary = MemoryDatabase()
        conn = primary.connect()
        conn.executescript("CREATE TABLE stock (id INTEGER, label TEXT);")
        conn.execute("INSERT INTO stock VALUES (1, 'new')")
        conn.commit()
        conn.close()
        lagging = MemoryDatabase()  # has not applied the write yet
        conn = lagging.connect()
        conn.executescript("CREATE TABLE stock (id INTEGER, label TEXT);")
        conn.execute("INSERT INTO stock VALUES (1, 'old')")
        conn.commit()
        conn.close()
        registry.register_memory("P#0", primary)
        registry.register_factory("P#0.r1", lagging.connect)
        smap = ShardMap("P")
        smap.add_shard("P#0", replicas=("P#0.r1",))
        registry.register_sharded("P", smap)
        cache = QueryResultCache()

        s = shard_session(registry, smap, cache, shard_key="k")
        stale = s.execute("SELECT label FROM stock")
        s.finish()
        assert stale.rows == [("old",)]  # bounded lag: stale is allowed
        assert cache.stats()["stores"] == 0  # …but never cached

        # Forced to the primary, the read sees current data — it must
        # not be answered from a poisoned cache entry.
        smap.replica(0, "P#0.r1").lag = 9.9
        smap.lag_bound = 0.5
        s = shard_session(registry, smap, cache, shard_key="k")
        fresh = s.execute("SELECT label FROM stock")
        assert s.cache_hits == 0
        assert fresh.rows == [("new",)]
        s.finish()

    def test_merge_not_cached_when_replica_served(self, tmp_path):
        """A cross-shard merge that any replica contributed to is not
        cached under the composite stamp; an all-primary merge is."""
        registry, smap = make_tier(tmp_path, replicas=1)
        cache = QueryResultCache()
        s = shard_session(registry, smap, cache)
        s.execute(MERGED_SELECT)  # replica-served scatter
        s.finish()
        assert cache.stats()["stores"] == 0
        for index in range(2):  # lag every replica out of eligibility
            smap.replica(index, f"LOG#{index}.r1").lag = 9.9
        smap.lag_bound = 0.5
        s = shard_session(registry, smap, cache)
        s.execute(MERGED_SELECT)  # all-primary scatter
        s.finish()
        assert cache.stats()["stores"] == 1
        s = shard_session(registry, smap, cache)
        s.execute(MERGED_SELECT)
        assert s.cache_hits == 1
        s.finish()


class TestPoolLifecycle:
    def test_pools_created_lazily_per_endpoint(self, tmp_path):
        registry, smap = make_tier(tmp_path, replicas=1)
        registry.enable_pools(size=2)
        assert registry.pool("LOG#0") is None  # nothing yet
        s = shard_session(registry, smap, None,
                          shard_key=key_for(smap, 0))
        s.execute("INSERT INTO stock VALUES (1, 'x')")
        s.finish()
        assert registry.pool("LOG#0") is not None
        # shard 1 served zero requests: no pool, nothing to leak
        assert registry.pool("LOG#1") is None

    def test_close_all_is_idempotent(self, tmp_path):
        registry, smap = make_tier(tmp_path)
        registry.enable_pools(size=2)
        s = shard_session(registry, smap, None)
        s.execute(MERGED_SELECT)
        s.finish()
        assert registry.pool("LOG#0") is not None
        registry.close_all()
        registry.close_all()  # second close is a no-op, not an error
        assert registry.closed

    def test_closed_registry_refuses_connections(self, tmp_path):
        registry, smap = make_tier(tmp_path)
        registry.enable_pools(size=2)
        registry.close_all()
        with pytest.raises((SQLConnectError, PoolExhaustedError)):
            registry.connect("LOG#0")

    def test_scatter_pools_only_touched_shards(self, tmp_path):
        """A keyed burst must not leave pools on untouched shards."""
        registry, smap = make_tier(tmp_path, shards=4)
        registry.enable_pools(size=2)
        key = key_for(smap, 2)
        for _ in range(5):
            s = shard_session(registry, smap, None, shard_key=key)
            s.execute("SELECT label FROM stock")
            s.finish()
        pooled = [i for i in range(4)
                  if registry.pool(f"LOG#{i}") is not None]
        assert pooled == [2]
        registry.close_all()
