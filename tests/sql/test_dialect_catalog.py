"""SQL dialect helpers and catalog introspection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SQLObjectError
from repro.sql.catalog import describe_table, list_tables, row_count
from repro.sql.connection import connect
from repro.sql.dialect import (
    escape_literal,
    is_plain_identifier,
    is_query,
    is_update,
    like_pattern,
    quote_identifier,
    quote_literal,
    statement_verb,
)


class TestVerbs:
    @pytest.mark.parametrize("sql,verb", [
        ("SELECT * FROM t", "SELECT"),
        ("  select 1", "SELECT"),
        ("INSERT INTO t VALUES (1)", "INSERT"),
        ("WITH c AS (SELECT 1) SELECT * FROM c", "WITH"),
        ("", ""),
        ("123", ""),
    ])
    def test_statement_verb(self, sql, verb):
        assert statement_verb(sql) == verb

    def test_is_query_and_update(self):
        assert is_query("SELECT 1")
        assert not is_query("DELETE FROM t")
        assert is_update("UPDATE t SET x = 1")
        assert not is_update("SELECT 1")


class TestQuoting:
    def test_escape_literal_doubles_quotes(self):
        assert escape_literal("O'Brien") == "O''Brien"

    def test_escape_literal_strips_nul(self):
        assert escape_literal("a\x00b") == "ab"

    def test_quote_literal(self):
        assert quote_literal("it's") == "'it''s'"

    def test_quote_identifier(self):
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_is_plain_identifier(self):
        assert is_plain_identifier("product_name")
        assert not is_plain_identifier("2fast")
        assert not is_plain_identifier("a-b")

    @given(st.text(max_size=40))
    def test_quoted_literal_roundtrips_through_sqlite(self, value):
        """quote_literal output is always a single valid SQL literal."""
        conn = connect()
        try:
            cleaned = value.replace("\x00", "")
            got = conn.execute(
                f"SELECT {quote_literal(value)}").fetchone()[0]
            assert got == cleaned
        finally:
            conn.close()

    def test_like_pattern_escapes_wildcards(self):
        assert like_pattern("50%_off", prefix=True, suffix=True) == \
            "%50\\%\\_off%"

    def test_like_pattern_is_literal_match_in_sqlite(self):
        conn = connect()
        conn.executescript(
            "CREATE TABLE t (s TEXT);"
            "INSERT INTO t VALUES ('50%_off'), ('500 off');")
        pattern = like_pattern("50%_off", prefix=True, suffix=True)
        rows = conn.execute(
            f"SELECT s FROM t WHERE s LIKE '{pattern}' ESCAPE '\\'"
        ).fetchall()
        assert rows == [("50%_off",)]
        conn.close()


class TestCatalog:
    @pytest.fixture()
    def conn(self):
        connection = connect()
        connection.executescript("""
            CREATE TABLE urls (
                url TEXT NOT NULL PRIMARY KEY,
                title VARCHAR(100),
                hits INTEGER NOT NULL DEFAULT 0
            );
            CREATE TABLE empty_one (x REAL);
            INSERT INTO urls VALUES ('http://a', 'A', 3);
        """)
        yield connection
        connection.close()

    def test_list_tables(self, conn):
        assert list_tables(conn) == ["urls", "empty_one"]

    def test_describe_table(self, conn):
        info = describe_table(conn, "urls")
        assert info.column_names == ["url", "title", "hits"]
        url = info.column("url")
        assert url.not_null and url.primary_key and url.is_character
        hits = info.column("HITS")  # case-insensitive lookup
        assert hits.is_numeric and hits.default == "0"

    def test_describe_missing_table(self, conn):
        with pytest.raises(SQLObjectError):
            describe_table(conn, "ghost")

    def test_missing_column_lookup(self, conn):
        info = describe_table(conn, "urls")
        with pytest.raises(SQLObjectError):
            info.column("nope")

    def test_row_count(self, conn):
        assert row_count(conn, "urls") == 1
        assert row_count(conn, "empty_one") == 0
        with pytest.raises(SQLObjectError):
            row_count(conn, "ghost")
