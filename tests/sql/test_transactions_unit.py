"""TransactionScope: the statement bracket underneath the engine."""

import pytest

from repro.errors import SQLError
from repro.sql.connection import connect
from repro.sql.transactions import TransactionMode, TransactionScope


@pytest.fixture()
def conn():
    connection = connect()
    connection.executescript(
        "CREATE TABLE t (x INTEGER UNIQUE);")
    yield connection
    connection.close()


def insert(scope, conn, value):
    scope.before_statement()
    try:
        conn.execute("INSERT INTO t VALUES (?)", (value,))
    except SQLError as exc:
        scope.after_statement(exc)
        raise
    scope.after_statement(None)


def count(conn) -> int:
    return conn.execute("SELECT COUNT(*) FROM t").fetchone()[0]


class TestModeParsing:
    @pytest.mark.parametrize("text,mode", [
        ("auto_commit", TransactionMode.AUTO_COMMIT),
        ("AUTO_COMMIT", TransactionMode.AUTO_COMMIT),
        ("single", TransactionMode.SINGLE),
        (" Single ", TransactionMode.SINGLE),
    ])
    def test_parse(self, text, mode):
        assert TransactionMode.parse(text) is mode

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            TransactionMode.parse("two-phase")


class TestAutoCommit:
    def test_each_statement_durable_immediately(self, conn):
        scope = TransactionScope(conn, TransactionMode.AUTO_COMMIT)
        insert(scope, conn, 1)
        assert not conn.in_transaction  # committed already
        insert(scope, conn, 2)
        scope.finish(success=True)
        assert count(conn) == 2

    def test_failed_statement_rolled_back_alone(self, conn):
        scope = TransactionScope(conn, TransactionMode.AUTO_COMMIT)
        insert(scope, conn, 1)
        with pytest.raises(SQLError):
            insert(scope, conn, 1)  # duplicate
        assert not scope.failed  # auto-commit never dooms the run
        insert(scope, conn, 2)
        scope.finish()
        assert count(conn) == 2


class TestSingle:
    def test_commit_on_success(self, conn):
        scope = TransactionScope(conn, TransactionMode.SINGLE)
        insert(scope, conn, 1)
        assert conn.in_transaction  # still open across statements
        insert(scope, conn, 2)
        scope.finish(success=True)
        assert not conn.in_transaction
        assert count(conn) == 2

    def test_failure_dooms_and_rolls_back(self, conn):
        scope = TransactionScope(conn, TransactionMode.SINGLE)
        insert(scope, conn, 1)
        with pytest.raises(SQLError):
            insert(scope, conn, 1)
        assert scope.failed
        scope.finish(success=True)  # success flag cannot resurrect it
        assert count(conn) == 0

    def test_finish_with_failure_rolls_back(self, conn):
        scope = TransactionScope(conn, TransactionMode.SINGLE)
        insert(scope, conn, 1)
        scope.finish(success=False)
        assert count(conn) == 0

    def test_finish_idempotent(self, conn):
        scope = TransactionScope(conn, TransactionMode.SINGLE)
        insert(scope, conn, 1)
        scope.finish(success=True)
        scope.finish(success=False)  # no effect the second time
        assert count(conn) == 1

    def test_context_manager_commits_on_clean_exit(self, conn):
        with TransactionScope(conn, TransactionMode.SINGLE) as scope:
            insert(scope, conn, 5)
        assert count(conn) == 1

    def test_context_manager_rolls_back_on_exception(self, conn):
        with pytest.raises(RuntimeError):
            with TransactionScope(conn, TransactionMode.SINGLE) as scope:
                insert(scope, conn, 5)
                raise RuntimeError("application blew up")
        assert count(conn) == 0

    def test_statements_run_counter(self, conn):
        scope = TransactionScope(conn, TransactionMode.SINGLE)
        insert(scope, conn, 1)
        insert(scope, conn, 2)
        assert scope.statements_run == 2
        scope.finish()
