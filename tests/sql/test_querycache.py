"""Query-result cache: LRU semantics, write-generation invalidation,
transaction-mode bypass, and the counters the metrics surfaces read."""

import pytest

from repro.core.engine import EngineConfig, MacroEngine
from repro.core.parser import parse_macro
from repro.sql.gateway import (DatabaseRegistry, ExecutionResult,
                               MacroSqlSession)
from repro.sql.querycache import QueryResultCache, WriteGeneration
from repro.sql.transactions import TransactionMode


def query_result(sql="SELECT 1", rows=((1,),)):
    return ExecutionResult(sql=sql, columns=["c"], rows=list(rows),
                           rowcount=len(rows), is_query=True)


class TestWriteGeneration:
    def test_bump_is_monotonic(self):
        gen = WriteGeneration()
        assert gen.value == 0
        assert gen.bump() == 1
        assert gen.bump() == 2
        assert gen.value == 2


class TestQueryResultCacheUnit:
    def test_miss_then_hit(self):
        cache = QueryResultCache()
        assert cache.get("DB", "SELECT 1", 0) is None
        result = query_result()
        assert cache.put("DB", "SELECT 1", 0, result)
        assert cache.get("DB", "SELECT 1", 0) is result
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1,
                                 "evictions": 0, "invalidations": 0,
                                 "entries": 1}

    def test_stale_generation_invalidates(self):
        cache = QueryResultCache()
        cache.put("DB", "SELECT 1", 3, query_result())
        assert cache.get("DB", "SELECT 1", 4) is None
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["entries"] == 0  # dropped, not retained stale

    def test_keys_scoped_by_database(self):
        cache = QueryResultCache()
        a, b = query_result(), query_result()
        cache.put("A", "SELECT 1", 0, a)
        cache.put("B", "SELECT 1", 0, b)
        assert cache.get("A", "SELECT 1", 0) is a
        assert cache.get("B", "SELECT 1", 0) is b

    def test_lru_eviction_order(self):
        cache = QueryResultCache(max_entries=2)
        cache.put("DB", "SELECT 1", 0, query_result("SELECT 1"))
        cache.put("DB", "SELECT 2", 0, query_result("SELECT 2"))
        cache.get("DB", "SELECT 1", 0)  # touch: SELECT 2 becomes LRU
        cache.put("DB", "SELECT 3", 0, query_result("SELECT 3"))
        assert cache.get("DB", "SELECT 1", 0) is not None
        assert cache.get("DB", "SELECT 2", 0) is None  # evicted
        assert cache.stats()["evictions"] == 1

    def test_refuses_non_query(self):
        cache = QueryResultCache()
        write = ExecutionResult(sql="INSERT INTO t VALUES (1)",
                                rowcount=1, is_query=False)
        assert not cache.put("DB", write.sql, 0, write)
        assert len(cache) == 0

    def test_refuses_pragma_and_explain(self):
        """PRAGMA/EXPLAIN return rows but read (or mutate) per-connection
        state, so their results must never be reused."""
        cache = QueryResultCache()
        for sql in ("PRAGMA user_version", "EXPLAIN SELECT 1"):
            assert not cache.put("DB", sql, 0, query_result(sql))
        assert len(cache) == 0

    def test_refuses_oversized_result(self):
        cache = QueryResultCache(max_rows_per_entry=2)
        big = query_result(rows=[(1,), (2,), (3,)])
        assert not cache.put("DB", "SELECT big", 0, big)
        small = query_result(rows=[(1,), (2,)])
        assert cache.put("DB", "SELECT small", 0, small)

    def test_invalidate_database_is_scoped(self):
        cache = QueryResultCache()
        cache.put("A", "SELECT 1", 0, query_result())
        cache.put("B", "SELECT 1", 0, query_result())
        assert cache.invalidate_database("A") == 1
        assert cache.get("A", "SELECT 1", 0) is None
        assert cache.get("B", "SELECT 1", 0) is not None

    def test_hit_rate_and_reset(self):
        cache = QueryResultCache()
        assert cache.hit_rate == 0.0
        cache.put("DB", "SELECT 1", 0, query_result())
        cache.get("DB", "SELECT 1", 0)
        cache.get("DB", "SELECT 2", 0)
        assert cache.hit_rate == pytest.approx(0.5)
        cache.reset_stats()
        assert cache.stats()["hits"] == 0
        assert len(cache) == 1  # entries survive a stats reset

    def test_stamps_from_distinct_counters_never_alias(self):
        """Equal integer values from two different WriteGeneration
        counters must not validate each other's entries."""
        cache = QueryResultCache()
        gen_a, gen_b = WriteGeneration(), WriteGeneration()
        assert gen_a.value == gen_b.value == 0
        result_a = query_result()
        cache.put("DB", "SELECT 1", gen_a.stamp(), result_a)
        assert cache.get("DB", "SELECT 1", gen_b.stamp()) is None
        assert cache.get("DB", "SELECT 1", gen_a.stamp()) is None  # dropped

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            QueryResultCache(max_entries=0)


# ----------------------------------------------------------------------
# End-to-end through the engine
# ----------------------------------------------------------------------

READ_MACRO = """\
%DEFINE DATABASE = "INV"
%SQL{ SELECT id, label FROM stock ORDER BY id
%SQL_REPORT{%ROW{[$(V1):$(V2)]%}
%}
%}
%HTML_REPORT{%EXEC_SQL%}
"""

WRITE_MACRO_TEMPLATE = """\
%DEFINE DATABASE = "INV"
%SQL{ {STATEMENT} %}
%HTML_REPORT{%EXEC_SQL done%}
"""


@pytest.fixture()
def setup():
    registry = DatabaseRegistry()
    db = registry.register_memory("INV")
    with db.connect() as conn:
        conn.executescript("""
            CREATE TABLE stock (id INTEGER, label TEXT);
            INSERT INTO stock VALUES (1, 'bolt'), (2, 'nut');
        """)
    cache = QueryResultCache()
    config = EngineConfig()
    config.query_cache = cache
    engine = MacroEngine(registry, config=config)
    return registry, db, cache, engine


def run_read(engine):
    return engine.execute_report(parse_macro(READ_MACRO), []).html


def run_write(engine, statement):
    macro = WRITE_MACRO_TEMPLATE.replace("{STATEMENT}", statement)
    return engine.execute_report(parse_macro(macro), []).html


class TestEngineIntegration:
    def test_repeated_select_hits_cache(self, setup):
        _, _, cache, engine = setup
        first = run_read(engine)
        second = run_read(engine)
        assert first == second
        stats = cache.stats()
        assert stats == {"hits": 1, "misses": 1, "stores": 1,
                         "evictions": 0, "invalidations": 0, "entries": 1}

    @pytest.mark.parametrize("statement,visible,gone", [
        ("INSERT INTO stock VALUES (3, 'washer')", "[3:washer]", None),
        ("UPDATE stock SET label = 'BOLT' WHERE id = 1",
         "[1:BOLT]", "[1:bolt]"),
        ("DELETE FROM stock WHERE id = 2", None, "[2:nut]"),
    ])
    def test_write_through_macro_invalidates(self, setup, statement,
                                             visible, gone):
        _, _, cache, engine = setup
        run_read(engine)  # populate
        run_write(engine, statement)
        html = run_read(engine)
        if visible:
            assert visible in html
        if gone:
            assert gone not in html
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["hits"] == 0  # stale entry never served

    def test_write_through_direct_connection_invalidates(self, setup):
        """Out-of-band writes through ``db.connect()`` (not the engine)
        still bump the adopted generation counter."""
        _, db, cache, engine = setup
        run_read(engine)
        with db.connect() as conn:
            conn.execute("INSERT INTO stock VALUES (9, 'direct')")
        html = run_read(engine)
        assert "[9:direct]" in html
        assert cache.stats()["invalidations"] == 1

    def test_single_mode_bypasses_cache(self, setup):
        registry, _, cache, _ = setup
        config = EngineConfig(transaction_mode=TransactionMode.SINGLE)
        config.query_cache = cache
        engine = MacroEngine(registry, config=config)
        run_read(engine)
        run_read(engine)
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["entries"] == 0

    def test_non_query_not_cached(self, setup):
        _, _, cache, engine = setup
        run_write(engine, "INSERT INTO stock VALUES (4, 'pin')")
        assert cache.stats()["stores"] == 0

    def test_no_cache_configured_still_works(self, setup):
        registry, _, _, _ = setup
        engine = MacroEngine(registry)  # default config: no cache
        assert "[1:bolt]" in run_read(engine)

    def test_read_during_uncommitted_write_never_served_after_commit(
            self, tmp_path):
        """The review-window race: a writer bumps the generation when its
        statement executes, a reader then snapshots the *pre-commit* data
        and caches it — the COMMIT-time bump must retire that entry, or
        every later read serves stale rows (file-backed database so the
        reader is not blocked by the open write transaction)."""
        registry = DatabaseRegistry()
        registry.register_path("INV", str(tmp_path / "race.db"))
        with registry.connect("INV") as conn:
            conn.executescript("""
                CREATE TABLE stock (id INTEGER, label TEXT);
                INSERT INTO stock VALUES (1, 'bolt'), (2, 'nut');
            """)
        cache = QueryResultCache()
        config = EngineConfig()
        config.query_cache = cache
        engine = MacroEngine(registry, config=config)

        writer = registry.connect("INV")
        writer.begin()
        writer.execute("UPDATE stock SET label = 'BOLT' WHERE id = 1")
        # Reader runs inside the writer's uncommitted window: it sees
        # (and caches) the old rows under the post-execute generation.
        assert "[1:bolt]" in run_read(engine)
        writer.commit()
        writer.close()
        # The commit bumped the generation again, so the windowed entry
        # is stale and the committed data is what every read now sees.
        assert "[1:BOLT]" in run_read(engine)
        assert cache.stats()["hits"] == 0  # stale entry never served

    def test_shared_cache_across_registries_does_not_collide(self):
        """Two engines over *separate* registries that register the same
        database name may share one cache: generation stamps embed the
        counter identity, so neither serves the other's rows."""
        cache = QueryResultCache()
        engines = []
        for label in ("alpha", "beta"):
            registry = DatabaseRegistry()
            db = registry.register_memory("INV")
            with db.connect() as conn:
                conn.executescript(f"""
                    CREATE TABLE stock (id INTEGER, label TEXT);
                    INSERT INTO stock VALUES (1, '{label}');
                """)
            config = EngineConfig()
            config.query_cache = cache
            engines.append(MacroEngine(registry, config=config))
        assert "[1:alpha]" in run_read(engines[0])
        assert "[1:beta]" in run_read(engines[1])
        assert cache.stats()["hits"] == 0


class TestSessionLevel:
    def test_session_counts_its_hits(self, setup):
        registry, _, cache, _ = setup
        session = MacroSqlSession(registry.connect("INV"), cache=cache,
                                  database="INV")
        try:
            session.execute("SELECT id FROM stock ORDER BY id")
            assert session.cache_hits == 0
            session.execute("SELECT id FROM stock ORDER BY id")
            assert session.cache_hits == 1
            # statements_run still counts the cached statement.
            assert session.scope.statements_run == 2
        finally:
            session.finish()

    def test_pragma_bypasses_cache_and_always_executes(self, setup):
        """A PRAGMA is a query (it returns rows) but must never be
        cached: a side-effecting PRAGMA has to run on every request's
        connection, and a PRAGMA read must see the latest state."""
        registry, _, cache, _ = setup
        session = MacroSqlSession(registry.connect("INV"), cache=cache,
                                  database="INV")
        try:
            assert session.execute("PRAGMA user_version").rows == [(0,)]
            session.execute("PRAGMA user_version = 5")
            assert session.execute("PRAGMA user_version").rows == [(5,)]
            assert session.cache_hits == 0
            stats = cache.stats()
            assert stats["stores"] == 0 and stats["misses"] == 0
        finally:
            session.finish()

    def test_unregistered_connection_has_no_generation(self):
        """A bare connection outside any registry carries no generation,
        so the cache is (soundly) bypassed."""
        from repro.sql.connection import MemoryDatabase

        db = MemoryDatabase()
        with db.connect() as conn:
            conn.execute("CREATE TABLE t (x)")
        cache = QueryResultCache()
        raw = db.connect()
        raw.generation = None  # simulate a foreign connection
        session = MacroSqlSession(raw, cache=cache, database="X")
        try:
            session.execute("SELECT x FROM t")
            session.execute("SELECT x FROM t")
            assert session.cache_hits == 0
            assert cache.stats()["misses"] == 0  # never consulted
        finally:
            session.finish()
