"""Connections: execution, error translation, shared memory databases."""

import threading

import pytest

from repro.errors import (
    ConnectionClosedError,
    SQLConstraintError,
    SQLObjectError,
    SQLSyntaxError,
)
from repro.sql.connection import Connection, MemoryDatabase, connect


@pytest.fixture()
def conn():
    connection = connect()
    connection.executescript(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT NOT NULL);"
        "INSERT INTO t VALUES (1, 'one');")
    yield connection
    connection.close()


class TestExecution:
    def test_query_returns_cursor_with_rows(self, conn):
        cursor = conn.execute("SELECT id, v FROM t")
        assert cursor.column_names == ["id", "v"]
        assert cursor.fetchall() == [(1, "one")]

    def test_parameters(self, conn):
        conn.execute("INSERT INTO t VALUES (?, ?)", (2, "two"))
        cursor = conn.execute("SELECT v FROM t WHERE id = ?", (2,))
        assert cursor.fetchone() == ("two",)

    def test_empty_sql_is_syntax_error(self, conn):
        with pytest.raises(SQLSyntaxError):
            conn.execute("   ")

    def test_use_after_close(self, conn):
        conn.close()
        with pytest.raises(ConnectionClosedError):
            conn.execute("SELECT 1")

    def test_close_idempotent(self, conn):
        conn.close()
        conn.close()

    def test_context_manager_closes(self):
        with connect() as connection:
            connection.execute("SELECT 1")
        assert connection.closed


class TestErrorTranslation:
    def test_missing_table(self, conn):
        with pytest.raises(SQLObjectError) as excinfo:
            conn.execute("SELECT * FROM absent")
        assert excinfo.value.sqlstate == "42704"
        assert excinfo.value.sqlcode == -204

    def test_missing_column(self, conn):
        with pytest.raises(SQLObjectError) as excinfo:
            conn.execute("SELECT ghost FROM t")
        assert excinfo.value.sqlstate == "42703"

    def test_syntax_error(self, conn):
        with pytest.raises(SQLSyntaxError) as excinfo:
            conn.execute("SELEKT 1")
        assert excinfo.value.sqlstate == "42601"
        assert excinfo.value.sqlcode == -104

    def test_constraint_violation(self, conn):
        with pytest.raises(SQLConstraintError) as excinfo:
            conn.execute("INSERT INTO t VALUES (1, 'dup')")
        assert excinfo.value.sqlstate == "23505"

    def test_not_null_violation(self, conn):
        with pytest.raises(SQLConstraintError):
            conn.execute("INSERT INTO t (id, v) VALUES (9, NULL)")


class TestTransactionsOnConnection:
    def test_begin_commit(self, conn):
        conn.begin()
        conn.execute("INSERT INTO t VALUES (5, 'five')")
        conn.commit()
        assert not conn.in_transaction
        assert conn.execute(
            "SELECT COUNT(*) FROM t").fetchone() == (2,)

    def test_rollback_discards(self, conn):
        conn.begin()
        conn.execute("DELETE FROM t")
        conn.rollback()
        assert conn.execute(
            "SELECT COUNT(*) FROM t").fetchone() == (1,)

    def test_begin_is_reentrant(self, conn):
        conn.begin()
        conn.begin()  # no "cannot start a transaction" error
        conn.rollback()

    def test_commit_without_begin_is_noop(self, conn):
        conn.commit()
        conn.rollback()


class TestMemoryDatabase:
    def test_connections_share_data(self):
        with MemoryDatabase() as db:
            first = db.connect()
            first.executescript(
                "CREATE TABLE s (x); INSERT INTO s VALUES (42);")
            second = db.connect()
            assert second.execute(
                "SELECT x FROM s").fetchone() == (42,)
            first.close()
            second.close()

    def test_distinct_databases_are_isolated(self):
        with MemoryDatabase() as a, MemoryDatabase() as b:
            conn_a = a.connect()
            conn_a.executescript("CREATE TABLE only_a (x);")
            conn_b = b.connect()
            with pytest.raises(SQLObjectError):
                conn_b.execute("SELECT * FROM only_a")
            conn_a.close()
            conn_b.close()

    def test_data_survives_while_anchor_open(self):
        db = MemoryDatabase()
        setup = db.connect()
        setup.executescript("CREATE TABLE k (x); INSERT INTO k VALUES (1);")
        setup.close()  # all request connections gone; anchor remains
        later = db.connect()
        assert later.execute("SELECT COUNT(*) FROM k").fetchone() == (1,)
        later.close()
        db.close()

    def test_concurrent_readers(self):
        db = MemoryDatabase()
        setup = db.connect()
        setup.executescript(
            "CREATE TABLE n (x); INSERT INTO n VALUES (7);")
        setup.close()
        results = []

        def read():
            conn = db.connect()
            try:
                results.append(
                    conn.execute("SELECT x FROM n").fetchone()[0])
            finally:
                conn.close()

        threads = [threading.Thread(target=read) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [7] * 8
        db.close()
