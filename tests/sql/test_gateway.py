"""Gateway facade: registry, macro SQL sessions, execution results."""

import pytest

from repro.errors import SQLError, SQLObjectError
from repro.sql.connection import MemoryDatabase
from repro.sql.cursor import value_to_text
from repro.sql.gateway import (
    DatabaseRegistry,
    ExecutionResult,
    MacroSqlSession,
)
from repro.sql.transactions import TransactionMode


@pytest.fixture()
def registry():
    reg = DatabaseRegistry()
    db = reg.register_memory("MAIN")
    with db.connect() as conn:
        conn.executescript(
            "CREATE TABLE v (n INTEGER, s TEXT);"
            "INSERT INTO v VALUES (1, 'a'), (2, 'b');")
    return reg


class TestRegistry:
    def test_register_and_connect(self, registry):
        conn = registry.connect("MAIN")
        assert conn.execute("SELECT COUNT(*) FROM v").fetchone() == (2,)
        conn.close()
        assert "MAIN" in registry
        assert registry.names() == ["MAIN"]

    def test_unknown_database(self, registry):
        with pytest.raises(SQLObjectError) as excinfo:
            registry.connect("NOPE")
        assert excinfo.value.sqlstate == "08001"

    def test_register_path(self, tmp_path, registry):
        path = str(tmp_path / "disk.db")
        registry.register_path("DISK", path)
        conn = registry.connect("DISK")
        conn.executescript("CREATE TABLE d (x); INSERT INTO d VALUES (9);")
        conn.close()
        conn2 = registry.connect("DISK")
        assert conn2.execute("SELECT x FROM d").fetchone() == (9,)
        conn2.close()

    def test_register_factory(self, registry):
        db = MemoryDatabase()
        registry.register_factory("FACT", db.connect)
        conn = registry.connect("FACT")
        conn.execute("SELECT 1")
        conn.close()


class TestMacroSqlSession:
    def test_query_result(self, registry):
        with MacroSqlSession(registry.connect("MAIN")) as session:
            result = session.execute("SELECT n, s FROM v ORDER BY n")
        assert result.is_query
        assert result.columns == ["n", "s"]
        assert result.rows == [(1, "a"), (2, "b")]
        assert result.row_total == 2

    def test_update_result(self, registry):
        with MacroSqlSession(registry.connect("MAIN")) as session:
            result = session.execute("UPDATE v SET s = 'z' WHERE n = 1")
        assert not result.is_query
        assert result.rowcount == 1

    def test_statement_log(self, registry):
        session = MacroSqlSession(registry.connect("MAIN"))
        session.execute("SELECT 1")
        with pytest.raises(SQLError):
            session.execute("BROKEN")
        session.finish(success=False)
        assert session.statement_log == ["SELECT 1", "BROKEN"]

    def test_single_mode_marks_failed(self, registry):
        session = MacroSqlSession(registry.connect("MAIN"),
                                  mode=TransactionMode.SINGLE)
        session.execute("INSERT INTO v VALUES (3, 'c')")
        with pytest.raises(SQLError):
            session.execute("INSERT INTO nope VALUES (1)")
        assert session.failed
        session.finish(success=False)
        conn = registry.connect("MAIN")
        assert conn.execute(
            "SELECT COUNT(*) FROM v").fetchone() == (2,)  # rolled back
        conn.close()

    def test_finish_closes_owned_connection(self, registry):
        conn = registry.connect("MAIN")
        MacroSqlSession(conn).finish()
        assert conn.closed

    def test_finish_keeps_borrowed_connection(self, registry):
        conn = registry.connect("MAIN")
        MacroSqlSession(conn, owns_connection=False).finish()
        assert not conn.closed
        conn.close()


class TestExecutionResult:
    def test_iter_text_rows(self):
        result = ExecutionResult(
            sql="q", columns=["a", "b"],
            rows=[(None, 1.0), (2.5, b"bytes")], is_query=True)
        assert list(result.iter_text_rows()) == [
            ["", "1"], ["2.5", "bytes"]]


class TestValueToText:
    @pytest.mark.parametrize("value,expected", [
        (None, ""),
        (5, "5"),
        (5.0, "5"),
        (5.25, "5.25"),
        ("text", "text"),
        (b"caf\xc3\xa9", "café"),
    ])
    def test_rendering(self, value, expected):
        assert value_to_text(value) == expected
