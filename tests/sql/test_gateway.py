"""Gateway facade: registry, macro SQL sessions, execution results."""

import pytest

from repro.errors import SQLError, SQLObjectError
from repro.sql.connection import MemoryDatabase
from repro.sql.cursor import value_to_text
from repro.sql.gateway import (
    DatabaseRegistry,
    ExecutionResult,
    MacroSqlSession,
)
from repro.sql.transactions import TransactionMode


@pytest.fixture()
def registry():
    reg = DatabaseRegistry()
    db = reg.register_memory("MAIN")
    with db.connect() as conn:
        conn.executescript(
            "CREATE TABLE v (n INTEGER, s TEXT);"
            "INSERT INTO v VALUES (1, 'a'), (2, 'b');")
    return reg


class TestRegistry:
    def test_register_and_connect(self, registry):
        conn = registry.connect("MAIN")
        assert conn.execute("SELECT COUNT(*) FROM v").fetchone() == (2,)
        conn.close()
        assert "MAIN" in registry
        assert registry.names() == ["MAIN"]

    def test_unknown_database(self, registry):
        with pytest.raises(SQLObjectError) as excinfo:
            registry.connect("NOPE")
        assert excinfo.value.sqlstate == "08001"

    def test_register_path(self, tmp_path, registry):
        path = str(tmp_path / "disk.db")
        registry.register_path("DISK", path)
        conn = registry.connect("DISK")
        conn.executescript("CREATE TABLE d (x); INSERT INTO d VALUES (9);")
        conn.close()
        conn2 = registry.connect("DISK")
        assert conn2.execute("SELECT x FROM d").fetchone() == (9,)
        conn2.close()

    def test_register_factory(self, registry):
        db = MemoryDatabase()
        registry.register_factory("FACT", db.connect)
        conn = registry.connect("FACT")
        conn.execute("SELECT 1")
        conn.close()


class TestMacroSqlSession:
    def test_query_result(self, registry):
        with MacroSqlSession(registry.connect("MAIN")) as session:
            result = session.execute("SELECT n, s FROM v ORDER BY n")
        assert result.is_query
        assert result.columns == ["n", "s"]
        assert result.rows == [(1, "a"), (2, "b")]
        assert result.row_total == 2

    def test_update_result(self, registry):
        with MacroSqlSession(registry.connect("MAIN")) as session:
            result = session.execute("UPDATE v SET s = 'z' WHERE n = 1")
        assert not result.is_query
        assert result.rowcount == 1

    def test_statement_log(self, registry):
        session = MacroSqlSession(registry.connect("MAIN"))
        session.execute("SELECT 1")
        with pytest.raises(SQLError):
            session.execute("BROKEN")
        session.finish(success=False)
        assert session.statement_log == ["SELECT 1", "BROKEN"]

    def test_single_mode_marks_failed(self, registry):
        session = MacroSqlSession(registry.connect("MAIN"),
                                  mode=TransactionMode.SINGLE)
        session.execute("INSERT INTO v VALUES (3, 'c')")
        with pytest.raises(SQLError):
            session.execute("INSERT INTO nope VALUES (1)")
        assert session.failed
        session.finish(success=False)
        conn = registry.connect("MAIN")
        assert conn.execute(
            "SELECT COUNT(*) FROM v").fetchone() == (2,)  # rolled back
        conn.close()

    def test_finish_closes_owned_connection(self, registry):
        conn = registry.connect("MAIN")
        MacroSqlSession(conn).finish()
        assert conn.closed

    def test_finish_keeps_borrowed_connection(self, registry):
        conn = registry.connect("MAIN")
        MacroSqlSession(conn, owns_connection=False).finish()
        assert not conn.closed
        conn.close()


class TestExecutionResult:
    def test_iter_text_rows(self):
        result = ExecutionResult(
            sql="q", columns=["a", "b"],
            rows=[(None, 1.0), (2.5, b"bytes")], is_query=True)
        assert list(result.iter_text_rows()) == [
            ["", "1"], ["2.5", "bytes"]]


class TestValueToText:
    @pytest.mark.parametrize("value,expected", [
        (None, ""),
        (5, "5"),
        (5.0, "5"),
        (5.25, "5.25"),
        ("text", "text"),
        (b"caf\xc3\xa9", "café"),
    ])
    def test_rendering(self, value, expected):
        assert value_to_text(value) == expected


class TestUnregister:
    def test_unknown_name_is_08001(self, registry):
        with pytest.raises(SQLObjectError) as excinfo:
            registry.unregister("NOPE")
        assert excinfo.value.sqlstate == "08001"

    def test_unregister_removes_the_name(self, registry):
        registry.unregister("MAIN")
        assert "MAIN" not in registry
        with pytest.raises(SQLObjectError):
            registry.connect("MAIN")

    def test_refused_while_connection_active(self, registry):
        conn = registry.connect("MAIN")
        try:
            with pytest.raises(SQLObjectError) as excinfo:
                registry.unregister("MAIN")
            assert excinfo.value.sqlstate == "55006"
            assert "MAIN" in registry
        finally:
            conn.close()
        # Closing the last connection releases the refusal.
        assert registry.active_connections("MAIN") == 0
        registry.unregister("MAIN")

    def test_direct_connections_are_tracked(self, registry):
        assert registry.active_connections("MAIN") == 0
        conn = registry.connect("MAIN")
        assert registry.active_connections("MAIN") == 1
        conn.close()
        assert registry.active_connections("MAIN") == 0
        # Double close must not underflow the counter.
        conn.close()
        assert registry.active_connections("MAIN") == 0

    def test_reregistration_mints_fresh_generation(self, registry):
        old = registry.generation("MAIN")
        old.bump()
        registry.unregister("MAIN")
        registry.register_memory("MAIN")
        fresh = registry.generation("MAIN")
        assert fresh is not old

    def test_unregister_purges_cache_namespace(self, registry):
        from repro.sql.querycache import QueryResultCache
        cache = QueryResultCache()
        stamp = registry.generation("MAIN").stamp
        result = ExecutionResult(sql="SELECT 1", columns=["x"],
                                 rows=[(1,)], is_query=True)
        cache.put("MAIN", "SELECT 1", stamp, result)
        cache.put("OTHER", "SELECT 1", stamp, result)
        registry.unregister("MAIN", cache=cache)
        assert cache.get("MAIN", "SELECT 1", stamp) is None
        assert cache.get("OTHER", "SELECT 1", stamp) is not None


class TestScopedRegistry:
    def test_resolve_prefixes_the_namespace(self, registry):
        from repro.sql.gateway import ScopedDatabaseRegistry
        scoped = ScopedDatabaseRegistry(registry, "alpha")
        assert scoped.resolve("SHOP") == "alpha/SHOP"
        assert scoped.physical() is registry
        assert registry.resolve("SHOP") == "SHOP"
        assert registry.physical() is registry

    def test_bad_namespace_rejected(self, registry):
        from repro.sql.gateway import ScopedDatabaseRegistry
        with pytest.raises(ValueError):
            ScopedDatabaseRegistry(registry, "a/b")
        with pytest.raises(ValueError):
            ScopedDatabaseRegistry(registry, "")

    def test_same_name_two_scopes_are_disjoint(self, registry):
        from repro.sql.gateway import ScopedDatabaseRegistry
        alpha = ScopedDatabaseRegistry(registry, "alpha")
        beta = ScopedDatabaseRegistry(registry, "beta")
        db_a = alpha.register_memory("SHOP")
        db_b = beta.register_memory("SHOP")
        with db_a.connect() as conn:
            conn.executescript(
                "CREATE TABLE t (x); INSERT INTO t VALUES (1);")
        with db_b.connect() as conn:
            conn.executescript(
                "CREATE TABLE t (x); INSERT INTO t VALUES (2);")
        conn_a = alpha.connect("SHOP")
        conn_b = beta.connect("SHOP")
        try:
            assert conn_a.execute("SELECT x FROM t").fetchone() == (1,)
            assert conn_b.execute("SELECT x FROM t").fetchone() == (2,)
        finally:
            conn_a.close()
            conn_b.close()
        assert "SHOP" in alpha and "SHOP" in beta
        assert alpha.names() == ["SHOP"]
        # The physical registry sees both, under their scoped names.
        assert registry.names() == ["MAIN", "alpha/SHOP", "beta/SHOP"]

    def test_scoped_unregister_strips_the_prefix(self, registry):
        from repro.sql.gateway import ScopedDatabaseRegistry
        scoped = ScopedDatabaseRegistry(registry, "alpha")
        scoped.register_memory("SHOP")
        scoped.unregister("SHOP")
        assert "SHOP" not in scoped
        assert "alpha/SHOP" not in registry
