"""Statement normalization and the per-digest rolling stats store."""

from types import SimpleNamespace

import pytest

from repro.obs.trace import Tracer
from repro.sql.digest import (
    STATEMENTS,
    StatementStats,
    normalize_statement,
    statement_digest,
    statement_fingerprint,
)


class TestNormalization:
    def test_literals_become_placeholders(self):
        assert normalize_statement(
            "SELECT url FROM urls WHERE id = 42") == \
            "select url from urls where id = ?"
        assert normalize_statement(
            "SELECT url FROM urls WHERE name = 'ibm'") == \
            "select url from urls where name = ?"

    def test_differently_parameterised_runs_share_a_shape(self):
        a = "SELECT * FROM urldb WHERE title LIKE '%ibm%' AND hits > 10"
        b = "select * from urldb where title like '%web%' and hits > 900"
        assert normalize_statement(a) == normalize_statement(b)
        assert statement_digest(a) == statement_digest(b)

    def test_quoted_string_with_commas_and_parens_is_opaque(self):
        # the comma and parens live inside the literal: one placeholder
        assert normalize_statement(
            "SELECT f(x) FROM t WHERE note = 'a, b (c), d'") == \
            "select f(x) from t where note = ?"

    def test_doubled_quote_escape_stays_inside_the_literal(self):
        assert normalize_statement(
            "SELECT * FROM t WHERE name = 'O''Brien, Inc (1)'") == \
            "select * from t where name = ?"

    def test_unicode_literals_and_identifiers(self):
        assert normalize_statement(
            "SELECT Straße FROM orte WHERE stadt = 'München'") == \
            "select straße from orte where stadt = ?"

    def test_nested_parens_with_numbers(self):
        assert normalize_statement(
            "SELECT * FROM t WHERE a IN (SELECT b FROM u "
            "WHERE c = (1 + (2 * 3)))") == \
            "select * from t where a in (select b from u " \
            "where c = (? + (? * ?)))"

    def test_quoted_identifier_keeps_case(self):
        assert normalize_statement(
            'SELECT "MixedCase" FROM t') == 'select "MixedCase" from t'

    def test_comments_vanish_and_whitespace_collapses(self):
        assert normalize_statement(
            "SELECT  a\n  FROM t -- trailing note\n"
            "WHERE /* block\ncomment */ b = 1") == \
            "select a from t where b = ?"

    def test_in_list_collapses_across_arities(self):
        three = normalize_statement(
            "SELECT * FROM t WHERE id IN (1, 2, 3)")
        one = normalize_statement("SELECT * FROM t WHERE id IN (9)")
        assert three == one == "select * from t where id in (?)"

    def test_mixed_in_list_does_not_collapse(self):
        # a column reference in the list keeps the arity visible
        assert normalize_statement(
            "SELECT * FROM t WHERE id IN (1, other_id)") == \
            "select * from t where id in (?, other_id)"

    def test_identifier_digits_are_not_literals(self):
        assert normalize_statement("SELECT col2x FROM t1") == \
            "select col2x from t1"

    def test_numeric_forms(self):
        assert normalize_statement(
            "SELECT * FROM t WHERE a = 0x1F AND b = 1.5 "
            "AND c = 2e10 AND d = .5") == \
            "select * from t where a = ? and b = ? and c = ? and d = ?"

    def test_unterminated_literal_swallows_the_tail(self):
        assert normalize_statement(
            "SELECT * FROM t WHERE a = 'oops") == \
            "select * from t where a = ?"

    def test_fingerprint_is_stable_and_short(self):
        digest, normalized = statement_fingerprint(
            "SELECT 1 FROM dual")
        assert len(digest) == 12
        assert normalized == "select ? from dual"
        assert statement_fingerprint("SELECT 1 FROM dual") == \
            (digest, normalized)


class TestStatementStats:
    def test_record_aggregates_per_digest(self):
        stats = StatementStats()
        for duration in (1.0, 3.0):
            stats.record(digest="abc", statement="select ?",
                         duration_ms=duration, rows=5, cached=False,
                         error=False, sqlstate=None)
        stats.record(digest="abc", duration_ms=2.0, rows=0, cached=True,
                     error=True, sqlstate="42S02")
        snap = stats.snapshot()
        (row,) = snap["statements"]
        assert row["digest"] == "abc"
        assert row["calls"] == 3
        assert row["errors"] == 1
        assert row["rows"] == 10
        assert row["cache_hits"] == 1
        assert row["cache_hit_ratio"] == pytest.approx(1 / 3, abs=0.01)
        assert row["sqlstates"] == {"42S02": 1}
        assert row["total_ms"] >= 6.0
        assert snap["recorded_total"] == 3
        assert snap["overflowed_total"] == 0

    def test_overflow_lands_in_the_other_bucket(self):
        stats = StatementStats(max_digests=2)
        for digest in ("d1", "d2", "d3", "d4"):
            stats.record(digest=digest, duration_ms=1.0)
        snap = stats.snapshot()
        assert snap["distinct_digests"] == 2
        assert snap["overflowed_total"] == 2
        other = snap["statements"][-1]
        assert other["digest"] == "_other"
        assert other["calls"] == 2

    def test_snapshot_orders_by_total_time_burned(self):
        stats = StatementStats()
        stats.record(digest="cheap", duration_ms=1.0)
        stats.record(digest="hot", duration_ms=500.0)
        digests = [row["digest"]
                   for row in stats.snapshot()["statements"]]
        assert digests == ["hot", "cheap"]

    def test_fanout_tracking(self):
        stats = StatementStats()
        stats.record(digest="scatter", duration_ms=1.0, fanout=4)
        stats.record(digest="scatter", duration_ms=1.0, fanout=2)
        (row,) = stats.snapshot()["statements"]
        assert row["fanout_max"] == 4
        assert row["fanout_mean"] == pytest.approx(3.0)

    def test_sink_harvests_sql_spans_from_a_trace(self):
        tracer = Tracer()
        tracer.enable()
        stats = StatementStats()
        stats.enabled = True
        tracer.add_sink(stats)
        with tracer.span("request",
                         attrs={"target": "/report?Q=1"}):
            with tracer.span("sql.execute") as sql:
                sql.set("digest", "deadbeef0123")
                sql.set("sql", "select ?")
                sql.set("rows", 7)
                with tracer.span("shard.execute"):
                    pass
                with tracer.span("shard.execute"):
                    pass
        (row,) = stats.snapshot()["statements"]
        assert row["digest"] == "deadbeef0123"
        assert row["rows"] == 7
        assert row["fanout_max"] == 2
        # the request target was learned for the classifier probe
        assert stats.stats()["request_keys"] == 1

    def test_sink_is_gated_like_the_tracer(self):
        tracer = Tracer()
        tracer.enable()
        stats = StatementStats()  # .enabled stays False
        tracer.add_sink(stats)
        with tracer.span("request"):
            with tracer.span("sql.execute") as sql:
                sql.set("digest", "abc")
        assert stats.snapshot()["statements"] == []

    def test_probe_answers_heavy_and_cached_only_when_confident(self):
        stats = StatementStats(min_calls=3)
        request = SimpleNamespace(path="/report", query="Q=1")
        key = "/report?Q=1"
        stats.note_request(key, ["slow"])
        assert stats.probe(request) is None  # digest unknown yet
        for _ in range(3):
            stats.record(digest="slow", duration_ms=200.0)
        assert stats.probe(request) == "heavy"
        stats.note_request(key, ["fast"])
        for _ in range(3):
            stats.record(digest="fast", duration_ms=1.0)
        assert stats.probe(request) == "cached"
        # a middling digest stays undecided
        stats.note_request(key, ["mid"])
        for _ in range(3):
            stats.record(digest="mid", duration_ms=20.0)
        assert stats.probe(request) is None

    def test_labeled_stats_shape(self):
        stats = StatementStats()
        stats.record(digest="abc", duration_ms=1.0, rows=3, cached=True)
        assert stats.labeled_stats() == {
            "abc": {"calls_total": 1, "errors_total": 0,
                    "rows_total": 3, "cache_hits_total": 1}}

    def test_reset_clears_everything(self):
        stats = StatementStats(max_digests=1)
        stats.record(digest="a", duration_ms=1.0)
        stats.record(digest="b", duration_ms=1.0)  # overflows
        stats.reset()
        snap = stats.snapshot()
        assert snap["statements"] == []
        assert snap["overflowed_total"] == 0


def test_module_store_exists_and_is_disabled_by_default():
    assert isinstance(STATEMENTS, StatementStats)
