"""Connection pools: reuse, exhaustion, per-request strategy."""

import threading

import pytest

from repro.errors import PoolExhaustedError
from repro.sql.connection import MemoryDatabase
from repro.sql.pool import ConnectionPool, PerRequestPool


@pytest.fixture()
def db():
    database = MemoryDatabase()
    conn = database.connect()
    conn.executescript("CREATE TABLE p (x); INSERT INTO p VALUES (1);")
    conn.close()
    yield database
    database.close()


class TestConnectionPool:
    def test_acquire_release_reuses(self, db):
        pool = ConnectionPool(db.connect, size=2)
        first = pool.acquire()
        pool.release(first)
        second = pool.acquire()
        assert second is first
        pool.release(second)
        pool.close()

    def test_creates_up_to_size(self, db):
        pool = ConnectionPool(db.connect, size=3, timeout=0.05)
        conns = [pool.acquire() for _ in range(3)]
        assert pool.stats["created"] == 3
        for conn in conns:
            pool.release(conn)
        pool.close()

    def test_exhaustion_raises_after_timeout(self, db):
        pool = ConnectionPool(db.connect, size=1, timeout=0.05)
        held = pool.acquire()
        with pytest.raises(PoolExhaustedError) as excinfo:
            pool.acquire()
        assert excinfo.value.sqlstate == "57030"
        pool.release(held)
        pool.close()

    def test_blocked_acquire_wakes_on_release(self, db):
        pool = ConnectionPool(db.connect, size=1, timeout=2.0)
        held = pool.acquire()
        got = []

        def taker():
            conn = pool.acquire()
            got.append(conn)
            pool.release(conn)

        thread = threading.Thread(target=taker)
        thread.start()
        pool.release(held)
        thread.join(timeout=2)
        assert got
        pool.close()

    def test_release_rolls_back_open_transaction(self, db):
        pool = ConnectionPool(db.connect, size=1)
        conn = pool.acquire()
        conn.begin()
        conn.execute("DELETE FROM p")
        pool.release(conn)
        conn2 = pool.acquire()
        assert conn2.execute("SELECT COUNT(*) FROM p").fetchone() == (1,)
        pool.release(conn2)
        pool.close()

    def test_dead_connection_replaced(self, db):
        pool = ConnectionPool(db.connect, size=1)
        conn = pool.acquire()
        conn.close()
        pool.release(conn)
        fresh = pool.acquire()
        assert not fresh.closed
        pool.release(fresh)
        pool.close()

    def test_context_manager_checkout(self, db):
        pool = ConnectionPool(db.connect, size=1)
        with pool.connection() as conn:
            assert conn.execute("SELECT x FROM p").fetchone() == (1,)
        # returned: can be re-acquired without exhaustion
        with pool.connection() as conn:
            conn.execute("SELECT 1")
        pool.close()

    def test_closed_pool_rejects_acquire(self, db):
        pool = ConnectionPool(db.connect, size=1)
        pool.close()
        with pytest.raises(PoolExhaustedError):
            pool.acquire()

    def test_invalid_size(self, db):
        with pytest.raises(ValueError):
            ConnectionPool(db.connect, size=0)


class TestPerRequestPool:
    def test_fresh_connection_each_time(self, db):
        pool = PerRequestPool(db.connect)
        first = pool.acquire()
        pool.release(first)
        assert first.closed  # the 1996 model: closed on release
        second = pool.acquire()
        assert second is not first
        pool.release(second)

    def test_context_manager(self, db):
        pool = PerRequestPool(db.connect)
        with pool.connection() as conn:
            assert conn.execute("SELECT x FROM p").fetchone() == (1,)
        assert conn.closed
