"""Connection pools: reuse, exhaustion, per-request strategy."""

import threading
import time

import pytest

from repro.errors import PoolExhaustedError
from repro.sql.connection import MemoryDatabase
from repro.sql.pool import ConnectionPool, PerRequestPool


@pytest.fixture()
def db():
    database = MemoryDatabase()
    conn = database.connect()
    conn.executescript("CREATE TABLE p (x); INSERT INTO p VALUES (1);")
    conn.close()
    yield database
    database.close()


class TestConnectionPool:
    def test_acquire_release_reuses(self, db):
        pool = ConnectionPool(db.connect, size=2)
        first = pool.acquire()
        pool.release(first)
        second = pool.acquire()
        assert second is first
        pool.release(second)
        pool.close()

    def test_creates_up_to_size(self, db):
        pool = ConnectionPool(db.connect, size=3, timeout=0.05)
        conns = [pool.acquire() for _ in range(3)]
        assert pool.stats["created"] == 3
        for conn in conns:
            pool.release(conn)
        pool.close()

    def test_exhaustion_raises_after_timeout(self, db):
        pool = ConnectionPool(db.connect, size=1, timeout=0.05)
        held = pool.acquire()
        with pytest.raises(PoolExhaustedError) as excinfo:
            pool.acquire()
        assert excinfo.value.sqlstate == "57030"
        pool.release(held)
        pool.close()

    def test_blocked_acquire_wakes_on_release(self, db):
        pool = ConnectionPool(db.connect, size=1, timeout=2.0)
        held = pool.acquire()
        got = []

        def taker():
            conn = pool.acquire()
            got.append(conn)
            pool.release(conn)

        thread = threading.Thread(target=taker)
        thread.start()
        pool.release(held)
        thread.join(timeout=2)
        assert got
        pool.close()

    def test_release_rolls_back_open_transaction(self, db):
        pool = ConnectionPool(db.connect, size=1)
        conn = pool.acquire()
        conn.begin()
        conn.execute("DELETE FROM p")
        pool.release(conn)
        conn2 = pool.acquire()
        assert conn2.execute("SELECT COUNT(*) FROM p").fetchone() == (1,)
        pool.release(conn2)
        pool.close()

    def test_dead_connection_replaced(self, db):
        pool = ConnectionPool(db.connect, size=1)
        conn = pool.acquire()
        conn.close()
        pool.release(conn)
        fresh = pool.acquire()
        assert not fresh.closed
        pool.release(fresh)
        pool.close()

    def test_context_manager_checkout(self, db):
        pool = ConnectionPool(db.connect, size=1)
        with pool.connection() as conn:
            assert conn.execute("SELECT x FROM p").fetchone() == (1,)
        # returned: can be re-acquired without exhaustion
        with pool.connection() as conn:
            conn.execute("SELECT 1")
        pool.close()

    def test_closed_pool_rejects_acquire(self, db):
        pool = ConnectionPool(db.connect, size=1)
        pool.close()
        with pytest.raises(PoolExhaustedError):
            pool.acquire()

    def test_invalid_size(self, db):
        with pytest.raises(ValueError):
            ConnectionPool(db.connect, size=0)

    def test_failing_factory_reclaims_capacity(self, db):
        """A factory exception must not permanently shrink the pool."""
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("transient connect failure")
            return db.connect()

        pool = ConnectionPool(flaky, size=1, timeout=0.05)
        with pytest.raises(RuntimeError):
            pool.acquire()
        assert pool.stats["created"] == 0  # slot reclaimed
        conn = pool.acquire()  # retry succeeds; no PoolExhaustedError
        assert not conn.closed
        pool.release(conn)
        pool.close()

    def test_dead_connection_retry_is_iterative(self, db):
        """Draining many dead idle connections must not recurse."""
        pool = ConnectionPool(db.connect, size=3)
        conns = [pool.acquire() for _ in range(3)]
        for conn in conns:
            conn.close()
            pool.release(conn)
        # released-closed connections were dropped at release time; a new
        # acquire creates a fresh one without blowing the stack.
        fresh = pool.acquire()
        assert not fresh.closed
        pool.release(fresh)
        pool.close()


class TestReleaseEviction:
    """Health validation on release: broken connections never recycle."""

    def test_broken_release_evicts_and_replaces(self, db):
        """Regression: a connection flagged broken must be evicted and
        its capacity slot given to a freshly created replacement."""
        created = {"n": 0}

        def counting_factory():
            created["n"] += 1
            return db.connect()

        pool = ConnectionPool(counting_factory, size=1)
        conn = pool.acquire()
        assert created["n"] == 1
        pool.release(conn, broken=True)
        assert conn.closed  # evicted, not parked in the idle queue
        assert pool.stats["evicted"] == 1
        fresh = pool.acquire()
        assert created["n"] == 2  # replacement built, capacity intact
        assert not fresh.closed
        pool.release(fresh)
        assert pool.stats["evicted"] == 1  # healthy release recycles
        pool.close()

    def test_exception_in_checkout_flags_broken(self, db):
        pool = ConnectionPool(db.connect, size=1)
        with pytest.raises(RuntimeError):
            with pool.connection():
                raise RuntimeError("request blew up on this connection")
        assert pool.stats["evicted"] == 1
        with pool.connection() as conn:  # the replacement works
            assert conn.execute("SELECT x FROM p").fetchone() == (1,)
        pool.close()

    def test_unpingable_connection_evicted(self, db):
        pool = ConnectionPool(db.connect, size=1)
        conn = pool.acquire()

        class Zombie:
            """Open-looking connection whose health check fails."""
            closed = False
            in_transaction = False

            def ping(self):
                return False

            def close(self):
                self.closed = True

        zombie = Zombie()
        pool.release(zombie)
        assert zombie.closed
        assert pool.stats["evicted"] == 1
        conn.close()
        pool.close()


class TestAcquireDeadline:
    def test_deadline_caps_the_wait(self, db):
        from repro.resilience.deadline import Deadline

        pool = ConnectionPool(db.connect, size=1, timeout=30.0)
        held = pool.acquire()
        started = time.perf_counter()
        with pytest.raises(PoolExhaustedError):
            pool.acquire(deadline=Deadline.after(0.05))
        # gave up on the deadline's budget, not the pool's 30 s timeout
        assert time.perf_counter() - started < 5.0
        pool.release(held)
        pool.close()

    def test_spent_deadline_raises_immediately(self, db):
        from repro.errors import DeadlineExceededError
        from repro.resilience.deadline import Deadline

        pool = ConnectionPool(db.connect, size=1, timeout=30.0)
        held = pool.acquire()
        with pytest.raises(DeadlineExceededError):
            pool.acquire(deadline=Deadline.after(0.0))
        pool.release(held)
        pool.close()


class TestConnectionPoolConcurrency:
    def test_sixteen_threads_with_flaky_factory(self, db):
        """Hammer the pool from 16 threads with a sometimes-failing
        factory: capacity must never leak, every thread must finish, and
        the pool must still satisfy requests afterwards."""
        import random

        rng = random.Random(96)
        fail_lock = threading.Lock()

        def flaky():
            with fail_lock:
                fail = rng.random() < 0.3
            if fail:
                raise RuntimeError("flaky connect")
            return db.connect()

        pool = ConnectionPool(flaky, size=4, timeout=1.0)
        errors: list[Exception] = []
        done = []

        def worker():
            for _ in range(50):
                try:
                    conn = pool.acquire()
                except RuntimeError:
                    continue  # transient factory failure: retry later
                except PoolExhaustedError as exc:  # pragma: no cover
                    errors.append(exc)
                    continue
                try:
                    assert conn.execute(
                        "SELECT x FROM p").fetchone() == (1,)
                finally:
                    pool.release(conn)
            done.append(True)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(done) == 16
        assert not errors, f"pool exhausted despite reclaim: {errors[:3]}"
        stats = pool.stats
        assert 0 <= stats["created"] <= 4
        # The pool still works at full capacity after the storm.
        survivors = []
        while len(survivors) < stats["size"]:
            try:
                survivors.append(pool.acquire())
            except RuntimeError:
                continue
        for conn in survivors:
            pool.release(conn)
        pool.close()


class TestPerRequestPool:
    def test_fresh_connection_each_time(self, db):
        pool = PerRequestPool(db.connect)
        first = pool.acquire()
        pool.release(first)
        assert first.closed  # the 1996 model: closed on release
        second = pool.acquire()
        assert second is not first
        pool.release(second)

    def test_context_manager(self, db):
        pool = PerRequestPool(db.connect)
        with pool.connection() as conn:
            assert conn.execute("SELECT x FROM p").fetchone() == (1,)
        assert conn.closed
