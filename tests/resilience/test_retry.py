"""Retry policy, backoff schedule, and deadline budgets."""

import random

import pytest

from repro.errors import (
    DeadlineExceededError,
    SQLDeadlockError,
    SQLSyntaxError,
)
from repro.resilience.deadline import Deadline, remaining_or
from repro.resilience.retry import (
    DEFAULT_RETRY,
    NO_RETRY,
    RetryPolicy,
    call_with_retry,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_exponential_schedule_without_jitter(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.01,
                             multiplier=2.0, max_delay=1.0, jitter=0.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [
            0.01, 0.02, 0.04, 0.08]

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(max_attempts=10, base_delay=0.1,
                             multiplier=10.0, max_delay=0.5, jitter=0.0)
        assert policy.delay(4) == 0.5

    def test_jitter_randomises_top_half(self):
        policy = RetryPolicy(base_delay=0.04, jitter=0.5)
        rng = random.Random(96)
        delays = [policy.delay(1, rng) for _ in range(200)]
        assert all(0.02 <= d <= 0.04 for d in delays)
        assert len(set(delays)) > 1  # actually randomised

    def test_retries_property(self):
        assert RetryPolicy(max_attempts=4).retries == 3
        assert NO_RETRY.retries == 0
        assert DEFAULT_RETRY.retries == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestCallWithRetry:
    def _flaky(self, failures, error=None):
        state = {"calls": 0}

        def func():
            state["calls"] += 1
            if state["calls"] <= failures:
                raise error or SQLDeadlockError("transient")
            return "ok"

        return func, state

    def test_succeeds_after_transient_failures(self):
        func, state = self._flaky(failures=2)
        retried = []
        result = call_with_retry(
            func, policy=RetryPolicy(max_attempts=4, base_delay=0.001),
            sleep=lambda _s: None,
            on_retry=lambda attempt, error, delay:
                retried.append((attempt, type(error).__name__)))
        assert result == "ok"
        assert state["calls"] == 3
        assert retried == [(1, "SQLDeadlockError"),
                           (2, "SQLDeadlockError")]

    def test_exhausted_attempts_reraise_last_error(self):
        func, state = self._flaky(failures=99)
        with pytest.raises(SQLDeadlockError):
            call_with_retry(
                func, policy=RetryPolicy(max_attempts=3, base_delay=0.001),
                sleep=lambda _s: None)
        assert state["calls"] == 3

    def test_non_transient_never_retried(self):
        func, state = self._flaky(
            failures=1, error=SQLSyntaxError("near FROM"))
        with pytest.raises(SQLSyntaxError):
            call_with_retry(
                func, policy=RetryPolicy(max_attempts=5),
                sleep=lambda _s: None)
        assert state["calls"] == 1

    def test_no_retry_policy_is_single_attempt(self):
        func, state = self._flaky(failures=1)
        with pytest.raises(SQLDeadlockError):
            call_with_retry(func, policy=NO_RETRY, sleep=lambda _s: None)
        assert state["calls"] == 1

    def test_refuses_to_sleep_past_deadline(self):
        clock = FakeClock()
        deadline = Deadline.after(0.005, clock=clock)
        func, state = self._flaky(failures=99)
        policy = RetryPolicy(max_attempts=10, base_delay=0.01, jitter=0.0)
        with pytest.raises(SQLDeadlockError):
            # first backoff (10 ms) would overshoot the 5 ms budget, so
            # the transient error surfaces instead of being retried
            call_with_retry(func, policy=policy, deadline=deadline,
                            sleep=lambda _s: None)
        assert state["calls"] == 1

    def test_expired_deadline_raises_before_calling(self):
        clock = FakeClock()
        deadline = Deadline.after(0.01, clock=clock)
        clock.advance(0.02)
        func, state = self._flaky(failures=0)
        with pytest.raises(DeadlineExceededError):
            call_with_retry(func, policy=NO_RETRY, deadline=deadline)
        assert state["calls"] == 0


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(0.4)
        assert deadline.remaining() == pytest.approx(0.6)

    def test_remaining_never_negative(self):
        clock = FakeClock()
        deadline = Deadline.after(0.1, clock=clock)
        clock.advance(5.0)
        assert deadline.remaining() == 0.0
        assert deadline.expired

    def test_check_raises_when_spent(self):
        clock = FakeClock()
        deadline = Deadline.after(0.1, clock=clock)
        deadline.check("statement")  # within budget: no-op
        clock.advance(0.2)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("statement")
        assert "statement" in str(excinfo.value)
        assert excinfo.value.sqlstate == "57014"

    def test_cap_limits_layer_timeouts(self):
        clock = FakeClock()
        deadline = Deadline.after(0.3, clock=clock)
        assert deadline.cap(5.0) == pytest.approx(0.3)
        assert deadline.cap(0.1) == pytest.approx(0.1)
        assert deadline.cap(None) == pytest.approx(0.3)

    def test_remaining_or_default(self):
        clock = FakeClock()
        deadline = Deadline.after(0.5, clock=clock)
        assert remaining_or(deadline, 9.0) == pytest.approx(0.5)
        assert remaining_or(None, 9.0) == 9.0
