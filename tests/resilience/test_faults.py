"""Fault-injection harness: spec parsing, determinism, wrapping."""

import pytest

from repro.errors import (
    SQLConnectError,
    SQLError,
    is_transient,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    FaultSpecError,
    FaultyConnection,
    ambient_injector,
    set_ambient_injector,
    wrap_factory,
)
from repro.sql.connection import MemoryDatabase


@pytest.fixture()
def db():
    database = MemoryDatabase()
    conn = database.connect()
    conn.executescript("CREATE TABLE t (x); INSERT INTO t VALUES (1);")
    conn.close()
    yield database
    database.close()


class TestSpecParsing:
    def test_prob_sets_connect_and_query(self):
        spec = FaultSpec.parse("prob:0.25")
        assert spec.connect == 0.25
        assert spec.query == 0.25
        assert spec.slow == 0.0

    def test_individual_clauses(self):
        spec = FaultSpec.parse("connect:0.1,query:0.2,disconnect:0.3")
        assert (spec.connect, spec.query, spec.disconnect) == (0.1, 0.2, 0.3)

    def test_slow_with_duration(self):
        spec = FaultSpec.parse("slow:0.5:0.125")
        assert spec.slow == 0.5
        assert spec.slow_seconds == 0.125

    def test_slow_default_duration(self):
        assert FaultSpec.parse("slow:1").slow_seconds == 0.05

    def test_every_with_kind(self):
        spec = FaultSpec.parse("every:3:connect")
        assert spec.every == 3
        assert spec.every_kind == "connect"

    def test_every_defaults_to_query(self):
        assert FaultSpec.parse("every:2").every_kind == "query"

    def test_down_and_seed(self):
        spec = FaultSpec.parse("down,seed:7")
        assert spec.down is True
        assert spec.seed == 7

    def test_whitespace_tolerated(self):
        spec = FaultSpec.parse(" prob:0.1 , seed:2 ")
        assert spec.query == 0.1 and spec.seed == 2

    @pytest.mark.parametrize("bad", [
        "nope:1", "prob:2.0", "prob:-0.1", "prob:x",
        "every:0", "every:1:pool", "seed:abc",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            FaultSpec.parse(bad)


class TestInjectorDeterminism:
    def _fault_pattern(self, injector, operations=200):
        pattern = []
        for _ in range(operations):
            try:
                injector.before_query("SELECT 1")
                pattern.append(None)
            except SQLError as exc:
                pattern.append(type(exc).__name__)
        return pattern

    def test_same_seed_same_faults(self):
        first = FaultInjector.parse("query:0.2,seed:11")
        second = FaultInjector.parse("query:0.2,seed:11")
        assert self._fault_pattern(first) == self._fault_pattern(second)
        assert first.stats() == second.stats()

    def test_different_seed_different_faults(self):
        first = FaultInjector.parse("query:0.2,seed:11")
        second = FaultInjector.parse("query:0.2,seed:12")
        assert self._fault_pattern(first) != self._fault_pattern(second)

    def test_every_nth_is_deterministic(self):
        injector = FaultInjector.parse("every:3")
        pattern = self._fault_pattern(injector, operations=9)
        assert [p is not None for p in pattern] == [
            False, False, True, False, False, True, False, False, True]

    def test_injected_errors_are_transient(self):
        injector = FaultInjector.parse("query:1.0")
        for _ in range(20):
            with pytest.raises(SQLError) as excinfo:
                injector.before_query("SELECT 1")
            assert is_transient(excinfo.value)
            assert excinfo.value.sqlstate in {"40001", "57033", "57030"}

    def test_down_fails_every_connect(self):
        injector = FaultInjector.parse("down")
        for _ in range(5):
            with pytest.raises(SQLConnectError):
                injector.before_connect()
        assert injector.stats()["injected_down"] == 5

    def test_slow_calls_sleep(self):
        stalls = []
        injector = FaultInjector.parse("slow:1.0:0.02",
                                       sleep=stalls.append)
        injector.before_query("SELECT 1")
        assert stalls == [0.02]

    def test_stats_counters(self):
        injector = FaultInjector.parse("query:1.0")
        with pytest.raises(SQLError):
            injector.before_query("SELECT 1")
        injector_stats = injector.stats()
        assert injector_stats["query_ops"] == 1
        assert injector_stats["injected_query"] == 1
        assert injector_stats["injected_total"] == 1
        assert injector_stats["injected_connect"] == 0


class TestWrappedConnections:
    def test_wrap_factory_injects_connect_failures(self, db):
        factory = wrap_factory(db.connect, FaultInjector.parse("down"))
        with pytest.raises(SQLConnectError):
            factory()

    def test_clean_injector_passes_through(self, db):
        factory = wrap_factory(db.connect, FaultInjector())
        with factory() as conn:
            assert conn.execute("SELECT x FROM t").fetchone() == (1,)

    def test_query_fault_raised_before_execution(self, db):
        factory = wrap_factory(db.connect, FaultInjector.parse("every:1"))
        conn = factory()
        with pytest.raises(SQLError):
            conn.execute("INSERT INTO t VALUES (2)")
        conn.close()
        with db.connect() as verify:
            # injection happens *before* the statement touches the
            # database, so no partial state is left behind
            count = verify.execute("SELECT COUNT(*) FROM t").fetchone()
        assert count == (1,)

    def test_disconnect_closes_real_connection(self, db):
        factory = wrap_factory(db.connect,
                               FaultInjector.parse("disconnect:1.0"))
        conn = factory()
        with pytest.raises(SQLConnectError) as excinfo:
            conn.execute("SELECT x FROM t")
        assert excinfo.value.sqlstate == "08006"
        assert conn.closed  # pool health checks see a dead connection

    def test_proxy_delegates_and_generation_writes_through(self, db):
        real = db.connect()
        proxy = FaultyConnection(real, FaultInjector())
        assert proxy.ping()
        marker = object()
        proxy.generation = marker
        assert real.generation is marker
        proxy.close()
        assert real.closed


class TestAmbientInjector:
    def test_install_and_clear(self):
        # restore whatever was ambient before: under a chaos run
        # (--inject-faults) the whole suite shares one injector
        previous = ambient_injector()
        injector = FaultInjector()
        set_ambient_injector(injector)
        try:
            assert ambient_injector() is injector
            set_ambient_injector(None)
            assert ambient_injector() is None
        finally:
            set_ambient_injector(previous)
