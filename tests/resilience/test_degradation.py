"""Graceful degradation: error blocks in reports, 503/504 at the edge."""

import time

from repro.cgi.environ import CgiEnvironment
from repro.cgi.gateway import Db2WwwProgram
from repro.cgi.request import CgiRequest
from repro.core import parse_macro
from repro.core.engine import EngineConfig, MacroEngine
from repro.core.macrofile import MacroLibrary
from repro.sql.gateway import DatabaseRegistry

FAILING_REPORT = """
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT * FROM missing_table %}
%HTML_REPORT{<H1>top</H1>
%EXEC_SQL
<P>after</P>%}
"""


def report_request(path_info: str) -> CgiRequest:
    return CgiRequest(CgiEnvironment(
        request_method="GET",
        script_name="/cgi-bin/db2www",
        path_info=path_info))


def shop_program(registry, config=None) -> Db2WwwProgram:
    library = MacroLibrary()
    library.add_text("shop.d2w", """
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items ORDER BY name %}
%HTML_REPORT{<H1>Found</H1>%EXEC_SQL%}
""")
    engine = MacroEngine(registry, config=config)
    return Db2WwwProgram(engine, library)


class TestReportDegradation:
    def test_default_aborts_on_unhandled_error(self, shop_registry):
        engine = MacroEngine(shop_registry)
        result = engine.execute_report(parse_macro(FAILING_REPORT))
        assert result.aborted and not result.ok
        assert result.sql_errors
        assert "after" not in result.html  # exit stopped the page

    def test_degrade_continues_past_unhandled_error(self, shop_registry):
        engine = MacroEngine(shop_registry,
                             config=EngineConfig(degrade_sql_errors=True))
        result = engine.execute_report(parse_macro(FAILING_REPORT))
        assert not result.aborted
        assert result.sql_errors  # the failure is still reported...
        assert "42704" in result.html  # ...as the default error block
        assert "after" in result.html  # and the report carried on

    def test_degrade_honours_explicit_exit_rule(self, shop_registry):
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT * FROM missing_table
%SQL_MESSAGE{
-204 : "<P>gone</P>" : exit
%}
%}
%HTML_REPORT{%EXEC_SQL
<P>after</P>%}
""")
        engine = MacroEngine(shop_registry,
                             config=EngineConfig(degrade_sql_errors=True))
        result = engine.execute_report(macro)
        assert "<P>gone</P>" in result.html
        assert result.aborted  # the author's exit wins over degradation
        assert "after" not in result.html


class TestSqlMessageViaInjector:
    """%SQL_MESSAGE selection driven by injected transient faults."""

    TEXTS = {-911: "<P>deadlocked</P>", -913: "<P>timed out</P>",
             -1040: "<P>busy</P>"}

    def _macro(self, rules: str):
        return parse_macro(f"""
%DEFINE DATABASE = "SHOP"
%SQL{{ SELECT name FROM items
%SQL_MESSAGE{{
{rules}
%}}
%}}
%HTML_REPORT{{%EXEC_SQL
<P>after</P>%}}
""")

    def test_matching_sqlcode_rule_selected(self, shop_registry):
        shop_registry.inject_faults("every:1,seed:5")
        macro = self._macro(
            '-911 : "<P>deadlocked</P>" : continue\n'
            '-913 : "<P>timed out</P>" : continue\n'
            '-1040 : "<P>busy</P>" : continue')
        result = MacroEngine(shop_registry).execute_report(macro)
        assert result.sql_errors
        # the rule matching the injected error's SQLCODE was rendered
        assert self.TEXTS[result.sql_errors[0].sqlcode] in result.html
        assert "after" in result.html  # its continue action honoured

    def test_unmatched_sqlcode_falls_to_default_rule(self, shop_registry):
        shop_registry.inject_faults("every:1,seed:5")
        macro = self._macro(
            '-803 : "<P>dup</P>" : exit\n'
            'default : "<P>fallback $(SQL_STATE)</P>" : continue')
        result = MacroEngine(shop_registry).execute_report(macro)
        assert "<P>dup</P>" not in result.html
        assert "fallback" in result.html
        error = result.sql_errors[0]
        assert error.sqlstate in result.html  # $(SQL_STATE) substituted
        assert "after" in result.html


class TestUnavailabilityAtTheEdge:
    def _down_registry(self, *, threshold=2) -> DatabaseRegistry:
        registry = DatabaseRegistry()
        db = registry.register_memory("SHOP")
        with db.connect() as conn:
            conn.executescript(
                "CREATE TABLE items (name TEXT);"
                "INSERT INTO items VALUES ('bikes');")
        registry.inject_faults("down")
        registry.enable_breakers(failure_threshold=threshold,
                                 reset_timeout=60.0)
        return registry

    def test_breaker_trips_to_503_with_retry_after(self):
        registry = self._down_registry(threshold=2)
        program = shop_program(registry)
        request = report_request("/shop.d2w/report")
        # below the threshold the connect failure degrades into the page
        for _ in range(2):
            assert program.run(request).status == 200
        response = program.run(request)  # breaker now open
        assert response.status == 503
        assert int(response.header("Retry-After")) >= 1
        assert registry.breaker("SHOP").stats()["opens"] == 1

    def test_open_breaker_fails_fast(self):
        registry = self._down_registry(threshold=1)
        program = shop_program(registry)
        request = report_request("/shop.d2w/report")
        program.run(request)  # trips the breaker
        started = time.perf_counter()
        response = program.run(request)
        elapsed = time.perf_counter() - started
        assert response.status == 503
        assert elapsed < 0.05  # the acceptance bar: reject in <50 ms

    def test_sql_message_rule_can_claim_unavailability(self):
        """A macro author may opt unavailability back into the page."""
        registry = self._down_registry(threshold=1)
        library = MacroLibrary()
        library.add_text("shop.d2w", """
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items
%SQL_MESSAGE{
-30081 : "<P>backend napping</P>" : continue
%}
%}
%HTML_REPORT{%EXEC_SQL
<P>after</P>%}
""")
        program = Db2WwwProgram(MacroEngine(registry), library)
        request = report_request("/shop.d2w/report")
        program.run(request)  # trips the breaker
        response = program.run(request)  # CircuitOpenError, rule matches
        assert response.status == 200
        assert "backend napping" in response.text
        assert "after" in response.text

    def test_pool_exhaustion_maps_to_503(self, shop_registry):
        pool = shop_registry.attach_pool("SHOP", size=1, timeout=0.01)
        program = shop_program(shop_registry)
        held = pool.acquire()  # starve the pool
        try:
            response = program.run(report_request("/shop.d2w/report"))
        finally:
            pool.release(held)
        assert response.status == 503
        assert response.header("Retry-After")

    def test_spent_deadline_maps_to_504(self, shop_registry):
        program = shop_program(
            shop_registry, config=EngineConfig(request_deadline=0.0))
        response = program.run(report_request("/shop.d2w/report"))
        assert response.status == 504
