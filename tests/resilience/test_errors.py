"""The DB2-flavoured error taxonomy behind the resilience layer.

Satellite coverage for the SQLSTATE mapping: the retry loop, breaker
and HTTP status mapping all key off these classes, so their codes are
pinned here exactly.
"""

import pytest

from repro.errors import (
    CircuitOpenError,
    ConnectionClosedError,
    DeadlineExceededError,
    PoolExhaustedError,
    SQLConnectError,
    SQLDeadlockError,
    SQLError,
    SQLTimeoutError,
    SQLTransientError,
    TRANSIENT_SQLSTATES,
    is_transient,
)


class TestSqlstateMapping:
    @pytest.mark.parametrize("cls,sqlcode,sqlstate", [
        (SQLConnectError, -30081, "08001"),
        (SQLDeadlockError, -911, "40001"),
        (SQLTimeoutError, -913, "57033"),
        (PoolExhaustedError, -1040, "57030"),
        (CircuitOpenError, -30081, "08004"),
        (DeadlineExceededError, -952, "57014"),
    ])
    def test_codes(self, cls, sqlcode, sqlstate):
        error = cls("boom")
        assert error.sqlcode == sqlcode
        assert error.sqlstate == sqlstate

    def test_connect_error_carries_custom_sqlstate(self):
        assert SQLConnectError("lost", sqlstate="08006").sqlstate == "08006"

    def test_circuit_open_carries_retry_after(self):
        assert CircuitOpenError("open", retry_after=2.5).retry_after == 2.5

    def test_transient_states_are_the_db2_unavailability_classes(self):
        assert TRANSIENT_SQLSTATES == {"40001", "57030", "57033"}


class TestIsTransient:
    @pytest.mark.parametrize("error", [
        SQLConnectError("down"),
        SQLDeadlockError("deadlock"),
        SQLTimeoutError("timeout"),
        PoolExhaustedError("57030: no slot"),
        CircuitOpenError("open"),
        SQLTransientError("generic transient"),
        ConnectionClosedError("closed"),
    ])
    def test_transient_classes(self, error):
        assert is_transient(error)

    def test_foreign_error_by_sqlstate_class_08(self):
        assert is_transient(SQLError("lost", sqlstate="08006"))

    def test_foreign_error_by_listed_sqlstate(self):
        assert is_transient(SQLError("busy", sqlstate="57030"))

    @pytest.mark.parametrize("error", [
        DeadlineExceededError("spent"),  # retrying cannot help
        SQLError("syntax", sqlstate="42601"),
        SQLError("no state"),
        ValueError("not sql at all"),
    ])
    def test_non_transient(self, error):
        assert not is_transient(error)
