"""Chaos acceptance: a concurrent workload survives injected faults.

The ISSUE's acceptance bar: under ~5% injected transient faults, a
1 000-request concurrent workload completes with zero unhandled
exceptions and ≥99% of requests eventually succeeding through
retries/degradation.
"""

import pytest

from repro.apps import build_site
from repro.apps import urlquery as urlquery_app
from repro.core import parse_macro
from repro.core.engine import EngineConfig, MacroEngine
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy
from repro.sql.gateway import DatabaseRegistry
from repro.workloads.concurrent import run_concurrent
from repro.workloads.generator import UrlQueryWorkload
from repro.workloads.metrics import ResilienceReport
from repro.workloads.runner import db2www_request_builder

pytestmark = pytest.mark.chaos


@pytest.fixture()
def chaos_site(fault_spec):
    registry = DatabaseRegistry()
    engine = MacroEngine(registry, config=EngineConfig(
        retry_policy=RetryPolicy(max_attempts=4, base_delay=0.001,
                                 max_delay=0.01),
        degrade_sql_errors=True))
    app = urlquery_app.install(rows=40, registry=registry, engine=engine)
    # wired after seeding: the faults hit the workload, not the setup
    registry.inject_faults(fault_spec)
    return build_site(app.engine, app.library), registry


class TestChaosWorkload:
    def test_1k_requests_survive_5pct_faults(self, chaos_site):
        site, registry = chaos_site
        result = run_concurrent(
            site.gateway, UrlQueryWorkload(seed=96).requests(1000),
            db2www_request_builder("urlquery.d2w"), threads=8)
        # every request produced a response: no worker thread died to
        # an unhandled exception
        assert result.summary.count == 1000
        assert result.success_rate >= 0.99
        # 500s would mean real breakage; transient trouble must surface
        # as degraded pages (200) or load-shedding (503), never a crash
        assert result.status_counts.get(500, 0) == 0
        stats = registry.resilience_stats()
        assert stats["injected_total"] > 0  # the chaos actually happened
        assert stats["retries"] > 0  # ...and retries did the absorbing
        report = ResilienceReport.from_stats(stats)
        assert report.injected_total == stats["injected_total"]
        assert report.retries == stats["retries"]

    def test_without_retry_the_same_chaos_hurts(self, fault_spec):
        """Control run: the resilience knobs are what saves the workload."""
        registry = DatabaseRegistry()
        engine = MacroEngine(registry)  # no retry, no degradation
        app = urlquery_app.install(rows=40, registry=registry,
                                   engine=engine)
        registry.inject_faults(fault_spec)
        result = run_concurrent(
            site_gateway(app), UrlQueryWorkload(seed=96).requests(400),
            db2www_request_builder("urlquery.d2w"), threads=4,
            check=lambda response: (response.status < 400
                                    and b"SQLSTATE" not in response.body
                                    and b"injected" not in response.body))
        # some requests must have been visibly hurt by the faults —
        # otherwise the acceptance run above proves nothing
        assert result.failures > 0


def site_gateway(app):
    return build_site(app.engine, app.library).gateway


class TestAmbientAbsorption:
    def test_ambient_faults_absorbed_by_default_retry(self, shop_registry):
        """Chaos mode's contract: injected read faults never surface."""
        previous = faults.ambient_injector()
        faults.set_ambient_injector(
            faults.FaultInjector.parse("query:0.1,seed:9"))
        try:
            engine = MacroEngine(shop_registry)
            macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items ORDER BY name %}
%HTML_REPORT{%EXEC_SQL%}
""")
            retries = 0
            for _ in range(50):
                result = engine.execute_report(macro)
                assert result.ok, result.sql_errors
                assert "bikes" in result.html
                retries += result.retries
            assert retries > 0  # faults fired and were retried away
        finally:
            faults.set_ambient_injector(previous)
