"""Circuit breaker: trip, fail fast, half-open probe, recovery."""

import time

import pytest

from repro.errors import CircuitOpenError, SQLConnectError
from repro.resilience.breaker import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def tripped(clock, *, threshold=3, reset=1.0) -> CircuitBreaker:
    breaker = CircuitBreaker(failure_threshold=threshold,
                             reset_timeout=reset, name="TESTDB",
                             clock=clock)
    for _ in range(threshold):
        breaker.allow()
        breaker.record_failure()
    return breaker


class TestTripping:
    def test_closed_below_threshold(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.allow()  # still admitting

    def test_opens_at_threshold(self, clock):
        breaker = tripped(clock)
        assert breaker.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_success_resets_consecutive_count(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        for _ in range(5):  # alternating: never 3 in a row
            breaker.allow()
            breaker.record_failure()
            breaker.allow()
            breaker.record_failure()
            breaker.allow()
            breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_rejection_carries_retry_after(self, clock):
        breaker = tripped(clock, reset=10.0)
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after == pytest.approx(6.0)
        assert excinfo.value.sqlstate == "08004"

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestHalfOpen:
    def test_probe_admitted_after_reset_timeout(self, clock):
        breaker = tripped(clock, reset=1.0)
        clock.advance(1.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.allow()  # the probe goes through

    def test_single_probe_rule(self, clock):
        breaker = tripped(clock, reset=1.0)
        clock.advance(1.0)
        breaker.allow()  # probe in flight
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # concurrent caller rejected meanwhile

    def test_successful_probe_closes(self, clock):
        breaker = tripped(clock, reset=1.0)
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        breaker.allow()  # normal admission resumed

    def test_failed_probe_reopens(self, clock):
        breaker = tripped(clock, reset=1.0)
        clock.advance(1.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_reopened_breaker_waits_full_reset_again(self, clock):
        breaker = tripped(clock, reset=1.0)
        clock.advance(1.0)
        breaker.allow()
        breaker.record_failure()  # failed probe at t=1.0
        clock.advance(0.5)
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.advance(0.5)  # full reset_timeout since the re-open
        breaker.allow()


class TestCallWrapper:
    def test_call_records_outcomes(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        with pytest.raises(SQLConnectError):
            breaker.call(lambda: (_ for _ in ()).throw(
                SQLConnectError("down")))
        assert breaker.state is BreakerState.OPEN
        clock.advance(breaker.reset_timeout)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state is BreakerState.CLOSED


class TestObservability:
    def test_stats_counters(self, clock):
        breaker = tripped(clock, threshold=2, reset=1.0)
        for _ in range(3):
            with pytest.raises(CircuitOpenError):
                breaker.allow()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        stats = breaker.stats()
        assert stats["opens"] == 1
        assert stats["rejections"] == 3
        assert stats["probes"] == 1  # the single half-open probe
        assert stats["consecutive_failures"] == 0


class TestFailFast:
    def test_open_breaker_rejects_in_microseconds(self):
        """The acceptance bar: rejection must cost ~nothing (<50 ms)."""
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        breaker.allow()
        breaker.record_failure()
        started = time.perf_counter()
        for _ in range(100):
            with pytest.raises(CircuitOpenError):
                breaker.allow()
        elapsed = time.perf_counter() - started
        assert elapsed / 100 < 0.05
