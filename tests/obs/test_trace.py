"""Tracer semantics: span trees, gating, propagation, grafting."""

import pytest

from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    new_trace_id,
    statement_digest,
)


@pytest.fixture()
def tracer():
    """A private enabled tracer with a capture sink."""
    tracer = Tracer()
    tracer.enable()
    tracer.captured = []
    tracer.add_sink(tracer.captured.append)
    return tracer


class TestGating:
    def test_disabled_tracer_returns_shared_noop(self):
        tracer = Tracer()
        with tracer.span("anything") as span:
            assert span is NOOP_SPAN
            span.set("ignored", 1)  # absorbed, never raises

    def test_begin_returns_none_when_disabled(self):
        assert Tracer().begin("request") is None

    def test_disabled_tracer_has_no_current_span(self, tracer):
        tracer.disable()
        with tracer.span("x"):
            assert tracer.current() is None
        assert tracer.current_trace_id() == ""


class TestSpanTrees:
    def test_nested_spans_form_a_tree(self, tracer):
        with tracer.span("request") as root:
            with tracer.span("sql.execute") as sql:
                sql.set("digest", "abc")
            with tracer.span("report.render"):
                pass
        assert [child.name for child in root.children] == \
            ["sql.execute", "report.render"]
        assert all(child.trace_id == root.trace_id
                   for child in root.children)
        assert all(child.parent_id == root.span_id
                   for child in root.children)

    def test_only_the_root_is_delivered(self, tracer):
        with tracer.span("request"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.captured] == ["request"]

    def test_exception_marks_the_span_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("request"):
                raise ValueError("boom")
        (root,) = tracer.captured
        assert root.attrs["error"] == "ValueError"
        assert root.end is not None

    def test_walk_and_phase_totals(self, tracer):
        with tracer.span("request"):
            with tracer.span("sql.execute"):
                pass
            with tracer.span("sql.execute"):
                pass
        (root,) = tracer.captured
        assert [span.name for span in root.walk()] == \
            ["request", "sql.execute", "sql.execute"]
        totals = root.phase_totals()
        assert set(totals) == {"request", "sql.execute"}
        assert totals["sql.execute"] >= 0.0

    def test_broken_sink_does_not_break_delivery(self, tracer):
        def bad_sink(root):
            raise RuntimeError("sink died")

        tracer._sinks.insert(0, bad_sink)
        with tracer.span("request"):
            pass
        assert len(tracer.captured) == 1


class TestActiveSpan:
    def test_begin_activates_and_finish_delivers(self, tracer):
        act = tracer.begin("request", trace_id="tid-1")
        assert tracer.current() is act.span
        assert tracer.current_trace_id() == "tid-1"
        act.finish()
        assert tracer.current() is None
        assert [span.trace_id for span in tracer.captured] == ["tid-1"]

    def test_reactivation_around_streaming_pulls(self, tracer):
        act = tracer.begin("request")
        act.deactivate()
        assert tracer.current() is None
        act.activate()
        with tracer.span("sql.execute"):
            pass
        act.finish()
        (root,) = tracer.captured
        assert [child.name for child in root.children] == ["sql.execute"]

    def test_finish_is_idempotent(self, tracer):
        act = tracer.begin("request")
        act.finish()
        act.finish()
        assert len(tracer.captured) == 1


class TestSerialisation:
    def test_to_dict_offsets_are_relative_to_parent(self, tracer):
        with tracer.span("request") as root:
            with tracer.span("child"):
                pass
        record = root.to_dict()
        assert record["offset_ms"] == 0.0
        child = record["children"][0]
        assert child["name"] == "child"
        assert child["offset_ms"] >= 0.0
        assert child["trace_id"] == root.trace_id

    def test_from_dict_round_trips_shape_and_durations(self, tracer):
        with tracer.span("worker") as root:
            root.set("pid", 42)
            with tracer.span("sql.execute"):
                pass
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.name == "worker"
        assert rebuilt.remote is True
        assert rebuilt.attrs["pid"] == 42
        assert [child.name for child in rebuilt.children] == \
            ["sql.execute"]
        assert rebuilt.duration_ms == pytest.approx(
            root.duration_ms, abs=0.002)


class TestGraft:
    def test_worker_tree_joins_the_live_trace(self, tracer):
        exported = {
            "name": "worker", "trace_id": "tid-9", "span_id": 1,
            "offset_ms": 0.0, "duration_ms": 5.0,
            "children": [{"name": "sql.execute", "trace_id": "tid-9",
                          "span_id": 2, "offset_ms": 1.0,
                          "duration_ms": 3.0}],
        }
        act = tracer.begin("request", trace_id="tid-9")
        grafted = tracer.graft(exported)
        act.finish()
        assert grafted.remote is True
        assert grafted.parent_id == act.span.span_id
        (root,) = tracer.captured
        names = [span.name for span in root.walk()]
        assert names == ["request", "worker", "sql.execute"]
        assert {span.trace_id for span in root.walk()} == {"tid-9"}

    def test_remote_offsets_zero_at_the_clock_boundary(self, tracer):
        """A grafted tree's root offset is 0 — its clock is foreign."""
        with tracer.span("request") as root:
            tracer.graft({"name": "worker", "trace_id": root.trace_id,
                          "span_id": 1, "offset_ms": 123.0,
                          "duration_ms": 5.0})
        record = root.to_dict()
        assert record["children"][0]["offset_ms"] == 0.0

    def test_graft_without_active_span_is_a_noop(self, tracer):
        assert tracer.graft({"name": "worker"}) is None


class TestIds:
    def test_trace_ids_are_unique(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100

    def test_statement_digest_is_short_and_stable(self):
        sql = "SELECT * FROM urldb WHERE title LIKE '%ibm%'"
        assert statement_digest(sql) == statement_digest(sql)
        assert len(statement_digest(sql)) == 12
        assert statement_digest(sql) != statement_digest(sql + " ")
