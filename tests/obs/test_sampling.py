"""Tail-based trace sampling: keep what matters, bound the rest."""

import random

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import TailSampler, parse_sample_spec
from repro.obs.trace import Span


def make_root(*, name="request", duration_ms=1.0, attrs=None,
              digests=(), error_in_child=False):
    """A deterministic finished span tree (synthetic clock)."""
    children = []
    for digest in digests:
        children.append({"name": "sql.execute", "trace_id": "t",
                         "span_id": 2, "offset_ms": 0.0,
                         "duration_ms": 0.5,
                         "attrs": {"digest": digest}})
    if error_in_child:
        children.append({"name": "sql.execute", "trace_id": "t",
                         "span_id": 3, "offset_ms": 0.0,
                         "duration_ms": 0.5,
                         "attrs": {"error": "SQLError"}})
    return Span.from_dict({"name": name, "trace_id": "t", "span_id": 1,
                           "offset_ms": 0.0,
                           "duration_ms": duration_ms,
                           "attrs": dict(attrs or {}),
                           "children": children})


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestParseSampleSpec:
    def test_bare_on_takes_defaults(self):
        assert parse_sample_spec("on") == {}
        assert parse_sample_spec("1") == {}
        assert parse_sample_spec("") == {}

    def test_full_spec(self):
        assert parse_sample_spec(
            "slo_ms=250, per_key=3, window_s=30, head=0.01") == {
            "slo_ms": 250.0, "per_key": 3, "window_s": 30.0,
            "head_probability": 0.01}

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            parse_sample_spec("rate=0.5")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ValueError, match="key=number"):
            parse_sample_spec("slo_ms=fast")


class TestDecision:
    def test_error_anywhere_in_the_tree_is_kept(self):
        sampler = TailSampler(per_key=0)
        keep, reason = sampler.decide(
            make_root(digests=["d1"], error_in_child=True))
        assert (keep, reason) == (True, "error")

    def test_5xx_status_is_kept(self):
        sampler = TailSampler(per_key=0)
        keep, reason = sampler.decide(
            make_root(attrs={"status": 503}))
        assert (keep, reason) == (True, "error")

    def test_over_slo_root_is_kept(self):
        sampler = TailSampler(slo_ms=100.0, per_key=0)
        keep, reason = sampler.decide(make_root(duration_ms=250.0))
        assert (keep, reason) == (True, "over_slo")
        keep, _ = sampler.decide(make_root(duration_ms=10.0))
        assert not keep

    def test_reservoir_keeps_the_first_n_per_digest_set(self):
        clock = FakeClock()
        sampler = TailSampler(per_key=2, window_s=60.0, clock=clock)
        decisions = [sampler.decide(make_root(digests=["d1"]))
                     for _ in range(4)]
        assert [keep for keep, _ in decisions] == \
            [True, True, False, False]
        # a different digest set owns its own reservoir
        keep, reason = sampler.decide(make_root(digests=["d2"]))
        assert (keep, reason) == (True, "reservoir")

    def test_reservoir_window_resets(self):
        clock = FakeClock()
        sampler = TailSampler(per_key=1, window_s=60.0, clock=clock)
        assert sampler.decide(make_root(digests=["d1"]))[0]
        assert not sampler.decide(make_root(digests=["d1"]))[0]
        clock.now += 61.0
        assert sampler.decide(make_root(digests=["d1"]))[0]

    def test_spanless_requests_reservoir_on_target(self):
        sampler = TailSampler(per_key=1)
        keep, reason = sampler.decide(
            make_root(attrs={"target": "/page"}))
        assert (keep, reason) == (True, "reservoir")
        assert not sampler.decide(
            make_root(attrs={"target": "/page"}))[0]

    def test_head_probability_is_the_fallthrough(self):
        sampler = TailSampler(per_key=0, head_probability=1.0,
                              rng=random.Random(7))
        keep, reason = sampler.decide(make_root())
        assert (keep, reason) == (True, "head")
        sampler = TailSampler(per_key=0, head_probability=0.0)
        assert not sampler.decide(make_root())[0]


class TestSinkSurface:
    def test_kept_traces_forward_to_wrapped_sinks(self):
        captured = []
        sampler = TailSampler(captured.append, per_key=1)
        sampler(make_root(digests=["d1"]))
        sampler(make_root(digests=["d1"]))  # reservoir full: dropped
        assert len(captured) == 1
        stats = sampler.stats()
        assert stats["kept_total"] == 1
        assert stats["kept_reservoir"] == 1
        assert stats["dropped_total"] == 1

    def test_broken_wrapped_sink_is_swallowed(self):
        def boom(root):
            raise RuntimeError("sink died")
        captured = []
        sampler = TailSampler(boom, captured.append, per_key=1)
        sampler(make_root(digests=["d1"]))
        assert len(captured) == 1

    def test_registry_counters_track_the_decisions(self):
        registry = MetricsRegistry()
        sampler = TailSampler(lambda root: None, per_key=1,
                              registry=registry)
        sampler(make_root(digests=["d1"]))
        sampler(make_root(digests=["d1"]))
        flat = registry.flat()
        assert flat["trace_sampler_kept_total"] == 1
        assert flat["trace_sampler_dropped_total"] == 1
