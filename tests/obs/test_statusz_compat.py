"""The registry absorbs the legacy stats bags without renaming keys.

Before the observability layer, ``AccessLog.stats`` flattened attached
``stats()`` callables to ``<name>_<key>``; the ``#stats`` trailer and
``repro stats`` consume those names.  The same bags now attach to the
:class:`~repro.obs.metrics.MetricsRegistry` — these tests pin the key
compatibility across every read path.
"""

from repro.http.accesslog import AccessLog
from repro.obs.metrics import MetricsRegistry
from repro.sql.gateway import DatabaseRegistry
from repro.sql.querycache import QueryResultCache
from repro.workloads.metrics import (
    CacheReport,
    ResilienceReport,
    WorkerReport,
)


def exercised_cache() -> QueryResultCache:
    from types import SimpleNamespace
    cache = QueryResultCache(max_entries=4)
    result = SimpleNamespace(is_query=True, rows=[])
    cache.get("URLDB", "SELECT 1", 0)          # miss
    cache.put("URLDB", "SELECT 1", 0, result)
    cache.get("URLDB", "SELECT 1", 0)          # hit
    return cache


class TestHistoricalKeyNames:
    def test_query_cache_keys_match_the_legacy_flattening(self):
        cache = exercised_cache()
        legacy = AccessLog()
        legacy.attach_stats_source("query_cache", cache.stats)
        registry = MetricsRegistry()
        registry.attach_stats_source("query_cache", cache.stats)
        flat = registry.flat()
        legacy_keys = {key for key in legacy.stats()
                       if key.startswith("query_cache_")}
        assert legacy_keys  # the bag is non-trivial
        assert legacy_keys <= set(flat)
        assert flat["query_cache_hits"] == 1
        assert flat["query_cache_misses"] == 1

    def test_resilience_registry_keys_survive(self):
        registry = MetricsRegistry()
        db = DatabaseRegistry()
        registry.attach_stats_source("resilience", db.resilience_stats)
        flat = registry.flat()
        for key in ("retries", "breaker_opens", "pool_evicted"):
            assert f"resilience_{key}" in flat

    def test_delegating_access_log_produces_the_same_trailer_keys(self):
        """AccessLog(metrics=...) routes sources through the registry;
        stats() must show the exact keys a bare AccessLog produced."""
        cache = exercised_cache()
        bare = AccessLog()
        bare.attach_stats_source("query_cache", cache.stats)
        delegating = AccessLog(metrics=MetricsRegistry())
        delegating.attach_stats_source("query_cache", cache.stats)
        bare_stats = bare.stats()
        delegating_stats = delegating.stats()
        assert set(bare_stats) <= set(delegating_stats)
        for key in bare_stats:
            assert delegating_stats[key] == bare_stats[key]

    def test_source_lands_on_the_registry_not_the_log(self):
        registry = MetricsRegistry()
        log = AccessLog(metrics=registry)
        log.attach_stats_source("query_cache", lambda: {"hits": 3})
        assert registry.source_names() == ["query_cache"]
        assert log._stats_sources == {}
        assert registry.flat()["query_cache_hits"] == 3


class TestWorkloadReportsStillParse:
    """The report dataclasses read the flattened dicts the bags emit."""

    def test_cache_report_from_registry_source(self):
        registry = MetricsRegistry()
        registry.attach_stats_source("query_cache",
                                     exercised_cache().stats)
        polled = registry.snapshot()["sources"]["query_cache"]
        report = CacheReport.from_stats(polled)
        assert report.hits == 1
        assert report.lookups == 2

    def test_resilience_report_from_registry_source(self):
        registry = MetricsRegistry()
        registry.attach_stats_source(
            "resilience", DatabaseRegistry().resilience_stats)
        polled = registry.snapshot()["sources"]["resilience"]
        report = ResilienceReport.from_stats(polled)
        assert report.retries == 0

    def test_worker_report_shape_is_stable(self):
        report = WorkerReport.from_stats(
            {"workers": 2, "requests": 9, "recycles": 1, "crashes": 0,
             "crash_retries": 0, "busy_timeouts": 0})
        assert report.workers == 2
        assert report.requests == 9
