"""MetricsRegistry: counters, gauges, streaming histograms, sources."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("requests")
        registry.inc("requests", 4)
        assert registry.counter("requests").value == 5

    def test_counter_is_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("workers", 4)
        registry.set_gauge("workers", 2)
        assert registry.gauge("workers").value == 2


class TestHistogram:
    def test_empty_snapshot_is_all_zero(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == snap["p95"] == snap["p99"] == 0.0

    def test_single_sample_quantiles_report_the_sample(self):
        hist = Histogram("h")
        hist.observe(12.0)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == 12.0
        # bucket edges are clamped to the observed extremes
        assert snap["p50"] == pytest.approx(12.0, rel=0.15)

    def test_quantiles_within_bucket_error(self):
        """Log-spaced buckets (factor 1.25) keep relative error ~12%."""
        hist = Histogram("h")
        for value in range(1, 1001):  # 1ms .. 1000ms uniform
            hist.observe(float(value))
        assert hist.quantile(0.50) == pytest.approx(500.0, rel=0.15)
        assert hist.quantile(0.95) == pytest.approx(950.0, rel=0.15)
        assert hist.quantile(0.99) == pytest.approx(990.0, rel=0.15)

    def test_sum_and_mean_are_exact(self):
        hist = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["sum"] == 6.0
        assert snap["mean"] == 2.0

    def test_observations_beyond_last_bound_still_count(self):
        hist = Histogram("h")
        hist.observe(10_000_000.0)  # past the 10-minute top bucket
        assert hist.count == 1
        assert hist.quantile(0.5) > 0


class TestFlatView:
    def test_flat_flattens_histograms(self):
        registry = MetricsRegistry()
        registry.inc("hits", 3)
        registry.observe("latency_ms", 5.0)
        flat = registry.flat()
        assert flat["hits"] == 3
        assert flat["latency_ms_count"] == 1
        for suffix in ("mean", "p50", "p95", "p99"):
            assert f"latency_ms_{suffix}" in flat

    def test_sources_keep_historical_key_names(self):
        registry = MetricsRegistry()
        registry.attach_stats_source("query_cache",
                                     lambda: {"hits": 7, "misses": 2})
        flat = registry.flat()
        assert flat["query_cache_hits"] == 7
        assert flat["query_cache_misses"] == 2

    def test_broken_source_does_not_break_the_surface(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("bag exploded")

        registry.attach_stats_source("bad", broken)
        registry.inc("ok")
        assert registry.flat()["ok"] == 1
        assert registry.snapshot()["sources"]["bad"] == {}
        assert "ok 1" in registry.render_text()


class TestSnapshot:
    def test_snapshot_is_nested_and_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.inc("hits")
        registry.set_gauge("pool", 3)
        registry.observe("latency_ms", 1.0)
        registry.attach_stats_source("cache", lambda: {"hits": 1})
        snap = registry.snapshot()
        assert snap["counters"] == {"hits": 1}
        assert snap["gauges"] == {"pool": 3}
        assert snap["histograms"]["latency_ms"]["count"] == 1
        assert snap["sources"]["cache"] == {"hits": 1}
        json.dumps(snap)  # must serialise as-is


class TestTextExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.inc("http_requests_total", 2)
        registry.set_gauge("pool_size", 4)
        text = registry.render_text()
        assert "# TYPE http_requests_total counter" in text
        assert "http_requests_total 2" in text
        assert "# TYPE pool_size gauge" in text
        assert "pool_size 4" in text
        assert text.endswith("\n")

    def test_histogram_renders_as_summary_with_quantiles(self):
        registry = MetricsRegistry()
        registry.observe("request_latency_ms", 10.0)
        text = registry.render_text()
        assert "# TYPE request_latency_ms summary" in text
        assert 'request_latency_ms{quantile="0.5"}' in text
        assert 'request_latency_ms{quantile="0.99"}' in text
        assert "request_latency_ms_count 1" in text
        assert "request_latency_ms_sum 10" in text

    def test_metric_names_are_sanitized_for_scraping(self):
        registry = MetricsRegistry()
        registry.attach_stats_source("worker-pool",
                                     lambda: {"busy%": 1})
        text = registry.render_text()
        assert "worker_pool_busy_ 1" in text
        assert "worker-pool" not in text
