"""SLO burn-rate gauges over the router's own counters and histogram."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTracker


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


@pytest.fixture()
def setup():
    registry = MetricsRegistry()
    clock = FakeClock()
    tracker = SloTracker(registry, availability_target=0.999,
                         latency_slo_ms=100.0, latency_target=0.99,
                         windows=(("5m", 300.0),), clock=clock)
    return registry, clock, tracker


def drive(registry, *, requests=0, errors=0, slow=0, fast=0):
    registry.counter("http_requests_total").inc(requests)
    registry.counter("http_errors_total").inc(errors)
    latency = registry.histogram("request_latency_ms")
    for _ in range(slow):
        latency.observe(5000.0)  # way past the 100ms SLO boundary
    for _ in range(fast):
        latency.observe(1.0)


class TestBurnRates:
    def test_no_traffic_reads_zero_burn(self, setup):
        _, _, tracker = setup
        stats = tracker.stats()
        assert stats["availability_burn_5m"] == 0.0
        assert stats["latency_burn_5m"] == 0.0

    def test_availability_burn_is_error_fraction_over_budget(
            self, setup):
        registry, clock, tracker = setup
        tracker.tick()  # baseline at t0
        clock.now += 10.0
        # 1% errors against a 0.1% budget: burn 10x
        drive(registry, requests=1000, errors=10)
        stats = tracker.stats()
        assert stats["availability_burn_5m"] == pytest.approx(10.0)
        assert stats["error_fraction_5m"] == pytest.approx(0.01)

    def test_latency_burn_counts_over_slo_observations(self, setup):
        registry, clock, tracker = setup
        tracker.tick()
        clock.now += 10.0
        # 5% of requests over the SLO against a 1% budget: burn 5x
        drive(registry, requests=100, slow=5, fast=95)
        stats = tracker.stats()
        assert stats["latency_burn_5m"] == pytest.approx(5.0)
        assert stats["slow_fraction_5m"] == pytest.approx(0.05)

    def test_burn_of_one_consumes_budget_exactly_at_target(self, setup):
        registry, clock, tracker = setup
        tracker.tick()
        clock.now += 10.0
        drive(registry, requests=1000, errors=1)  # exactly the budget
        assert tracker.stats()["availability_burn_5m"] == \
            pytest.approx(1.0)

    def test_window_diffs_forget_old_traffic(self, setup):
        registry, clock, tracker = setup
        drive(registry, requests=100, errors=100)  # ancient incident
        tracker.tick()
        clock.now += 400.0  # past the 5m window
        tracker.tick()
        clock.now += 10.0
        drive(registry, requests=100)  # clean recent traffic
        stats = tracker.stats()
        assert stats["availability_burn_5m"] == 0.0

    def test_scrape_bursts_collapse_onto_one_sample(self, setup):
        _, clock, tracker = setup
        tracker.tick()
        clock.now += 0.2
        tracker.tick()  # within MIN_SAMPLE_SPACING: not retained
        assert len(tracker._samples) == 1

    def test_targets_ride_the_stats_bag(self, setup):
        _, _, tracker = setup
        stats = tracker.stats()
        assert stats["availability_target"] == 0.999
        assert stats["latency_target"] == 0.99
        assert stats["latency_slo_ms"] == 100.0

    def test_invalid_targets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            SloTracker(registry, availability_target=1.0)
        with pytest.raises(ValueError):
            SloTracker(registry, latency_target=0.0)

    def test_over_slo_helper(self, setup):
        _, _, tracker = setup
        assert tracker.over_slo(150.0)
        assert not tracker.over_slo(50.0)

    def test_multi_window_gauges_emit_per_label(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        tracker = SloTracker(registry, clock=clock)
        stats = tracker.stats()
        for label in ("5m", "1h", "6h"):
            assert f"availability_burn_{label}" in stats
            assert f"latency_burn_{label}" in stats
