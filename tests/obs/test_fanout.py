"""Fused + deferred trace delivery: summarize() and FanoutSink."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import TailSampler
from repro.obs.sinks import FanoutSink, MetricsBridge
from repro.obs.trace import Tracer, TraceSummary, summarize
from repro.sql.digest import StatementStats


@pytest.fixture()
def tracer():
    tracer = Tracer()
    tracer.enable()
    return tracer


def run_request(tracer, *, sql_ms=2.0, error=False, digest="deadbeef0123"):
    """One synthetic request trace with a single sql.execute span."""
    with tracer.span("request") as root:
        root.set("path", "/cgi-bin/db2www/urlquery.d2w/report")
        root.set("target", "/cgi-bin/db2www/urlquery.d2w/report")
        with tracer.span("parse") as parse:
            parse.end = parse.start + 0.001
        with tracer.span("sql.execute") as sql:
            sql.set("digest", digest)
            sql.set("sql", "SELECT * FROM urldb")
            sql.set("rows", 3)
            if error:
                sql.set("error", "deadlock")
            sql.end = sql.start + sql_ms / 1000.0  # pin the duration
    return root


class TestSummarize:
    def test_totals_match_the_tree_walk(self, tracer):
        root = run_request(tracer, sql_ms=5.0)
        summary = summarize(root)
        assert summary.root is root
        assert set(summary.totals) == {"request", "parse", "sql.execute"}
        assert summary.totals["sql.execute"] == pytest.approx(5.0)
        # Same numbers the span tree itself reports (which rounds).
        rounded = {name: round(ms, 3) for name, ms in summary.totals.items()}
        assert rounded == root.phase_totals()

    def test_sql_spans_collected_and_error_flag(self, tracer):
        clean = summarize(run_request(tracer))
        assert clean.has_error is False
        (sql,) = clean.sql_spans
        assert sql.name == "sql.execute"
        errored = summarize(run_request(tracer, error=True))
        assert errored.has_error is True

    def test_sql_free_trace_has_no_sql_spans(self, tracer):
        with tracer.span("request") as root:
            with tracer.span("render"):
                pass
        summary = summarize(root)
        assert not summary.sql_spans
        assert summary.has_error is False


class TestFanoutInline:
    def test_on_summary_consumers_share_one_summary(self, tracer):
        seen = []

        class Consumer:
            def on_summary(self, summary):
                seen.append(summary)

        fanout = FanoutSink(Consumer(), Consumer())
        tracer.add_sink(fanout)
        root = run_request(tracer)
        assert len(seen) == 2
        assert all(isinstance(s, TraceSummary) for s in seen)
        assert seen[0] is seen[1], "walked twice for two consumers"
        assert seen[0].root is root

    def test_plain_callable_still_receives_the_root(self, tracer):
        roots = []
        fanout = FanoutSink(roots.append)
        tracer.add_sink(fanout)
        root = run_request(tracer)
        assert roots == [root]

    def test_broken_consumer_does_not_starve_the_rest(self, tracer):
        def broken(root):
            raise RuntimeError("boom")

        roots = []
        fanout = FanoutSink(broken, roots.append)
        tracer.add_sink(fanout)
        run_request(tracer)
        assert len(roots) == 1

    def test_parity_with_directly_registered_sinks(self, tracer):
        """Bridge + statements + sampler behind one fanout see exactly
        what they would as individual tracer sinks."""
        registry = MetricsRegistry()
        bridge = MetricsBridge(registry, slow_query_ms=1.0)
        statements = StatementStats()
        statements.enabled = True
        kept = []
        sampler = TailSampler(kept.append, slo_ms=1000.0, per_key=5)
        tracer.add_sink(FanoutSink(bridge, statements, sampler))
        run_request(tracer, sql_ms=2.0)
        run_request(tracer, sql_ms=2.0, error=True)
        assert registry.snapshot()["counters"]["traces_total"] == 2
        assert registry.snapshot()["counters"]["slow_queries_total"] == 2
        (row,) = statements.snapshot()["statements"]
        assert row["calls"] == 2
        assert row["errors"] == 1
        # Both traces kept: one via the per-digest reservoir, the
        # errored one unconditionally.
        assert len(kept) == 2
        assert sampler.stats()["kept_error"] == 1


class TestFanoutDeferred:
    def test_call_only_enqueues_until_flush(self, tracer):
        seen = []

        class Consumer:
            def on_summary(self, summary):
                seen.append(summary)

        # A long drain interval keeps the daemon thread out of the test.
        fanout = FanoutSink(Consumer(), defer_cap=64, drain_interval=60.0)
        tracer.add_sink(fanout)
        run_request(tracer)
        run_request(tracer)
        assert seen == []
        fanout.flush()
        assert len(seen) == 2
        fanout.flush()  # idempotent on an empty queue
        assert len(seen) == 2

    def test_cap_backstop_drains_inline(self, tracer):
        roots = []
        fanout = FanoutSink(roots.append, defer_cap=2, drain_interval=60.0)
        tracer.add_sink(fanout)
        run_request(tracer)
        assert roots == []
        run_request(tracer)  # hits the cap: drained without flush()
        assert len(roots) == 2


class TestRouterFlushHook:
    @pytest.fixture()
    def site(self):
        from repro.apps import urlquery as urlquery_app
        from repro.apps.site import build_site

        app = urlquery_app.install(rows=5)
        site = build_site(app.engine, app.library)
        site.router.metrics = MetricsRegistry()
        return site

    def get(self, site, target):
        from repro.http.message import HttpRequest

        response = site.router.handle(HttpRequest(target=target))
        response.drain()
        return response

    def test_scrapes_flush_deferred_aggregates_first(self, site):
        calls = []
        site.router.obs_flush = lambda: calls.append(1)
        assert self.get(site, "/metrics").status == 200
        assert self.get(site, "/statusz").status == 200
        assert len(calls) == 2

    def test_deferred_counters_are_exact_on_scrape(self, site, tracer):
        registry = site.router.metrics
        bridge = MetricsBridge(registry)
        fanout = FanoutSink(bridge, defer_cap=1024, drain_interval=60.0)
        tracer.add_sink(fanout)
        site.router.obs_flush = fanout.flush
        run_request(tracer)
        run_request(tracer)
        text = self.get(site, "/metrics").body.decode()
        assert "traces_total 2" in text

    def test_statements_endpoint_flushes_too(self, site, tracer):
        statements = StatementStats()
        statements.enabled = True
        fanout = FanoutSink(statements, defer_cap=1024, drain_interval=60.0)
        tracer.add_sink(fanout)
        site.router.statements = statements
        site.router.obs_flush = fanout.flush
        run_request(tracer)
        body = json.loads(self.get(site, "/statements").body)
        assert body["statements"], "deferred digest missing from scrape"

    def test_broken_flush_hook_never_fails_the_scrape(self, site):
        def broken():
            raise RuntimeError("drain hiccup")

        site.router.obs_flush = broken
        assert self.get(site, "/metrics").status == 200
