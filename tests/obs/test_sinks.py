"""Trace sinks: trace log, slow-query watchdog, metrics bridge."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import (
    MetricsBridge,
    SlowQueryLog,
    TraceLog,
    format_trace,
    read_trace_log,
)
from repro.obs.trace import Tracer


@pytest.fixture()
def tracer():
    tracer = Tracer()
    tracer.enable()
    return tracer


def run_request(tracer, *, sql_ms: float = 0.0):
    """One synthetic request trace with a single sql.execute span."""
    with tracer.span("request") as root:
        root.set("path", "/cgi-bin/db2www/urlquery.d2w/report")
        with tracer.span("sql.execute") as sql:
            sql.set("digest", "deadbeef0123")
            sql.set("sql", "SELECT * FROM urldb")
            sql.end = sql.start + sql_ms / 1000.0  # pin the duration
    return root


class TestTraceLog:
    def test_one_json_line_per_trace(self, tmp_path, tracer):
        log = TraceLog(tmp_path / "trace.log")
        tracer.add_sink(log)
        run_request(tracer)
        run_request(tracer)
        lines = log.path.read_text().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["type"] == "trace"
        assert record["name"] == "request"
        assert record["spans"]["children"][0]["name"] == "sql.execute"
        assert "sql.execute" in record["phases"]

    def test_attrs_ride_along(self, tmp_path, tracer):
        log = TraceLog(tmp_path / "trace.log")
        tracer.add_sink(log)
        run_request(tracer)
        (record,) = read_trace_log(log.path)
        assert record["attrs"]["path"].endswith("/report")


class TestSlowQueryLog:
    def test_slow_statement_is_recorded(self, tmp_path, tracer):
        log = SlowQueryLog(tmp_path / "slow.log", threshold_ms=10.0)
        tracer.add_sink(log)
        run_request(tracer, sql_ms=25.0)
        assert log.count == 1
        (record,) = read_trace_log(log.path)
        assert record["type"] == "slow_query"
        assert record["digest"] == "deadbeef0123"
        assert record["sql"] == "SELECT * FROM urldb"
        assert record["duration_ms"] >= 10.0
        assert record["threshold_ms"] == 10.0
        assert record["spans"]["name"] == "sql.execute"

    def test_fast_statement_is_not(self, tmp_path, tracer):
        log = SlowQueryLog(tmp_path / "slow.log", threshold_ms=10.0)
        tracer.add_sink(log)
        run_request(tracer, sql_ms=1.0)
        assert log.count == 0
        assert not log.path.exists()

    def test_non_sql_spans_never_match(self, tmp_path, tracer):
        log = SlowQueryLog(tmp_path / "slow.log", threshold_ms=0.0)
        tracer.add_sink(log)
        with tracer.span("request"):
            with tracer.span("report.render"):
                pass
        assert log.count == 0


class TestMetricsBridge:
    def test_span_durations_land_in_histograms(self, tracer):
        registry = MetricsRegistry()
        tracer.add_sink(MetricsBridge(registry))
        run_request(tracer, sql_ms=5.0)
        flat = registry.flat()
        assert flat["traces_total"] == 1
        assert flat["span_request_ms_count"] == 1
        assert flat["span_sql_execute_ms_count"] == 1
        assert "slow_queries_total" not in flat

    def test_slow_queries_are_counted_when_thresholded(self, tracer):
        registry = MetricsRegistry()
        tracer.add_sink(MetricsBridge(registry, slow_query_ms=10.0))
        run_request(tracer, sql_ms=25.0)
        run_request(tracer, sql_ms=1.0)
        assert registry.counter("slow_queries_total").value == 1
        assert registry.counter("traces_total").value == 2


class TestReadAndFormat:
    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.log"
        path.write_text(
            'not json at all\n'
            '{"type": "trace", "trace_id": "t1", "duration_ms": 1.0}\n'
            '{"type": "unrelated"}\n'
            '[1, 2, 3]\n'
            '\n'
            '{"type": "slow_query", "trace_id": "t2"}\n')
        records = read_trace_log(path)
        assert [r["trace_id"] for r in records] == ["t1", "t2"]

    def test_format_trace_renders_the_tree(self, tmp_path, tracer):
        log = TraceLog(tmp_path / "trace.log")
        tracer.add_sink(log)
        run_request(tracer, sql_ms=2.0)
        (record,) = read_trace_log(log.path)
        text = format_trace(record)
        assert text.startswith("trace ")
        assert "phases:" in text
        assert "request" in text
        assert "sql.execute" in text
        assert "digest=deadbeef0123" in text

    def test_format_slow_query_header(self):
        text = format_trace({"type": "slow_query", "trace_id": "t9",
                             "duration_ms": 42.0, "threshold_ms": 10.0,
                             "digest": "abc"})
        assert text.startswith("slow_query t9")
        assert "threshold 10.0ms" in text
        assert "digest abc" in text

    def test_long_attrs_are_truncated_in_the_tree(self):
        text = format_trace({
            "type": "trace", "trace_id": "t1", "duration_ms": 1.0,
            "spans": {"name": "sql.execute", "duration_ms": 1.0,
                      "attrs": {"sql": "X" * 200}}})
        assert "X" * 47 + "…" in text
        assert "X" * 60 not in text
