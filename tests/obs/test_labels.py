"""Bounded-cardinality labeled metrics and their registry integration."""

import pytest

from repro.obs.labels import OTHER_LABEL, LabeledSourceView, LabeledValues
from repro.obs.metrics import MetricsRegistry


class TestLabeledValues:
    def test_inc_creates_series_per_value(self):
        family = LabeledValues("requests_by_class", "cost_class")
        family.inc("cached")
        family.inc("cached")
        family.inc("heavy", 3)
        assert family.series() == {"cached": 2, "heavy": 3}

    def test_overflow_collapses_into_other(self):
        family = LabeledValues("x", "tenant", max_series=2)
        family.inc("a")
        family.inc("b")
        family.inc("c")
        family.inc("d")
        assert family.series() == {"a": 1, "b": 1, OTHER_LABEL: 2}

    def test_existing_series_keeps_existing_past_the_cap(self):
        family = LabeledValues("x", "tenant", max_series=1)
        family.inc("a")
        family.inc("b")  # overflow
        family.inc("a")  # still its own series
        assert family.series() == {"a": 2, OTHER_LABEL: 1}

    def test_gauge_set_is_last_write_wins(self):
        family = LabeledValues("depth", "shard", kind="gauge")
        family.set("0", 5)
        family.set("0", 2)
        assert family.series() == {"0": 2}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            LabeledValues("x", "l", kind="summary")


class TestLabeledSourceView:
    def source(self):
        return {"": {"shards": 2},
                "0": {"routed": 5},
                "1": {"routed": 7}}

    def test_flat_reproduces_legacy_key_names(self):
        view = LabeledSourceView("shard", "shard", self.source)
        assert view.flat() == {"shards": 2, "0_routed": 5,
                               "1_routed": 7}

    def test_labeled_groups_by_key(self):
        view = LabeledSourceView("shard", "shard", self.source)
        assert view.labeled() == {"routed": {"0": 5, "1": 7}}

    def test_unlabeled_returns_the_topology_bag(self):
        view = LabeledSourceView("shard", "shard", self.source)
        assert view.unlabeled() == {"shards": 2}

    def test_labeled_caps_series_but_flat_does_not(self):
        bags = {str(i): {"requests": i} for i in range(5)}
        view = LabeledSourceView("tenant", "tenant", lambda: bags,
                                 max_series=2)
        labeled = view.labeled()["requests"]
        assert labeled == {"0": 0, "1": 1, OTHER_LABEL: 2 + 3 + 4}
        assert len(view.flat()) == 5  # legacy consumers parse exact keys

    def test_broken_source_yields_empty_views(self):
        def boom():
            raise RuntimeError("bag died")
        view = LabeledSourceView("tenant", "tenant", boom)
        assert view.flat() == {}
        assert view.labeled() == {}
        assert view.unlabeled() == {}


class TestRegistryIntegration:
    def test_labeled_is_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.labeled("f", "l")
        b = registry.labeled("f", "l")
        assert a is b

    def test_family_series_ride_flat_and_snapshot(self):
        registry = MetricsRegistry()
        registry.labeled("overload_requests_by_class",
                         "cost_class").inc("cached", 4)
        flat = registry.flat()
        assert flat["overload_requests_by_class_cached"] == 4
        snapshot = registry.snapshot()
        assert snapshot["labeled"]["overload_requests_by_class"] == {
            "label": "cost_class", "series": {"cached": 4}}

    def test_labeled_source_keeps_legacy_flat_keys(self):
        registry = MetricsRegistry()
        registry.attach_labeled_source(
            "tenant", "tenant",
            lambda: {"acme": {"requests_total": 9}})
        # the historical flattened name on every legacy read path
        assert registry.flat()["tenant_acme_requests_total"] == 9
        assert registry.snapshot()["sources"]["tenant"] == {
            "acme_requests_total": 9}
        assert "tenant" in registry.source_names()

    def test_render_text_emits_both_shapes(self):
        registry = MetricsRegistry()
        registry.labeled("requests_by_class", "cost_class").inc("heavy")
        registry.attach_labeled_source(
            "tenant", "tenant",
            lambda: {"acme": {"requests_total": 9}})
        text = registry.render_text()
        assert "# TYPE requests_by_class counter" in text
        assert 'requests_by_class{cost_class="heavy"} 1' in text
        assert 'tenant_requests_total{tenant="acme"} 9' in text
        assert "tenant_acme_requests_total 9" in text  # legacy line

    def test_label_values_are_escaped_in_the_exposition(self):
        registry = MetricsRegistry()
        registry.labeled("f", "l").inc('we"ird\nname')
        text = registry.render_text()
        assert 'f{l="we\\"ird\\nname"} 1' in text

    def test_snapshot_omits_labeled_key_when_empty(self):
        assert "labeled" not in MetricsRegistry().snapshot()
