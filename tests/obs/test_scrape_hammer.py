"""Concurrent scrape vs. writer threads: reads must never throw or tear.

The registry is written from request threads, shard workers and the
overload controller while /metrics and /statusz render on another —
this hammer pins that every read path (flat, snapshot, render_text)
survives concurrent mutation of counters, histograms, labeled families
and labeled sources, and that a rendered histogram is never torn into
an impossible state (quantiles present without a count, NaNs, ...).
"""

import threading

from repro.obs.metrics import MetricsRegistry
from repro.sql.digest import StatementStats

WRITERS = 4
WRITES = 2000
SCRAPES = 200


def test_concurrent_scrape_never_throws_or_tears():
    registry = MetricsRegistry()
    statements = StatementStats(max_digests=8)
    statements.enabled = True
    registry.attach_labeled_source("statement", "digest",
                                   statements.labeled_stats)
    registry.attach_stats_source("statements", statements.stats)
    errors = []

    def writer(seed: int):
        try:
            counter = registry.counter("http_requests_total")
            histogram = registry.histogram("request_latency_ms")
            family = registry.labeled("requests_by_class",
                                      "cost_class", max_series=4)
            for i in range(WRITES):
                counter.inc()
                histogram.observe((seed * 31 + i) % 700 + 0.5)
                family.inc(f"class{(seed + i) % 6}")  # overflows too
                statements.record(digest=f"d{(seed + i) % 12}",
                                  duration_ms=float(i % 50),
                                  rows=i % 7, cached=i % 3 == 0)
        except Exception as exc:  # noqa: BLE001 - the assertion
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(n,))
               for n in range(WRITERS)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(SCRAPES):
            flat = registry.flat()
            assert all(isinstance(v, (int, float))
                       for v in flat.values())
            snapshot = registry.snapshot()
            latency = snapshot["histograms"].get("request_latency_ms")
            if latency is not None and latency["count"]:
                # a torn histogram would show quantiles beyond max or
                # a sum wildly off the observed range
                assert 0.0 <= latency["p50"] <= latency["max"] + 1e-9
                assert latency["sum"] >= 0.0
            text = registry.render_text()
            assert text.endswith("\n")
            statements.snapshot(limit=5)
    finally:
        for thread in threads:
            thread.join(timeout=30)
    assert not errors, errors
    # every write landed despite the concurrent scrapes
    assert registry.counter("http_requests_total").value == \
        WRITERS * WRITES
