"""Boot `repro serve` for real and scrape its observability surface.

This is the CI obs-smoke path: a subprocess server with tracing on, a
few requests through it, then assertions over ``/metrics``,
``/statusz``, the access log's ``#stats`` trailer (via ``repro stats``)
and the trace / slow-query logs (via ``repro trace``).
"""

import io
import json
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.datasets import seed_urldb
from repro.cli import main as cli_main
from repro.sql.connection import Connection

REPORT = ("/cgi-bin/db2www/urlquery.d2w/report"
          "?SEARCH=ib&USE_URL=yes&DBFIELDS=title")

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def fetch(base, target):
    try:
        with urllib.request.urlopen(base + target,
                                    timeout=10) as response:
            return (response.status, dict(response.headers),
                    response.read())
    except urllib.error.HTTPError as exc:  # 4xx/5xx are answers too
        return exc.code, dict(exc.headers), exc.read()


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One `repro serve` subprocess shared by the scrape tests."""
    tmp_path = tmp_path_factory.mktemp("obs-smoke")
    db_path = tmp_path / "urldb.sqlite"
    conn = Connection(str(db_path))
    seed_urldb(conn, 20)
    conn.close()
    macro_dir = tmp_path / "macros"
    macro_dir.mkdir()
    (macro_dir / "urlquery.d2w").write_text(
        urlquery_app.URLQUERY_MACRO, encoding="utf-8")
    access_log = tmp_path / "access.log"
    trace_log = tmp_path / "trace.log"
    slow_log = tmp_path / "slow_query.log"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--macros", str(macro_dir),
         "--database", f"URLDB={db_path}",
         "--host", "127.0.0.1", "--port", "0",
         "--access-log", str(access_log),
         "--trace-log", str(trace_log),
         "--slow-query-ms", "0", "--slow-query-log", str(slow_log),
         "--trace-sample", "per_key=100"],
        env={"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    base = None
    deadline = time.time() + 20
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"on (http://[\d.]+:\d+)", line)
        if match:
            base = match.group(1)
            break
    if base is None:
        proc.kill()
        raise RuntimeError("serve never announced its address")
    yield {"base": base, "access_log": access_log,
           "trace_log": trace_log, "slow_log": slow_log, "proc": proc}
    if proc.poll() is None:
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=10)


@pytest.fixture(scope="module")
def scraped(served):
    """Drive traffic once, scrape once; tests share the results."""
    base = served["base"]
    for _ in range(3):
        status, _, body = fetch(base, REPORT)
        assert status == 200
        assert b"URL Query Result" in body
    status, _, _ = fetch(base, "/no-such-page-404")
    assert status == 404
    metrics_status, metrics_headers, metrics_body = fetch(base, "/metrics")
    statusz_status, _, statusz_body = fetch(base, "/statusz")
    statements_status, _, statements_body = fetch(base, "/statements")
    return {"metrics": (metrics_status, metrics_headers,
                        metrics_body.decode()),
            "statusz": (statusz_status, json.loads(statusz_body)),
            "statements": (statements_status,
                           json.loads(statements_body))}


class TestLiveScrape:
    def test_report_requests_carry_a_trace_id(self, served):
        status, headers, _ = fetch(served["base"], REPORT)
        assert status == 200
        assert headers.get("X-Trace-Id")

    def test_metrics_families(self, scraped):
        status, headers, text = scraped["metrics"]
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        # request counters and the latency summary
        assert "# TYPE http_requests_total counter" in text
        assert "http_errors_total" in text
        assert 'request_latency_ms{quantile="0.5"}' in text
        assert 'request_latency_ms{quantile="0.99"}' in text
        # the tracer's bridge: per-phase histograms + totals
        assert "traces_total" in text
        assert "span_sql_execute_ms_count" in text
        assert "slow_queries_total" in text
        # absorbed legacy stats bags keep their historical names
        assert "query_cache_hits" in text
        assert "resilience_retries" in text

    def test_no_duplicate_samples(self, scraped):
        """Every name{labels} identity renders exactly once — the
        sampler once published both live counters and a stats source,
        doubling trace_sampler_* on the scrape."""
        _, _, text = scraped["metrics"]
        assert "trace_sampler_kept_total" in text  # sampler is wired
        samples = [line.rsplit(" ", 1)[0]
                   for line in text.splitlines()
                   if line and not line.startswith("#")]
        duplicates = {s for s in samples if samples.count(s) > 1}
        assert not duplicates, f"duplicate scrape samples: {duplicates}"

    def test_statusz_snapshot(self, scraped):
        status, snapshot = scraped["statusz"]
        assert status == 200
        assert snapshot["counters"]["http_requests_total"] >= 4
        assert snapshot["histograms"]["request_latency_ms"]["count"] >= 4
        assert "query_cache" in snapshot["sources"]
        assert "resilience" in snapshot["sources"]

    def test_statements_table_fills_after_traffic(self, scraped):
        """The digest analytics surface: report traffic must appear as
        at least one normalized statement row with calls and rows."""
        status, body = scraped["statements"]
        assert status == 200
        assert body["statements"], "no digest rows after traffic"
        row = body["statements"][0]
        assert len(row["digest"]) == 12
        assert row["calls"] >= 3
        assert row["rows"] >= 1
        assert "select" in row["statement"].lower()
        assert body["recorded_total"] >= 3

    def test_slo_burn_gauges_ride_the_scrape(self, scraped):
        """The SLO source's multi-window burn gauges are on /metrics
        and /statusz like every other stats family."""
        _, _, text = scraped["metrics"]
        assert "slo_availability_burn_5m" in text
        assert "slo_latency_burn_1h" in text
        _, snapshot = scraped["statusz"]
        assert "slo" in snapshot["sources"]
        assert "statements" in snapshot["sources"]


class TestShutdownArtifacts:
    @pytest.fixture(scope="class", autouse=True)
    def stopped(self, served, scraped):
        """SIGINT the server so it writes its #stats trailer."""
        proc = served["proc"]
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=10)

    def test_access_log_sizes_and_trailer(self, served):
        from repro.http.accesslog import parse_line
        lines = served["access_log"].read_text().splitlines()
        entries = [e for e in map(parse_line, lines) if e is not None]
        reports = [e for e in entries if "report" in e.path]
        assert reports and all(e.size > 0 for e in reports)
        assert any(line.startswith("#stats ") for line in lines)

    def test_repro_stats_renders_the_latency_table(self, served):
        out = io.StringIO()
        assert cli_main(["stats", str(served["access_log"])],
                        out=out) == 0
        text = out.getvalue()
        assert "server latency:" in text
        assert "request_latency_ms" in text
        assert "traces_total:" in text

    def test_trace_log_and_pretty_printer(self, served):
        records = [json.loads(line) for line in
                   served["trace_log"].read_text().splitlines()]
        assert all(r["type"] == "trace" for r in records)
        assert any("sql.execute" in r["phases"] for r in records)
        out = io.StringIO()
        assert cli_main(["trace", str(served["trace_log"])], out=out) == 0
        assert "sql.execute" in out.getvalue()

    def test_slow_query_log_caught_everything(self, served):
        """Threshold 0ms: every sql.execute lands in the slow log."""
        out = io.StringIO()
        assert cli_main(["trace", str(served["slow_log"]),
                         "--slow-only"], out=out) == 0
        text = out.getvalue()
        assert "slow_query" in text
        assert "digest" in text
