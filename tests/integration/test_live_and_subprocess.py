"""Faithful transports: real sockets and process-per-request CGI."""

import sys

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.datasets import seed_urldb
from repro.apps.site import build_site
from repro.browser.client import Browser
from repro.cgi.db2www_main import main as db2www_main
from repro.cgi.environ import CgiEnvironment
from repro.cgi.process import SubprocessCgiRunner
from repro.cgi.request import CgiRequest, CgiResponse
from repro.http.client import HttpClient
from repro.sql.connection import Connection


class TestLiveSocketServer:
    @pytest.fixture()
    def served(self):
        app = urlquery_app.install(rows=25)
        site = build_site(app.engine, app.library)
        server = site.serve()
        yield app, server
        server.shutdown()

    def test_browser_over_real_tcp(self, served):
        app, server = served
        browser = Browser(HttpClient(), base_url=server.base_url)
        page = browser.get(app.input_path)
        assert page.title == "DB2 WWW URL Query"
        form = page.form(0)
        form.set("SEARCH", "ibm")
        report = browser.submit(form, click="Submit Query")
        assert report.title == "DB2 WWW URL Query Result"
        assert any("/page" in link.href for link in report.links)


@pytest.fixture()
def disk_deployment(tmp_path):
    """A file-backed deployment for subprocess CGI (memory DBs do not
    cross process boundaries)."""
    db_path = tmp_path / "urldb.sqlite"
    conn = Connection(str(db_path))
    seed_urldb(conn, 20)
    conn.close()
    macro_dir = tmp_path / "macros"
    macro_dir.mkdir()
    (macro_dir / "urlquery.d2w").write_text(
        urlquery_app.URLQUERY_MACRO, encoding="utf-8")
    return {
        "REPRO_MACRO_DIR": str(macro_dir),
        "REPRO_DATABASE_URLDB": str(db_path),
    }


def cgi_request(path_info: str, query: str = "") -> CgiRequest:
    return CgiRequest(CgiEnvironment(
        script_name="/cgi-bin/db2www", path_info=path_info,
        query_string=query))


class TestDb2WwwMainInProcess:
    """The executable's logic, called directly (fast path for coverage)."""

    def test_input_mode(self, disk_deployment):
        env = dict(disk_deployment)
        env.update(cgi_request("/urlquery.d2w/input").environ.to_dict())
        output = db2www_main(env=env, stdin=b"")
        response = CgiResponse.parse(output)
        assert response.status == 200
        assert b"Query URL Information" in response.body

    def test_report_mode(self, disk_deployment):
        env = dict(disk_deployment)
        env.update(cgi_request(
            "/urlquery.d2w/report",
            "SEARCH=ib&USE_URL=yes&DBFIELDS=title").environ.to_dict())
        response = CgiResponse.parse(db2www_main(env=env, stdin=b""))
        assert b"URL Query Result" in response.body

    def test_missing_configuration(self):
        env = cgi_request("/m/input").environ.to_dict()
        response = CgiResponse.parse(db2www_main(env=env, stdin=b""))
        assert response.status == 500
        assert b"REPRO_MACRO_DIR" in response.body


class TestSubprocessCgi:
    """The real thing: a child Python process per request (Figure 4)."""

    def test_get_request_spawns_process(self, disk_deployment):
        runner = SubprocessCgiRunner(extra_env=disk_deployment)
        response = runner.run(cgi_request("/urlquery.d2w/input"))
        assert response.status == 200
        assert b"Submit Query" in response.body

    def test_post_body_through_stdin(self, disk_deployment):
        runner = SubprocessCgiRunner(extra_env=disk_deployment)
        body = b"SEARCH=ibm&USE_URL=yes&DBFIELDS=title"
        request = CgiRequest(
            CgiEnvironment(
                request_method="POST",
                script_name="/cgi-bin/db2www",
                path_info="/urlquery.d2w/report",
                content_type="application/x-www-form-urlencoded",
                content_length=len(body)),
            stdin=body)
        response = runner.run(request)
        assert response.status == 200
        assert b"ibm" in response.body

    def test_database_writes_persist_across_processes(
            self, disk_deployment, tmp_path):
        macro_dir = disk_deployment["REPRO_MACRO_DIR"]
        (tmp_path / "macros" / "adder.d2w").write_text("""
%DEFINE DATABASE = "URLDB"
%SQL{
INSERT INTO urldb (url, title, description)
VALUES ('http://new/$(n)', 'added $(n)', 'x')
%}
%HTML_REPORT{%EXEC_SQL%}
""", encoding="utf-8")
        runner = SubprocessCgiRunner(extra_env=disk_deployment)
        first = runner.run(cgi_request("/adder.d2w/report", "n=1"))
        assert first.status == 200
        conn = Connection(disk_deployment["REPRO_DATABASE_URLDB"])
        count = conn.execute(
            "SELECT COUNT(*) FROM urldb WHERE url LIKE 'http://new/%'"
        ).fetchone()[0]
        conn.close()
        assert count == 1

    def test_broken_command_line_raises(self, disk_deployment):
        from repro.errors import CgiProtocolError
        runner = SubprocessCgiRunner(
            argv=[sys.executable, "-c", "import sys; sys.exit(3)"],
            extra_env=disk_deployment)
        with pytest.raises(CgiProtocolError):
            runner.run(cgi_request("/urlquery.d2w/input"))


class TestSubprocessEdges:
    """Failure-path details: stderr capture limits and timeout mapping."""

    def test_stderr_truncated_to_500_chars(self):
        marker = "E" * 600
        runner = SubprocessCgiRunner(argv=[
            sys.executable, "-c",
            f"import sys; sys.stderr.write('{marker}'); sys.exit(2)"])
        from repro.errors import CgiProtocolError
        with pytest.raises(CgiProtocolError) as excinfo:
            runner.run(cgi_request("/x"))
        message = str(excinfo.value)
        assert "exited with 2" in message
        assert "E" * 500 in message
        assert "E" * 501 not in message

    def test_plain_timeout_is_a_protocol_error(self):
        from repro.errors import CgiProtocolError
        runner = SubprocessCgiRunner(
            argv=[sys.executable, "-c", "import time; time.sleep(30)"],
            timeout=0.3)
        with pytest.raises(CgiProtocolError, match="exceeded 0.3s"):
            runner.run(cgi_request("/x"))

    def test_deadline_caps_the_timeout(self):
        """A short request deadline overrides a generous runner timeout
        and surfaces as DeadlineExceededError, not a protocol error."""
        from repro.errors import DeadlineExceededError
        from repro.resilience.deadline import Deadline
        runner = SubprocessCgiRunner(
            argv=[sys.executable, "-c", "import time; time.sleep(30)"],
            timeout=30.0)
        with pytest.raises(DeadlineExceededError, match="deadline"):
            runner.run(cgi_request("/x"),
                       deadline=Deadline.after(0.3))

    def test_expired_deadline_fails_before_spawning(self):
        from repro.errors import DeadlineExceededError
        from repro.resilience.deadline import Deadline
        runner = SubprocessCgiRunner(
            argv=[sys.executable, "-c", "print('never runs')"])
        with pytest.raises(DeadlineExceededError):
            runner.run(cgi_request("/x"), deadline=Deadline.after(-1.0))
