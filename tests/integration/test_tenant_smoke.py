"""The CI tenant-smoke path: multi-tenant hosting over real HTTP.

One ``repro serve --tenant-config`` subprocess hosting two tenants —
``alpha`` (private, quota-limited) and ``beta`` (public, read-only) —
then the full acceptance walk as curl would do it: owner HTML and JSON,
cross-tenant denial, read-only write rejection, quota exhaustion, and
the per-tenant counters on ``/metrics``.
"""

import json
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.security.auth import basic_credentials
from repro.sql.connection import Connection

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")
SUBPROCESS_ENV = {"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"}

ITEMS_MACRO = """\
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT id, name FROM items ORDER BY id %}
%HTML_REPORT{
<H1>Items</H1>
%EXEC_SQL
%}
"""

INSERT_MACRO = """\
%DEFINE DATABASE = "SHOP"
%SQL{ INSERT INTO items VALUES (99, 'intruder') %}
%HTML_REPORT{
%EXEC_SQL
%}
"""

ALPHA = basic_credentials("alice", "wonder")
BETA = basic_credentials("bob", "builder")


def fetch(base, target, *, headers=None):
    request = urllib.request.Request(base + target,
                                     headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (response.status, dict(response.headers),
                    response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def read_banner(proc, pattern, what):
    deadline = time.time() + 20
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(pattern, line)
        if match:
            return match.group(1)
    proc.kill()
    raise RuntimeError(f"{what} never announced itself")


def seed_shop(path, rows):
    conn = Connection(str(path))
    conn.executescript("CREATE TABLE items (id INTEGER, name TEXT);")
    for row in rows:
        conn.execute("INSERT INTO items VALUES (?, ?)", row)
    conn.commit()
    conn.close()


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """One serve subprocess hosting alpha (private) + beta (read-only)."""
    tmp_path = tmp_path_factory.mktemp("tenant-smoke")
    shared_macros = tmp_path / "macros"
    shared_macros.mkdir()
    tenants = []
    for name, rows in (("alpha", [(1, "apple"), (2, "apricot")]),
                       ("beta", [(1, "brick")])):
        root = tmp_path / name
        (root / "macros").mkdir(parents=True)
        (root / "macros" / "items.d2w").write_text(
            ITEMS_MACRO, encoding="utf-8")
        (root / "macros" / "insert.d2w").write_text(
            INSERT_MACRO, encoding="utf-8")
        seed_shop(root / "shop.sqlite", rows)
        tenants.append(root)
    config = tmp_path / "tenants.json"
    config.write_text(json.dumps({"tenants": [
        {"name": "alpha", "owner": "alice", "password": "wonder",
         "visibility": "private",
         "macros": str(tenants[0] / "macros"),
         "databases": {"SHOP": str(tenants[0] / "shop.sqlite")},
         "quota": {"requests": 5, "window_seconds": 3600}},
        {"name": "beta", "owner": "bob", "password": "builder",
         "visibility": "public", "read_only": True,
         "macros": str(tenants[1] / "macros"),
         "databases": {"SHOP": str(tenants[1] / "shop.sqlite")}},
    ]}), encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--macros", str(shared_macros),
         "--tenant-config", str(config),
         "--host", "127.0.0.1", "--port", "0"],
        env=SUBPROCESS_ENV, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    try:
        base = read_banner(proc, r"on (http://[\d.]+:\d+)",
                           "tenant edge")
        yield {"base": base}
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


class TestTenantSmoke:
    def test_owner_html_report(self, stack):
        status, headers, body = fetch(
            stack["base"], "/t/alpha/items.d2w/report",
            headers={"Authorization": ALPHA})
        assert status == 200
        assert "text/html" in headers.get("Content-Type", "")
        assert b"apple" in body and b"apricot" in body

    def test_owner_json_report(self, stack):
        status, headers, body = fetch(
            stack["base"], "/t/alpha/items.d2w/report",
            headers={"Authorization": ALPHA,
                     "Accept": "application/json"})
        assert status == 200
        assert headers.get("Content-Type", "").startswith(
            "application/json")
        page = json.loads(body)
        assert page["tenant"] == "alpha"
        assert page["results"][0]["rows"] == [
            {"id": 1, "name": "apple"}, {"id": 2, "name": "apricot"}]

    def test_cross_tenant_private_denied(self, stack):
        status, _, _ = fetch(
            stack["base"], "/t/alpha/items.d2w/report",
            headers={"Authorization": BETA})
        assert status == 403
        status, headers, _ = fetch(
            stack["base"], "/t/alpha/items.d2w/report")
        assert status == 401
        assert "Basic" in headers.get("WWW-Authenticate", "")

    def test_read_only_write_rejected(self, stack):
        status, _, body = fetch(
            stack["base"], "/t/beta/insert.d2w/report")
        assert status == 403
        assert b"42501" in body
        # The table is untouched.
        status, _, body = fetch(
            stack["base"], "/t/beta/items.d2w/report")
        assert status == 200
        assert b"intruder" not in body

    def test_quota_exhaustion_answers_429(self, stack):
        # alpha admits 5 requests per window; earlier tests spent some
        # of them — burn the rest and expect the honest 429.
        saw_429 = False
        for _ in range(8):
            status, headers, _ = fetch(
                stack["base"], "/t/alpha/items.d2w/report",
                headers={"Authorization": ALPHA})
            if status == 429:
                saw_429 = True
                assert int(headers["Retry-After"]) > 0
                break
            assert status == 200
        assert saw_429

    def test_metrics_expose_tenant_counters(self, stack):
        status, _, body = fetch(stack["base"], "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert re.search(r"tenant_alpha_requests_total \d+", text)
        assert re.search(r"tenant_alpha_denied_total [1-9]", text)
        assert re.search(r"tenant_alpha_throttled_total [1-9]", text)
        assert re.search(r"tenant_beta_requests_total \d+", text)
