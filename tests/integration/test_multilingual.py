"""Section 5's internationalisation, end to end: per-language macro
files selected by Accept-Language, and multi-byte data everywhere."""

import pytest

from repro.apps.site import build_site
from repro.core.engine import MacroEngine
from repro.core.macrofile import MacroLibrary
from repro.security.i18n import localized_macro_name, negotiate_language
from repro.sql.gateway import DatabaseRegistry

BASE_MACRO = """\
%DEFINE DATABASE = "STORE"
%SQL{ SELECT name FROM products ORDER BY name
%SQL_REPORT{<UL>%ROW{<LI>$(V1)%}</UL>%}
%}
%HTML_INPUT{<H1>Catalog</H1>%}
%HTML_REPORT{<H1>Products</H1>%EXEC_SQL%}
"""

FR_MACRO = BASE_MACRO.replace("Catalog", "Catalogue") \
                     .replace("Products", "Produits")
JA_MACRO = BASE_MACRO.replace("Catalog", "カタログ") \
                     .replace("Products", "製品一覧")


@pytest.fixture()
def deployment():
    registry = DatabaseRegistry()
    database = registry.register_memory("STORE")
    with database.connect() as conn:
        conn.executescript(
            "CREATE TABLE products (name TEXT);"
            "INSERT INTO products VALUES"
            " ('bicycle'), ('自転車'), ('vélo');")
    library = MacroLibrary()
    library.add_text("store.d2w", BASE_MACRO)
    library.add_text("store.fr.d2w", FR_MACRO)
    library.add_text("store.ja.d2w", JA_MACRO)
    engine = MacroEngine(registry)
    return engine, library


class TestPerLanguageMacroSelection:
    """The deployment pattern: pick the macro variant per request."""

    AVAILABLE = ["en", "fr", "ja"]

    def select(self, library, accept_language: str) -> str:
        language = negotiate_language(accept_language, self.AVAILABLE,
                                      default="en")
        if language == "en":
            return "store.d2w"
        candidate = localized_macro_name("store.d2w", language)
        return candidate if candidate in library else "store.d2w"

    @pytest.mark.parametrize("header,expected_title", [
        ("en-US, en", "Catalog"),
        ("fr-CA, fr;q=0.9, en;q=0.5", "Catalogue"),
        ("ja", "カタログ"),
        ("de, pt", "Catalog"),        # no German variant: fall back
        ("", "Catalog"),
    ])
    def test_language_selects_macro(self, deployment, header,
                                    expected_title):
        engine, library = deployment
        name = self.select(library, header)
        result = engine.execute_input(library.load(name))
        assert expected_title in result.html

    def test_reports_localized_too(self, deployment):
        engine, library = deployment
        macro = library.load(self.select(library, "ja"))
        result = engine.execute_report(macro)
        assert "製品一覧" in result.html
        assert "自転車" in result.html  # multi-byte data intact


class TestMultibyteOverHttp:
    def test_utf8_round_trip_through_the_full_stack(self, deployment):
        engine, library = deployment
        site = build_site(engine, library)
        browser = site.new_browser()
        page = browser.get("/cgi-bin/db2www/store.ja.d2w/report")
        assert page.status == 200
        assert "自転車" in page.html
        assert "vélo" in page.html
        assert "charset=utf-8" in page.response.content_type

    def test_multibyte_form_input_travels_encoded(self, deployment):
        engine, library = deployment
        library.add_text("search.d2w", """
%DEFINE DATABASE = "STORE"
%SQL{ SELECT name FROM products WHERE name = '$(q)'
%SQL_REPORT{%ROW{<P>found: $(V1)</P>%}%}
%}
%HTML_INPUT{<FORM METHOD="post"
 ACTION="/cgi-bin/db2www/search.d2w/report">
<INPUT TYPE="text" NAME="q"></FORM>%}
%HTML_REPORT{%EXEC_SQL%}
""")
        site = build_site(engine, library)
        browser = site.new_browser()
        page = browser.get("/cgi-bin/db2www/search.d2w/input")
        form = page.form(0)
        form.set("q", "自転車")
        report = browser.submit(form)
        assert "found: 自転車" in report.html
