"""End-to-end flows: the Section 2.1 user loop over the full stack.

These tests walk the exact journey of the paper's figures: fetch the
input form (Figure 7), fill it like the user of Figure 3, submit, and
read the report (Figure 8) — all through browser → HTTP → CGI → engine →
SQL and back.
"""

import pytest


@pytest.fixture()
def browser(urlquery_site):
    return urlquery_site.new_browser()


@pytest.fixture()
def input_page(browser, urlquery):
    return browser.get(urlquery.input_path)


class TestInputForm:
    def test_figure7_page_structure(self, input_page):
        assert input_page.status == 200
        assert input_page.title == "DB2 WWW URL Query"
        form = input_page.form(0)
        assert form.method == "POST"
        assert form.action.endswith("/urlquery.d2w/report")
        assert form.control_names() == [
            "SEARCH", "USE_URL", "USE_TITLE", "USE_DESC", "DBFIELDS",
            "SHOWSQL"]

    def test_hidden_values_travel_as_literals(self, input_page):
        select = input_page.form(0)["DBFIELDS"]
        assert [o.value for o in select.options] == \
            ["$(hidden_a)", "$(hidden_b)"]

    def test_default_selections_match_figure(self, input_page):
        form = input_page.form(0)
        assert form["SEARCH"].value == "ib"
        assert form["USE_URL"].checked
        assert form["USE_TITLE"].checked
        assert not form["USE_DESC"].checked
        assert form["DBFIELDS"].selected_values() == ["$(hidden_a)"]

    def test_text_rendering_shows_controls(self, input_page):
        rendered = input_page.render()
        assert "Query URL Information" in rendered
        assert "[x] URL" in rendered
        assert "[ ] Description" in rendered
        assert "< Submit Query >" in rendered


class TestSubmitAndReport:
    def test_full_round_trip(self, browser, input_page):
        form = input_page.form(0)
        form.set("SEARCH", "ibm")
        report = browser.submit(form, click="Submit Query")
        assert report.status == 200
        assert report.title == "DB2 WWW URL Query Result"
        result_links = [link for link in report.links
                        if "ibm" in link.href]
        assert result_links

    def test_hidden_variable_resolved_server_side(self, browser,
                                                  input_page):
        form = input_page.form(0)
        form.set("SEARCH", "ib")
        form["DBFIELDS"].select("$(hidden_b)")
        form.check("SHOWSQL", "YES")
        report = browser.submit(form, click="Submit Query")
        # The browser sent the literal "$(hidden_a)", but the SQL shows
        # the real column names — the paper's hiding idiom, end to end.
        assert "$(hidden" not in report.html.split("<TT>")[1]
        assert "title , description" in report.html

    def test_report_links_navigate_back_to_input(self, browser,
                                                 input_page):
        form = input_page.form(0)
        report = browser.submit(form, click="Submit Query")
        again = browser.follow("New URL query")
        assert again.title == "DB2 WWW URL Query"

    def test_empty_search_with_checked_boxes_matches_everything(
            self, browser, input_page, urlquery):
        form = input_page.form(0)
        form.set("SEARCH", "")
        report = browser.submit(form, click="Submit Query")
        # LIKE '%%' matches every row: all URLs listed.
        http_links = [l for l in report.links
                      if l.href.startswith("http://www.")
                      and "ibm.com/" != l.href[11:]]
        assert len([l for l in report.links
                    if "/page" in l.href]) == urlquery.rows

    def test_multiple_users_independent_sessions(self, urlquery_site,
                                                 urlquery):
        first = urlquery_site.new_browser()
        second = urlquery_site.new_browser()
        page1 = first.get(urlquery.input_path)
        page2 = second.get(urlquery.input_path)
        form1 = page1.form(0)
        form1.set("SEARCH", "ibm")
        form2 = page2.form(0)
        form2.set("SEARCH", "acme")
        report1 = first.submit(form1, click="Submit Query")
        report2 = second.submit(form2, click="Submit Query")
        assert all("ibm" in l.href for l in report1.links
                   if "/page" in l.href)
        assert all("acme" in l.href for l in report2.links
                   if "/page" in l.href)


class TestGetVsPost:
    def test_report_also_reachable_by_get(self, browser, urlquery):
        # Figure 4's first scenario: variables in the URL QUERY_STRING.
        page = browser.get(
            urlquery.report_path
            + "?SEARCH=ibm&USE_URL=yes&DBFIELDS=title")
        assert page.status == 200
        assert page.title == "DB2 WWW URL Query Result"

    def test_get_and_post_give_identical_pages(self, urlquery_site,
                                               urlquery):
        browser = urlquery_site.new_browser()
        via_get = browser.get(
            urlquery.report_path
            + "?SEARCH=ibm&USE_URL=yes&DBFIELDS=title").html
        page = browser.get(urlquery.input_path)
        form = page.form(0)
        form.set("SEARCH", "ibm")
        form.uncheck("USE_TITLE")
        form["DBFIELDS"].deselect_all()
        form["DBFIELDS"].select("$(hidden_a)")
        via_post = browser.submit(form, click="Submit Query").html
        assert via_get == via_post
