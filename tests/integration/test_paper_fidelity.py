"""Every concrete example the paper states, asserted verbatim.

These tests pin the reproduction to the paper's own text: each test's
docstring quotes or cites the passage it checks.
"""

import pytest

from repro.core import MacroEngine, parse_macro
from repro.errors import CircularReferenceError
from repro.sql.gateway import DatabaseRegistry


@pytest.fixture()
def engine(shop_registry):
    return MacroEngine(shop_registry)


class TestSection311:
    def test_dollar_escape_example(self, engine):
        """'%DEFINE a = "$$(b)" will result in the variable a being
        evaluated to the string $(b) at run-time.'"""
        macro = parse_macro(
            '%DEFINE a = "$$(b)"\n%HTML_INPUT{$(a)%}')
        assert engine.execute_input(macro).html == "$(b)"

    def test_var1_var2_example(self, engine):
        """'%DEFINE var1 = "$(var2).abc" is permitted.'"""
        macro = parse_macro(
            '%DEFINE var1 = "$(var2).abc"\n'
            '%DEFINE var2 = "xyz"\n'
            "%HTML_INPUT{$(var1)%}")
        assert engine.execute_input(macro).html == "xyz.abc"

    def test_circular_references_are_an_error(self, engine):
        """'Circular references among variables are not allowed and
        result in an error.'"""
        macro = parse_macro(
            '%DEFINE a = "$(b)"\n%DEFINE b = "$(a)"\n'
            "%HTML_INPUT{$(a)%}")
        with pytest.raises(CircularReferenceError):
            engine.execute_input(macro)


class TestSection313:
    """The where_list worked example, through the real engine."""

    MACRO = """
%define{
%list " AND " where_list
where_list = ? "custid = $(cust_inp)"
where_list = ? "product_name LIKE '$(prod_inp)%'"
where_clause = ? "WHERE $(where_list)"
%}
%HTML_INPUT{$(where_clause)%}
"""

    def test_both_inputs_give_paper_string(self, engine):
        """'the variables where_list and where_clause respectively
        evaluate to ... WHERE custid = 10100 AND product_name LIKE
        'bikes%''"""
        result = engine.execute_input(
            parse_macro(self.MACRO),
            [("cust_inp", "10100"), ("prod_inp", "bikes")])
        assert result.html.strip() == (
            "WHERE custid = 10100 AND product_name LIKE 'bikes%'")

    def test_empty_cust_inp(self, engine):
        """'If cust_inp = "", ... The variable where_clause therefore
        evaluates to WHERE custid = 10100' — i.e. with cust_inp null the
        prod condition carries the clause; the paper's sentence swaps
        the names but the semantics are: null conjuncts drop out."""
        result = engine.execute_input(
            parse_macro(self.MACRO),
            [("cust_inp", ""), ("prod_inp", "bikes")])
        assert result.html.strip() == \
            "WHERE product_name LIKE 'bikes%'"

    def test_neither_input_no_where_clause(self, engine):
        """'In other words, there will be no WHERE clause in a SQL
        statement constructed using the variable where_clause.'"""
        result = engine.execute_input(parse_macro(self.MACRO))
        assert result.html.strip() == ""


class TestSection431:
    def test_one_two_not_one_two_three(self, engine):
        """'Thus, $(X) will be substituted with One Two and not
        One Two Three.'"""
        macro = parse_macro(
            '%define X = "One$(Y)$(Z)"\n'
            '%define Y = " Two"\n'
            "%HTML_INPUT{$(X)%}\n"
            '%define Z = " Three"')
        assert engine.execute_input(macro).html == "One Two"


class TestSection22:
    def test_undefined_equals_null_string(self, engine):
        """'the case where a variable is not defined and the case where
        a variable is defined to have its value as the null string are
        treated identically.'"""
        macro = parse_macro(
            '%DEFINE v = t ? "SET" : "UNSET"\n%HTML_INPUT{$(v)%}')
        undefined = engine.execute_input(parse_macro(
            '%DEFINE v = t ? "SET" : "UNSET"\n%HTML_INPUT{$(v)%}'))
        null_defined = engine.execute_input(macro, [("t", "")])
        assert undefined.html == null_defined.html == "UNSET"

    def test_multiple_selections_reach_sql_as_comma_list(
            self, shop_registry):
        """Section 2.2/3.1.3: multi-valued DBFIELD arrives as a list
        variable with comma separator — 'particularly useful for SELECT
        and FROM clause lists of a SQL query'."""
        engine = MacroEngine(shop_registry)
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT $(COLS) FROM items ORDER BY name %}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = engine.execute_report(
            macro, [("COLS", "name"), ("COLS", "qty")])
        assert result.statements[0].startswith(
            "SELECT name,qty FROM items")
        assert "<TH>name</TH><TH>qty</TH>" in result.html


class TestSection4Invocation:
    def test_url_syntax_input_and_report(self, urlquery_site, urlquery):
        """Section 4: '/cgi-bin/db2www/{macro-file}/{cmd}' with cmd in
        {input, report}."""
        browser = urlquery_site.new_browser()
        assert browser.get(
            "/cgi-bin/db2www/urlquery.d2w/input").status == 200
        assert browser.get(
            "/cgi-bin/db2www/urlquery.d2w/report?DBFIELDS=title"
        ).status == 200

    def test_input_mode_ignores_sql_sections_entirely(self, engine):
        """Section 4.1: SQL sections are 'completely ignored (skipped
        over)' in input mode — even ones that would fail."""
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT * FROM table_that_does_not_exist %}
%HTML_INPUT{form ok%}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = engine.execute_input(macro)
        assert result.html == "form ok"
        assert result.ok
