"""The CI edge-smoke path: async edge → TCP pool daemon, for real.

Two subprocesses, exactly as a two-host deployment would run them:

* ``repro serve --listen 127.0.0.1:0`` — the standalone worker-pool
  daemon, owning the CGI worker processes;
* ``repro serve --gateway appserver --connect <endpoint> --edge async``
  — the asyncio HTTP edge dispatching over loopback TCP.

Then real requests through the whole stack, plus a scrape of
``/statusz`` for the edge gauges and pool stats.
"""

import json
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.datasets import seed_urldb
from repro.sql.connection import Connection

REPORT = ("/cgi-bin/db2www/urlquery.d2w/report"
          "?SEARCH=ib&USE_URL=yes&DBFIELDS=title")

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")
SUBPROCESS_ENV = {"PYTHONPATH": SRC_DIR, "PATH": "/usr/bin:/bin"}


def fetch(base, target):
    try:
        with urllib.request.urlopen(base + target,
                                    timeout=10) as response:
            return (response.status, dict(response.headers),
                    response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def read_banner(proc, pattern, what):
    deadline = time.time() + 20
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(pattern, line)
        if match:
            return match.group(1)
    proc.kill()
    raise RuntimeError(f"{what} never announced itself")


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """Daemon + async edge subprocess pair, shared by the tests."""
    tmp_path = tmp_path_factory.mktemp("edge-smoke")
    db_path = tmp_path / "urldb.sqlite"
    conn = Connection(str(db_path))
    seed_urldb(conn, 20)
    conn.close()
    macro_dir = tmp_path / "macros"
    macro_dir.mkdir()
    (macro_dir / "urlquery.d2w").write_text(
        urlquery_app.URLQUERY_MACRO, encoding="utf-8")
    common = ["--macros", str(macro_dir),
              "--database", f"URLDB={db_path}"]
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--listen", "127.0.0.1:0", "--workers", "2", *common],
        env=SUBPROCESS_ENV, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    procs = [daemon]
    try:
        endpoint = read_banner(
            daemon, r"worker pool listening on ([\d.]+:\d+)",
            "pool daemon")
        edge = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--gateway", "appserver", "--connect", endpoint,
             "--edge", "async", "--workers", "2",
             "--host", "127.0.0.1", "--port", "0", *common],
            env=SUBPROCESS_ENV, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        procs.append(edge)
        base = read_banner(edge, r"on (http://[\d.]+:\d+)", "edge")
        yield {"base": base, "endpoint": endpoint}
    finally:
        for proc in reversed(procs):
            if proc.poll() is None:
                proc.send_signal(signal.SIGINT)
        for proc in reversed(procs):
            if proc.poll() is None:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


class TestEdgeSmoke:
    def test_report_served_over_tcp_dispatch(self, stack):
        status, headers, body = fetch(stack["base"], REPORT)
        assert status == 200
        assert b"URL Query Result" in body
        # minted at the edge, threaded through daemon and worker
        assert headers.get("X-Trace-Id")

    def test_sequential_requests_reuse_the_stack(self, stack):
        for _ in range(5):
            status, _, body = fetch(stack["base"], REPORT)
            assert status == 200
            assert b"URL Query Result" in body

    def test_statusz_shows_edge_and_pool(self, stack):
        status, _, body = fetch(stack["base"], "/statusz")
        assert status == 200
        page = json.loads(body)
        flat = json.dumps(page)
        # the async edge's gauges made it into the registry
        assert "edge_connections_active" in flat
        assert "edge_requests_total" in flat
        # pool stats crossed the TCP transport via PING
        assert "appserver" in flat
        assert "daemon_requests" in flat
