"""Fuzzing: hostile and random inputs must never crash the stack.

A 1996 gateway lived on the open internet; every layer here is expected
to either handle arbitrary bytes or fail with the library's own typed
errors — never an unhandled exception.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cgi.environ import CgiEnvironment
from repro.cgi.request import CgiRequest
from repro.core.engine import MacroEngine
from repro.core.parser import parse_macro
from repro.errors import ReproError
from repro.http.message import HttpRequest
from repro.http.router import Router

# Text skewed toward macro metacharacters so the fuzz actually reaches
# interesting parser states.
macro_text = st.text(
    alphabet=st.sampled_from(list(
        "%{}()$\"'=?:\n abcDEFINE_SQLHTML_INPUTREPORTLISTEXECROW")),
    max_size=300)


class TestParserFuzz:
    @settings(max_examples=300, deadline=None)
    @given(macro_text)
    def test_parse_macro_total(self, text):
        """parse_macro either succeeds or raises a ReproError."""
        try:
            macro = parse_macro(text)
        except ReproError:
            return
        # A successful parse must also unparse and re-parse without
        # crashing (the result need not be identical: lenient parses of
        # junk can normalise).
        try:
            parse_macro(macro.unparse())
        except ReproError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(macro_text)
    def test_lint_total_on_parseable_macros(self, text):
        from repro.core.lint import lint_macro
        try:
            macro = parse_macro(text)
        except ReproError:
            return
        for finding in lint_macro(macro):
            assert finding.severity in ("error", "warning", "info")


class TestEngineFuzz:
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(
        st.tuples(st.text(min_size=1, max_size=10),
                  st.text(max_size=30)),
        max_size=8))
    def test_urlquery_app_survives_arbitrary_inputs(self, urlquery,
                                                    pairs):
        """The Appendix A app, fed arbitrary client variables."""
        macro = urlquery.library.load(urlquery.macro_name)
        try:
            result = urlquery.engine.execute_report(macro, pairs)
        except ReproError:
            return  # typed failure is acceptable (e.g. broken SQL)
        assert isinstance(result.html, str)

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=60))
    def test_substitution_of_hostile_search_strings(self, urlquery,
                                                    term):
        """Search strings full of quotes/percent signs: the engine must
        produce a page or a typed SQL error, never crash."""
        macro = urlquery.library.load(urlquery.macro_name)
        try:
            result = urlquery.engine.execute_report(macro, [
                ("SEARCH", term), ("USE_TITLE", "yes"),
                ("DBFIELDS", "title")])
        except ReproError:
            return
        assert "URL Query Result" in result.html


class TestHttpFuzz:
    @pytest.fixture(scope="class")
    def router(self):
        router = Router()
        router.add_page("/index.html", "<H1>x</H1>")
        return router

    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=200))
    def test_router_survives_arbitrary_request_bytes(self, router, raw):
        from repro.errors import BadRequestError
        try:
            request = HttpRequest.parse(raw)
        except BadRequestError:
            return
        response = router.handle(request)
        assert 200 <= response.status < 600

    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=120))
    def test_db2www_survives_arbitrary_path_info(self, urlquery_site,
                                                 path_info):
        request = CgiRequest(CgiEnvironment(
            script_name="/cgi-bin/db2www", path_info=path_info))
        response = urlquery_site.gateway.dispatch("db2www", request)
        assert response.status in (200, 400, 404, 500)


class TestEndToEndDeterminism:
    def test_identical_requests_identical_pages(self, urlquery_site,
                                                urlquery):
        """The gateway is stateless: same request, same bytes."""
        browser = urlquery_site.new_browser()
        path = (urlquery.report_path
                + "?SEARCH=ib&USE_TITLE=yes&DBFIELDS=title")
        first = browser.get(path).html
        second = browser.get(path).html
        assert first == second
