"""Multi-tenant hosting: isolation, JSON negotiation, quotas, teardown."""

import json

import pytest

from repro.cgi.environ import CgiEnvironment
from repro.errors import SQLObjectError
from repro.http.headers import Headers
from repro.http.message import HttpRequest
from repro.http.router import Router
from repro.security.auth import basic_credentials
from repro.security.tenants import TenantAccessPolicy
from repro.sql.gateway import DatabaseRegistry
from repro.sql.querycache import QueryResultCache
from repro.tenancy import (
    JSON_CONTENT_TYPE,
    TenantHost,
    TenantQuota,
    TenantRegistry,
    valid_tenant_name,
    wants_json,
)
from repro.tenancy.registry import _QuotaWindow

ITEMS_MACRO = """\
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT id, name FROM items ORDER BY id %}
%HTML_REPORT{
<H1>Items</H1>
%EXEC_SQL
%}
"""

INSERT_MACRO = """\
%DEFINE DATABASE = "SHOP"
%SQL{ INSERT INTO items VALUES (99, 'intruder') %}
%HTML_REPORT{
%EXEC_SQL
%}
"""


def seed_shop(tenant, rows):
    db = tenant.databases.register_memory("SHOP")
    with db.connect() as conn:
        conn.executescript(
            "CREATE TABLE items (id INTEGER, name TEXT);")
        for row_id, name in rows:
            conn.execute("INSERT INTO items VALUES (?, ?)",
                         (row_id, name))
        conn.commit()


@pytest.fixture()
def tenants():
    registry = TenantRegistry(query_cache=QueryResultCache())
    alpha = registry.create_tenant(
        "alpha", owner="alice", password="wonder",
        visibility="private")
    seed_shop(alpha, [(1, "apple"), (2, "apricot")])
    alpha.library.add_text("items.d2w", ITEMS_MACRO)
    alpha.library.add_text("insert.d2w", INSERT_MACRO)
    beta = registry.create_tenant(
        "beta", owner="bob", password="builder",
        visibility="public", read_only=True)
    seed_shop(beta, [(1, "brick")])
    beta.library.add_text("items.d2w", ITEMS_MACRO)
    beta.library.add_text("insert.d2w", INSERT_MACRO)
    return registry


@pytest.fixture()
def router(tenants):
    return Router(tenants=TenantHost(tenants))


def call(router, path, *, user=None, password="", headers=None):
    all_headers = Headers(list((headers or {}).items()))
    if user is not None:
        all_headers.set("Authorization",
                        basic_credentials(user, password))
    response = router.handle(
        HttpRequest(method="GET", target=path, headers=all_headers))
    response.drain()
    return response


class TestRouting:
    def test_owner_gets_html_report(self, router):
        response = call(router, "/t/alpha/items.d2w/report",
                        user="alice", password="wonder")
        assert response.status == 200
        assert "text/html" in response.headers.get("Content-Type")
        assert "apple" in response.text
        assert "apricot" in response.text

    def test_wrong_shape_is_404(self, router):
        assert call(router, "/t/alpha/items.d2w",
                    user="alice", password="wonder").status == 404

    def test_unknown_tenant_is_404(self, router):
        assert call(router, "/t/gamma/items.d2w/report").status == 404

    def test_unknown_macro_is_404(self, router):
        response = call(router, "/t/alpha/nope.d2w/report",
                        user="alice", password="wonder")
        assert response.status == 404


class TestIsolation:
    def test_anonymous_private_gets_401_challenge(self, router):
        response = call(router, "/t/alpha/items.d2w/report")
        assert response.status == 401
        assert 'Basic realm="tenants"' in response.headers.get(
            "WWW-Authenticate")

    def test_cross_tenant_private_is_403(self, router):
        # bob is a perfectly valid identity — for *beta*.
        response = call(router, "/t/alpha/items.d2w/report",
                        user="bob", password="builder")
        assert response.status == 403

    def test_public_tenant_serves_anonymous(self, router):
        response = call(router, "/t/beta/items.d2w/report")
        assert response.status == 200
        assert "brick" in response.text

    def test_same_database_name_different_rows(self, router):
        alpha = call(router, "/t/alpha/items.d2w/report",
                     user="alice", password="wonder")
        beta = call(router, "/t/beta/items.d2w/report")
        # Both tenants call their database SHOP; neither sees the
        # other's rows (scoped registries, scoped cache keys).
        assert "apple" in alpha.text and "brick" not in alpha.text
        assert "brick" in beta.text and "apple" not in beta.text

    @pytest.mark.parametrize("path", [
        "/t/../etc/passwd/report",
        "/t/alpha/../beta/report",
        "/t/alpha/items.d2w/../input",
        "/t/%2e%2e/items.d2w/report",
        "/t/alpha/%2e%2e%2fsecret.d2w/report",
        "/t/alpha/items;drop.d2w/report",
    ])
    def test_traversal_rejected_at_parse_time(self, router, path,
                                              tenants):
        # Literal ``../`` collapses in the router's URL normalization
        # (→ 404, wrong shape); encoded spellings reach the tenant
        # parser and fail its charset check (→ 400).  Either way the
        # probe dies before tenant resolution.
        response = call(router, path)
        assert response.status in (400, 404)
        # Rejected before tenant resolution: no counter moved.
        stats = tenants.stats()
        assert all(value == 0 for value in stats.values())


class TestReadOnly:
    def test_write_rejected_with_42501(self, router):
        response = call(router, "/t/beta/insert.d2w/report")
        assert response.status == 403
        assert "42501" in response.text

    def test_write_rejected_before_touching_the_pool(self, tenants):
        beta = tenants.get("beta")
        assert beta.databases.active_connections("SHOP") == 0
        router = Router(tenants=TenantHost(tenants))
        call(router, "/t/beta/insert.d2w/report")
        # The rejection happened before a connection was acquired and
        # the table is untouched.
        assert beta.databases.active_connections("SHOP") == 0
        conn = beta.databases.connect("SHOP")
        try:
            count = conn.execute(
                "SELECT COUNT(*) FROM items").fetchone()[0]
        finally:
            conn.close()
        assert count == 1

    def test_writable_tenant_still_writes(self, router):
        response = call(router, "/t/alpha/insert.d2w/report",
                        user="alice", password="wonder")
        assert response.status == 200


class TestJsonNegotiation:
    def test_accept_header_negotiates_json(self, router):
        response = call(router, "/t/beta/items.d2w/report",
                        headers={"Accept": JSON_CONTENT_TYPE})
        assert response.status == 200
        assert response.headers.get("Content-Type").startswith(
            JSON_CONTENT_TYPE)
        page = json.loads(response.text)
        assert page["tenant"] == "beta"
        assert page["macro"] == "items.d2w"
        assert page["command"] == "report"
        assert page["results"] == [{
            "columns": ["id", "name"],
            "rows": [{"id": 1, "name": "brick"}],
            "row_count": 1,
        }]

    def test_format_variable_negotiates_json(self, router):
        response = call(router, "/t/beta/items.d2w/report?format=json")
        assert response.status == 200
        json.loads(response.text)

    def test_json_and_html_carry_identical_row_data(self, router):
        html = call(router, "/t/alpha/items.d2w/report",
                    user="alice", password="wonder")
        as_json = call(router, "/t/alpha/items.d2w/report",
                       user="alice", password="wonder",
                       headers={"Accept": JSON_CONTENT_TYPE})
        rows = json.loads(as_json.text)["results"][0]["rows"]
        assert rows == [{"id": 1, "name": "apple"},
                        {"id": 2, "name": "apricot"}]
        for row in rows:
            assert str(row["name"]) in html.text

    def test_unnegotiated_response_is_plain_html(self, router):
        response = call(router, "/t/beta/items.d2w/report")
        assert "text/html" in response.headers.get("Content-Type")
        assert response.text.lstrip().startswith("<")

    def test_json_error_negotiation_keeps_status_mapping(self, router):
        # A write against read-only beta still maps to 403, even when
        # the client asked for JSON.
        response = call(router, "/t/beta/insert.d2w/report",
                        headers={"Accept": JSON_CONTENT_TYPE})
        assert response.status == 403


class TestQuota:
    def test_request_quota_answers_429_with_retry_after(self, tenants):
        gamma = tenants.create_tenant(
            "gamma", owner="gail", password="force",
            quota=TenantQuota(requests=2, window_seconds=60.0))
        seed_shop(gamma, [(1, "granite")])
        gamma.library.add_text("items.d2w", ITEMS_MACRO)
        router = Router(tenants=TenantHost(tenants))
        for _ in range(2):
            assert call(router,
                        "/t/gamma/items.d2w/report").status == 200
        throttled = call(router, "/t/gamma/items.d2w/report")
        assert throttled.status == 429
        retry_after = throttled.headers.get("Retry-After")
        assert retry_after and 0 < int(retry_after) <= 60
        assert tenants.stats()["gamma_throttled_total"] == 1

    def test_row_quota_charges_after_completion(self, tenants):
        delta = tenants.create_tenant(
            "delta", owner="dora", password="explorer",
            quota=TenantQuota(rows=3, window_seconds=60.0))
        seed_shop(delta, [(1, "d1"), (2, "d2")])
        delta.library.add_text("items.d2w", ITEMS_MACRO)
        router = Router(tenants=TenantHost(tenants))
        # First page fetches 2 rows (under), second overshoots to 4 —
        # the fixed-window trade: the *next* request gets the 429.
        assert call(router, "/t/delta/items.d2w/report").status == 200
        assert call(router, "/t/delta/items.d2w/report").status == 200
        assert call(router, "/t/delta/items.d2w/report").status == 429

    def test_window_rolls_over(self):
        window = _QuotaWindow(TenantQuota(requests=1,
                                          window_seconds=0.0))
        assert window.admit() == (True, 0.0)
        # A zero-length window resets on every admission check.
        assert window.admit()[0]

    def test_unlimited_quota_never_throttles(self):
        window = _QuotaWindow(TenantQuota())
        for _ in range(100):
            assert window.admit() == (True, 0.0)


class TestStats:
    def test_counters_roll_up_flat(self, tenants):
        router = Router(tenants=TenantHost(tenants))
        call(router, "/t/alpha/items.d2w/report",
             user="alice", password="wonder")
        call(router, "/t/alpha/items.d2w/report")          # 401
        call(router, "/t/alpha/items.d2w/report",
             user="bob", password="builder")               # 403
        stats = tenants.stats()
        assert stats["alpha_requests_total"] == 1
        assert stats["alpha_rows_total"] == 2
        assert stats["alpha_denied_total"] == 2
        assert stats["beta_requests_total"] == 0

    def test_stats_render_on_metrics_scrape(self, tenants):
        from repro.obs.metrics import MetricsRegistry
        metrics = MetricsRegistry()
        metrics.attach_stats_source("tenant", tenants.stats)
        router = Router(tenants=TenantHost(tenants), metrics=metrics)
        call(router, "/t/beta/items.d2w/report")
        scrape = call(router, "/metrics")
        assert scrape.status == 200
        assert "tenant_beta_requests_total 1" in scrape.text


class TestLifecycle:
    def test_duplicate_tenant_rejected(self, tenants):
        with pytest.raises(SQLObjectError) as excinfo:
            tenants.create_tenant("alpha", owner="eve")
        assert excinfo.value.sqlstate == "42710"

    def test_bad_names_rejected(self, tenants):
        for name in ("", "-lead", "a/b", "a..b", "x" * 65, "%2e%2e"):
            assert not valid_tenant_name(name)
            with pytest.raises(ValueError):
                tenants.create_tenant(name, owner="eve")

    def test_bad_visibility_rejected(self, tenants):
        with pytest.raises(ValueError):
            tenants.create_tenant("vis", owner="eve",
                                  visibility="secret")

    def test_drop_unknown_tenant(self, tenants):
        with pytest.raises(SQLObjectError) as excinfo:
            tenants.drop_tenant("ghost")
        assert excinfo.value.sqlstate == "42704"

    def test_drop_tenant_purges_cache_namespace(self, tenants):
        router = Router(tenants=TenantHost(tenants))
        # Warm the cache with beta's rows, then recreate beta with
        # different data under the same names.
        first = call(router, "/t/beta/items.d2w/report")
        assert "brick" in first.text
        tenants.drop_tenant("beta")
        assert "beta" not in tenants
        rebuilt = tenants.create_tenant("beta", owner="bob")
        seed_shop(rebuilt, [(1, "basalt")])
        rebuilt.library.add_text("items.d2w", ITEMS_MACRO)
        second = call(router, "/t/beta/items.d2w/report")
        # A stale cache would resurrect 'brick' here.
        assert "basalt" in second.text
        assert "brick" not in second.text

    def test_drop_refused_while_connections_active(self, tenants):
        beta = tenants.get("beta")
        conn = beta.databases.connect("SHOP")
        try:
            with pytest.raises(SQLObjectError) as excinfo:
                tenants.drop_tenant("beta")
            assert excinfo.value.sqlstate == "55006"
            assert "beta" in tenants
        finally:
            conn.close()
        tenants.drop_tenant("beta")


class TestUnits:
    def test_wants_json_accept_header(self):
        env = CgiEnvironment(
            http_headers={"Accept": "text/html, application/JSON"})
        assert wants_json(env)
        assert not wants_json(CgiEnvironment(
            http_headers={"Accept": "text/html"}))

    def test_wants_json_format_variable(self):
        assert wants_json(CgiEnvironment(query_string="format=json"))
        assert wants_json(CgiEnvironment(query_string="format=JSON"))
        assert not wants_json(CgiEnvironment(query_string="format=xml"))
        assert not wants_json(CgiEnvironment())

    def test_access_policy_matrix(self, tenants):
        policy = TenantAccessPolicy(tenants.authenticator)
        alpha = tenants.get("alpha")
        beta = tenants.get("beta")
        good = basic_credentials("alice", "wonder")
        bad = basic_credentials("alice", "nope")
        assert policy.authorize(alpha, good).allowed
        assert policy.authorize(alpha, good).user == "alice"
        assert policy.authorize(alpha, None).status == 401
        assert policy.authorize(alpha, bad).status == 401
        assert policy.authorize(
            alpha, basic_credentials("bob", "builder")).status == 403
        # Public tenants admit anyone, credentialed or not.
        assert policy.authorize(beta, None).allowed
        assert policy.authorize(beta, good).user == "alice"
