"""The simulated Web client: navigation, forms, links, redirects."""

import pytest

from repro.browser.client import Browser
from repro.cgi.gateway import CgiGateway, FunctionProgram
from repro.cgi.request import CgiResponse
from repro.errors import HttpError
from repro.http.inprocess import InProcessTransport
from repro.http.router import Router


@pytest.fixture()
def site():
    gateway = CgiGateway()

    def echo(request):
        body = (f"<TITLE>echo</TITLE><P>method={request.environ.request_method} "
                f"qs={request.environ.query_string} "
                f"body={request.stdin.decode()}</P>")
        return CgiResponse(body=body.encode())

    def bouncer(request):
        return CgiResponse(
            status=302, reason="Found",
            headers=[("Location", "/landing.html")])

    gateway.install("echo", FunctionProgram(echo))
    gateway.install("bounce", FunctionProgram(bouncer))
    router = Router(gateway=gateway, server_name="test.host")
    router.add_page("/index.html", """
<TITLE>Home</TITLE>
<H1>Welcome</H1>
<A HREF="/page2.html">Next page</A>
<A HREF="/cgi-bin/bounce/x">Bounce</A>
<FORM METHOD="get" ACTION="/cgi-bin/echo/q">
<INPUT TYPE="text" NAME="term" VALUE="default">
<INPUT TYPE="submit" VALUE="Go">
</FORM>
<FORM METHOD="post" ACTION="/cgi-bin/echo/p">
<INPUT TYPE="hidden" NAME="h" VALUE="1">
<INPUT TYPE="submit" VALUE="Post It">
</FORM>
""")
    router.add_page("/page2.html",
                    "<TITLE>Second</TITLE><A HREF='/index.html'>home</A>")
    router.add_page("/landing.html", "<TITLE>Landed</TITLE>")
    return router


@pytest.fixture()
def browser(site):
    return Browser(InProcessTransport(site),
                   base_url="http://test.host/")


class TestNavigation:
    def test_get_parses_page(self, browser):
        page = browser.get("/index.html")
        assert page.status == 200
        assert page.title == "Home"
        assert len(page.forms) == 2
        assert len(page.links) == 2

    def test_relative_url_resolved_against_base(self, browser):
        page = browser.get("index.html")
        assert page.title == "Home"

    def test_follow_link_by_text(self, browser):
        browser.get("/index.html")
        page = browser.follow("Next page")
        assert page.title == "Second"

    def test_follow_link_by_href(self, browser):
        browser.get("/index.html")
        page = browser.follow("/page2.html")
        assert page.title == "Second"

    def test_unknown_link(self, browser):
        page = browser.get("/index.html")
        with pytest.raises(LookupError):
            page.link("No Such Anchor")

    def test_back(self, browser):
        browser.get("/index.html")
        browser.follow("Next page")
        page = browser.back()
        assert page.title == "Home"

    def test_back_without_history(self, browser):
        with pytest.raises(HttpError):
            browser.back()

    def test_redirect_followed(self, browser):
        browser.get("/index.html")
        page = browser.follow("Bounce")
        assert page.title == "Landed"
        assert page.url.path == "/landing.html"

    def test_404_page_still_parsed(self, browser):
        page = browser.get("/missing.html")
        assert page.status == 404
        assert "404" in page.title

    def test_no_current_page_errors(self, browser):
        with pytest.raises(HttpError):
            browser.submit(None)  # type: ignore[arg-type]


class TestFormSubmission:
    def test_get_form_goes_to_query_string(self, browser):
        page = browser.get("/index.html")
        form = page.form(0)
        form.set("term", "ib m")
        result = browser.submit(form)
        assert "qs=term=ib+m" in result.html
        assert "method=GET" in result.html

    def test_post_form_goes_to_body(self, browser):
        page = browser.get("/index.html")
        result = browser.submit(page.form(1), click="Post It")
        assert "method=POST" in result.html
        assert "body=h=1" in result.html

    def test_form_action_resolved_relative_to_page(self, site):
        site.add_page("/deep/form.html",
                      "<FORM ACTION='go'><INPUT TYPE=submit></FORM>")
        site.gateway.install("noop", FunctionProgram(
            lambda r: CgiResponse(body=b"x")))
        browser = Browser(InProcessTransport(site),
                          base_url="http://test.host/")
        page = browser.get("/deep/form.html")
        result = browser.submit(page.form(0))
        assert result.url.path == "/deep/go"

    def test_render_of_fetched_page(self, browser):
        page = browser.get("/index.html")
        rendered = page.render()
        assert "Welcome" in rendered
        assert "< Go >" in rendered
