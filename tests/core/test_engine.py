"""The macro engine: input/report modes, Section 4 semantics."""

import pytest

from repro.core import parse_macro
from repro.core.engine import (
    EngineConfig,
    MacroCommand,
    MacroEngine,
)
from repro.core.execvars import RegistryExecRunner
from repro.errors import (
    MacroExecutionError,
    MissingSectionError,
    UnknownSqlSectionError,
)
from repro.sql.gateway import DatabaseRegistry
from repro.sql.transactions import TransactionMode

SHOP_MACRO = """
%DEFINE DATABASE = "SHOP"
%SQL{
SELECT name, qty FROM items WHERE name LIKE '$(q)%' ORDER BY name
%SQL_REPORT{
<UL>
%ROW{<LI>$(V_name): $(V_qty)
%}
</UL>
%}
%}
%HTML_INPUT{<FORM><INPUT NAME="q"></FORM>%}
%HTML_REPORT{<H1>Stock</H1>
%EXEC_SQL
<P>done</P>
%}
"""


class TestInputMode:
    def test_emits_only_html_input(self, shop_engine):
        macro = parse_macro(SHOP_MACRO)
        result = shop_engine.execute_input(macro)
        assert "<FORM>" in result.html
        assert "Stock" not in result.html
        assert result.statements == []  # no SQL ran

    def test_variables_substituted_into_form(self, shop_engine):
        macro = parse_macro(
            '%DEFINE greeting = "Welcome"\n'
            "%HTML_INPUT{<P>$(greeting)</P>%}")
        result = shop_engine.execute_input(macro)
        assert result.html == "<P>Welcome</P>"

    def test_client_inputs_override_defaults(self, shop_engine):
        macro = parse_macro(
            '%DEFINE q = "default"\n%HTML_INPUT{[$(q)]%}')
        result = shop_engine.execute_input(macro, [("q", "client")])
        assert result.html == "[client]"

    def test_escape_stripped_on_output(self, shop_engine):
        macro = parse_macro("%HTML_INPUT{VALUE=$$(hidden)%}")
        result = shop_engine.execute_input(macro)
        assert result.html == "VALUE=$(hidden)"

    def test_positional_visibility(self, shop_engine):
        # The Section 4.3.1 example: Z defined after the section is null.
        macro = parse_macro(
            '%define X = "One$(Y)$(Z)"\n'
            '%define Y = " Two"\n'
            "%HTML_INPUT{$(X)%}\n"
            '%define Z = " Three"')
        result = shop_engine.execute_input(macro)
        assert result.html == "One Two"

    def test_missing_input_section_raises(self, shop_engine):
        macro = parse_macro("%HTML_REPORT{r%}")
        with pytest.raises(MissingSectionError):
            shop_engine.execute_input(macro)

    def test_command_accepts_strings(self, shop_engine):
        macro = parse_macro("%HTML_INPUT{x%}")
        assert shop_engine.execute(macro, "input").html == "x"
        with pytest.raises(MacroExecutionError):
            shop_engine.execute(macro, "reportx")

    def test_command_parse_case_insensitive(self):
        assert MacroCommand.parse("REPORT") is MacroCommand.REPORT


class TestReportMode:
    def test_executes_sql_and_formats(self, shop_engine):
        macro = parse_macro(SHOP_MACRO)
        result = shop_engine.execute_report(macro, [("q", "b")])
        assert result.statements == [
            "SELECT name, qty FROM items WHERE name LIKE 'b%' "
            "ORDER BY name"]
        assert "<LI>bikes: 4" in result.html
        assert result.html.index("<H1>Stock</H1>") < \
            result.html.index("<LI>bikes")
        assert "<P>done</P>" in result.html

    def test_missing_report_section_raises(self, shop_engine):
        macro = parse_macro("%HTML_INPUT{x%}")
        with pytest.raises(MissingSectionError):
            shop_engine.execute_report(macro)

    def test_unnamed_exec_sql_runs_all_unnamed_sections_in_order(
            self, shop_engine):
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT 'first' AS tag %}
%SQL(named){ SELECT 'named' AS tag %}
%SQL{ SELECT 'second' AS tag %}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = shop_engine.execute_report(macro)
        assert [s.split("'")[1] for s in result.statements] == \
            ["first", "second"]

    def test_named_exec_sql_runs_only_that_section(self, shop_engine):
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT 'unnamed' AS tag %}
%SQL(wanted){ SELECT 'wanted' AS tag %}
%HTML_REPORT{%EXEC_SQL(wanted)%}
""")
        result = shop_engine.execute_report(macro)
        assert len(result.statements) == 1
        assert "wanted" in result.statements[0]

    def test_exec_sql_name_from_variable(self, shop_engine):
        # Section 3.4: %EXEC_SQL($(sqlcmd)) lets the end user pick.
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%DEFINE sqlcmd = "beta"
%SQL(alpha){ SELECT 'a' AS t %}
%SQL(beta){ SELECT 'b' AS t %}
%HTML_REPORT{%EXEC_SQL($(sqlcmd))%}
""")
        default = shop_engine.execute_report(macro)
        assert "'b'" in default.statements[0]
        chosen = shop_engine.execute_report(macro, [("sqlcmd", "alpha")])
        assert "'a'" in chosen.statements[0]

    def test_unknown_section_name_raises(self, shop_engine):
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL(real){ SELECT 1 %}
%HTML_REPORT{%EXEC_SQL($(pick))%}
""")
        with pytest.raises(UnknownSqlSectionError):
            shop_engine.execute_report(macro, [("pick", "fake")])

    def test_sql_sections_after_report_section_still_execute(
            self, shop_engine):
        # Directive semantics are macro-wide, unlike variable visibility.
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%HTML_REPORT{%EXEC_SQL%}
%SQL{ SELECT 'late' AS tag %}
""")
        result = shop_engine.execute_report(macro)
        assert len(result.statements) == 1

    def test_default_table_format_when_no_report_block(self, shop_engine):
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name, qty FROM items ORDER BY name %}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = shop_engine.execute_report(macro)
        assert "<TABLE BORDER=1>" in result.html
        assert "<TH>name</TH>" in result.html
        assert "<TD>bikes</TD>" in result.html

    def test_show_sql_flag(self, shop_engine):
        macro = parse_macro(SHOP_MACRO)
        shown = shop_engine.execute_report(
            macro, [("q", "b"), ("SHOWSQL", "YES")])
        assert "<TT>SELECT name" in shown.html
        hidden = shop_engine.execute_report(
            macro, [("q", "b"), ("SHOWSQL", "")])
        assert "<TT>" not in hidden.html

    def test_missing_database_variable_raises(self):
        engine = MacroEngine(DatabaseRegistry())
        macro = parse_macro(
            "%SQL{ SELECT 1 %}\n%HTML_REPORT{%EXEC_SQL%}")
        with pytest.raises(MacroExecutionError) as excinfo:
            engine.execute_report(macro)
        assert "DATABASE" in str(excinfo.value)

    def test_default_database_config(self, shop_registry):
        engine = MacroEngine(
            shop_registry, config=EngineConfig(default_database="SHOP"))
        macro = parse_macro(
            "%SQL{ SELECT COUNT(*) FROM items %}\n"
            "%HTML_REPORT{%EXEC_SQL%}")
        result = engine.execute_report(macro)
        assert "3" in result.html

    def test_update_statement_reports_rowcount(self, shop_engine):
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ UPDATE items SET qty = qty + 1 WHERE name = 'bikes' %}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = shop_engine.execute_report(macro)
        assert "1 row(s) affected" in result.html


class TestErrorHandling:
    def test_sql_error_renders_default_message(self, shop_engine):
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT * FROM missing_table %}
%HTML_REPORT{before %EXEC_SQL after%}
""")
        result = shop_engine.execute_report(macro)
        assert not result.ok
        assert "SQL error" in result.html
        assert "missing_table" in result.html
        assert "before" in result.html
        # Default action is exit: text after the directive is dropped.
        assert "after" not in result.html

    def test_sql_message_rule_matched_and_continue(self, shop_engine):
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT * FROM missing_table
%SQL_MESSAGE{
-204 : "<P>No table here ($(SQL_STATE)).</P>" : continue
%}
%}
%HTML_REPORT{%EXEC_SQL after%}
""")
        result = shop_engine.execute_report(macro)
        assert "<P>No table here (42704).</P>" in result.html
        assert "after" in result.html  # continue resumed processing
        assert result.sql_errors and result.sql_errors[0].sqlcode == -204

    def test_exit_action_stops_following_statements(self, shop_engine):
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT * FROM missing_table %}
%SQL{ SELECT 'never' AS t %}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = shop_engine.execute_report(macro)
        assert result.aborted
        assert all("never" not in s for s in result.statements)

    def test_macro_result_ok_flag(self, shop_engine):
        good = shop_engine.execute_report(
            parse_macro(SHOP_MACRO), [("q", "b")])
        assert good.ok and not good.aborted


class TestTransactionModes:
    def _entry_macro(self) -> str:
        return """
%DEFINE DATABASE = "SHOP"
%SQL{ INSERT INTO items VALUES ('ropes', 9.5, 7) %}
%SQL{ INSERT INTO broken_table VALUES (1) %}
%HTML_REPORT{%EXEC_SQL%}
"""

    def _count(self, registry, name: str) -> int:
        conn = registry.connect("SHOP")
        try:
            cursor = conn.execute(
                "SELECT COUNT(*) FROM items WHERE name = ?", (name,))
            return cursor.fetchone()[0]
        finally:
            conn.close()

    def test_auto_commit_keeps_successful_statement(self, shop_registry):
        engine = MacroEngine(shop_registry, config=EngineConfig(
            transaction_mode=TransactionMode.AUTO_COMMIT))
        result = engine.execute_report(parse_macro(self._entry_macro()))
        assert not result.ok
        assert self._count(shop_registry, "ropes") == 1

    def test_single_mode_rolls_everything_back(self, shop_registry):
        engine = MacroEngine(shop_registry, config=EngineConfig(
            transaction_mode=TransactionMode.SINGLE))
        result = engine.execute_report(parse_macro(self._entry_macro()))
        assert not result.ok
        assert self._count(shop_registry, "ropes") == 0

    def test_single_mode_commits_on_success(self, shop_registry):
        engine = MacroEngine(shop_registry, config=EngineConfig(
            transaction_mode=TransactionMode.SINGLE))
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ INSERT INTO items VALUES ('maps', 3.5, 20) %}
%SQL{ UPDATE items SET qty = 21 WHERE name = 'maps' %}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = engine.execute_report(macro)
        assert result.ok
        assert self._count(shop_registry, "maps") == 1


class TestExecVariablesInEngine:
    def test_exec_variable_in_html_output(self, shop_registry):
        runner = RegistryExecRunner()
        runner.register("server_name", lambda args: "repro-httpd")
        engine = MacroEngine(shop_registry, exec_runner=runner)
        macro = parse_macro(
            '%DEFINE sig = %EXEC "server_name"\n'
            "%HTML_INPUT{Served by $(sig)%}")
        result = engine.execute_input(macro)
        assert result.html == "Served by repro-httpd"
