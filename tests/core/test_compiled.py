"""Compiled %ROW rendering must be indistinguishable from interpreted.

Two layers of guarantees:

* unit: ``compile_row_template`` classifies implicit references exactly
  as ``VariableStore.lookup`` would resolve them, and refuses anything
  else;
* end-to-end: rendering a macro with ``compiled_reports=True`` (the
  default) is byte-identical to ``compiled_reports=False`` across the
  Appendix A application, the examples-style macros, and crafted edge
  cases (case-insensitive forms, duplicate columns, stale system
  variables from earlier sections, user variables forcing fallback).
"""

import pytest

from repro.apps import urlquery as urlquery_app
from repro.core import compiled as compiled_mod
from repro.core.compiled import compile_row_template
from repro.core.engine import EngineConfig, MacroEngine
from repro.core.parser import parse_macro
from repro.core.report import LIST_CONCAT_SEPARATOR
from repro.core.values import ValueString
from repro.sql.gateway import DatabaseRegistry


def test_list_separator_matches_report_module():
    assert compiled_mod.LIST_CONCAT_SEPARATOR == LIST_CONCAT_SEPARATOR


# ----------------------------------------------------------------------
# Unit: classification
# ----------------------------------------------------------------------

COLUMNS = ("id", "Name", "price")


def compiles(text, columns=COLUMNS):
    return compile_row_template(ValueString.parse(text), columns)


class TestClassification:
    def test_positional_and_named_forms_compile(self):
        assert compiles("$(V1) $(V2) $(V3)") is not None
        assert compiles("$(V_id) $(V.Name) $(N_price)") is not None
        assert compiles("$(ROW_NUM) $(VLIST) $(NLIST) $(N1)") is not None

    def test_case_insensitive_forms_compile(self):
        assert compiles("$(V_NAME) $(v_name) $(V.PRICE)") is not None

    def test_escapes_and_literals_compile(self):
        assert compiles("x $$(hidden) y") is not None

    def test_user_variable_falls_back(self):
        assert compiles("$(V1) $(D2)") is None

    def test_out_of_range_index_falls_back(self):
        assert compiles("$(V4)") is None
        assert compiles("$(N0)") is None

    def test_zero_padded_index_falls_back(self):
        # The store installs V1, not V01; V01 may be a user variable.
        assert compiles("$(V01)") is None

    def test_unknown_column_falls_back(self):
        assert compiles("$(V_total)") is None

    def test_lowercase_positional_falls_back(self):
        # V1 is installed case-sensitively; $(v1) is a user variable.
        assert compiles("$(v1)") is None

    def test_rowcount_falls_back(self):
        # ROWCOUNT is only set after the row loop.
        assert compiles("$(ROWCOUNT)") is None

    def test_render_by_index(self):
        plan = compiles("[$(V1)|$(V_Name)|$(ROW_NUM)|$(VLIST)]")
        assert plan.render((7, "ann", 2.5), 3) == "[7|ann|3|7 ann 2.5]"

    def test_duplicate_column_last_wins(self):
        plan = compiles("$(V_x)", columns=("x", "y", "x"))
        assert plan.render(("first", "mid", "last"), 1) == "last"

    def test_memoised_plan_reused(self):
        template = ValueString.parse("$(V1)!")
        first = compile_row_template(template, COLUMNS)
        second = compile_row_template(template, COLUMNS)
        assert first is second


# ----------------------------------------------------------------------
# End-to-end byte identity
# ----------------------------------------------------------------------


@pytest.fixture()
def registry():
    reg = DatabaseRegistry()
    db = reg.register_memory("SHOP")
    with db.connect() as conn:
        conn.executescript("""
            CREATE TABLE items (id INTEGER, Name TEXT, price REAL);
            INSERT INTO items VALUES
                (1, 'anvil', 9.5),
                (2, 'rope & <hook>', 3.25),
                (3, 'x''y "q"', 0.0),
                (4, NULL, 12.75);
        """)
    return reg


def both_ways(registry, macro_text, inputs=(), escape=False):
    """Render with compiled templates on and off; return both htmls."""
    macro = parse_macro(macro_text)
    on = MacroEngine(registry, config=EngineConfig(
        escape_report_values=escape))
    off = MacroEngine(registry, config=EngineConfig(
        escape_report_values=escape, compiled_reports=False))
    html_on = on.execute_report(macro, list(inputs)).html
    html_off = off.execute_report(macro, list(inputs)).html
    return html_on, html_off


HEADER = '%DEFINE DATABASE = "SHOP"\n'


class TestByteIdentity:
    def test_implicit_only_template(self, registry):
        on, off = both_ways(registry, HEADER + """
%SQL{ SELECT id, Name, price FROM items ORDER BY id
%SQL_REPORT{<TABLE>
%ROW{<TR><TD>$(ROW_NUM)</TD><TD>$(V1)</TD><TD>$(V_Name)</TD>
<TD>$(V.price)</TD><TD>$(VLIST)</TD></TR>
%}</TABLE><P>$(ROW_NUM) of $(ROWCOUNT)</P>
%}
%}
%HTML_REPORT{%EXEC_SQL%}
""")
        assert on == off
        assert "anvil" in on and "rope & <hook>" in on

    def test_escaped_values_mode(self, registry):
        on, off = both_ways(registry, HEADER + """
%SQL{ SELECT Name FROM items ORDER BY id
%SQL_REPORT{%ROW{<P>$(V1) / $(VLIST)</P>
%}%}
%}
%HTML_REPORT{%EXEC_SQL%}
""", escape=True)
        assert on == off
        assert "&lt;hook&gt;" in on

    def test_case_insensitive_references(self, registry):
        on, off = both_ways(registry, HEADER + """
%SQL{ SELECT id, Name FROM items ORDER BY id
%SQL_REPORT{%ROW{$(V_ID)=$(v_name)|$(N_NAME)
%}%}
%}
%HTML_REPORT{%EXEC_SQL%}
""")
        assert on == off

    def test_user_variable_forces_fallback_identically(self, registry):
        on, off = both_ways(registry, HEADER + """
%DEFINE note = "N:$(V1)"
%SQL{ SELECT id, Name FROM items ORDER BY id
%SQL_REPORT{%ROW{$(note) $(V2)
%}%}
%}
%HTML_REPORT{%EXEC_SQL%}
""")
        assert on == off
        assert "N:1" in on  # lazy: note re-evaluates per row

    def test_rpt_maxrows_and_start_row(self, registry):
        on, off = both_ways(registry, HEADER + """
%DEFINE RPT_MAXROWS = "2"
%DEFINE START_ROW_NUM = "2"
%SQL{ SELECT id FROM items ORDER BY id
%SQL_REPORT{%ROW{[$(ROW_NUM):$(V1)]
%}<P>total $(ROW_NUM)</P>
%}
%}
%HTML_REPORT{%EXEC_SQL%}
""")
        assert on == off
        assert "[2:2]" in on and "[3:3]" in on and "[1:1]" not in on
        assert "total 4" in on

    def test_stale_exact_shadow_from_earlier_section(self, registry):
        """Section 1 retrieves column ``qty`` (installing exact V_qty);
        section 2 has column ``QTY`` only.  The interpreted lookup of
        ``$(V_qty)`` in section 2 sees section 1's stale exact system
        variable — the compiled path must detect the shadow and fall
        back so both paths agree."""
        on, off = both_ways(registry, HEADER + """
%SQL(first){ SELECT id AS qty FROM items WHERE id = 1
%SQL_REPORT{%ROW{a=$(V_qty)
%}%}
%}
%SQL(second){ SELECT id * 10 AS QTY FROM items WHERE id = 2
%SQL_REPORT{%ROW{b=$(V_qty)
%}%}
%}
%HTML_REPORT{%EXEC_SQL(first)%EXEC_SQL(second)%}
""")
        assert on == off
        # The stale exact spelling wins in section 2: still "1", not 20.
        assert "a=1" in on and "b=1" in on

    def test_footer_sees_last_row_state(self, registry):
        on, off = both_ways(registry, HEADER + """
%SQL{ SELECT id, Name FROM items ORDER BY id
%SQL_REPORT{%ROW{.%}last=$(V1)/$(V_Name) vl=[$(VLIST)]
%}
%}
%HTML_REPORT{%EXEC_SQL%}
""")
        assert on == off
        assert "last=4/" in on

    def test_later_section_sees_installed_values(self, registry):
        """System variables installed by one section leak into the next
        (paper behaviour); compiled rendering must leave identical
        state."""
        on, off = both_ways(registry, HEADER + """
%SQL(a){ SELECT id FROM items ORDER BY id
%SQL_REPORT{%ROW{%}%}
%}
%SQL(b){ SELECT Name FROM items WHERE id = $(V1)
%SQL_REPORT{%ROW{got $(V1)
%}%}
%}
%HTML_REPORT{%EXEC_SQL(a)%EXEC_SQL(b)%}
""")
        assert on == off
        assert "got " in on

    def test_zero_rows(self, registry):
        on, off = both_ways(registry, HEADER + """
%SQL{ SELECT id, Name FROM items WHERE id > 999
%SQL_REPORT{head %ROW{$(V1)%}tail $(ROW_NUM)
%}
%}
%HTML_REPORT{%EXEC_SQL%}
""")
        assert on == off
        assert "tail 0" in on

    def test_default_table_format(self, registry):
        on, off = both_ways(registry, HEADER + """
%SQL{ SELECT id, Name, price FROM items ORDER BY id %}
%HTML_REPORT{%EXEC_SQL%}
""")
        assert on == off
        assert "<TABLE BORDER=1>" in on and "&lt;hook&gt;" in on

    def test_default_table_with_maxrows(self, registry):
        on, off = both_ways(registry, HEADER + """
%DEFINE RPT_MAXROWS = "1"
%SQL{ SELECT id FROM items ORDER BY id %}
%HTML_REPORT{%EXEC_SQL <P>$(ROW_NUM)</P>%}
""")
        assert on == off
        assert on.count("<TD>") == 1
        assert "<P>4</P>" in on


class TestAppendixAApplication:
    """The paper's complete worked example, both macro modes."""

    @pytest.mark.parametrize("inputs", [
        urlquery_app.FIGURE3_BINDINGS,
        [("SEARCH", "ib"), ("USE_URL", "yes"), ("USE_TITLE", "yes"),
         ("DBFIELDS", "title")],
        [("SEARCH", ""), ("DBFIELDS", "title"),
         ("DBFIELDS", "description"), ("SHOWSQL", "YES")],
    ])
    def test_report_byte_identical(self, inputs):
        app_on = urlquery_app.install(rows=40)
        html_on = app_on.engine.execute_report(
            app_on.library.load(app_on.macro_name), list(inputs)).html

        app_off = urlquery_app.install(
            rows=40, engine=MacroEngine(
                None, config=EngineConfig(compiled_reports=False)))
        html_off = app_off.engine.execute_report(
            app_off.library.load(app_off.macro_name), list(inputs)).html
        assert html_on == html_off
