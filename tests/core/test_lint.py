"""The macro linter."""

import pytest

from repro.core.lint import Finding, lint_macro
from repro.core.parser import parse_macro

GOOD_MACRO = """
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items WHERE name LIKE '$(q)%' %}
%HTML_INPUT{<FORM><INPUT NAME="q"></FORM>%}
%HTML_REPORT{%EXEC_SQL%}
"""


def codes(text: str) -> set[str]:
    return {f.code for f in lint_macro(parse_macro(text))}


class TestCleanMacro:
    def test_good_macro_is_clean(self):
        assert codes(GOOD_MACRO) == set()

    def test_system_variables_not_flagged(self):
        text = GOOD_MACRO.replace(
            "%EXEC_SQL%", "%EXEC_SQL $(ROW_NUM) $(V_name) $(NLIST)%")
        assert "undefined-variable" not in codes(text)

    def test_form_control_names_are_client_variables(self):
        # $(q) matches the INPUT NAME="q": not a typo.
        assert "undefined-variable" not in codes(GOOD_MACRO)


class TestFindings:
    def test_undefined_variable(self):
        text = GOOD_MACRO.replace("$(q)", "$(qq)")  # typo
        assert "undefined-variable" in codes(text)

    def test_unused_variable(self):
        text = '%DEFINE dead = "1"\n' + GOOD_MACRO
        assert "unused-variable" in codes(text)

    def test_defined_after_use(self):
        text = """
%HTML_INPUT{$(greeting)%}
%DEFINE greeting = "hello"
%HTML_REPORT{x%}
"""
        found = [f for f in lint_macro(parse_macro(text))
                 if f.code == "defined-after-use"]
        assert found
        assert "4.3.1" in found[0].message

    def test_unreachable_unnamed_sql(self):
        text = """
%DEFINE DATABASE = "X"
%SQL{ SELECT 1 %}
%HTML_REPORT{no exec here%}
"""
        assert "unreachable-sql" in codes(text)

    def test_unreachable_named_sql(self):
        text = """
%DEFINE DATABASE = "X"
%SQL(used){ SELECT 1 %}
%SQL(orphan){ SELECT 2 %}
%HTML_REPORT{%EXEC_SQL(used)%}
"""
        findings = lint_macro(parse_macro(text))
        orphan = [f for f in findings if f.code == "unreachable-sql"]
        assert len(orphan) == 1
        assert "orphan" in orphan[0].message

    def test_variable_exec_sql_suppresses_unreachable(self):
        text = """
%DEFINE DATABASE = "X"
%DEFINE pick = "a"
%SQL(a){ SELECT 1 %}
%SQL(b){ SELECT 2 %}
%HTML_REPORT{%EXEC_SQL($(pick))%}
"""
        assert "unreachable-sql" not in codes(text)

    def test_missing_database(self):
        text = GOOD_MACRO.replace('%DEFINE DATABASE = "SHOP"', "")
        assert "no-database-variable" in codes(text)

    def test_missing_sections_reported_as_info(self):
        findings = lint_macro(parse_macro('%DEFINE a = "$(a)x"'))
        by_code = {f.code: f for f in findings}
        assert by_code["no-input-section"].severity == "info"
        assert by_code["no-report-section"].severity == "info"

    def test_circular_definition_is_error(self):
        findings = lint_macro(parse_macro(
            '%DEFINE a = "$(b)"\n%DEFINE b = "$(a)"\n%HTML_INPUT{x%}\n'
            "%HTML_REPORT{y%}"))
        circular = [f for f in findings
                    if f.code == "circular-definition"]
        assert circular and circular[0].severity == "error"

    def test_unexpanded_include_noted(self):
        findings = lint_macro(parse_macro(
            '%INCLUDE "common.d2w"\n%HTML_INPUT{x%}\n%HTML_REPORT{y%}'))
        assert any(f.code == "unexpanded-include" for f in findings)


class TestFindingRendering:
    def test_render_with_source(self):
        finding = Finding("warning", "some-code", "the message", line=7)
        assert finding.render("m.d2w") == \
            "m.d2w:7: warning: some-code: the message"

    def test_render_without_line(self):
        finding = Finding("info", "c", "m")
        assert finding.render() == "macro: info: c: m"

    def test_findings_sorted_by_line(self):
        text = """
%DEFINE z_unused = "1"
%DEFINE a_unused = "2"
%HTML_INPUT{x%}
%HTML_REPORT{y%}
"""
        findings = [f for f in lint_macro(parse_macro(text))
                    if f.code == "unused-variable"]
        assert [f.line for f in findings] == sorted(
            f.line for f in findings)
