"""Report generation: the implicit variables of Section 3.2.1."""

import pytest

from repro.core import parse_macro
from repro.core.engine import EngineConfig, MacroEngine

REPORT_MACRO = """
%DEFINE DATABASE = "SHOP"
%SQL{
SELECT name, price, qty FROM items ORDER BY name
%SQL_REPORT{
cols=$(NLIST);first=$(N1);byname=$(N_price)
%ROW{[#$(ROW_NUM) $(V1)/$(V_price)/$(V3) all=($(VLIST))]
%}
total=$(ROW_NUM)
%}
%}
%HTML_REPORT{%EXEC_SQL%}
"""


@pytest.fixture()
def run(shop_engine):
    def _run(macro_text, inputs=()):
        return shop_engine.execute_report(parse_macro(macro_text),
                                          list(inputs))
    return _run


class TestImplicitVariables:
    def test_column_name_variables(self, run):
        html = run(REPORT_MACRO).html
        assert "cols=name price qty" in html
        assert "first=name" in html
        assert "byname=price" in html

    def test_row_value_variables(self, run):
        html = run(REPORT_MACRO).html
        assert "[#1 bikes/250/4 all=(bikes 250 4)]" in html
        assert "[#2 helmets/45.5/10" in html

    def test_row_num_totals_after_loop(self, run):
        html = run(REPORT_MACRO).html
        assert "total=3" in html

    def test_column_variables_case_insensitive(self, run):
        macro = REPORT_MACRO.replace("$(V_price)", "$(v_PRICE)")
        html = run(macro).html
        assert "[#1 bikes/250/4" in html

    def test_dot_spelling_of_column_variables(self, run):
        macro = REPORT_MACRO.replace("$(V_price)", "$(V.price)")
        assert "[#1 bikes/250/4" in run(macro).html

    def test_null_value_renders_as_empty(self, run):
        macro = """
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT NULL AS blank_col, name FROM items WHERE name = 'bikes'
%SQL_REPORT{%ROW{<$(V_blank_col)|$(V_name)>%}%}
%}
%HTML_REPORT{%EXEC_SQL%}
"""
        assert "<|bikes>" in run(macro).html


class TestRptMaxRows:
    def _macro(self, limit_define: str = "") -> str:
        return f"""
%DEFINE DATABASE = "SHOP"
{limit_define}
%SQL{{
SELECT name FROM items ORDER BY name
%SQL_REPORT{{
%ROW{{<LI>$(V1)
%}}
shown-or-not total=$(ROW_NUM)
%}}
%}}
%HTML_REPORT{{%EXEC_SQL%}}
"""

    def test_limit_from_define(self, run):
        html = run(self._macro('%DEFINE RPT_MAXROWS = "2"')).html
        assert html.count("<LI>") == 2
        assert "total=3" in html  # fetch count unaffected by the limit

    def test_limit_from_client_input(self, run):
        html = run(self._macro(), [("RPT_MAXROWS", "1")]).html
        assert html.count("<LI>") == 1
        assert "total=3" in html

    def test_invalid_limit_ignored(self, run):
        html = run(self._macro('%DEFINE RPT_MAXROWS = "lots"')).html
        assert html.count("<LI>") == 3

    def test_zero_or_negative_means_unlimited(self, run):
        html = run(self._macro('%DEFINE RPT_MAXROWS = "0"')).html
        assert html.count("<LI>") == 3

    def test_limit_applies_to_default_table_too(self, run):
        macro = """
%DEFINE DATABASE = "SHOP"
%DEFINE RPT_MAXROWS = "1"
%SQL{ SELECT name FROM items ORDER BY name %}
%HTML_REPORT{%EXEC_SQL%}
"""
        html = run(macro).html
        assert html.count("<TD>") == 1


class TestReportStructure:
    def test_header_printed_once_before_rows(self, run):
        macro = """
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items ORDER BY name
%SQL_REPORT{HEADER %ROW{($(V1))%} FOOTER%}
%}
%HTML_REPORT{%EXEC_SQL%}
"""
        html = run(macro).html
        assert html.count("HEADER") == 1
        assert html.count("FOOTER") == 1
        assert html.index("HEADER") < html.index("(bikes)") \
            < html.index("FOOTER")

    def test_empty_result_prints_header_and_footer_only(self, run):
        macro = """
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items WHERE name = 'nothing'
%SQL_REPORT{H %ROW{never%} F rows=$(ROW_NUM)%}
%}
%HTML_REPORT{%EXEC_SQL%}
"""
        html = run(macro).html
        assert "never" not in html
        assert "rows=0" in html

    def test_report_block_without_row_block(self, run):
        macro = """
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items
%SQL_REPORT{only header, rows ignored%}
%}
%HTML_REPORT{%EXEC_SQL%}
"""
        html = run(macro).html
        assert "only header" in html
        assert "bikes" not in html

    def test_report_variables_visible_after_exec_sql(self, run):
        # "After all rows have been fetched ... ROW_NUM contains the
        # total number of rows" — also later in the report section.
        macro = """
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items %SQL_REPORT{%ROW{.%}%} %}
%HTML_REPORT{%EXEC_SQL afterwards: $(ROW_NUM) rows%}
"""
        assert "afterwards: 3 rows" in run(macro).html


class TestDefaultTableFormat:
    def test_values_escaped_in_default_table(self, shop_registry):
        engine = MacroEngine(shop_registry)
        conn = shop_registry.connect("SHOP")
        conn.execute(
            "INSERT INTO items VALUES ('<b>bold</b>', 1.0, 1)")
        conn.close()
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items WHERE price = 1.0 %}
%HTML_REPORT{%EXEC_SQL%}
""")
        html = engine.execute_report(macro).html
        assert "&lt;b&gt;bold&lt;/b&gt;" in html
        assert "<b>bold</b>" not in html

    def test_custom_report_values_raw_by_default(self, run):
        # Faithful 1996 behaviour: Figure 8 substitutes a URL into HREF.
        macro = """
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items WHERE name='bikes'
%SQL_REPORT{%ROW{<A HREF="/buy/$(V1)">$(V1)</A>%}%}
%}
%HTML_REPORT{%EXEC_SQL%}
"""
        assert '<A HREF="/buy/bikes">bikes</A>' in run(macro).html

    def test_escape_report_values_option(self, shop_registry):
        engine = MacroEngine(shop_registry, config=EngineConfig(
            escape_report_values=True))
        conn = shop_registry.connect("SHOP")
        conn.execute(
            "INSERT INTO items VALUES ('<script>x</script>', 2.0, 1)")
        conn.close()
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items WHERE price = 2.0
%SQL_REPORT{%ROW{cell: $(V1)%}%}
%}
%HTML_REPORT{%EXEC_SQL%}
""")
        html = engine.execute_report(macro).html
        assert "&lt;script&gt;" in html


class TestStartRowNum:
    """START_ROW_NUM: the scrollable-cursor extension (see DESIGN.md)."""

    def _macro(self, defines: str) -> str:
        return f"""
%DEFINE DATABASE = "SHOP"
{defines}
%SQL{{
SELECT name FROM items ORDER BY name
%SQL_REPORT{{%ROW{{<LI>$(ROW_NUM):$(V1)
%}}total=$(ROW_NUM)%}}
%}}
%HTML_REPORT{{%EXEC_SQL%}}
"""

    def test_start_skips_leading_rows(self, run):
        html = run(self._macro('%DEFINE START_ROW_NUM = "2"')).html
        assert "<LI>1:" not in html
        assert "<LI>2:helmets" in html
        assert "<LI>3:tents" in html

    def test_start_plus_limit_windows(self, run):
        html = run(self._macro(
            '%DEFINE START_ROW_NUM = "2"\n%DEFINE RPT_MAXROWS = "1"')
        ).html
        assert html.count("<LI>") == 1
        assert "<LI>2:helmets" in html
        assert "total=3" in html  # ROW_NUM still counts everything

    def test_start_from_client_input(self, run):
        html = run(self._macro(""), [("START_ROW_NUM", "3")]).html
        assert html.count("<LI>") == 1
        assert "<LI>3:tents" in html

    def test_start_beyond_result_prints_nothing(self, run):
        html = run(self._macro('%DEFINE START_ROW_NUM = "99"')).html
        assert html.count("<LI>") == 0
        assert "total=3" in html

    def test_invalid_start_ignored(self, run):
        html = run(self._macro('%DEFINE START_ROW_NUM = "zero"')).html
        assert html.count("<LI>") == 3

    def test_window_applies_to_default_table(self, run):
        macro = """
%DEFINE DATABASE = "SHOP"
%DEFINE START_ROW_NUM = "2"
%DEFINE RPT_MAXROWS = "1"
%SQL{ SELECT name FROM items ORDER BY name %}
%HTML_REPORT{%EXEC_SQL%}
"""
        html = run(macro).html
        assert html.count("<TD>") == 1
        assert "<TD>helmets</TD>" in html
