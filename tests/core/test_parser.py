"""Macro parser: the full grammar of Section 3."""

import pytest

from repro.core import ast
from repro.core.parser import parse_macro
from repro.errors import (
    DuplicateSectionError,
    MacroSyntaxError,
    UnterminatedBlockError,
)


class TestDefineSections:
    def test_single_line_define(self):
        macro = parse_macro('%DEFINE DATABASE = "CELDIAL"')
        section = macro.sections[0]
        assert isinstance(section, ast.DefineSection)
        assert not section.block
        stmt = section.statements[0]
        assert isinstance(stmt, ast.SimpleAssignment)
        assert stmt.name == "DATABASE"
        assert stmt.value.raw == "CELDIAL"

    def test_define_block_with_multiple_statements(self):
        macro = parse_macro("""
%DEFINE{
a = "1"
b = "2"
%}
""")
        section = macro.sections[0]
        assert isinstance(section, ast.DefineSection)
        assert [s.name for s in section.statements] == ["a", "b"]

    def test_keywords_case_insensitive(self):
        macro = parse_macro('%define x = "1"')
        assert isinstance(macro.sections[0], ast.DefineSection)

    def test_multiline_value(self):
        macro = parse_macro('%DEFINE x = {line one\nline two %}')
        stmt = macro.sections[0].statements[0]
        assert "line one\nline two" in stmt.value.raw
        assert stmt.multiline

    def test_underscore_names(self):
        macro = parse_macro('%DEFINE _under_score = "v"')
        assert macro.sections[0].statements[0].name == "_under_score"

    def test_list_declaration(self):
        macro = parse_macro('%DEFINE %LIST " AND " where_list')
        stmt = macro.sections[0].statements[0]
        assert isinstance(stmt, ast.ListDeclaration)
        assert stmt.name == "where_list"
        assert stmt.separator.raw == " AND "

    def test_list_separator_may_reference_variables(self):
        # Section 3.1.3: dynamically varying delimiters.
        macro = parse_macro('%DEFINE %LIST " $(conj) " clause')
        stmt = macro.sections[0].statements[0]
        assert stmt.separator.has_references()

    def test_exec_declaration(self):
        macro = parse_macro('%DEFINE today = %EXEC "date today"')
        stmt = macro.sections[0].statements[0]
        assert isinstance(stmt, ast.ExecDeclaration)
        assert stmt.command.raw == "date today"

    def test_conditional_form_a(self):
        macro = parse_macro(
            '%DEFINE v = testvar ? "yes-case" : "no-case"')
        stmt = macro.sections[0].statements[0]
        assert isinstance(stmt, ast.ConditionalAssignment)
        assert stmt.test_name == "testvar"
        assert stmt.then_value.raw == "yes-case"
        assert stmt.else_value.raw == "no-case"

    def test_conditional_form_b(self):
        macro = parse_macro('%DEFINE v = ? "custid = $(cust_inp)"')
        stmt = macro.sections[0].statements[0]
        assert stmt.test_name is None
        assert stmt.else_value is None

    def test_conditional_form_c_multiline(self):
        macro = parse_macro(
            '%DEFINE v = t ? {then\ntext %} : {else\ntext %}')
        stmt = macro.sections[0].statements[0]
        assert "then" in stmt.then_value.raw
        assert "else" in stmt.else_value.raw

    def test_conditional_without_else(self):
        macro = parse_macro('%DEFINE v = t ? "only-then"')
        stmt = macro.sections[0].statements[0]
        assert stmt.test_name == "t"
        assert stmt.else_value is None

    def test_missing_equals_is_error(self):
        with pytest.raises(MacroSyntaxError):
            parse_macro('%DEFINE broken "value"')

    def test_unterminated_block_is_error(self):
        with pytest.raises(UnterminatedBlockError):
            parse_macro('%DEFINE{ a = "1"')

    def test_unterminated_quote_is_error(self):
        with pytest.raises(MacroSyntaxError):
            parse_macro('%DEFINE a = "never closed')

    def test_quoted_value_with_escaped_quote(self):
        macro = parse_macro(r'%DEFINE a = "say \"hi\""')
        assert macro.sections[0].statements[0].value.raw == 'say "hi"'


class TestSqlSections:
    def test_basic_block(self):
        macro = parse_macro("%SQL{ SELECT 1 %}")
        section = macro.sections[0]
        assert isinstance(section, ast.SqlSection)
        assert section.command.raw == "SELECT 1"
        assert section.name is None

    def test_named_section(self):
        macro = parse_macro("%SQL(by_title){ SELECT 2 %}")
        assert macro.sections[0].name == "by_title"
        assert macro.named_sql_section("by_title") is not None

    def test_line_format(self):
        macro = parse_macro("%SQL SELECT 3 FROM t")
        assert macro.sections[0].command.raw == "SELECT 3 FROM t"

    def test_duplicate_names_rejected(self):
        with pytest.raises(DuplicateSectionError):
            parse_macro("%SQL(a){ SELECT 1 %}\n%SQL(a){ SELECT 2 %}")

    def test_report_block_with_row(self):
        macro = parse_macro("""
%SQL{
SELECT url FROM t
%SQL_REPORT{
header text
%ROW{<LI>$(V1)
%}
footer text
%}
%}
""")
        section = macro.sections[0]
        assert section.report is not None
        assert "header text" in section.report.header.raw
        assert "$(V1)" in section.report.row.template.unparse()
        assert "footer text" in section.report.footer.raw

    def test_report_block_without_row(self):
        macro = parse_macro(
            "%SQL{ SELECT 1 %SQL_REPORT{ just a header %} %}")
        report = macro.sections[0].report
        assert report.row is None
        assert "just a header" in report.header.raw

    def test_message_block(self):
        macro = parse_macro("""
%SQL{
SELECT 1
%SQL_MESSAGE{
-204 : "Table missing: $(SQL_MESSAGE)" : exit
42601 : "Bad syntax" : continue
default : "Something failed"
%}
%}
""")
        message = macro.sections[0].message
        assert len(message.rules) == 3
        assert message.rules[0].code == "-204"
        assert message.rules[0].action == "exit"
        assert message.rules[1].code == "42601"
        assert message.rules[1].action == "continue"
        assert message.rules[2].code == "default"
        assert message.rules[2].action == "exit"  # the default action

    def test_malformed_message_rule(self):
        with pytest.raises(MacroSyntaxError):
            parse_macro('%SQL{ SELECT 1 %SQL_MESSAGE{ not a rule %} %}')

    def test_empty_sql_command_rejected(self):
        with pytest.raises(MacroSyntaxError):
            parse_macro("%SQL{   %}")

    def test_sql_command_may_contain_percent_literals(self):
        # LIKE patterns use % freely; only "%}" terminates.
        macro = parse_macro(
            "%SQL{ SELECT * FROM t WHERE a LIKE '%$(x)%' %}")
        assert "LIKE '%" in macro.sections[0].command.unparse()


class TestHtmlSections:
    def test_input_section(self):
        macro = parse_macro("%HTML_INPUT{<FORM>...</FORM>%}")
        assert macro.html_input is not None
        assert "<FORM>" in macro.html_input.body.raw

    def test_duplicate_input_sections_rejected(self):
        with pytest.raises(DuplicateSectionError):
            parse_macro("%HTML_INPUT{a%}\n%HTML_INPUT{b%}")

    def test_duplicate_report_sections_rejected(self):
        with pytest.raises(DuplicateSectionError):
            parse_macro("%HTML_REPORT{a%}\n%HTML_REPORT{b%}")

    def test_report_splits_on_exec_sql(self):
        macro = parse_macro("%HTML_REPORT{before %EXEC_SQL after%}")
        report = macro.html_report
        directives = report.exec_sql_directives()
        assert len(directives) == 1
        assert directives[0].name is None
        texts = [p.raw for p in report.pieces
                 if isinstance(p, ast.ValueString)]
        assert any("before" in t for t in texts)
        assert any("after" in t for t in texts)

    def test_named_exec_sql(self):
        macro = parse_macro(
            "%SQL(q1){ SELECT 1 %}\n%HTML_REPORT{%EXEC_SQL(q1)%}")
        directive = macro.html_report.exec_sql_directives()[0]
        assert directive.name.raw == "q1"

    def test_exec_sql_with_variable_name(self):
        macro = parse_macro("%HTML_REPORT{%EXEC_SQL($(sqlcmd))%}")
        directive = macro.html_report.exec_sql_directives()[0]
        assert directive.name.has_references()

    def test_two_unnamed_exec_sql_rejected(self):
        # Section 3.4: "There can be at most one execute SQL command".
        with pytest.raises(MacroSyntaxError):
            parse_macro("%HTML_REPORT{%EXEC_SQL mid %EXEC_SQL%}")

    def test_static_named_exec_sql_must_resolve(self):
        with pytest.raises(MacroSyntaxError):
            parse_macro("%HTML_REPORT{%EXEC_SQL(nosuch)%}")

    def test_exec_sql_case_insensitive(self):
        macro = parse_macro("%HTML_REPORT{%exec_sql%}")
        assert len(macro.html_report.exec_sql_directives()) == 1


class TestWholeMacro:
    def test_free_text_preserved(self):
        macro = parse_macro(
            "This is a comment.\n%DEFINE a = \"1\"\ntrailing notes")
        kinds = [type(s).__name__ for s in macro.sections]
        assert kinds == ["FreeText", "DefineSection", "FreeText"]

    def test_unparse_reparse_equivalence(self):
        source = """
%DEFINE{
DATABASE = "DB"
%LIST " OR " L
L = USE_X ? "x LIKE '%$(S)%'" : ""
W = ? "WHERE $(L)"
%}
%SQL(q){
SELECT a FROM t $(W)
%SQL_REPORT{
hdr
%ROW{<LI>$(V1)%}
ftr
%}
%}
%HTML_INPUT{<FORM>$(S)</FORM>%}
%HTML_REPORT{<H1>R</H1>%EXEC_SQL(q)%}
"""
        macro = parse_macro(source)
        again = parse_macro(macro.unparse())
        assert len(again.sections) == len(macro.sections)
        assert again.named_sql_section("q").command == \
            macro.named_sql_section("q").command
        assert again.html_input.body == macro.html_input.body

    def test_line_numbers_recorded(self):
        macro = parse_macro('line one text\n%DEFINE a = "1"')
        define = macro.sections[1]
        assert define.line == 2

    def test_error_carries_source_name(self):
        with pytest.raises(MacroSyntaxError) as excinfo:
            parse_macro("%DEFINE broken", source="bad.d2w")
        assert "bad.d2w" in str(excinfo.value)


class TestCommentBlocks:
    def test_comment_block_parsed_and_ignored(self):
        macro = parse_macro("%{ notes to self %}\n%HTML_INPUT{x%}")
        kinds = [type(s).__name__ for s in macro.sections]
        assert kinds == ["CommentBlock", "HtmlInputSection"]

    def test_commented_out_sql_never_registers(self):
        macro = parse_macro(
            "%{ disabled:\n%SQL{ SELECT broken %}\n%HTML_INPUT{x%}")
        assert macro.sql_sections() == []

    def test_comment_unparse_roundtrip(self):
        source = "%{ keep me %}\n%HTML_INPUT{x%}"
        macro = parse_macro(source)
        again = parse_macro(macro.unparse())
        assert [type(s).__name__ for s in again.sections] == \
            [type(s).__name__ for s in macro.sections]

    def test_unterminated_comment_is_error(self):
        with pytest.raises(MacroSyntaxError):
            parse_macro("%{ never closed")

    def test_comment_does_not_nest(self):
        # The first %} ends the comment; the leftovers are free text.
        macro = parse_macro("%{ outer %SQL{ inner %} leftovers")
        kinds = [type(s).__name__ for s in macro.sections]
        assert kinds == ["CommentBlock", "FreeText"]
