"""Value-string parsing: references, escapes, round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.values import (
    EMPTY,
    Escape,
    Literal,
    Reference,
    ValueString,
)


class TestParsing:
    def test_pure_literal(self):
        value = ValueString.parse("SELECT * FROM t")
        assert value.segments == (Literal("SELECT * FROM t"),)
        assert value.is_literal_only()

    def test_single_reference(self):
        value = ValueString.parse("$(name)")
        assert value.segments == (Reference("name"),)
        assert list(value.references()) == ["name"]

    def test_reference_embedded_in_text(self):
        value = ValueString.parse("WHERE custid = $(cust_inp) AND x")
        assert value.segments == (
            Literal("WHERE custid = "),
            Reference("cust_inp"),
            Literal(" AND x"),
        )

    def test_adjacent_references(self):
        value = ValueString.parse("$(a)$(b)")
        assert value.segments == (Reference("a"), Reference("b"))

    def test_escape_parses_as_escape_segment(self):
        value = ValueString.parse('VALUE="$$(hidden_a)"')
        assert Escape("hidden_a") in value.segments
        assert not value.has_references()

    def test_escape_beats_reference(self):
        # "$$(b)" is an escape, never a "$" literal plus a reference.
        value = ValueString.parse("$$(b)")
        assert value.segments == (Escape("b"),)

    def test_lone_dollar_is_literal(self):
        value = ValueString.parse("cost: $5")
        assert value.is_literal_only()

    def test_unterminated_reference_is_literal(self):
        value = ValueString.parse("$(unclosed")
        assert value.is_literal_only()

    def test_dollar_without_parens_is_literal(self):
        value = ValueString.parse("$name")
        assert value.is_literal_only()

    def test_empty_string(self):
        value = ValueString.parse("")
        assert value.segments == ()
        assert value == EMPTY

    def test_names_may_contain_dots_and_dashes(self):
        # Section 3.2.1 spells the implicit report variables both
        # N_column-name and N.column-name.
        value = ValueString.parse("$(V.product-name)")
        assert value.segments == (Reference("V.product-name"),)

    def test_name_must_start_with_letter_or_underscore(self):
        value = ValueString.parse("$(9lives)")
        assert value.is_literal_only()

    def test_triple_dollar(self):
        # "$$$(x)": the first "$" is literal, then the escape.
        value = ValueString.parse("$$$(x)")
        assert value.segments == (Literal("$"), Escape("x"))


class TestUnparse:
    def test_unparse_reproduces_source(self):
        source = "a $(b) c $$(d) e"
        assert ValueString.parse(source).unparse() == source

    @given(st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)),
        max_size=80))
    def test_parse_unparse_roundtrip(self, text):
        """unparse(parse(x)) == x for arbitrary text.

        The segment grammar is unambiguous, so re-parsing the unparsed
        text must also give the same segments.
        """
        value = ValueString.parse(text)
        assert value.unparse() == text
        assert ValueString.parse(value.unparse()) == value


class TestEquality:
    def test_equal_by_segments(self):
        assert ValueString.parse("x$(y)") == ValueString.parse("x$(y)")

    def test_unequal(self):
        assert ValueString.parse("x") != ValueString.parse("y")

    def test_hashable(self):
        values = {ValueString.parse("a"), ValueString.parse("a"),
                  ValueString.parse("b")}
        assert len(values) == 2

    def test_literal_constructor_skips_scanning(self):
        value = ValueString.literal("$(not_a_ref)")
        assert value.is_literal_only()
        assert value.raw == "$(not_a_ref)"

    def test_compare_with_non_valuestring(self):
        assert ValueString.parse("a") != "a"


@pytest.mark.parametrize("source,names", [
    ("$(a)$(b)$(a)", ["a", "b", "a"]),
    ("no refs", []),
    ("$$(x)$(y)", ["y"]),
])
def test_references_iteration(source, names):
    assert list(ValueString.parse(source).references()) == names
