"""Variable store semantics: namespaces, priority, list accumulation."""

from repro.core import ast
from repro.core.values import ValueString
from repro.core.variables import (
    ConditionalEntry,
    ExecEntry,
    ListEntry,
    SimpleEntry,
    VariableStore,
)


def vs(text: str) -> ValueString:
    return ValueString.parse(text)


class TestSimpleAssignment:
    def test_assign_and_lookup(self):
        store = VariableStore()
        store.assign_simple("a", vs("hello"))
        entry = store.lookup("a")
        assert isinstance(entry, SimpleEntry)
        assert entry.value.raw == "hello"

    def test_reassignment_replaces(self):
        store = VariableStore()
        store.assign_simple("a", vs("one"))
        store.assign_simple("a", vs("two"))
        assert store.lookup("a").value.raw == "two"

    def test_names_are_case_sensitive(self):
        # Section 3: "the variable names are case sensitive".
        store = VariableStore()
        store.assign_simple("Search", vs("x"))
        assert "Search" in store
        assert "SEARCH" not in store

    def test_undefined_lookup_is_none(self):
        store = VariableStore()
        assert store.lookup("missing") is None
        assert "missing" not in store


class TestClientPriority:
    """Section 4.3: client values beat macro DEFINE values."""

    def test_client_value_blocks_simple_assignment(self):
        store = VariableStore()
        store.set_client_inputs([("SEARCH", "from-client")])
        store.assign_simple("SEARCH", vs("macro-default"))
        assert store.lookup("SEARCH").value.raw == "from-client"

    def test_define_supplies_default_when_client_absent(self):
        store = VariableStore()
        store.set_client_inputs([])
        store.assign_simple("SEARCH", vs("macro-default"))
        assert store.lookup("SEARCH").value.raw == "macro-default"

    def test_client_value_blocks_conditional_and_exec(self):
        store = VariableStore()
        store.set_client_inputs([("v", "client")])
        store.assign_conditional("v", vs("cond"))
        store.declare_exec("v", vs("cmd"))
        assert isinstance(store.lookup("v"), SimpleEntry)

    def test_client_values_are_parsed_for_references(self):
        # Section 4.3.2: each var=value is "a simple assignment
        # statement" whose value may reference other variables — the
        # hidden-variable mechanism.
        store = VariableStore()
        store.set_client_inputs([("DBFIELDS", "$(hidden_a)")])
        assert store.lookup("DBFIELDS").value.has_references()

    def test_repeated_client_name_becomes_list(self):
        store = VariableStore()
        store.set_client_inputs([("DBFIELD", "title"),
                                 ("DBFIELD", "desc")])
        entry = store.lookup("DBFIELD")
        assert isinstance(entry, ListEntry)
        assert len(entry.elements) == 2
        assert entry.separator.raw == ","  # the default comma

    def test_list_declaration_overrides_client_separator_only(self):
        store = VariableStore()
        store.set_client_inputs([("F", "a"), ("F", "b")])
        store.declare_list("F", vs(" , "))
        entry = store.lookup("F")
        assert entry.separator.raw == " , "
        assert len(entry.elements) == 2  # client values preserved


class TestListVariables:
    def test_assignments_accumulate(self):
        store = VariableStore()
        store.declare_list("L", vs(" AND "))
        store.assign_simple("L", vs("one"))
        store.assign_conditional("L", vs("two $(x)"))
        entry = store.lookup("L")
        assert len(entry.elements) == 2
        assert isinstance(entry.elements[0], SimpleEntry)
        assert isinstance(entry.elements[1], ConditionalEntry)

    def test_declaration_converts_existing_scalar(self):
        store = VariableStore()
        store.assign_simple("L", vs("first"))
        store.declare_list("L", vs("/"))
        entry = store.lookup("L")
        assert isinstance(entry, ListEntry)
        assert len(entry.elements) == 1

    def test_redeclaration_changes_separator_keeps_elements(self):
        store = VariableStore()
        store.declare_list("L", vs(","))
        store.assign_simple("L", vs("x"))
        store.declare_list("L", vs(" OR "))
        entry = store.lookup("L")
        assert entry.separator.raw == " OR "
        assert len(entry.elements) == 1


class TestSystemVariables:
    def test_system_wins_over_everything(self):
        store = VariableStore()
        store.set_client_inputs([("V1", "client")])
        store.set_system("V1", "system")
        assert store.lookup("V1") == "system"

    def test_column_variables_case_insensitive(self):
        # Section 3: implicit column-name variables are the exception to
        # case sensitivity.
        store = VariableStore()
        store.set_system("V_Product_Name", "bikes", case_insensitive=True)
        assert store.lookup("v_product_name") == "bikes"
        assert store.lookup("V_PRODUCT_NAME") == "bikes"

    def test_plain_system_variables_stay_case_sensitive(self):
        store = VariableStore()
        store.set_system("ROW_NUM", "3")
        assert store.lookup("ROW_NUM") == "3"
        assert store.lookup("row_num") is None

    def test_snapshot_restore(self):
        store = VariableStore()
        store.set_system("A", "1")
        snapshot = store.system_snapshot()
        store.set_system("A", "2")
        store.set_system("B", "3")
        store.restore_system(snapshot)
        assert store.lookup("A") == "1"
        assert store.lookup("B") is None

    def test_clear_system(self):
        store = VariableStore()
        store.set_system("V_x", "1", case_insensitive=True)
        store.clear_system(["V_x"])
        assert store.lookup("V_x") is None
        assert store.lookup("v_X") is None


class TestApplyStatements:
    def test_apply_dispatches_all_statement_kinds(self):
        store = VariableStore()
        store.apply(ast.SimpleAssignment("a", vs("1")))
        store.apply(ast.ConditionalAssignment("b", vs("x"),
                                              test_name="a"))
        store.apply(ast.ListDeclaration("c", vs(",")))
        store.apply(ast.ExecDeclaration("d", vs("cmd")))
        assert isinstance(store.lookup("a"), SimpleEntry)
        assert isinstance(store.lookup("b"), ConditionalEntry)
        assert isinstance(store.lookup("c"), ListEntry)
        assert isinstance(store.lookup("d"), ExecEntry)

    def test_entry_kind_helper(self):
        store = VariableStore()
        store.assign_simple("a", vs("1"))
        store.set_system("s", "x")
        assert store.entry_kind("a") == "SimpleEntry"
        assert store.entry_kind("s") == "system"
        assert store.entry_kind("nope") is None

    def test_names_iteration(self):
        store = VariableStore()
        store.set_system("sys", "1")
        store.assign_simple("usr", vs("2"))
        assert set(store.names()) == {"sys", "usr"}
