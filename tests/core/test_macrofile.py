"""Macro library: naming, disk loading, cache invalidation."""

import time

import pytest

from repro.core.macrofile import (
    MacroLibrary,
    MacroNameError,
    validate_macro_name,
)


class TestNameValidation:
    @pytest.mark.parametrize("name", [
        "urlquery.d2w", "a", "Order_Search.d2w", "x-1.2",
    ])
    def test_legal_names(self, name):
        assert validate_macro_name(name) == name

    @pytest.mark.parametrize("name", [
        "../etc/passwd", "a/b.d2w", "", ".hidden", "a\\b",
        "..", "name with space",
    ])
    def test_illegal_names(self, name):
        with pytest.raises(MacroNameError):
            validate_macro_name(name)


class TestInMemoryLibrary:
    def test_add_and_load(self):
        library = MacroLibrary()
        library.add_text("m.d2w", "%HTML_INPUT{hi%}")
        macro = library.load("m.d2w")
        assert macro.html_input is not None
        assert "m.d2w" in library
        assert library.names() == ["m.d2w"]

    def test_load_unknown_raises(self):
        with pytest.raises(MacroNameError):
            MacroLibrary().load("nope.d2w")

    def test_contains_rejects_traversal_silently(self):
        assert "../secrets" not in MacroLibrary()


class TestDiskLibrary:
    def test_load_from_directory(self, tmp_path):
        (tmp_path / "disk.d2w").write_text("%HTML_INPUT{from disk%}")
        library = MacroLibrary(tmp_path)
        assert "disk.d2w" in library
        macro = library.load("disk.d2w")
        assert "from disk" in macro.html_input.body.raw

    def test_extension_implied(self, tmp_path):
        (tmp_path / "short.d2w").write_text("%HTML_INPUT{x%}")
        library = MacroLibrary(tmp_path)
        assert library.load("short").html_input is not None

    def test_cache_hit_returns_same_object(self, tmp_path):
        (tmp_path / "c.d2w").write_text("%HTML_INPUT{v1%}")
        library = MacroLibrary(tmp_path)
        first = library.load("c.d2w")
        assert library.load("c.d2w") is first

    def test_cache_invalidated_on_modification(self, tmp_path):
        path = tmp_path / "c.d2w"
        path.write_text("%HTML_INPUT{v1%}")
        library = MacroLibrary(tmp_path)
        library.load("c.d2w")
        time.sleep(0.02)  # ensure a different mtime on coarse clocks
        path.write_text("%HTML_INPUT{v2%}")
        import os
        os.utime(path, (time.time() + 10, time.time() + 10))
        assert "v2" in library.load("c.d2w").html_input.body.raw

    def test_memory_shadows_disk(self, tmp_path):
        (tmp_path / "m.d2w").write_text("%HTML_INPUT{disk%}")
        library = MacroLibrary(tmp_path)
        library.add_text("m.d2w", "%HTML_INPUT{memory%}")
        assert "memory" in library.load("m.d2w").html_input.body.raw

    def test_names_merges_both_sources(self, tmp_path):
        (tmp_path / "a.d2w").write_text("%HTML_INPUT{x%}")
        library = MacroLibrary(tmp_path)
        library.add_text("b.d2w", "%HTML_INPUT{y%}")
        assert library.names() == ["a.d2w", "b.d2w"]
