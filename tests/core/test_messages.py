"""%SQL_MESSAGE rule matching and default error rendering."""

from repro.core.ast import MessageRule, SqlMessageBlock
from repro.core.messages import default_error_html, resolve_message
from repro.core.substitution import Evaluator
from repro.core.values import ValueString
from repro.core.variables import VariableStore
from repro.errors import SQLError, SQLObjectError, SQLSyntaxError


def rule(code: str, text: str, action: str = "exit") -> MessageRule:
    return MessageRule(code=code, text=ValueString.parse(text),
                       action=action)


def resolve(block, error):
    store = VariableStore()
    return resolve_message(block, error, store, Evaluator(store))


class TestRuleMatching:
    def test_sqlcode_match(self):
        block = SqlMessageBlock((rule("-204", "missing!"),))
        resolved = resolve(block, SQLObjectError("no such table: t"))
        assert resolved.html == "missing!"
        assert resolved.matched_rule is block.rules[0]

    def test_sqlstate_match(self):
        block = SqlMessageBlock((rule("42601", "syntax!"),))
        resolved = resolve(block, SQLSyntaxError("near x"))
        assert resolved.html == "syntax!"

    def test_sqlcode_beats_sqlstate(self):
        block = SqlMessageBlock((
            rule("42601", "by state"),
            rule("-104", "by code"),
        ))
        resolved = resolve(block, SQLSyntaxError("boom"))
        assert resolved.html == "by code"

    def test_default_rule_as_fallback(self):
        block = SqlMessageBlock((
            rule("-803", "dup"),
            rule("default", "generic: $(SQL_MESSAGE)"),
        ))
        resolved = resolve(block, SQLSyntaxError("near SELECT"))
        assert resolved.html == "generic: near SELECT"

    def test_no_rule_matches_falls_to_default_rendering(self):
        block = SqlMessageBlock((rule("-803", "dup"),))
        error = SQLSyntaxError("near FROM")
        resolved = resolve(block, error)
        assert resolved.html == default_error_html(error)
        assert resolved.action == "exit"

    def test_no_block_at_all(self):
        error = SQLObjectError("no such column: x", sqlstate="42703")
        resolved = resolve(None, error)
        assert "42703" in resolved.html
        assert resolved.matched_rule is None

    def test_action_carried_from_rule(self):
        block = SqlMessageBlock((rule("-204", "m", action="continue"),))
        resolved = resolve(block, SQLObjectError("x"))
        assert resolved.action == "continue"

    def test_warning_defaults_to_continue(self):
        warning = SQLError("truncated", sqlcode=445, sqlstate="01004")
        resolved = resolve(None, warning)
        assert resolved.action == "continue"
        assert "warning" in resolved.html


class TestMessageInterpolation:
    def test_error_attributes_published_as_variables(self):
        store = VariableStore()
        evaluator = Evaluator(store)
        block = SqlMessageBlock((
            rule("default", "code=$(SQL_CODE) state=$(SQL_STATE)"),))
        resolved = resolve_message(
            block, SQLObjectError("gone"), store, evaluator)
        assert resolved.html == "code=-204 state=42704"

    def test_default_rendering_escapes_message(self):
        error = SQLError("bad <input> here", sqlcode=-1, sqlstate="58004")
        assert "&lt;input&gt;" in default_error_html(error)
