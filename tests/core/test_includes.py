"""%INCLUDE: macro composition through the library."""

import pytest

from repro.core import parse_macro
from repro.core.ast import IncludeSection
from repro.core.macrofile import (
    IncludeCycleError,
    MacroLibrary,
    expand_includes,
)
from repro.errors import (
    DuplicateSectionError,
    MacroExecutionError,
    MacroSyntaxError,
)

HEADER = '%DEFINE site_name = "CELDIAL Online"\n'
FOOTER_SQL = "%SQL(footer_query){ SELECT 'footer' AS f %}\n"


@pytest.fixture()
def library():
    lib = MacroLibrary()
    lib.add_text("header.d2w", HEADER)
    lib.add_text("footer.d2w", FOOTER_SQL)
    lib.add_text("page.d2w", """
%INCLUDE "header.d2w"
%HTML_INPUT{<H1>$(site_name)</H1>%}
%INCLUDE "footer.d2w"
%HTML_REPORT{%EXEC_SQL(footer_query)%}
""")
    return lib


class TestParsing:
    def test_include_parsed(self):
        macro = parse_macro('%INCLUDE "common.d2w"')
        (section,) = macro.sections
        assert isinstance(section, IncludeSection)
        assert section.name == "common.d2w"

    def test_include_unparse_roundtrip(self):
        macro = parse_macro('%INCLUDE "x.d2w"')
        assert macro.unparse() == '%INCLUDE "x.d2w"'
        assert parse_macro(macro.unparse()).includes()[0].name == "x.d2w"

    def test_empty_include_name_rejected(self):
        with pytest.raises(MacroSyntaxError):
            parse_macro('%INCLUDE "   "')

    def test_named_exec_sql_allowed_with_includes(self):
        # The named section may live in the included file, so static
        # validation defers to post-expansion checking.
        macro = parse_macro(
            '%INCLUDE "sqls.d2w"\n%HTML_REPORT{%EXEC_SQL(from_inc)%}')
        assert len(macro.includes()) == 1


class TestExpansion:
    def test_library_load_expands(self, library):
        macro = library.load("page.d2w")
        assert not macro.includes()
        assert macro.html_input is not None
        assert macro.named_sql_section("footer_query") is not None

    def test_expanded_macro_executes(self, library):
        from repro.core.engine import MacroEngine
        from repro.sql.gateway import DatabaseRegistry

        registry = DatabaseRegistry()
        registry.register_memory("ANY")
        engine = MacroEngine(registry,
                             config=None)
        engine.config.default_database = "ANY"
        macro = library.load("page.d2w")
        result = engine.execute_input(macro)
        assert result.html == "<H1>CELDIAL Online</H1>"
        report = engine.execute_report(macro)
        assert "footer" in report.html

    def test_load_without_expansion(self, library):
        raw = library.load("page.d2w", expand=False)
        assert len(raw.includes()) == 2

    def test_nested_includes(self, library):
        library.add_text("outer.d2w",
                         '%INCLUDE "middle.d2w"\n%HTML_INPUT{$(site_name)%}')
        library.add_text("middle.d2w", '%INCLUDE "header.d2w"')
        macro = library.load("outer.d2w")
        assert not macro.includes()

    def test_missing_include_target(self, library):
        library.add_text("broken.d2w", '%INCLUDE "ghost.d2w"')
        from repro.core.macrofile import MacroNameError
        with pytest.raises(MacroNameError):
            library.load("broken.d2w")

    def test_cycle_detected(self, library):
        library.add_text("a.d2w", '%INCLUDE "b.d2w"')
        library.add_text("b.d2w", '%INCLUDE "a.d2w"')
        with pytest.raises(IncludeCycleError) as excinfo:
            library.load("a.d2w")
        assert "a.d2w" in str(excinfo.value)

    def test_self_include_detected(self, library):
        library.add_text("self.d2w", '%INCLUDE "self.d2w"')
        with pytest.raises(IncludeCycleError):
            library.load("self.d2w")

    def test_duplicate_html_input_after_expansion(self, library):
        library.add_text("input_too.d2w", "%HTML_INPUT{extra%}")
        library.add_text("clash.d2w",
                         '%HTML_INPUT{mine%}\n%INCLUDE "input_too.d2w"')
        with pytest.raises(DuplicateSectionError):
            library.load("clash.d2w")

    def test_duplicate_named_sql_after_expansion(self, library):
        library.add_text("clash2.d2w",
                         "%SQL(footer_query){ SELECT 2 %}\n"
                         '%INCLUDE "footer.d2w"\n%HTML_REPORT{x%}')
        with pytest.raises(DuplicateSectionError):
            library.load("clash2.d2w")

    def test_expand_includes_function_directly(self):
        main = parse_macro('%INCLUDE "inc"', source="main")
        include = parse_macro('%DEFINE x = "1"', source="inc")
        expanded = expand_includes(main, lambda name: include)
        kinds = [type(s).__name__ for s in expanded.sections]
        assert kinds == ["DefineSection"]


class TestEngineGuard:
    def test_engine_rejects_unexpanded_include(self):
        from repro.core.engine import MacroEngine
        macro = parse_macro('%INCLUDE "x.d2w"\n%HTML_INPUT{hi%}')
        with pytest.raises(MacroExecutionError) as excinfo:
            MacroEngine().execute_input(macro)
        assert "MacroLibrary" in str(excinfo.value)


class TestDiskIncludes:
    def test_includes_resolve_from_the_macro_directory(self, tmp_path):
        (tmp_path / "header.d2w").write_text(
            '%DEFINE site = "Disk Site"\n')
        (tmp_path / "page.d2w").write_text(
            '%INCLUDE "header.d2w"\n%HTML_INPUT{<H1>$(site)</H1>%}\n')
        library = MacroLibrary(tmp_path)
        macro = library.load("page.d2w")
        from repro.core.engine import MacroEngine
        assert MacroEngine().execute_input(macro).html == \
            "<H1>Disk Site</H1>"

    def test_edited_include_picked_up(self, tmp_path):
        import os, time
        header = tmp_path / "header.d2w"
        header.write_text('%DEFINE site = "Version 1"\n')
        (tmp_path / "page.d2w").write_text(
            '%INCLUDE "header.d2w"\n%HTML_INPUT{$(site)%}\n')
        library = MacroLibrary(tmp_path)
        from repro.core.engine import MacroEngine
        engine = MacroEngine()
        assert engine.execute_input(
            library.load("page.d2w")).html == "Version 1"
        header.write_text('%DEFINE site = "Version 2"\n')
        os.utime(header, (time.time() + 5, time.time() + 5))
        assert engine.execute_input(
            library.load("page.d2w")).html == "Version 2"
