"""The standard %EXEC command library."""

import pytest

from repro.core.builtins import standard_exec_runner
from repro.core.engine import MacroEngine
from repro.core.parser import parse_macro


@pytest.fixture(scope="module")
def runner():
    return standard_exec_runner()


class TestArithmetic:
    def test_add(self, runner):
        assert runner.run("add 1 2 3") == ("6", "")

    def test_subtract(self, runner):
        assert runner.run("subtract 10 4") == ("6", "")

    def test_multiply(self, runner):
        assert runner.run("multiply 3 4 2") == ("24", "")

    def test_divide(self, runner):
        assert runner.run("divide 9 2") == ("4", "")

    def test_divide_by_zero_is_error_code(self, runner):
        output, error = runner.run("divide 1 0")
        assert output == ""
        assert "ZeroDivisionError" in error

    def test_bad_number_is_error_code(self, runner):
        _, error = runner.run("add one two")
        assert "ValueError" in error


class TestCompare:
    @pytest.mark.parametrize("expr,expected", [
        ("compare 1 lt 2", "1"),
        ("compare 2 lt 1", ""),
        ("compare 3 eq 3", "1"),
        ("compare 3 ne 3", ""),
        ("compare 5 ge 5", "1"),
        ("compare 4 gt 5", ""),
        ("compare 4 le 5", "1"),
    ])
    def test_comparisons(self, runner, expr, expected):
        assert runner.run(expr) == (expected, "")

    def test_unknown_operator(self, runner):
        _, error = runner.run("compare 1 spaceship 2")
        assert "ValueError" in error


class TestStrings:
    def test_case_conversion(self, runner):
        assert runner.run("upper hello web") == ("HELLO WEB", "")
        assert runner.run("lower LOUD") == ("loud", "")

    def test_length(self, runner):
        assert runner.run("length four") == ("4", "")
        assert runner.run("length two words") == ("9", "")

    def test_urlescape(self, runner):
        assert runner.run('urlescape "a b&c"') == ("a+b%26c", "")

    def test_htmlescape(self, runner):
        assert runner.run('htmlescape "<b>"') == ("&lt;b&gt;", "")

    def test_default(self, runner):
        assert runner.run("default set fallback") == ("set", "")
        assert runner.run('default "" fallback') == ("fallback", "")


class TestInsideMacros:
    def test_compare_pairs_with_conditionals(self):
        engine = MacroEngine(exec_runner=standard_exec_runner())
        macro = parse_macro("""
%DEFINE over_limit = %EXEC "compare $(qty) gt 10"
%DEFINE notice = over_limit ? "BULK ORDER" : "standard order"
%HTML_INPUT{$(over_limit)$(notice)%}
""")
        small = engine.execute_input(macro, [("qty", "3")])
        assert "standard order" in small.html
        # NOTE the subtlety: the conditional consults the exec variable's
        # *error code*, so a successful "1" still reads as not-set; the
        # idiomatic pattern tests the spliced output instead:
        macro2 = parse_macro("""
%DEFINE flag = %EXEC "compare $(qty) gt 10"
%DEFINE banner = ? "BULK: $(flag) "
%HTML_INPUT{[$(banner)]%}
""")
        big = engine.execute_input(macro2, [("qty", "50")])
        assert big.html == "[BULK: 1 ]"
        small2 = engine.execute_input(macro2, [("qty", "2")])
        assert small2.html == "[]"

    def test_arithmetic_composes_with_substitution(self):
        engine = MacroEngine(exec_runner=standard_exec_runner())
        macro = parse_macro("""
%DEFINE subtotal = %EXEC "multiply $(qty) $(price)"
%HTML_INPUT{total=$(subtotal)%}
""")
        result = engine.execute_input(
            macro, [("qty", "3"), ("price", "25")])
        assert result.html == "total=75"
