"""Exec runners: registry, subprocess, and the hard-off default."""

import sys

import pytest

from repro.core.execvars import (
    NullExecRunner,
    RegistryExecRunner,
    SubprocessExecRunner,
)
from repro.errors import ExecVariableError


class TestRegistryRunner:
    def test_register_call_and_args(self):
        runner = RegistryExecRunner()
        runner.register("echo", lambda args: " ".join(args))
        assert runner.run('echo one "two words"') == \
            ("one two words", "")
        assert list(runner.commands()) == ["echo"]

    def test_decorator_registration(self):
        runner = RegistryExecRunner()

        @runner.register("hi")
        def hi(args):
            return "hello"

        assert runner.run("hi") == ("hello", "")

    def test_exception_becomes_error_code(self):
        runner = RegistryExecRunner()

        def boom(args):
            raise RuntimeError("bad day")

        runner.register("boom", boom)
        output, error = runner.run("boom")
        assert output == ""
        assert error == "RuntimeError: bad day"

    def test_unknown_command_raises(self):
        with pytest.raises(ExecVariableError):
            RegistryExecRunner().run("ghost")

    def test_empty_command_is_noop(self):
        assert RegistryExecRunner().run("   ") == ("", "")

    def test_unbalanced_quotes_reported(self):
        runner = RegistryExecRunner()
        runner.register("x", lambda args: "ok")
        output, error = runner.run('x "unclosed')
        assert output == ""
        assert "badcommand" in error


class TestSubprocessRunner:
    def test_requires_explicit_opt_in(self):
        with pytest.raises(ExecVariableError):
            SubprocessExecRunner()

    def test_runs_real_process(self):
        runner = SubprocessExecRunner(i_understand_the_risk=True)
        output, error = runner.run(
            f'{sys.executable} -c "print(6 * 7)"')
        assert output.strip() == "42"
        assert error == ""

    def test_nonzero_exit_becomes_error_code(self):
        runner = SubprocessExecRunner(i_understand_the_risk=True)
        _, error = runner.run(
            f'{sys.executable} -c "import sys; sys.exit(3)"')
        assert error == "3"

    def test_missing_binary_reported(self):
        runner = SubprocessExecRunner(i_understand_the_risk=True)
        output, error = runner.run("definitely-not-a-real-binary-xyz")
        assert output == ""
        assert error  # FileNotFoundError text

    def test_timeout_reported(self):
        runner = SubprocessExecRunner(i_understand_the_risk=True,
                                      timeout=0.2)
        _, error = runner.run(
            f'{sys.executable} -c "import time; time.sleep(5)"')
        assert "TimeoutExpired" in error


class TestNullRunner:
    def test_refuses_everything(self):
        with pytest.raises(ExecVariableError):
            NullExecRunner().run("anything at all")
