"""The command-line interface."""

import io
import sqlite3

import pytest

from repro.cli import main

GOOD_MACRO = """\
%DEFINE DATABASE = "DEMO"
%SQL{ SELECT name FROM pets WHERE name LIKE '$(q)%' ORDER BY name %}
%HTML_INPUT{<H1>Pets</H1><FORM><INPUT NAME="q"></FORM>%}
%HTML_REPORT{<H1>Found pets</H1>%EXEC_SQL%}
"""


@pytest.fixture()
def deployment(tmp_path):
    macro_path = tmp_path / "pets.d2w"
    macro_path.write_text(GOOD_MACRO)
    db_path = tmp_path / "demo.sqlite"
    conn = sqlite3.connect(db_path)
    conn.executescript(
        "CREATE TABLE pets (name TEXT);"
        "INSERT INTO pets VALUES ('rex'), ('rover'), ('max');")
    conn.commit()
    conn.close()
    return macro_path, db_path


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


class TestLintCommand:
    def test_clean_macro(self, deployment):
        macro_path, _ = deployment
        status, output = run_cli("lint", str(macro_path))
        assert status == 0
        assert "clean" in output

    def test_warnings_printed_but_exit_zero(self, tmp_path):
        path = tmp_path / "warn.d2w"
        path.write_text(
            '%DEFINE DATABASE = "D"\n%SQL{ SELECT $(typo_var) %}\n'
            "%HTML_INPUT{x%}\n%HTML_REPORT{%EXEC_SQL%}\n")
        status, output = run_cli("lint", str(path))
        assert status == 0
        assert "undefined-variable" in output

    def test_errors_exit_nonzero(self, tmp_path):
        path = tmp_path / "err.d2w"
        path.write_text(
            '%DEFINE a = "$(b)"\n%DEFINE b = "$(a)"\n'
            "%HTML_INPUT{x%}\n%HTML_REPORT{y%}\n")
        status, output = run_cli("lint", str(path))
        assert status == 1
        assert "circular-definition" in output

    def test_multiple_files(self, deployment, tmp_path):
        macro_path, _ = deployment
        other = tmp_path / "other.d2w"
        other.write_text("%HTML_INPUT{x%}\n%HTML_REPORT{y%}\n")
        status, output = run_cli("lint", str(macro_path), str(other))
        assert status == 0
        assert str(other) in output or "clean" in output


class TestRunCommand:
    def test_input_mode(self, deployment):
        macro_path, db_path = deployment
        status, output = run_cli(
            "run", str(macro_path), "input")
        assert status == 0
        assert "<H1>Pets</H1>" in output

    def test_report_mode_with_inputs(self, deployment):
        macro_path, db_path = deployment
        status, output = run_cli(
            "run", str(macro_path), "report", "q=r",
            "--database", f"DEMO={db_path}")
        assert status == 0
        assert "<TD>rex</TD>" in output
        assert "<TD>rover</TD>" in output
        assert "max" not in output

    def test_report_failure_exit_code(self, deployment, tmp_path):
        macro_path, db_path = deployment
        broken = tmp_path / "broken.d2w"
        broken.write_text(GOOD_MACRO.replace("pets", "no_table"))
        status, output = run_cli(
            "run", str(broken), "report",
            "--database", f"DEMO={db_path}")
        assert status == 1
        assert "SQL error" in output

    def test_render_mode(self, deployment):
        macro_path, db_path = deployment
        status, output = run_cli(
            "render", str(macro_path), "report", "q=r",
            "--database", f"DEMO={db_path}")
        assert status == 0
        assert "Found pets" in output
        assert "| rex" in output  # text table rendering

    def test_bad_binding_rejected(self, deployment):
        macro_path, _ = deployment
        with pytest.raises(SystemExit):
            run_cli("run", str(macro_path), "report", "not-a-binding")

    def test_macro_error_returns_2(self, tmp_path):
        path = tmp_path / "syntax.d2w"
        path.write_text("%DEFINE broken")
        status, _ = run_cli("run", str(path), "input")
        assert status == 2


class TestUnparseCommand:
    def test_unparse_roundtrip(self, deployment):
        macro_path, _ = deployment
        status, output = run_cli("unparse", str(macro_path))
        assert status == 0
        from repro.core.parser import parse_macro
        again = parse_macro(output)
        assert again.html_input is not None
        assert len(again.sql_sections()) == 1


class TestStatsCommand:
    def test_summarises_clf_log(self, tmp_path):
        log = tmp_path / "access.log"
        log.write_text(
            '1.1.1.1 - - [05/Jul/1996:10:00:00 +0000] '
            '"GET /a HTTP/1.0" 200 100\n'
            '1.1.1.1 - - [05/Jul/1996:10:00:01 +0000] '
            '"GET /a HTTP/1.0" 200 100\n'
            '2.2.2.2 - - [05/Jul/1996:10:00:02 +0000] '
            '"GET /missing HTTP/1.0" 404 50\n'
            "this line is junk\n")
        status, output = run_cli("stats", str(log))
        assert status == 0
        assert "requests: 3   errors: 1   bytes: 250" in output
        assert "unparseable lines: 1" in output
        assert "2  /a" in output
        assert "404: 1" in output

    def test_empty_log_is_an_error(self, tmp_path):
        log = tmp_path / "empty.log"
        log.write_text("nothing useful\n")
        status, output = run_cli("stats", str(log))
        assert status == 1


def trace_record(trace_id: str, name: str = "request") -> str:
    import json
    return json.dumps({
        "type": "trace", "ts": 1.0, "trace_id": trace_id,
        "name": name, "duration_ms": 5.0, "phases": {name: 5.0},
        "attrs": {"status": 200},
        "spans": {"name": name, "trace_id": trace_id, "span_id": 1,
                  "offset_ms": 0.0, "duration_ms": 5.0}})


class TestTraceCommand:
    def test_trace_id_filter(self, tmp_path):
        log = tmp_path / "trace.log"
        log.write_text(trace_record("tid-aaa") + "\n"
                       + trace_record("tid-bbb") + "\n")
        status, output = run_cli("trace", str(log),
                                 "--trace-id", "tid-bbb")
        assert status == 0
        assert "tid-bbb" in output
        assert "tid-aaa" not in output

    def test_unknown_trace_id_shows_nothing(self, tmp_path):
        log = tmp_path / "trace.log"
        log.write_text(trace_record("tid-aaa") + "\n")
        status, output = run_cli("trace", str(log),
                                 "--trace-id", "tid-zzz")
        assert status == 1
        assert "no trace records" in output

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        """A crash-mid-write artifact must not take the renderer down."""
        log = tmp_path / "trace.log"
        log.write_text(trace_record("tid-ok") + "\n"
                       + trace_record("tid-cut")[:40])  # no newline
        status, output = run_cli("trace", str(log))
        assert status == 0
        assert "tid-ok" in output
        assert "tid-cut" not in output

    def test_corrupt_bytes_are_tolerated(self, tmp_path):
        log = tmp_path / "trace.log"
        log.write_bytes(trace_record("tid-ok").encode() + b"\n"
                        + b"\xfe\xfd{{{ not json\n")
        status, output = run_cli("trace", str(log))
        assert status == 0
        assert "tid-ok" in output


class TestTopCommand:
    @pytest.fixture()
    def served_statements(self):
        from repro.apps import urlquery as urlquery_app
        from repro.apps.site import build_site
        from repro.sql.digest import StatementStats

        app = urlquery_app.install(rows=5)
        site = build_site(app.engine, app.library)
        stats = StatementStats()
        stats.enabled = True
        stats.record(digest="deadbeef0123",
                     statement="select url from urls where id = ?",
                     duration_ms=12.0, rows=5)
        site.router.statements = stats
        server = site.serve()
        yield server
        server.shutdown()

    def test_renders_the_digest_table(self, served_statements):
        status, output = run_cli("top", served_statements.base_url)
        assert status == 0
        assert "deadbeef0123" in output
        assert "digest" in output  # the header row
        assert "1 digest(s)" in output

    def test_sql_flag_prints_the_statement_text(self,
                                                served_statements):
        status, output = run_cli("top", served_statements.base_url,
                                 "--sql")
        assert status == 0
        assert "select url from urls where id = ?" in output

    def test_empty_store_exits_nonzero(self):
        from repro.apps import urlquery as urlquery_app
        from repro.apps.site import build_site
        from repro.sql.digest import StatementStats

        app = urlquery_app.install(rows=2)
        site = build_site(app.engine, app.library)
        site.router.statements = StatementStats()
        server = site.serve()
        try:
            status, output = run_cli("top", server.base_url)
        finally:
            server.shutdown()
        assert status == 1
        assert "no statements" in output
