"""Engine edge behaviours beyond the core Section 4 semantics."""

import pytest

from repro.core import parse_macro
from repro.core.engine import EngineConfig, MacroEngine
from repro.sql.gateway import DatabaseRegistry


class TestConfiguration:
    def test_custom_show_sql_variable_name(self, shop_registry):
        engine = MacroEngine(shop_registry, config=EngineConfig(
            show_sql_variable="DEBUG_SQL"))
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT 1 %}
%HTML_REPORT{%EXEC_SQL%}
""")
        shown = engine.execute_report(macro, [("DEBUG_SQL", "on")])
        assert "<TT>SELECT 1</TT>" in shown.html
        ignored = engine.execute_report(macro, [("SHOWSQL", "YES")])
        assert "<TT>" not in ignored.html

    def test_show_sql_disabled_entirely(self, shop_registry):
        engine = MacroEngine(shop_registry, config=EngineConfig(
            show_sql_variable=""))
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT 1 %}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = engine.execute_report(macro, [("SHOWSQL", "YES")])
        assert "<TT>" not in result.html

    def test_macro_database_beats_default(self, shop_registry):
        other = shop_registry.register_memory("OTHER")
        with other.connect() as conn:
            conn.executescript(
                "CREATE TABLE items (name TEXT, price REAL, qty INT);"
                "INSERT INTO items VALUES ('other-thing', 1, 1);")
        engine = MacroEngine(shop_registry, config=EngineConfig(
            default_database="OTHER"))
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items ORDER BY name LIMIT 1 %}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = engine.execute_report(macro)
        assert "bikes" in result.html  # SHOP, not OTHER

    def test_database_name_via_variable(self, shop_registry):
        engine = MacroEngine(shop_registry)
        macro = parse_macro("""
%DEFINE which = "SHOP"
%DEFINE DATABASE = "$(which)"
%SQL{ SELECT COUNT(*) FROM items %}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = engine.execute_report(macro)
        assert result.ok


class TestStructuralEdges:
    def test_free_text_between_sections_ignored(self, shop_engine):
        macro = parse_macro("""
This is commentary the engine must skip.
%DEFINE greeting = "hi"
more commentary
%HTML_INPUT{$(greeting)%}
trailing notes
""")
        assert shop_engine.execute_input(macro).html == "hi"

    def test_report_without_exec_sql_is_pure_html(self, shop_engine):
        macro = parse_macro(
            "%HTML_REPORT{<P>static report, no SQL</P>%}")
        result = shop_engine.execute_report(macro)
        assert result.ok
        assert result.statements == []
        assert "static report" in result.html

    def test_multiple_define_sections_merge_in_order(self, shop_engine):
        macro = parse_macro("""
%DEFINE a = "first"
%DEFINE{
a = "second"
b = "$(a)!"
%}
%HTML_INPUT{$(a)/$(b)%}
""")
        # b references a lazily: evaluates against the final store.
        assert shop_engine.execute_input(macro).html == \
            "second/second!"

    def test_one_connection_per_request_across_directives(
            self, shop_registry):
        """Both named EXEC_SQLs share one session (and transaction)."""
        from repro.sql.transactions import TransactionMode
        engine = MacroEngine(shop_registry, config=EngineConfig(
            transaction_mode=TransactionMode.SINGLE))
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL(first){ INSERT INTO items VALUES ('one-shot', 1, 1) %}
%SQL(second){ SELECT COUNT(*) FROM items WHERE name = 'one-shot' %}
%HTML_REPORT{%EXEC_SQL(first)%EXEC_SQL(second)%}
""")
        result = engine.execute_report(macro)
        assert result.ok
        # The SELECT saw the uncommitted INSERT: same transaction,
        # hence same connection and session.
        assert "<TD>1</TD>" in result.html

    def test_empty_client_value_still_protects_name(self, shop_engine):
        # SEARCH="" from the client beats a macro default (null wins).
        macro = parse_macro(
            '%DEFINE q = "default"\n%HTML_INPUT{[$(q)]%}')
        result = shop_engine.execute_input(macro, [("q", "")])
        assert result.html == "[]"

    def test_result_statements_exclude_failed_sql(self, shop_engine):
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT * FROM missing_table
%SQL_MESSAGE{ default : "oops" : continue %}
%}
%SQL{ SELECT 1 %}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = shop_engine.execute_report(macro)
        assert result.statements == ["SELECT 1"]
        assert len(result.sql_errors) == 1


class TestClientInputEdgeCases:
    def test_client_value_with_self_reference_is_cycle(self, shop_engine):
        from repro.errors import CircularReferenceError
        macro = parse_macro("%HTML_INPUT{$(x)%}")
        with pytest.raises(CircularReferenceError):
            shop_engine.execute_input(macro, [("x", "loop $(x)")])

    def test_client_value_referencing_macro_default(self, shop_engine):
        macro = parse_macro(
            '%DEFINE suffix = "-v1"\n%HTML_INPUT{$(name)%}')
        result = shop_engine.execute_input(
            macro, [("name", "report$(suffix)")])
        assert result.html == "report-v1"

    def test_duplicate_inputs_preserve_order_in_sql(self, shop_registry):
        engine = MacroEngine(shop_registry)
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT $(cols) FROM items LIMIT 1 %}
%HTML_REPORT{%EXEC_SQL%}
""")
        result = engine.execute_report(
            macro, [("cols", "qty"), ("cols", "name"), ("cols", "price")])
        assert "SELECT qty,name,price FROM" in result.statements[0]


class TestContentTypeOverride:
    """Macros can emit non-HTML (Section 2.1's "special types of data")."""

    CSV_MACRO = """
%DEFINE DATABASE = "SHOP"
%DEFINE CONTENT_TYPE = "text/csv"
%SQL{ SELECT name, qty FROM items ORDER BY name
%SQL_REPORT{name,qty
%ROW{$(V1),$(V2)
%}%}
%}
%HTML_REPORT{%EXEC_SQL%}
"""

    def test_default_content_type_is_html(self, shop_engine):
        macro = parse_macro("%HTML_INPUT{x%}")
        assert shop_engine.execute_input(macro).content_type == \
            "text/html"

    def test_csv_report(self, shop_engine):
        result = shop_engine.execute_report(parse_macro(self.CSV_MACRO))
        assert result.content_type == "text/csv"
        assert result.html.splitlines()[0] == "name,qty"
        assert "bikes,4" in result.html

    def test_content_type_reaches_the_http_layer(self, shop_registry):
        from repro.apps.site import build_site
        from repro.core.macrofile import MacroLibrary

        library = MacroLibrary()
        library.add_text("export.d2w", self.CSV_MACRO)
        engine = MacroEngine(shop_registry)
        site = build_site(engine, library)
        page = site.new_browser().get(
            "/cgi-bin/db2www/export.d2w/report")
        assert page.response.content_type == "text/csv; charset=utf-8"
        assert "bikes,4" in page.response.text

    def test_content_type_from_client_is_honoured(self, shop_engine):
        # CONTENT_TYPE is an ordinary variable, so a client could set
        # it; deployments that care should %DEFINE it after checking
        # (client values win over defines, documented behaviour).
        macro = parse_macro("%HTML_INPUT{x%}")
        result = shop_engine.execute_input(
            macro, [("CONTENT_TYPE", "text/plain")])
        assert result.content_type == "text/plain"


class TestSingleModeWithContinueRule:
    def test_continue_rule_cannot_outlive_rollback(self, shop_registry):
        """In single mode a failure dooms the interaction even when the
        %SQL_MESSAGE rule says continue — everything was rolled back,
        so running more statements would be incoherent."""
        from repro.sql.transactions import TransactionMode
        engine = MacroEngine(shop_registry, config=EngineConfig(
            transaction_mode=TransactionMode.SINGLE))
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{ INSERT INTO items VALUES ('kept?', 1, 1) %}
%SQL{ SELECT * FROM missing_table
%SQL_MESSAGE{ default : "<P>never mind</P>" : continue %}
%}
%SQL{ SELECT 'after' AS t %}
%HTML_REPORT{%EXEC_SQL tail text%}
""")
        result = engine.execute_report(macro)
        assert result.aborted
        assert "never mind" in result.html
        assert all("after" not in s for s in result.statements)
        conn = shop_registry.connect("SHOP")
        count = conn.execute(
            "SELECT COUNT(*) FROM items WHERE name = 'kept?'"
        ).fetchone()[0]
        conn.close()
        assert count == 0  # rolled back
