"""The cross-language substitution mechanism: Section 3.1 and 4.3."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.execvars import RegistryExecRunner
from repro.core.substitution import Evaluator
from repro.core.values import ValueString
from repro.core.variables import VariableStore
from repro.errors import CircularReferenceError, ExecVariableError


def vs(text: str) -> ValueString:
    return ValueString.parse(text)


def make(*assignments: tuple[str, str]) -> Evaluator:
    store = VariableStore()
    for name, value in assignments:
        store.assign_simple(name, vs(value))
    return Evaluator(store)


class TestBasicEvaluation:
    def test_literal_passthrough(self):
        ev = make()
        assert ev.evaluate(vs("plain text")) == "plain text"

    def test_reference_substitution(self):
        ev = make(("name", "world"))
        assert ev.evaluate(vs("hello $(name)")) == "hello world"

    def test_undefined_is_null_not_error(self):
        # Section 4.1: "an undefined variable is not an error, it merely
        # evaluates to the null string".
        ev = make()
        assert ev.evaluate(vs("a$(missing)b")) == "ab"

    def test_recursive_dereference(self):
        # %DEFINE var1 = "$(var2).abc" is permitted (Section 3.1.1).
        ev = make(("var1", "$(var2).abc"), ("var2", "xyz"))
        assert ev.evaluate_name("var1") == "xyz.abc"

    def test_deep_nesting(self):
        assignments = [(f"v{i}", f"$(v{i+1})+") for i in range(30)]
        assignments.append(("v30", "end"))
        ev = make(*assignments)
        assert ev.evaluate_name("v0") == "end" + "+" * 30

    def test_escape_survives_one_pass(self):
        # %DEFINE a = "$$(b)" evaluates to the string "$(b)".
        ev = make(("a", "$$(b)"), ("b", "SHOULD NOT APPEAR"))
        assert ev.evaluate_name("a") == "$(b)"

    def test_multiple_references_same_variable(self):
        ev = make(("x", "ha"))
        assert ev.evaluate(vs("$(x)$(x)$(x)")) == "hahaha"


class TestCircularReferences:
    def test_direct_cycle(self):
        ev = make(("a", "$(a)"))
        with pytest.raises(CircularReferenceError):
            ev.evaluate_name("a")

    def test_indirect_cycle(self):
        ev = make(("a", "$(b)"), ("b", "$(c)"), ("c", "$(a)"))
        with pytest.raises(CircularReferenceError) as excinfo:
            ev.evaluate_name("a")
        assert excinfo.value.chain == ["a", "b", "c", "a"]

    def test_diamond_is_not_a_cycle(self):
        # a -> b, a -> c, b -> d, c -> d: d evaluated twice, no cycle.
        ev = make(("a", "$(b)$(c)"), ("b", "[$(d)]"), ("c", "{$(d)}"),
                  ("d", "x"))
        assert ev.evaluate_name("a") == "[x]{x}"

    def test_evaluator_usable_after_cycle_error(self):
        ev = make(("a", "$(a)"), ("ok", "fine"))
        with pytest.raises(CircularReferenceError):
            ev.evaluate_name("a")
        assert ev.evaluate_name("ok") == "fine"


class TestConditionals:
    def _store(self) -> VariableStore:
        return VariableStore()

    def test_form_a_takes_then_branch(self):
        store = self._store()
        store.assign_simple("t", vs("set"))
        store.assign_conditional("v", vs("YES"), test_name="t",
                                 else_value=vs("NO"))
        assert Evaluator(store).evaluate_name("v") == "YES"

    def test_form_a_takes_else_branch_when_test_undefined(self):
        store = self._store()
        store.assign_conditional("v", vs("YES"), test_name="t",
                                 else_value=vs("NO"))
        assert Evaluator(store).evaluate_name("v") == "NO"

    def test_null_valued_test_equals_undefined(self):
        # Section 2.2: defined-as-null and undefined are identical.
        store = self._store()
        store.assign_simple("t", vs(""))
        store.assign_conditional("v", vs("YES"), test_name="t",
                                 else_value=vs("NO"))
        assert Evaluator(store).evaluate_name("v") == "NO"

    def test_missing_else_means_null(self):
        store = self._store()
        store.assign_conditional("v", vs("YES"), test_name="t")
        assert Evaluator(store).evaluate_name("v") == ""

    def test_form_b_null_when_reference_undefined(self):
        store = self._store()
        store.assign_conditional("v", vs("custid = $(cust_inp)"))
        assert Evaluator(store).evaluate_name("v") == ""

    def test_form_b_evaluates_when_all_defined(self):
        store = self._store()
        store.assign_simple("cust_inp", vs("10100"))
        store.assign_conditional("v", vs("custid = $(cust_inp)"))
        assert Evaluator(store).evaluate_name("v") == "custid = 10100"

    def test_form_b_literal_only_value_is_kept(self):
        store = self._store()
        store.assign_conditional("v", vs("no refs at all"))
        assert Evaluator(store).evaluate_name("v") == "no refs at all"

    def test_form_b_escaped_reference_does_not_count(self):
        store = self._store()
        store.assign_conditional("v", vs("$$(missing) literal"))
        assert Evaluator(store).evaluate_name("v") == "$(missing) literal"

    def test_branch_values_may_reference_variables(self):
        store = self._store()
        store.assign_simple("t", vs("on"))
        store.assign_simple("x", vs("inner"))
        store.assign_conditional("v", vs("<$(x)>"), test_name="t",
                                 else_value=vs("none"))
        assert Evaluator(store).evaluate_name("v") == "<inner>"


class TestListEvaluation:
    def test_join_with_separator(self):
        store = VariableStore()
        store.declare_list("L", vs(" AND "))
        store.assign_simple("L", vs("a = 1"))
        store.assign_simple("L", vs("b = 2"))
        assert Evaluator(store).evaluate_name("L") == "a = 1 AND b = 2"

    def test_null_elements_are_skipped(self):
        # "intelligent enough to add delimiters only if the individual
        # value strings are not null" (Section 3.1.3).
        store = VariableStore()
        store.declare_list("L", vs(" AND "))
        store.assign_conditional("L", vs("custid = $(cust_inp)"))
        store.assign_conditional("L", vs("name LIKE '$(prod_inp)%'"))
        store.assign_simple("prod_inp", vs("bikes"))
        assert Evaluator(store).evaluate_name("L") == \
            "name LIKE 'bikes%'"

    def test_all_null_elements_evaluate_to_null(self):
        store = VariableStore()
        store.declare_list("L", vs(","))
        store.assign_conditional("L", vs("$(nope)"))
        assert Evaluator(store).evaluate_name("L") == ""

    def test_dynamic_separator(self):
        # "we can have dynamically varying delimiters (An example is to
        # get the delimiter from the user for AND or OR conditions)".
        store = VariableStore()
        store.declare_list("L", vs(" $(conj) "))
        store.assign_simple("L", vs("x"))
        store.assign_simple("L", vs("y"))
        store.set_client_inputs([("conj", "OR")])
        assert Evaluator(store).evaluate_name("L") == "x OR y"

    def test_empty_list(self):
        store = VariableStore()
        store.declare_list("L", vs(","))
        assert Evaluator(store).evaluate_name("L") == ""


class TestSection313WorkedExample:
    """The paper's own evaluation table for where_list/where_clause."""

    def _evaluator(self, cust: str | None, prod: str | None) -> Evaluator:
        store = VariableStore()
        pairs = []
        if cust is not None:
            pairs.append(("cust_inp", cust))
        if prod is not None:
            pairs.append(("prod_inp", prod))
        store.set_client_inputs(pairs)
        store.declare_list("where_list", vs(" AND "))
        store.assign_conditional("where_list",
                                 vs("custid = $(cust_inp)"))
        store.assign_conditional(
            "where_list", vs("product_name LIKE '$(prod_inp)%'"))
        store.assign_conditional("where_clause",
                                 vs("WHERE $(where_list)"))
        return Evaluator(store)

    def test_both_inputs(self):
        ev = self._evaluator("10100", "bikes")
        assert ev.evaluate_name("where_list") == \
            "custid = 10100 AND product_name LIKE 'bikes%'"
        assert ev.evaluate_name("where_clause") == \
            "WHERE custid = 10100 AND product_name LIKE 'bikes%'"

    def test_customer_only(self):
        ev = self._evaluator("10100", None)
        assert ev.evaluate_name("where_clause") == "WHERE custid = 10100"

    def test_empty_string_input_behaves_as_missing(self):
        ev = self._evaluator("", "bikes")
        assert ev.evaluate_name("where_clause") == \
            "WHERE product_name LIKE 'bikes%'"

    def test_no_inputs_no_where_clause(self):
        ev = self._evaluator(None, None)
        assert ev.evaluate_name("where_clause") == ""


class TestExecVariables:
    def test_reference_runs_command_and_splices_output(self):
        runner = RegistryExecRunner()
        runner.register("greet", lambda args: f"hello {args[0]}")
        store = VariableStore()
        store.declare_exec("g", vs("greet $(who)"))
        store.set_client_inputs([("who", "web")])
        ev = Evaluator(store, exec_runner=runner)
        assert ev.evaluate(vs("[$(g)]")) == "[hello web]"

    def test_error_code_stored_for_conditional_test(self):
        runner = RegistryExecRunner()

        def boom(args):
            raise ValueError("nope")

        runner.register("boom", boom)
        store = VariableStore()
        store.declare_exec("e", vs("boom"))
        store.assign_conditional("msg", vs("FAILED"), test_name="e",
                                 else_value=vs("OK"))
        ev = Evaluator(store, exec_runner=runner)
        assert ev.evaluate_test("e") is False  # not run yet: NULL
        ev.evaluate_name("e")                  # run it (fails)
        assert ev.evaluate_test("e") is True
        assert ev.evaluate_name("msg") == "FAILED"

    def test_success_resets_error_to_null(self):
        runner = RegistryExecRunner()
        runner.register("ok", lambda args: "fine")
        store = VariableStore()
        store.declare_exec("e", vs("ok"))
        ev = Evaluator(store, exec_runner=runner)
        ev.evaluate_name("e")
        assert ev.evaluate_test("e") is False

    def test_command_reruns_on_every_reference(self):
        calls = []
        runner = RegistryExecRunner()
        runner.register("count", lambda args: str(len(calls)) if not
                        calls.append(None) else "")
        store = VariableStore()
        store.declare_exec("c", vs("count"))
        ev = Evaluator(store, exec_runner=runner)
        ev.evaluate(vs("$(c)$(c)"))
        assert len(calls) == 2

    def test_no_runner_configured_raises(self):
        store = VariableStore()
        store.declare_exec("e", vs("anything"))
        ev = Evaluator(store)
        with pytest.raises(ExecVariableError):
            ev.evaluate_name("e")

    def test_unregistered_command_raises(self):
        store = VariableStore()
        store.declare_exec("e", vs("nosuch"))
        ev = Evaluator(store, exec_runner=RegistryExecRunner())
        with pytest.raises(ExecVariableError):
            ev.evaluate_name("e")


class TestPropertyBased:
    @given(st.dictionaries(
        st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True),
        st.text(alphabet="abc $", max_size=20), max_size=6))
    def test_flat_stores_always_terminate(self, bindings):
        """Any store of literal-only values evaluates without error."""
        store = VariableStore()
        for name, value in bindings.items():
            store.assign_simple(name, ValueString.literal(value))
        ev = Evaluator(store)
        for name in bindings:
            assert ev.evaluate_name(name) == bindings[name]

    @given(st.lists(st.text(alphabet="abxy", max_size=8), max_size=8),
           st.text(alphabet=",; ", min_size=1, max_size=3))
    def test_list_join_invariant(self, elements, separator):
        """Joined list == separator.join(non-empty elements)."""
        store = VariableStore()
        store.declare_list("L", ValueString.literal(separator))
        for element in elements:
            store.assign_simple("L", ValueString.literal(element))
        expected = separator.join(e for e in elements if e)
        assert Evaluator(store).evaluate_name("L") == expected
