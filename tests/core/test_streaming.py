"""The streaming render path: execute_stream vs the buffered engine.

The contract under test: the buffered path is *exactly* the join of
the stream — one processing code path, two consumption modes — while
the stream rides the live cursor (rows never materialised up front).
"""

import pytest

from repro.core import parse_macro
from repro.core.engine import EngineConfig, MacroCommand, MacroEngine
from repro.errors import MissingSectionError
from repro.sql.gateway import DatabaseRegistry
from repro.sql.querycache import QueryResultCache

MACRO = """
%DEFINE DATABASE = "SHOP"
%SQL{
SELECT name, qty FROM items ORDER BY name
%SQL_REPORT{
<UL>
%ROW{<LI>$(V_name): $(V_qty)
%}
</UL>
%}
%}
%HTML_INPUT{<FORM><INPUT NAME="q"></FORM>%}
%HTML_REPORT{<H1>Stock</H1>
%EXEC_SQL
<P>total: $(ROW_NUM)</P>
%}
"""

DEFAULT_FORMAT_MACRO = """
%DEFINE DATABASE = "SHOP"
%SQL{SELECT name, qty FROM items ORDER BY name%}
%HTML_REPORT{%EXEC_SQL%}
"""

CONTENT_TYPE_MACRO = """
%DEFINE DATABASE = "SHOP"
%DEFINE CONTENT_TYPE = "text/plain"
%SQL{SELECT name FROM items ORDER BY name
%SQL_REPORT{%ROW{$(V_name)
%}%}
%}
%HTML_REPORT{%EXEC_SQL%}
"""


def drain(stream):
    return "".join(stream.chunks)


class TestStreamEqualsBuffered:
    @pytest.mark.parametrize("source", [MACRO, DEFAULT_FORMAT_MACRO],
                             ids=["custom-report", "default-format"])
    def test_report_chunks_join_to_buffered_html(self, shop_engine,
                                                 source):
        macro = parse_macro(source)
        buffered = shop_engine.execute_report(macro)
        stream = shop_engine.execute_report_stream(macro)
        assert drain(stream) == buffered.html

    def test_input_mode_streams_identically(self, shop_engine):
        macro = parse_macro(MACRO)
        buffered = shop_engine.execute_input(macro)
        stream = shop_engine.execute_stream(macro, MacroCommand.INPUT)
        assert drain(stream) == buffered.html

    def test_result_fields_final_after_exhaustion(self, shop_engine):
        macro = parse_macro(MACRO)
        stream = shop_engine.execute_report_stream(macro)
        drain(stream)
        assert stream.result.statements == [
            "SELECT name, qty FROM items ORDER BY name"]
        assert stream.result.ok
        assert stream.result.html == ""  # the chunks were the page

    def test_string_command_accepted(self, shop_engine):
        macro = parse_macro(MACRO)
        stream = shop_engine.execute_stream(macro, "report")
        assert "<H1>Stock</H1>" in drain(stream)


class TestLiveCursor:
    def test_rows_arrive_in_separate_chunks(self, shop_engine):
        """Row template output is emitted per row, not as one string."""
        macro = parse_macro(MACRO)
        chunks = list(shop_engine.execute_report_stream(macro).chunks)
        row_chunks = [c for c in chunks if c.startswith("<LI>")]
        assert len(row_chunks) == 3  # one per item row

    def test_rowcount_correct_at_stream_end(self, shop_engine):
        macro = parse_macro(MACRO)
        page = drain(shop_engine.execute_report_stream(macro))
        assert "total: 3" in page

    def test_streaming_bypasses_query_cache(self, shop_registry):
        cache = QueryResultCache()
        engine = MacroEngine(shop_registry,
                             config=EngineConfig(query_cache=cache))
        macro = parse_macro(MACRO)
        drain(engine.execute_report_stream(macro))
        assert cache.stats()["entries"] == 0
        # ... while the buffered path still populates it
        engine.execute_report(macro)
        assert cache.stats()["entries"] == 1

    def test_abandoned_stream_finishes_the_session(self, shop_engine):
        """Closing mid-page completes the transaction bracket."""
        macro = parse_macro(MACRO)
        stream = shop_engine.execute_report_stream(macro)
        iterator = stream.chunks
        next(iterator)  # header chunk is out, cursor is live
        iterator.close()
        # the engine is reusable immediately; nothing leaks
        result = shop_engine.execute_report(macro)
        assert result.ok


class TestContentType:
    def test_declared_content_type_pinned_before_first_chunk(
            self, shop_engine):
        macro = parse_macro(CONTENT_TYPE_MACRO)
        stream = shop_engine.execute_report_stream(macro)
        next(stream.chunks)
        assert stream.result.content_type == "text/plain"

    def test_default_content_type(self, shop_engine):
        macro = parse_macro(MACRO)
        stream = shop_engine.execute_report_stream(macro)
        next(stream.chunks)
        assert stream.result.content_type == "text/html"


class TestErrors:
    def test_missing_section_raises_on_first_pull(self, shop_engine):
        macro = parse_macro('%DEFINE x = "1"\n%HTML_INPUT{[$(x)]%}')
        stream = shop_engine.execute_report_stream(macro)
        with pytest.raises(MissingSectionError):
            drain(stream)

    def test_sql_error_block_streams_like_buffered(self, shop_engine):
        macro = parse_macro("""
%DEFINE DATABASE = "SHOP"
%SQL{SELECT broken syntax FROM nowhere
%SQL_MESSAGE{
default : "<P>query failed</P>" : continue
%}
%}
%HTML_REPORT{<H1>R</H1>%EXEC_SQL<P>after</P>%}
""")
        buffered = shop_engine.execute_report(macro)
        page = drain(shop_engine.execute_report_stream(macro))
        assert page == buffered.html
        assert "query failed" in page
        assert "after" in page
