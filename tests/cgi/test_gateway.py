"""CGI dispatch and the DB2WWW program's URL contract."""

import pytest

from repro.cgi.environ import CgiEnvironment
from repro.cgi.gateway import (
    CgiGateway,
    Db2WwwProgram,
    FunctionProgram,
    error_response,
)
from repro.cgi.request import CgiRequest, CgiResponse
from repro.core.engine import MacroEngine
from repro.core.macrofile import MacroLibrary
from repro.errors import UnknownCgiProgramError


def db2www_request(path_info: str, query: str = "",
                   method: str = "GET", body: bytes = b"") -> CgiRequest:
    return CgiRequest(
        CgiEnvironment(
            request_method=method,
            script_name="/cgi-bin/db2www",
            path_info=path_info,
            query_string=query,
            content_type=("application/x-www-form-urlencoded"
                          if method == "POST" else ""),
            content_length=len(body)),
        stdin=body)


@pytest.fixture()
def program(shop_registry):
    library = MacroLibrary()
    library.add_text("shop.d2w", """
%DEFINE DATABASE = "SHOP"
%SQL{ SELECT name FROM items WHERE name LIKE '$(q)%' ORDER BY name %}
%HTML_INPUT{<FORM ACTION="/cgi-bin/db2www/shop.d2w/report">
<INPUT NAME="q"></FORM>%}
%HTML_REPORT{<H1>Found</H1>%EXEC_SQL%}
""")
    return Db2WwwProgram(MacroEngine(shop_registry), library)


class TestGatewayDispatch:
    def test_dispatch_by_name(self):
        gateway = CgiGateway()
        gateway.install("echo", FunctionProgram(
            lambda req: CgiResponse(body=b"pong")))
        response = gateway.dispatch("echo", db2www_request("/"))
        assert response.body == b"pong"
        assert "echo" in gateway
        assert gateway.names() == ["echo"]

    def test_unknown_program(self):
        with pytest.raises(UnknownCgiProgramError):
            CgiGateway().dispatch("ghost", db2www_request("/"))

    def test_program_exception_becomes_500(self):
        gateway = CgiGateway()

        def crash(request):
            raise RuntimeError("kaboom")

        gateway.install("crash", FunctionProgram(crash))
        response = gateway.dispatch("crash", db2www_request("/"))
        assert response.status == 500
        assert b"kaboom" in response.body

    def test_error_response_escapes_detail(self):
        response = error_response(500, "Oops", "<script>bad</script>")
        assert b"&lt;script&gt;" in response.body


class TestDb2WwwProgram:
    def test_input_mode(self, program):
        response = program.run(db2www_request("/shop.d2w/input"))
        assert response.status == 200
        assert b"<FORM" in response.body

    def test_report_mode_get(self, program):
        response = program.run(
            db2www_request("/shop.d2w/report", query="q=b"))
        assert b"bikes" in response.body

    def test_report_mode_post(self, program):
        response = program.run(db2www_request(
            "/shop.d2w/report", method="POST", body=b"q=h"))
        assert b"helmets" in response.body

    def test_unknown_macro_is_404(self, program):
        response = program.run(db2www_request("/ghost.d2w/input"))
        assert response.status == 404

    def test_traversal_name_is_404(self, program):
        response = program.run(
            db2www_request("/..%2Fetc%2Fpasswd/input"))
        assert response.status == 404

    def test_bad_command_is_400(self, program):
        response = program.run(db2www_request("/shop.d2w/destroy"))
        assert response.status == 400

    def test_wrong_path_shape_is_400(self, program):
        assert program.run(db2www_request("/shop.d2w")).status == 400
        assert program.run(db2www_request("/a/b/c")).status == 400

    def test_macro_execution_error_is_500(self, shop_registry):
        library = MacroLibrary()
        library.add_text("broken.d2w", "%HTML_REPORT{no input section%}")
        program = Db2WwwProgram(MacroEngine(shop_registry), library)
        response = program.run(db2www_request("/broken.d2w/input"))
        assert response.status == 500
        assert b"MissingSectionError" in response.body

    def test_content_type_carries_charset(self, program):
        response = program.run(db2www_request("/shop.d2w/input"))
        assert response.content_type == "text/html; charset=utf-8"
