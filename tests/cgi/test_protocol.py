"""CGI environment, request/response objects, and path splitting."""

import pytest

from repro.cgi.environ import CgiEnvironment, split_cgi_path
from repro.cgi.request import CgiRequest, CgiResponse
from repro.errors import CgiProtocolError


class TestEnvironment:
    def test_to_dict_core_fields(self):
        env = CgiEnvironment(
            request_method="POST",
            script_name="/cgi-bin/db2www",
            path_info="/urlquery.d2w/report",
            query_string="a=1",
            content_type="application/x-www-form-urlencoded",
            content_length=10,
            http_headers={"User-Agent": "test"},
        ).to_dict()
        assert env["GATEWAY_INTERFACE"] == "CGI/1.1"
        assert env["REQUEST_METHOD"] == "POST"
        assert env["PATH_INFO"] == "/urlquery.d2w/report"
        assert env["QUERY_STRING"] == "a=1"
        assert env["CONTENT_LENGTH"] == "10"
        assert env["HTTP_USER_AGENT"] == "test"

    def test_roundtrip_through_dict(self):
        original = CgiEnvironment(
            request_method="POST", script_name="/cgi-bin/x",
            path_info="/m/report", query_string="q=1",
            content_type="text/plain", content_length=5,
            server_name="www.example.com", server_port=8080,
            remote_addr="10.1.2.3",
            http_headers={"Accept-Language": "fr"})
        rebuilt = CgiEnvironment.from_dict(original.to_dict())
        assert rebuilt == original

    def test_get_has_no_content_fields(self):
        env = CgiEnvironment().to_dict()
        assert "CONTENT_TYPE" not in env
        assert "CONTENT_LENGTH" not in env


class TestPathSplitting:
    def test_db2www_url(self):
        script, program, path_info = split_cgi_path(
            "/cgi-bin/db2www/urlquery.d2w/report")
        assert script == "/cgi-bin/db2www"
        assert program == "db2www"
        assert path_info == "/urlquery.d2w/report"

    def test_program_without_extra_path(self):
        script, program, path_info = split_cgi_path("/cgi-bin/prog")
        assert (script, program, path_info) == \
            ("/cgi-bin/prog", "prog", "")

    def test_not_under_prefix(self):
        with pytest.raises(ValueError):
            split_cgi_path("/pages/x.html")

    def test_empty_program(self):
        with pytest.raises(ValueError):
            split_cgi_path("/cgi-bin/")


class TestRequestInputs:
    def test_get_inputs_from_query_string(self):
        request = CgiRequest(CgiEnvironment(
            request_method="GET", query_string="a=1&a=2&b=x"))
        assert request.input_pairs() == [("a", "1"), ("a", "2"),
                                         ("b", "x")]

    def test_post_inputs_from_stdin(self):
        request = CgiRequest(
            CgiEnvironment(
                request_method="POST",
                content_type="application/x-www-form-urlencoded",
                content_length=7),
            stdin=b"a=1&b=2")
        assert request.input_pairs() == [("a", "1"), ("b", "2")]

    def test_post_merges_query_string_first(self):
        # Appendix A allows ACTION URLs with ?name=val on a POST form.
        request = CgiRequest(
            CgiEnvironment(request_method="POST", query_string="pre=0",
                           content_type="application/x-www-form-urlencoded"),
            stdin=b"a=1")
        assert request.input_pairs() == [("pre", "0"), ("a", "1")]

    def test_post_with_other_content_type_ignores_body(self):
        request = CgiRequest(
            CgiEnvironment(request_method="POST",
                           content_type="text/plain"),
            stdin=b"not=form")
        assert request.input_pairs() == []

    def test_path_components(self):
        request = CgiRequest(CgiEnvironment(path_info="/m.d2w/report/"))
        assert request.path_components() == ["m.d2w", "report"]


class TestResponse:
    def test_serialize_adds_content_type(self):
        raw = CgiResponse(body=b"<P>hi</P>").serialize()
        assert raw.startswith(b"Content-Type: text/html\r\n\r\n")
        assert raw.endswith(b"<P>hi</P>")

    def test_serialize_non_200_status(self):
        raw = CgiResponse(status=404, reason="Not Found",
                          body=b"x").serialize()
        assert b"Status: 404 Not Found" in raw

    def test_parse_crlf_and_lf(self):
        for sep in (b"\r\n\r\n", b"\n\n"):
            head = b"Content-Type: text/plain"
            parsed = CgiResponse.parse(head + sep + b"body")
            assert parsed.content_type == "text/plain"
            assert parsed.body == b"body"

    def test_parse_status_header(self):
        parsed = CgiResponse.parse(
            b"Status: 404 Missing\r\nContent-Type: text/html\r\n\r\nx")
        assert parsed.status == 404
        assert parsed.reason == "Missing"

    def test_location_implies_redirect(self):
        parsed = CgiResponse.parse(
            b"Location: http://elsewhere/\r\n\r\n")
        assert parsed.status == 302

    def test_missing_separator_rejected(self):
        with pytest.raises(CgiProtocolError):
            CgiResponse.parse(b"Content-Type: text/html")

    def test_malformed_header_rejected(self):
        with pytest.raises(CgiProtocolError):
            CgiResponse.parse(b"NoColonHere\r\n\r\nbody")

    def test_text_respects_charset(self):
        response = CgiResponse(
            headers=[("Content-Type", "text/html; charset=latin-1")],
            body="café".encode("latin-1"))
        assert response.text == "café"

    def test_serialize_parse_roundtrip(self):
        original = CgiResponse(
            status=403, reason="Forbidden",
            headers=[("Content-Type", "text/html"),
                     ("X-Extra", "1")],
            body=b"<H1>no</H1>")
        parsed = CgiResponse.parse(original.serialize())
        assert parsed.status == 403
        assert parsed.header("X-Extra") == "1"
        assert parsed.body == original.body
