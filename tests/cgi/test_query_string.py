"""The QUERY_STRING codec: RFC 1738 form-urlencoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cgi.query_string import (
    decode_component,
    decode_pairs,
    encode_component,
    encode_pairs,
)


class TestEncoding:
    @pytest.mark.parametrize("text,encoded", [
        ("plain", "plain"),
        ("two words", "two+words"),
        ("a&b=c", "a%26b%3Dc"),
        ("100%", "100%25"),
        ("", ""),
        ("café", "caf%C3%A9"),
        ("a+b", "a%2Bb"),
    ])
    def test_encode_component(self, text, encoded):
        assert encode_component(text) == encoded

    def test_encode_pairs_preserves_order(self):
        pairs = [("b", "2"), ("a", "1"), ("b", "3")]
        assert encode_pairs(pairs) == "b=2&a=1&b=3"


class TestDecoding:
    @pytest.mark.parametrize("encoded,text", [
        ("two+words", "two words"),
        ("a%26b", "a&b"),
        ("caf%C3%A9", "café"),
        ("%41", "A"),
        ("100%", "100%"),           # lenient: bad escape is literal
        ("%zz", "%zz"),
        ("%4", "%4"),
    ])
    def test_decode_component(self, encoded, text):
        assert decode_component(encoded) == text

    def test_decode_pairs_figure3_example(self):
        # The multi-valued DBFIELD of Section 2.2 / Figure 3.
        query = ("SEARCH=&USE_URL=yes&USE_TITLE=yes"
                 "&DBFIELD=title&DBFIELD=desc")
        assert decode_pairs(query) == [
            ("SEARCH", ""),
            ("USE_URL", "yes"),
            ("USE_TITLE", "yes"),
            ("DBFIELD", "title"),
            ("DBFIELD", "desc"),
        ]

    def test_field_without_equals(self):
        assert decode_pairs("flag&x=1") == [("flag", ""), ("x", "1")]

    def test_empty_fields_skipped(self):
        assert decode_pairs("a=1&&b=2&") == [("a", "1"), ("b", "2")]

    def test_empty_query(self):
        assert decode_pairs("") == []

    def test_value_containing_equals(self):
        assert decode_pairs("eq=a%3Db=c") == [("eq", "a=b=c")]


class TestRoundTrip:
    pair_strategy = st.tuples(
        st.text(min_size=1, max_size=12).filter(lambda s: s.strip()),
        st.text(max_size=24),
    )

    @given(st.lists(pair_strategy, max_size=8))
    def test_pairs_roundtrip(self, pairs):
        """decode(encode(pairs)) == pairs for arbitrary names/values."""
        assert decode_pairs(encode_pairs(pairs)) == pairs

    @given(st.text(max_size=40))
    def test_component_roundtrip(self, text):
        assert decode_component(encode_component(text)) == text

    @given(st.text(max_size=40))
    def test_decode_is_total(self, junk):
        """Arbitrary junk never raises (servers must survive anything)."""
        decode_component(junk)
        decode_pairs(junk)
