"""Cost classification: static rules, operator rules, learned profile."""

from dataclasses import dataclass

from repro.overload.classify import (
    CACHED,
    HEAVY,
    INTERACTIVE,
    UNCLASSIFIED,
    LatencyProfiler,
    RequestClassifier,
)


@dataclass
class FakeRequest:
    path: str
    query: str = ""
    method: str = "GET"


class TestStaticRules:
    def test_non_cgi_paths_are_cached_reads(self):
        classifier = RequestClassifier()
        for path in ("/", "/index.html", "/metrics", "/statusz"):
            _, cls = classifier.classify(FakeRequest(path))
            assert cls == CACHED, path

    def test_input_mode_is_interactive(self):
        classifier = RequestClassifier()
        _, cls = classifier.classify(
            FakeRequest("/cgi-bin/db2www/urlquery.d2w/input"))
        assert cls == INTERACTIVE

    def test_fresh_report_is_unclassified(self):
        # Unknown queries must prove themselves cheap: the shedder
        # drops unclassified traffic before interactive traffic.
        classifier = RequestClassifier()
        _, cls = classifier.classify(
            FakeRequest("/cgi-bin/db2www/urlquery.d2w/report",
                        query="SEARCH=ib"))
        assert cls == UNCLASSIFIED


class TestOperatorRules:
    def test_substring_rule_wins_over_static(self):
        classifier = RequestClassifier(
            rules=[("/report", HEAVY)])
        _, cls = classifier.classify(
            FakeRequest("/cgi-bin/db2www/urlquery.d2w/report"))
        assert cls == HEAVY

    def test_first_matching_rule_wins(self):
        classifier = RequestClassifier(
            rules=[("SEARCH=", INTERACTIVE), ("/report", HEAVY)])
        _, cls = classifier.classify(
            FakeRequest("/cgi-bin/x/report", query="SEARCH=ib"))
        assert cls == INTERACTIVE

    def test_bad_rule_class_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            RequestClassifier(rules=[("/x", "enormous")])


class TestProbe:
    def test_probe_answers_before_everything(self):
        classifier = RequestClassifier(
            rules=[("/report", HEAVY)],
            probe=lambda request: CACHED)
        _, cls = classifier.classify(FakeRequest("/cgi-bin/x/report"))
        assert cls == CACHED

    def test_probe_abstains_with_none(self):
        classifier = RequestClassifier(probe=lambda request: None)
        _, cls = classifier.classify(FakeRequest("/index.html"))
        assert cls == CACHED


class TestLearnedProfile:
    def test_repeated_fast_requests_become_cached(self):
        # The practical query-cache probe: a cache hit IS a
        # sub-millisecond observation.
        classifier = RequestClassifier()
        request = FakeRequest("/cgi-bin/x/report", query="SEARCH=ib")
        key, cls = classifier.classify(request)
        assert cls == UNCLASSIFIED
        for _ in range(3):
            classifier.observe(key, 0.4)
        _, cls = classifier.classify(request)
        assert cls == CACHED

    def test_slow_requests_become_heavy(self):
        classifier = RequestClassifier()
        request = FakeRequest("/cgi-bin/x/report", query="SEARCH=")
        key, _ = classifier.classify(request)
        for _ in range(3):
            classifier.observe(key, 400.0)
        _, cls = classifier.classify(request)
        assert cls == HEAVY

    def test_needs_min_samples_before_answering(self):
        profiler = LatencyProfiler(min_samples=3)
        profiler.observe("k", 1.0)
        profiler.observe("k", 1.0)
        assert profiler.classify("k") is None
        profiler.observe("k", 1.0)
        assert profiler.classify("k") == CACHED

    def test_profile_is_bounded(self):
        profiler = LatencyProfiler(max_keys=10, min_samples=1)
        for i in range(50):
            profiler.observe(f"key-{i}", 1.0)
        assert len(profiler) <= 10

    def test_key_includes_query_string(self):
        classifier = RequestClassifier()
        a = classifier.key_for(FakeRequest("/r", query="SEARCH=ib"))
        b = classifier.key_for(FakeRequest("/r", query="SEARCH="))
        assert a != b
