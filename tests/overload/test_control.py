"""The admission controller: queue, WFQ, eviction, AIMD, deadlines."""

import threading

import pytest

from repro.errors import DeadlineExceededError, OverloadShedError
from repro.obs.metrics import MetricsRegistry
from repro.overload.classify import (
    CACHED,
    HEAVY,
    INTERACTIVE,
)
from repro.overload.control import OverloadController


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeDeadline:
    """Duck-typed stand-in for resilience.deadline.Deadline."""

    def __init__(self, remaining: float = 5.0):
        self._remaining = remaining

    @property
    def expired(self) -> bool:
        return self._remaining <= 0.0

    def remaining(self) -> float:
        return max(0.0, self._remaining)

    def expire(self) -> None:
        self._remaining = 0.0


def controller(**kwargs) -> OverloadController:
    kwargs.setdefault("metrics", MetricsRegistry())
    return OverloadController(**kwargs)


class TestAdmission:
    def test_fast_path_under_capacity(self):
        c = controller(max_concurrent=2)
        a = c.admit(cost_class=INTERACTIVE, client_key="x")
        b = c.admit(cost_class=INTERACTIVE, client_key="y")
        assert a.queued_ms == 0.0 and b.queued_ms == 0.0
        assert c.stats()["inflight"] == 2
        c.release(a)
        c.release(b)
        assert c.stats()["inflight"] == 0
        assert c.stats()["admitted"] == 2

    def test_release_is_idempotent(self):
        c = controller(max_concurrent=1)
        ticket = c.admit(cost_class=CACHED, client_key="x")
        c.release(ticket)
        c.release(ticket)  # double release must not corrupt inflight
        assert c.stats()["inflight"] == 0

    def test_expired_deadline_rejected_before_any_work(self):
        c = controller(max_concurrent=4)
        dead = FakeDeadline(remaining=0.0)
        with pytest.raises(DeadlineExceededError):
            c.admit(cost_class=INTERACTIVE, client_key="x",
                    deadline=dead)
        assert c.stats()["inflight"] == 0

    def test_queue_timeout_sheds_with_honest_error(self):
        c = controller(max_concurrent=1, queue_limit=4,
                       max_queue_wait=0.05)
        holder = c.admit(cost_class=INTERACTIVE, client_key="a")
        with pytest.raises(OverloadShedError) as info:
            c.admit(cost_class=INTERACTIVE, client_key="b")
        assert "queue_timeout" in str(info.value)
        assert info.value.retry_after >= 0.0
        assert info.value.cost_class == INTERACTIVE
        c.release(holder)
        assert c.metrics.counter(
            "overload_shed_queue_timeout_total").value == 1


class TestQueueing:
    def test_released_slot_promotes_queued_waiter(self):
        c = controller(max_concurrent=1, queue_limit=4,
                       max_queue_wait=5.0)
        holder = c.admit(cost_class=INTERACTIVE, client_key="a")
        admitted = []

        def waiter():
            ticket = c.admit(cost_class=INTERACTIVE, client_key="b")
            admitted.append(ticket)
            c.release(ticket)

        thread = threading.Thread(target=waiter)
        thread.start()
        _wait_for(lambda: c.stats()["queue_depth"] == 1)
        c.release(holder)
        thread.join(timeout=5.0)
        assert len(admitted) == 1
        assert admitted[0].queued_ms >= 0.0
        assert c.stats()["queued"] == 1

    def test_wfq_interleaves_clients(self):
        """A burst from one client must not starve a newcomer."""
        c = controller(max_concurrent=1, queue_limit=8,
                       max_queue_wait=10.0)
        holder = c.admit(cost_class=INTERACTIVE, client_key="seed")
        order = []
        lock = threading.Lock()

        def client(key):
            ticket = c.admit(cost_class=INTERACTIVE, client_key=key)
            with lock:
                order.append(key)
            c.release(ticket)

        # Three queued requests from the chatty client first...
        chatty = [threading.Thread(target=client, args=("chatty",))
                  for _ in range(3)]
        for thread in chatty:
            thread.start()
            _wait_for(lambda n=len(order): c.stats()["queue_depth"]
                      >= chatty.index(thread) + 1)
        # ...then one from a fresh client.
        fresh = threading.Thread(target=client, args=("fresh",))
        fresh.start()
        _wait_for(lambda: c.stats()["queue_depth"] == 4)
        c.release(holder)
        for thread in chatty:
            thread.join(timeout=5.0)
        fresh.join(timeout=5.0)
        # Virtual finish times: chatty's 2nd and 3rd requests finish
        # after fresh's 1st — the newcomer is served 2nd at worst.
        assert order.index("fresh") <= 1, order

    def test_full_queue_evicts_cheaper_class_for_pricier_arrival(self):
        c = controller(max_concurrent=1, queue_limit=1,
                       max_queue_wait=5.0)
        holder = c.admit(cost_class=INTERACTIVE, client_key="a")
        outcomes = {}

        def heavy_waiter():
            try:
                ticket = c.admit(cost_class=HEAVY, client_key="b")
                outcomes["heavy"] = "admitted"
                c.release(ticket)
            except OverloadShedError:
                outcomes["heavy"] = "shed"

        def cached_waiter():
            try:
                ticket = c.admit(cost_class=CACHED, client_key="c")
                outcomes["cached"] = "admitted"
                c.release(ticket)
            except OverloadShedError:
                outcomes["cached"] = "shed"

        heavy = threading.Thread(target=heavy_waiter)
        heavy.start()
        _wait_for(lambda: c.stats()["queue_depth"] == 1)
        cached = threading.Thread(target=cached_waiter)
        cached.start()
        heavy.join(timeout=5.0)  # evicted as soon as cached arrives
        _wait_for(lambda: c.stats()["queue_depth"] == 1)
        c.release(holder)
        cached.join(timeout=5.0)
        assert outcomes == {"heavy": "shed", "cached": "admitted"}
        assert c.metrics.counter(
            "overload_queue_evictions_total").value == 1

    def test_full_queue_sheds_arrival_when_nothing_cheaper(self):
        c = controller(max_concurrent=1, queue_limit=1,
                       max_queue_wait=5.0)
        holder = c.admit(cost_class=INTERACTIVE, client_key="a")
        started = threading.Event()
        done = threading.Event()

        def cached_waiter():
            ticket = c.admit(cost_class=CACHED, client_key="b")
            started.set()
            c.release(ticket)
            done.set()

        thread = threading.Thread(target=cached_waiter)
        thread.start()
        _wait_for(lambda: c.stats()["queue_depth"] == 1)
        # A heavy arrival cannot displace the queued cached read.
        with pytest.raises(OverloadShedError) as info:
            c.admit(cost_class=HEAVY, client_key="c")
        assert "queue_full" in str(info.value)
        c.release(holder)
        thread.join(timeout=5.0)
        assert done.is_set()


class TestDeadlinesInQueue:
    def test_expired_waiter_shed_at_promotion_for_free(self):
        c = controller(max_concurrent=1, queue_limit=4,
                       max_queue_wait=10.0)
        holder = c.admit(cost_class=INTERACTIVE, client_key="a")
        dead = FakeDeadline(remaining=5.0)
        raised = []

        def doomed():
            try:
                c.admit(cost_class=INTERACTIVE, client_key="b",
                        deadline=dead)
            except DeadlineExceededError as exc:
                raised.append(exc)

        thread = threading.Thread(target=doomed)
        thread.start()
        _wait_for(lambda: c.stats()["queue_depth"] == 1)
        dead.expire()
        c.release(holder)  # promotion finds the corpse, skips it
        thread.join(timeout=5.0)
        assert len(raised) == 1
        stats = c.stats()
        assert stats["expired_in_queue"] == 1
        assert stats["inflight"] == 0  # the slot was NOT wasted on it


class TestAimdShedder:
    def _breach(self, c, clk, *, count=10, service=0.3):
        """One window of interactive traffic + a tick.

        Once the interactive admit rate has dropped below 1.0 some of
        these admits are themselves rate-shed — that is the controller
        working, not a test failure.
        """
        for _ in range(count):
            try:
                ticket = c.admit(cost_class=INTERACTIVE,
                                 client_key="x")
            except OverloadShedError:
                continue
            clk.advance(service)
            c.release(ticket)
        clk.advance(c.tick_interval + 0.01)
        probe = c.admit(cost_class=CACHED, client_key="probe")
        c.release(probe)

    def test_slo_breach_halves_deferrable_rate_first(self):
        clk = FakeClock()
        c = controller(max_concurrent=4, queue_limit=8,
                       interactive_slo_ms=100.0, tick_interval=10.0,
                       clock=clk)
        self._breach(c, clk)
        stats = c.stats()
        assert stats["admit_rate_deferrable"] == pytest.approx(0.5)
        assert stats["admit_rate_interactive"] == pytest.approx(1.0)

    def test_sustained_breach_reaches_floor_then_hits_interactive(self):
        clk = FakeClock()
        c = controller(max_concurrent=4, queue_limit=8,
                       interactive_slo_ms=100.0, tick_interval=10.0,
                       clock=clk)
        for _ in range(6):  # 1.0 → .5 → .25 → .125 → .0625 → .05 floor
            self._breach(c, clk)
        stats = c.stats()
        assert stats["admit_rate_deferrable"] == pytest.approx(0.05)
        assert stats["admit_rate_interactive"] < 1.0

    def test_healthy_windows_recover_interactive_first(self):
        clk = FakeClock()
        c = controller(max_concurrent=4, queue_limit=8,
                       interactive_slo_ms=100.0, tick_interval=10.0,
                       clock=clk)
        for _ in range(8):
            self._breach(c, clk)
        breached = c.stats()
        assert breached["admit_rate_interactive"] < 1.0
        # Fast traffic: p99 well under the SLO's healthy fraction.
        for _ in range(12):
            self._breach(c, clk, service=0.001)
        recovered = c.stats()
        assert recovered["admit_rate_interactive"] == pytest.approx(1.0)
        assert recovered["admit_rate_deferrable"] \
            > breached["admit_rate_deferrable"]

    def test_floor_rate_sheds_deferrable_traffic_probabilistically(self):
        clk = FakeClock()
        c = controller(max_concurrent=4, queue_limit=8,
                       interactive_slo_ms=100.0, tick_interval=10.0,
                       seed=7, clock=clk)
        for _ in range(6):
            self._breach(c, clk)
        shed = 0
        for _ in range(40):
            try:
                ticket = c.admit(cost_class=HEAVY, client_key="h")
            except OverloadShedError as exc:
                assert exc.cost_class == HEAVY
                shed += 1
            else:
                c.release(ticket)
        assert shed > 30  # admit rate is 0.05: nearly everything drops
        assert c.metrics.counter(
            "overload_shed_rate_total").value == shed

    def test_cached_reads_never_rate_shed(self):
        clk = FakeClock()
        c = controller(max_concurrent=4, queue_limit=8,
                       interactive_slo_ms=100.0, tick_interval=10.0,
                       seed=7, clock=clk)
        for _ in range(10):
            self._breach(c, clk)
        for _ in range(50):  # refusing microseconds saves nothing
            c.release(c.admit(cost_class=CACHED, client_key="c"))


class TestRetryAfterHonesty:
    def test_hint_tracks_queue_depth_over_service_rate(self):
        clk = FakeClock()
        c = controller(max_concurrent=2, queue_limit=8,
                       tick_interval=1.0, clock=clk)
        # Establish a service rate: 10 completions over the window.
        for _ in range(10):
            ticket = c.admit(cost_class=INTERACTIVE, client_key="x")
            clk.advance(0.05)
            c.release(ticket)
        clk.advance(1.0)
        c.release(c.admit(cost_class=CACHED, client_key="tick"))
        rate = c.stats()["service_rate_rps"]
        assert rate > 0.0
        hint = c.retry_after_hint()
        assert hint == pytest.approx(1.0 / rate, rel=0.01)


class TestObservability:
    def test_stats_surface(self):
        c = controller(max_concurrent=3, queue_limit=5,
                       interactive_slo_ms=75.0)
        c.release(c.admit(cost_class=INTERACTIVE, client_key="x"))
        stats = c.stats()
        assert stats["max_concurrent"] == 3
        assert stats["queue_limit"] == 5
        assert stats["slo_ms"] == 75.0
        assert stats["admitted"] == 1
        assert stats["shed"] == 0

    def test_metrics_rendered_on_scrape(self):
        registry = MetricsRegistry()
        c = controller(max_concurrent=2, metrics=registry)
        c.release(c.admit(cost_class=INTERACTIVE, client_key="x"))
        text = registry.render_text()
        assert "overload_admitted_total 1" in text
        assert "overload_inflight 0" in text
        assert "overload_admit_rate_deferrable" in text
        assert "overload_latency_ms_interactive" in text


def _wait_for(predicate, timeout: float = 5.0) -> None:
    import time
    stop = time.monotonic() + timeout
    while time.monotonic() < stop:
        if predicate():
            return
        time.sleep(0.002)
    raise AssertionError("condition not reached in time")
