"""The shared Retry-After semantics (one answer across every 503)."""

import math

import pytest

from repro.overload.retryafter import (
    MAX_RETRY_AFTER,
    clamp_retry_hint,
    queue_retry_hint,
    retry_after_header,
    retry_after_seconds,
)


class TestClampRetryHint:
    def test_positive_hint_passes_through(self):
        assert clamp_retry_hint(6.0) == 6.0
        assert clamp_retry_hint(0.25) == 0.25

    def test_none_yields_default(self):
        assert clamp_retry_hint(None) == 1.0
        assert clamp_retry_hint(None, default=3.5) == 3.5

    @pytest.mark.parametrize("bad", [-0.001, -5.0, math.nan,
                                     math.inf, -math.inf])
    def test_garbage_collapses_to_zero(self, bad):
        assert clamp_retry_hint(bad) == 0.0


class TestRetryAfterSeconds:
    def test_rounds_up_never_down(self):
        # A client told "1" must not retry after 0.4s when the honest
        # estimate was 0.5s.
        assert retry_after_seconds(0.5) == 1
        assert retry_after_seconds(1.2) == 2

    def test_floor_is_one_second(self):
        assert retry_after_seconds(0.0) == 1
        assert retry_after_seconds(None) == 1

    def test_capped(self):
        assert retry_after_seconds(3600.0) == int(MAX_RETRY_AFTER)

    def test_header_is_delta_seconds_text(self):
        assert retry_after_header(2.3) == "3"
        assert retry_after_header(None) == "1"


class TestQueueRetryHint:
    def test_backlog_over_rate(self):
        # 9 waiters + the retrier itself at 5/s → 2 seconds.
        assert queue_retry_hint(9, 5.0) == pytest.approx(2.0)

    def test_unknown_rate_means_no_hint(self):
        assert queue_retry_hint(10, 0.0) is None
        assert queue_retry_hint(10, -1.0) is None
        assert queue_retry_hint(10, math.inf) is None

    def test_empty_queue_still_positive(self):
        hint = queue_retry_hint(0, 10.0)
        assert hint is not None and hint > 0.0
