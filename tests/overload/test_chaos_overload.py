"""Chaos + admission control: faults and shedding compose safely.

The shedder sits in front of the retry/degradation machinery; under
injected database faults every request must still resolve to an honest
status — degraded 200s, shed 503s, expired 504s — never an unhandled
exception or a raw 500.
"""

import pytest

from repro.apps import build_site
from repro.apps import urlquery as urlquery_app
from repro.cgi.query_string import encode_pairs
from repro.core.engine import EngineConfig, MacroEngine
from repro.http.message import HttpRequest
from repro.obs.metrics import MetricsRegistry
from repro.overload.control import OverloadController
from repro.resilience.retry import RetryPolicy
from repro.sql.gateway import DatabaseRegistry
from repro.workloads.generator import UrlQueryWorkload
from repro.workloads.openloop import (
    ArrivalSchedule,
    router_submitter,
    run_open_loop,
)

pytestmark = pytest.mark.chaos


@pytest.fixture()
def chaos_overload_router(fault_spec):
    registry = DatabaseRegistry()
    engine = MacroEngine(registry, config=EngineConfig(
        retry_policy=RetryPolicy(max_attempts=4, base_delay=0.001,
                                 max_delay=0.01),
        degrade_sql_errors=True))
    app = urlquery_app.install(rows=40, registry=registry, engine=engine)
    registry.inject_faults(fault_spec)  # after seeding, like test_chaos
    router = build_site(app.engine, app.library).router
    controller = OverloadController(
        max_concurrent=4, queue_limit=16, max_queue_wait=1.0,
        metrics=MetricsRegistry())
    router.overload = controller
    return router, registry, controller


def _http_request(item) -> HttpRequest:
    query = encode_pairs(list(item.pairs))
    target = f"/cgi-bin/db2www/urlquery.d2w/{item.command}"
    if query:
        target += f"?{query}"
    return HttpRequest.parse(f"GET {target} HTTP/1.0\r\n\r\n".encode())


class TestChaosWithShedder:
    def test_faulty_backend_plus_shedder_never_crashes(
            self, chaos_overload_router):
        router, registry, controller = chaos_overload_router
        workload = UrlQueryWorkload(seed=96)
        requests = [_http_request(item)
                    for item in workload.requests(300)]
        submit = router_submitter(
            router, lambda index: requests[index % len(requests)],
            client_key=lambda index: f"10.0.0.{index % 8}")
        result = run_open_loop(
            submit, ArrivalSchedule.poisson(400.0, 0.75, seed=3),
            workers=16, give_up_after=5.0)
        statuses = result.status_counts
        # 599 = the submit callable raised: an unhandled exception
        # escaped the router/controller stack.
        assert statuses.get(599, 0) == 0
        # 500 = real breakage; chaos must surface as degraded 200s,
        # shed 503s or expired 504s.
        assert statuses.get(500, 0) == 0
        assert statuses.get(200, 0) > 0
        assert registry.resilience_stats()["injected_total"] > 0
        # Every admission was balanced by a release.
        assert controller.stats()["inflight"] == 0
