"""DOM construction with 1996-browser repair rules."""

from hypothesis import given
from hypothesis import strategies as st

from repro.html.parser import parse_html


class TestBasicTree:
    def test_nesting(self):
        doc = parse_html("<HTML><BODY><P>hi</P></BODY></HTML>")
        p = doc.find("p")
        assert p is not None
        assert p.get_text() == "hi"
        assert p.parent.tag == "body"

    def test_title_property(self):
        doc = parse_html("<TITLE>  DB2 WWW   URL Query </TITLE>")
        assert doc.title == "DB2 WWW URL Query"

    def test_attributes_and_case(self):
        doc = parse_html('<FORM METHOD="post" ACTION="/x">')
        form = doc.find("form")
        assert form.get("method") == "post"
        assert form.get("ACTION") == "/x"
        assert form.has_attr("action")

    def test_find_all_multiple_tags(self):
        doc = parse_html("<TD>a</TD><TH>b</TH>")
        assert len(doc.find_all("td", "th")) == 2

    def test_get_text_decodes_entities(self):
        doc = parse_html("<P>Tom &amp; Jerry</P>")
        assert doc.find("p").get_text() == "Tom & Jerry"

    def test_set_attribute(self):
        doc = parse_html("<INPUT NAME=a>")
        element = doc.find("input")
        element.set("value", "x")
        element.set("NAME", "b")
        assert element.get("value") == "x"
        assert element.get("name") == "b"


class TestRepairRules:
    def test_void_elements_take_no_children(self):
        doc = parse_html("<INPUT NAME=a> trailing text")
        input_el = doc.find("input")
        assert input_el.children == []

    def test_unclosed_li_autoclosed_by_sibling(self):
        doc = parse_html("<UL><LI>one<LI>two</UL>")
        items = doc.find_all("li")
        assert [li.get_text() for li in items] == ["one", "two"]
        assert items[0].parent.tag == "ul"

    def test_unclosed_option_sequence(self):
        # The paper's own SELECT markup never closes OPTION.
        doc = parse_html(
            "<SELECT><OPTION VALUE=a>A<OPTION VALUE=b>B</SELECT>")
        options = doc.find_all("option")
        assert len(options) == 2
        assert options[0].get_text().strip() == "A"

    def test_p_closed_by_block_element(self):
        doc = parse_html("<P>para<UL><LI>item</UL>")
        ul = doc.find("ul")
        assert ul.parent.tag != "p"

    def test_p_closed_by_next_p(self):
        doc = parse_html("<P>one<P>two")
        paragraphs = doc.find_all("p")
        assert [p.get_text() for p in paragraphs] == ["one", "two"]

    def test_table_cells_autoclose(self):
        doc = parse_html(
            "<TABLE><TR><TD>a<TD>b<TR><TD>c</TABLE>")
        rows = doc.find_all("tr")
        assert len(rows) == 2
        assert [td.get_text() for td in rows[0].find_all("td")] == \
            ["a", "b"]

    def test_unmatched_end_tag_ignored(self):
        doc = parse_html("<P>text</B></P>")
        assert doc.find("p").get_text() == "text"

    def test_everything_closed_at_eof(self):
        doc = parse_html("<UL><LI><B>deep")
        assert doc.find("b").get_text() == "deep"

    def test_end_ul_closes_open_li(self):
        doc = parse_html("<UL><LI>x</UL><P>after")
        p = doc.find("p")
        assert p.parent.tag == "#document"

    @given(st.text(alphabet="<>/abPUL ", max_size=60))
    def test_parser_total_on_junk(self, junk):
        parse_html(junk)  # must never raise


class TestIterationOrder:
    def test_iter_depth_first(self):
        doc = parse_html("<DIV><P><B>x</B></P><UL></UL></DIV>")
        tags = [el.tag for el in doc.iter()]
        assert tags == ["#document", "div", "p", "b", "ul"]

    def test_child_elements_excludes_text(self):
        doc = parse_html("<DIV>text<P></P>more</DIV>")
        div = doc.find("div")
        assert [c.tag for c in div.child_elements()] == ["p"]
