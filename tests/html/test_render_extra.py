"""Renderer coverage for the remaining period markup."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.html.render import render_markup


class TestDefinitionLists:
    def test_dl_dt_dd_blocks(self):
        out = render_markup(
            "<DL><DT><B>Ada</B> wrote:<DD>hello there</DL>")
        lines = [line for line in out.splitlines() if line]
        assert any("Ada wrote:" in line for line in lines)
        assert any("hello there" in line for line in lines)
        # DT and DD render on separate lines.
        assert lines.index(next(l for l in lines if "Ada" in l)) < \
            lines.index(next(l for l in lines if "hello" in l))


class TestNestedLists:
    def test_nested_ul_indents(self):
        out = render_markup(
            "<UL><LI>outer<UL><LI>inner</UL></UL>")
        outer = next(l for l in out.splitlines() if "outer" in l)
        inner = next(l for l in out.splitlines() if "inner" in l)
        assert len(inner) - len(inner.lstrip()) > \
            len(outer) - len(outer.lstrip())


class TestMiscElements:
    def test_blockquote_is_block(self):
        out = render_markup("before<BLOCKQUOTE>quoted</BLOCKQUOTE>after")
        assert "quoted" in out

    def test_heading_levels_two_and_three(self):
        out = render_markup("<H2>Sub</H2><H3>SubSub</H3>")
        assert "Sub\n---" in out
        assert "SubSub\n------" in out

    def test_empty_document(self):
        assert render_markup("") == ""
        assert render_markup("   \n  ") == ""

    def test_consecutive_blank_lines_collapsed(self):
        out = render_markup("<P>a</P><P></P><P></P><P>b</P>")
        assert "\n\n\n" not in out

    def test_password_renders_like_text_box(self):
        out = render_markup('<INPUT TYPE=password NAME=p>')
        assert "[____________]" in out

    def test_unknown_input_type_labelled(self):
        out = render_markup('<INPUT TYPE=range NAME=r>')
        assert "[range:r]" in out

    @settings(max_examples=150, deadline=None)
    @given(st.text(max_size=150))
    def test_renderer_total_on_arbitrary_markup(self, junk):
        render_markup(junk)  # must never raise


class TestPageObject:
    def test_link_resolution_and_find_all(self):
        from repro.browser.page import Link, Page
        from repro.html.parser import parse_html
        from repro.http.message import HttpResponse
        from repro.http.urls import Url

        url = Url.parse("http://host/apps/index.html")
        html = ('<TITLE>T</TITLE><A HREF="other.html">rel</A>'
                '<A HREF="/abs.html">abs</A><P>x</P>')
        page = Page.build(url, HttpResponse(body=html.encode()),
                          parse_html(html))
        assert [l.text for l in page.links] == ["rel", "abs"]
        assert str(page.links[0].resolve(url)) == \
            "http://host/apps/other.html"
        assert str(page.links[1].resolve(url)) == "http://host/abs.html"
        assert len(page.find_all("a")) == 2
        assert page.title == "T"

    def test_link_lookup_prefers_exact_href(self):
        from repro.browser.page import Link, Page
        from repro.html.parser import parse_html
        from repro.http.message import HttpResponse
        from repro.http.urls import Url

        html = ('<A HREF="/a">go to b</A><A HREF="/b">elsewhere</A>')
        page = Page.build(Url.parse("http://h/"),
                          HttpResponse(body=html.encode()),
                          parse_html(html))
        assert page.link("/b").text == "elsewhere"  # href wins
        assert page.link("go to").href == "/a"      # then text search
