"""The HTML 2.0 form model: extraction, filling, submission pairs."""

import pytest

from repro.html.forms import (
    FormError,
    SelectControl,
    extract_forms,
)
from repro.html.parser import parse_html

FIGURE2_FORM = """
<TITLE>DB2 WWW URL Query</TITLE>
<H1>Query URL Information</H1>
<FORM METHOD="post"
 ACTION="/cgi-bin/db2www/urlquery.d2w/report">
Please enter a search string:
<INPUT TYPE="text" NAME="SEARCH" SIZE=20>
<INPUT TYPE="checkbox" NAME="USE_URL" VALUE="yes" CHECKED> URL<br>
<INPUT TYPE="checkbox" NAME="USE_TITLE" VALUE="yes" CHECKED> Title<br>
<INPUT TYPE="checkbox" NAME="USE_DESC" VALUE="yes">Description
<SELECT NAME="DBFIELD" SIZE=3 MULTIPLE>
<OPTION VALUE="url">URL
<OPTION VALUE="title" SELECTED> Title
<OPTION VALUE="desc">Description
</SELECT>
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="YES"> Yes
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="" CHECKED> No
<INPUT TYPE="submit" VALUE="Submit Query">
<INPUT TYPE="reset" VALUE="Reset Input">
</FORM>
"""


@pytest.fixture()
def form():
    return extract_forms(parse_html(FIGURE2_FORM))[0]


class TestExtraction:
    def test_form_attributes(self, form):
        assert form.method == "POST"
        assert form.action == "/cgi-bin/db2www/urlquery.d2w/report"

    def test_six_input_variables_of_the_paper(self, form):
        # "The form contains six input variables" (Section 2.2).
        assert form.control_names() == [
            "SEARCH", "USE_URL", "USE_TITLE", "USE_DESC", "DBFIELD",
            "SHOWSQL"]

    def test_checkbox_defaults(self, form):
        assert form["USE_URL"].checked
        assert form["USE_TITLE"].checked
        assert not form["USE_DESC"].checked

    def test_select_options(self, form):
        select = form["DBFIELD"]
        assert isinstance(select, SelectControl)
        assert select.multiple
        assert [o.value for o in select.options] == \
            ["url", "title", "desc"]
        assert select.selected_values() == ["title"]

    def test_radio_group(self, form):
        radios = form.all("SHOWSQL")
        assert [r.value for r in radios] == ["YES", ""]
        assert radios[1].checked


class TestFigure3Submission:
    """The paper's exact submitted bindings for Figure 3's selections."""

    def test_submission_matches_paper(self, form):
        form["DBFIELD"].select("desc")  # the user adds Description
        pairs = form.submission_pairs(click="Submit Query")
        # The paper's variable listing: SEARCH="" USE_URL="yes"
        # USE_TITLE="yes" DBFIELD="title" DBFIELD="desc" — USE_DESC and
        # SHOWSQL travel as null/absent.
        assert pairs == [
            ("SEARCH", ""),
            ("USE_URL", "yes"),
            ("USE_TITLE", "yes"),
            ("DBFIELD", "title"),
            ("DBFIELD", "desc"),
            ("SHOWSQL", ""),
        ]


class TestInteraction:
    def test_set_text(self, form):
        form.set("SEARCH", "ib")
        assert ("SEARCH", "ib") in form.submission_pairs()

    def test_uncheck_checkbox(self, form):
        form.uncheck("USE_URL")
        assert all(n != "USE_URL" for n, _ in form.submission_pairs())

    def test_radio_is_exclusive(self, form):
        form.check("SHOWSQL", "YES")
        pairs = [p for p in form.submission_pairs() if p[0] == "SHOWSQL"]
        assert pairs == [("SHOWSQL", "YES")]

    def test_multi_select_accumulates(self, form):
        form["DBFIELD"].select("url")
        values = [v for n, v in form.submission_pairs()
                  if n == "DBFIELD"]
        assert values == ["url", "title"]

    def test_single_select_is_exclusive(self):
        doc = parse_html(
            "<FORM><SELECT NAME=s><OPTION VALUE=a>A"
            "<OPTION VALUE=b>B</SELECT></FORM>")
        form = extract_forms(doc)[0]
        assert form["s"].selected_values() == ["a"]  # first by default
        form["s"].select("b")
        assert form["s"].selected_values() == ["b"]

    def test_set_on_checkbox_raises(self, form):
        with pytest.raises(FormError):
            form.set("USE_URL", "text")

    def test_unknown_control(self, form):
        with pytest.raises(FormError):
            form["GHOST"]
        with pytest.raises(FormError):
            form.check("GHOST")

    def test_unknown_option(self, form):
        with pytest.raises(FormError):
            form["DBFIELD"].select("nope")

    def test_unknown_submit_button(self, form):
        with pytest.raises(FormError):
            form.submission_pairs(click="Launch Missiles")


class TestSubmissionRules:
    def test_hidden_always_submits(self):
        doc = parse_html(
            '<FORM><INPUT TYPE=hidden NAME=h VALUE=1></FORM>')
        assert extract_forms(doc)[0].submission_pairs() == [("h", "1")]

    def test_unnamed_controls_never_submit(self):
        doc = parse_html('<FORM><INPUT TYPE=text VALUE=x></FORM>')
        assert extract_forms(doc)[0].submission_pairs() == []

    def test_checkbox_without_value_submits_on(self):
        doc = parse_html(
            '<FORM><INPUT TYPE=checkbox NAME=c CHECKED></FORM>')
        assert extract_forms(doc)[0].submission_pairs() == [("c", "on")]

    def test_named_submit_only_when_clicked(self):
        doc = parse_html(
            '<FORM><INPUT TYPE=submit NAME=go VALUE=Go>'
            '<INPUT TYPE=submit NAME=stop VALUE=Stop></FORM>')
        form = extract_forms(doc)[0]
        assert form.submission_pairs() == []
        assert form.submission_pairs(click="go") == [("go", "Go")]

    def test_textarea_content_submits(self):
        doc = parse_html(
            "<FORM><TEXTAREA NAME=t>body text</TEXTAREA></FORM>")
        assert extract_forms(doc)[0].submission_pairs() == \
            [("t", "body text")]

    def test_reset_never_submits(self):
        doc = parse_html(
            '<FORM><INPUT TYPE=reset NAME=r VALUE=Reset></FORM>')
        assert extract_forms(doc)[0].submission_pairs() == []

    def test_document_order_preserved(self):
        doc = parse_html(
            '<FORM><INPUT TYPE=text NAME=b VALUE=2>'
            '<INPUT TYPE=hidden NAME=a VALUE=1></FORM>')
        assert [n for n, _ in
                extract_forms(doc)[0].submission_pairs()] == ["b", "a"]

    def test_password_submits(self):
        doc = parse_html(
            '<FORM><INPUT TYPE=password NAME=p VALUE=secret></FORM>')
        form = extract_forms(doc)[0]
        assert form["p"].kind == "password"
        assert form.submission_pairs() == [("p", "secret")]

    def test_multiple_forms_on_page(self):
        doc = parse_html(
            "<FORM ACTION=/a></FORM><FORM ACTION=/b></FORM>")
        forms = extract_forms(doc)
        assert [f.action for f in forms] == ["/a", "/b"]
