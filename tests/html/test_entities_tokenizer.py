"""HTML entities and tokenizer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.html.entities import escape_html, unescape_html
from repro.html.tokenizer import Comment, EndTag, StartTag, Text, tokenize


class TestEntities:
    def test_escape_markup_characters(self):
        assert escape_html('<a href="x">&co</a>') == \
            "&lt;a href=&quot;x&quot;&gt;&amp;co&lt;/a&gt;"

    def test_unescape_named(self):
        assert unescape_html("Tom &amp; Jerry &lt;3") == "Tom & Jerry <3"

    def test_unescape_numeric(self):
        assert unescape_html("&#65;&#x42;") == "AB"

    def test_unknown_entity_left_alone(self):
        assert unescape_html("&bogus; &nosemicolon") == \
            "&bogus; &nosemicolon"

    @given(st.text(max_size=60))
    def test_escape_unescape_roundtrip(self, text):
        assert unescape_html(escape_html(text)) == text

    @given(st.text(max_size=60))
    def test_escaped_output_has_no_raw_markup(self, text):
        escaped = escape_html(text)
        assert "<" not in escaped and ">" not in escaped
        assert '"' not in escaped

    @given(st.text(max_size=60))
    def test_unescape_total(self, junk):
        unescape_html(junk)  # must never raise


class TestTokenizer:
    def tokens(self, markup):
        return list(tokenize(markup))

    def test_simple_element(self):
        assert self.tokens("<P>hi</P>") == [
            StartTag("p"), Text("hi"), EndTag("p")]

    def test_attributes_quoted_and_not(self):
        (tag,) = self.tokens(
            '<INPUT TYPE="text" NAME=SEARCH SIZE=20 CHECKED>')
        assert tag.get("type") == "text"
        assert tag.get("name") == "SEARCH"
        assert tag.get("size") == "20"
        assert tag.has("checked")
        assert tag.get("checked") == ""

    def test_single_quoted_attribute(self):
        (tag,) = self.tokens("<A HREF='x y'>")
        assert tag.get("href") == "x y"

    def test_attribute_entities_decoded(self):
        (tag,) = self.tokens('<A HREF="a&amp;b">')
        assert tag.get("href") == "a&b"

    def test_comment(self):
        assert self.tokens("<!-- note -->") == [Comment(" note ")]

    def test_declaration_as_comment(self):
        tokens = self.tokens("<!DOCTYPE html><P>")
        assert isinstance(tokens[0], Comment)

    def test_stray_lt_is_text(self):
        tokens = self.tokens("a < b")
        assert "".join(t.data for t in tokens
                       if isinstance(t, Text)) == "a < b"

    def test_self_closing(self):
        (tag,) = self.tokens("<BR/>")
        assert tag.self_closing

    def test_unclosed_tag_at_eof(self):
        tokens = self.tokens('<INPUT NAME="x"')
        assert tokens[0].get("name") == "x"

    def test_end_tag_with_junk(self):
        tokens = self.tokens("</p extra>x")
        assert tokens[0] == EndTag("p")

    def test_tag_names_lowercased(self):
        (tag,) = self.tokens("<SeLeCt>")
        assert tag.name == "select"

    @given(st.text(max_size=80))
    def test_tokenizer_total(self, junk):
        """Arbitrary markup never raises and loses no visible text."""
        list(tokenize(junk))
