"""Text-mode rendering and the programmatic HTML builder."""

from repro.html.builder import (
    HtmlWriter,
    attributes,
    element,
    page,
    text,
)
from repro.html.render import render_markup


class TestRenderer:
    def test_heading_underlined(self):
        out = render_markup("<H1>Query URL Information</H1>")
        lines = out.splitlines()
        assert lines[0] == "Query URL Information"
        assert lines[1] == "=" * len(lines[0])

    def test_list_items_bulleted(self):
        out = render_markup("<UL><LI>one<LI>two</UL>")
        assert "* one" in out
        assert "* two" in out

    def test_checkbox_states(self):
        out = render_markup(
            '<INPUT TYPE=checkbox CHECKED> URL '
            '<INPUT TYPE=checkbox> Description')
        assert "[x] URL" in out
        assert "[ ] Description" in out

    def test_radio_states(self):
        out = render_markup(
            '<INPUT TYPE=radio NAME=s> Yes '
            '<INPUT TYPE=radio NAME=s CHECKED> No')
        assert "( ) Yes" in out
        assert "(o) No" in out

    def test_text_input_shows_value(self):
        out = render_markup('<INPUT TYPE=text NAME=q VALUE="ib">')
        assert "[ib]" in out

    def test_submit_button(self):
        out = render_markup('<INPUT TYPE=submit VALUE="Submit Query">')
        assert "< Submit Query >" in out

    def test_select_marks_selected(self):
        out = render_markup(
            "<SELECT><OPTION SELECTED>Title<OPTION>Description"
            "</SELECT>")
        assert "> Title" in out
        assert "  Description" in out.replace(">", " ", 1) or \
            "Description" in out

    def test_hyperlink_shows_target(self):
        out = render_markup('<A HREF="http://x/">IBM</A>')
        assert "<IBM>[http://x/]" in out

    def test_table_alignment(self):
        out = render_markup(
            "<TABLE><TR><TH>name</TH><TH>qty</TH></TR>"
            "<TR><TD>bikes</TD><TD>4</TD></TR></TABLE>")
        assert "| name  | qty |" in out
        assert "| bikes | 4   |" in out

    def test_whitespace_collapsed(self):
        out = render_markup("<P>lots    of\n\n   space</P>")
        assert "lots of space" in out

    def test_pre_preserves_lines(self):
        out = render_markup("<PRE>line1\nline2</PRE>")
        assert "line1\nline2" in out

    def test_hidden_input_invisible(self):
        out = render_markup('<INPUT TYPE=hidden NAME=h VALUE=s3cret>')
        assert "s3cret" not in out

    def test_image_alt_text(self):
        out = render_markup('<IMG SRC="/x.gif" ALT="DB2 WWW">')
        assert "[image: DB2 WWW]" in out

    def test_head_content_skipped(self):
        out = render_markup(
            "<HEAD><TITLE>T</TITLE></HEAD><BODY><P>visible</P></BODY>")
        assert "visible" in out
        assert "T\n" not in out

    def test_hr_rendered(self):
        assert "---" in render_markup("<HR>")

    def test_br_breaks_line(self):
        out = render_markup("one<BR>two")
        assert out.splitlines()[0].strip() == "one"
        assert out.splitlines()[1].strip() == "two"


class TestBuilder:
    def test_element_with_attrs(self):
        assert element("input", type_="text", name="q", size=20) == \
            '<INPUT TYPE="text" NAME="q" SIZE="20">'

    def test_bare_attribute(self):
        assert element("input", type_="checkbox", checked=True) == \
            '<INPUT TYPE="checkbox" CHECKED>'

    def test_false_and_none_attrs_skipped(self):
        assert element("input", checked=False, value=None) == "<INPUT>"

    def test_non_void_wraps_children(self):
        assert element("p", "a", "b") == "<P>ab</P>"

    def test_attribute_values_escaped(self):
        assert 'VALUE="a&quot;b"' in element("input", value='a"b')

    def test_text_escapes(self):
        assert text("<&>") == "&lt;&amp;&gt;"

    def test_page_shape(self):
        html = page("Ti<tle", element("h1", text("Hello")))
        assert "<TITLE>Ti&lt;tle</TITLE>" in html
        assert "<H1>Hello</H1>" in html
        assert html.startswith("<HTML>")

    def test_attributes_helper_underscore_to_dash(self):
        assert attributes(http_equiv="refresh") == \
            ' HTTP-EQUIV="refresh"'

    def test_writer_accumulates(self):
        writer = HtmlWriter()
        writer.print("<P>one</P>")
        writer.print_text("two & three")
        assert writer.getvalue() == \
            "<P>one</P>\ntwo &amp; three\n"
