"""Property-based checks on the form model.

The simulated browser is the measurement instrument for half the
experiments, so its submission semantics get property-level scrutiny:
generated forms must round-trip through markup → parse → fill → encode
with no invented or lost pairs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgi.query_string import decode_pairs, encode_pairs
from repro.html.builder import element
from repro.html.forms import extract_forms
from repro.html.parser import parse_html

names = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)
values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    max_size=20)


@st.composite
def text_forms(draw):
    """A form of 1-6 text inputs with unique names and given values."""
    # draw the unique names as one bounded list: redrawing on collision
    # in a loop occasionally burned enough entropy to trip Hypothesis's
    # data_too_large health check and flake the suite
    field_names = draw(st.lists(names, min_size=1, max_size=6,
                                unique=True))
    fields = {name: draw(values) for name in field_names}
    markup = "".join(
        element("input", type_="text", name=name, value=value)
        for name, value in fields.items())
    return f"<FORM>{markup}</FORM>", fields


class TestTextFormRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(text_forms())
    def test_markup_to_submission_preserves_fields(self, form_spec):
        markup, fields = form_spec
        form = extract_forms(parse_html(markup))[0]
        pairs = form.submission_pairs()
        assert dict(pairs) == fields
        assert len(pairs) == len(fields)

    @settings(max_examples=100, deadline=None)
    @given(text_forms(), values)
    def test_fill_then_submit_reflects_the_fill(self, form_spec,
                                                new_value):
        markup, fields = form_spec
        form = extract_forms(parse_html(markup))[0]
        target = next(iter(fields))
        form.set(target, new_value)
        submitted = dict(form.submission_pairs())
        assert submitted[target] == new_value
        for name, value in fields.items():
            if name != target:
                assert submitted[name] == value

    @settings(max_examples=100, deadline=None)
    @given(text_forms())
    def test_submission_survives_wire_encoding(self, form_spec):
        markup, fields = form_spec
        form = extract_forms(parse_html(markup))[0]
        pairs = form.submission_pairs()
        assert decode_pairs(encode_pairs(pairs)) == pairs


class TestCheckboxProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=8))
    def test_only_checked_boxes_submit(self, checked_flags):
        markup = "".join(
            element("input", type_="checkbox", name=f"c{i}",
                    value="yes", checked=flag)
            for i, flag in enumerate(checked_flags))
        form = extract_forms(parse_html(f"<FORM>{markup}</FORM>"))[0]
        submitted = {name for name, _ in form.submission_pairs()}
        expected = {f"c{i}" for i, flag in enumerate(checked_flags)
                    if flag}
        assert submitted == expected

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=2, max_value=6),
           st.data())
    def test_radio_group_submits_at_most_one(self, size, data):
        markup = "".join(
            element("input", type_="radio", name="group",
                    value=f"v{i}") for i in range(size))
        form = extract_forms(parse_html(f"<FORM>{markup}</FORM>"))[0]
        picks = data.draw(st.lists(
            st.integers(min_value=0, max_value=size - 1), max_size=4))
        for pick in picks:
            form.check("group", f"v{pick}")
        pairs = [p for p in form.submission_pairs()
                 if p[0] == "group"]
        assert len(pairs) <= 1
        if picks:
            assert pairs == [("group", f"v{picks[-1]}")]
