"""Trace propagation across the app-server boundary.

The request frame carries the dispatcher's trace id (``REPRO_TRACE_ID``
in the CGI environment); the worker process runs its own span tree under
that id and ships it home in the RESPONSE frame, where the dispatcher
grafts it into the live request trace.  One request, one trace id,
spans from two processes.
"""

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.datasets import seed_urldb
from repro.appserver.dispatcher import AppServerDispatcher
from repro.appserver.remote import TcpPoolDispatcher, WorkerPoolDaemon
from repro.cgi.gateway import CgiGateway
from repro.http.message import HttpRequest
from repro.http.router import Router
from repro.obs.trace import TRACER
from repro.sql.connection import Connection

REPORT_TARGET = ("/cgi-bin/db2www/urlquery.d2w/report"
                 "?SEARCH=ib&USE_URL=yes&DBFIELDS=title")


@pytest.fixture(scope="module")
def deployment_env(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("appserver-trace")
    db_path = tmp_path / "urldb.sqlite"
    conn = Connection(str(db_path))
    seed_urldb(conn, 20)
    conn.close()
    macro_dir = tmp_path / "macros"
    macro_dir.mkdir()
    (macro_dir / "urlquery.d2w").write_text(
        urlquery_app.URLQUERY_MACRO, encoding="utf-8")
    return {
        "REPRO_MACRO_DIR": str(macro_dir),
        "REPRO_DATABASE_URLDB": str(db_path),
        "REPRO_QUERY_CACHE": "32",
        "REPRO_POOL_SIZE": "1",
        # What `repro serve --gateway appserver` sets: workers trace
        # (their spans must exist to ship home) but have no sinks of
        # their own — the serving process logs the stitched trace.
        "REPRO_TRACE": "1",
    }


@pytest.fixture(scope="module")
def router(deployment_env):
    dispatcher = AppServerDispatcher(deployment_env, workers=1)
    gateway = CgiGateway()
    gateway.install("db2www", dispatcher)
    yield Router(gateway=gateway)
    dispatcher.shutdown()


@pytest.fixture()
def traced():
    captured = []
    TRACER.enable()
    TRACER.add_sink(captured.append)
    yield captured
    TRACER.disable()
    TRACER.clear_sinks()


def worker_subtree(root):
    spans = [span for span in root.walk() if span.name == "worker"]
    assert len(spans) == 1
    return spans[0]


class TestWorkerSpansJoinTheRequestTrace:
    def test_one_trace_id_across_both_processes(self, router, traced):
        response = router.handle(HttpRequest(target=REPORT_TARGET),
                                 trace_id="trace-appserver-1")
        response.drain()
        assert response.status == 200
        assert response.headers.get("X-Trace-Id") == "trace-appserver-1"
        (root,) = traced
        assert root.trace_id == "trace-appserver-1"
        # every span of the tree — local and grafted — shares the id
        assert {span.trace_id for span in root.walk()} == \
            {"trace-appserver-1"}
        worker = worker_subtree(root)
        assert worker.remote is True
        assert worker.attrs["worker_id"] == 0
        assert worker.attrs["status"] == 200
        assert worker.attrs["pid"]  # the *worker's* pid rode along

    def test_worker_side_sql_spans_are_present(self, router, traced):
        router.handle(HttpRequest(target=REPORT_TARGET),
                      trace_id="trace-appserver-2").drain()
        (root,) = traced
        worker = worker_subtree(root)
        names = {span.name for span in worker.walk()}
        assert {"worker", "macro.load", "substitute",
                "sql.execute", "report.render"} <= names
        sql_spans = [span for span in worker.walk()
                     if span.name == "sql.execute"]
        assert sql_spans
        for span in sql_spans:
            assert span.remote is True
            assert span.attrs["digest"]
        assert sql_spans[0].attrs["rows"] >= 1

    def test_dispatch_span_parents_the_graft(self, router, traced):
        router.handle(HttpRequest(target=REPORT_TARGET),
                      trace_id="trace-appserver-3").drain()
        (root,) = traced
        (dispatch,) = [span for span in root.walk()
                       if span.name == "appserver.dispatch"]
        assert dispatch.attrs["slot"] == 0
        assert [child.name for child in dispatch.children] == ["worker"]
        # the graft boundary crosses clock domains: offset resets to 0
        record = root.to_dict()

        def find(node, name):
            if node["name"] == name:
                return node
            for child in node.get("children", ()):
                found = find(child, name)
                if found is not None:
                    return found
            return None

        assert find(record, "worker")["offset_ms"] == 0.0

    def test_worker_cache_hits_are_visible_in_the_trace(
            self, router, traced):
        """Second identical report: the worker's query cache answers,
        and the grafted span says so."""
        router.handle(HttpRequest(target=REPORT_TARGET),
                      trace_id="trace-appserver-4a").drain()
        router.handle(HttpRequest(target=REPORT_TARGET),
                      trace_id="trace-appserver-4b").drain()
        second = traced[-1]
        sql_spans = [span for span in worker_subtree(second).walk()
                     if span.name == "sql.execute"]
        assert any(span.attrs.get("cached") for span in sql_spans)

    def test_requests_work_untraced(self, router):
        """Tracing off server-side: no header, no delivery, same page.
        (The worker still traces — its tree is simply not grafted.)"""
        assert not TRACER.enabled
        response = router.handle(HttpRequest(target=REPORT_TARGET))
        response.drain()
        assert response.status == 200
        assert not response.headers.get("X-Trace-Id")
        assert b"URL Query Result" in response.body


@pytest.fixture(scope="module")
def tcp_router(deployment_env):
    """The same stack with the pool behind a loopback TCP daemon."""
    daemon = WorkerPoolDaemon(deployment_env, workers=1)
    dispatcher = TcpPoolDispatcher(daemon.endpoint, channels=1)
    gateway = CgiGateway()
    gateway.install("db2www", dispatcher)
    yield Router(gateway=gateway)
    dispatcher.shutdown()
    daemon.shutdown()


class TestTraceCrossesTheTcpTransport:
    """ISSUE-6 acceptance: one trace id end-to-end over TCP dispatch —
    edge process → pool daemon → worker process and back."""

    def test_one_trace_id_across_three_processes(self, tcp_router,
                                                 traced):
        response = tcp_router.handle(HttpRequest(target=REPORT_TARGET),
                                     trace_id="trace-tcp-1")
        response.drain()
        assert response.status == 200
        assert response.headers.get("X-Trace-Id") == "trace-tcp-1"
        # The in-process daemon's handler threads may root their own
        # (orphan) traces; the request trace is the one with our id.
        roots = [r for r in traced if r.trace_id == "trace-tcp-1"]
        (root,) = roots
        assert {span.trace_id for span in root.walk()} == {"trace-tcp-1"}
        worker = worker_subtree(root)
        assert worker.remote is True
        assert worker.attrs["status"] == 200
        names = {span.name for span in worker.walk()}
        assert {"worker", "sql.execute", "report.render"} <= names

    def test_dispatch_span_names_the_backend(self, tcp_router, traced):
        tcp_router.handle(HttpRequest(target=REPORT_TARGET),
                          trace_id="trace-tcp-2").drain()
        (root,) = [r for r in traced if r.trace_id == "trace-tcp-2"]
        (dispatch,) = [span for span in root.walk()
                       if span.name == "appserver.dispatch"]
        assert ":" in str(dispatch.attrs["backend"])  # host:port
        assert [child.name for child in dispatch.children] == ["worker"]
