"""Frame codec round-trips and protocol-violation handling."""

import socket
import threading

import pytest

from repro.appserver import protocol
from repro.cgi.environ import CgiEnvironment
from repro.cgi.request import CgiRequest, CgiResponse
from repro.errors import CgiProtocolError


def socket_pair():
    return socket.socketpair()


class TestFrames:
    def test_round_trip(self):
        a, b = socket_pair()
        try:
            protocol.send_frame(a, protocol.FRAME_PING, b"payload")
            frame = protocol.recv_frame(b)
            assert frame == (protocol.FRAME_PING, b"payload")
        finally:
            a.close()
            b.close()

    def test_empty_payload(self):
        a, b = socket_pair()
        try:
            protocol.send_frame(a, protocol.FRAME_SHUTDOWN)
            assert frame_type(b) == protocol.FRAME_SHUTDOWN
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket_pair()
        a.close()
        try:
            assert protocol.recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket_pair()
        try:
            # A header promising 100 bytes, then the peer dies.
            a.sendall(b"\x02\x00\x00\x00\x64partial")
            a.close()
            with pytest.raises(CgiProtocolError, match="mid-frame"):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket_pair()
        try:
            big = protocol.MAX_FRAME_SIZE + 1
            a.sendall(b"\x02" + big.to_bytes(4, "big"))
            with pytest.raises(CgiProtocolError, match="exceeds"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_large_payload_crosses_recv_chunks(self):
        a, b = socket_pair()
        payload = b"x" * 300_000
        try:
            writer = threading.Thread(
                target=protocol.send_frame,
                args=(a, protocol.FRAME_RESPONSE, payload))
            writer.start()
            frame = protocol.recv_frame(b)
            writer.join()
            assert frame == (protocol.FRAME_RESPONSE, payload)
        finally:
            a.close()
            b.close()


def frame_type(sock):
    frame = protocol.recv_frame(sock)
    assert frame is not None
    return frame[0]


class TestRequestCodec:
    def test_round_trip_preserves_environment_and_body(self):
        request = CgiRequest(
            CgiEnvironment(
                request_method="POST",
                script_name="/cgi-bin/db2www",
                path_info="/urlquery.d2w/report",
                query_string="a=1&b=2",
                content_type="application/x-www-form-urlencoded",
                content_length=9,
                remote_addr="10.0.0.7",
                http_headers={"User-Agent": "test/1.0"}),
            stdin=b"SEARCH=ib")
        decoded = protocol.decode_request(protocol.encode_request(request))
        assert decoded.environ.request_method == "POST"
        assert decoded.environ.path_info == "/urlquery.d2w/report"
        assert decoded.environ.query_string == "a=1&b=2"
        assert decoded.environ.remote_addr == "10.0.0.7"
        assert decoded.environ.http_headers["User-Agent"] == "test/1.0"
        assert decoded.stdin == b"SEARCH=ib"

    def test_identity_and_tenant_ride_the_frame(self):
        # The edge authenticates; the worker process — possibly on
        # another host — must serve with the same identity and tenant.
        request = CgiRequest(CgiEnvironment(
            script_name="/t/alpha",
            path_info="/items.d2w/report",
            remote_user="alice",
            tenant="alpha"))
        decoded = protocol.decode_request(protocol.encode_request(request))
        assert decoded.environ.remote_user == "alice"
        assert decoded.environ.tenant == "alpha"
        assert decoded.environ.to_dict()["REMOTE_USER"] == "alice"
        assert decoded.environ.to_dict()["REPRO_TENANT"] == "alpha"

    def test_body_bytes_are_not_json_escaped(self):
        body = bytes(range(256))
        request = CgiRequest(CgiEnvironment(), stdin=body)
        payload = protocol.encode_request(request)
        assert payload.endswith(body)
        assert protocol.decode_request(payload).stdin == body


class TestResponseCodec:
    def test_round_trip(self):
        response = CgiResponse(
            status=503, reason="Service Unavailable",
            headers=[("Content-Type", "text/html"),
                     ("Retry-After", "2")],
            body=b"<H1>down</H1>")
        decoded = protocol.decode_response(
            protocol.encode_response(response))
        assert decoded.status == 503
        assert decoded.reason == "Service Unavailable"
        assert decoded.header("Retry-After") == "2"
        assert decoded.body == b"<H1>down</H1>"

    def test_streaming_response_is_drained(self):
        response = CgiResponse(body=b"head,",
                               body_iter=iter([b"chunk1,", b"chunk2"]))
        decoded = protocol.decode_response(
            protocol.encode_response(response))
        assert decoded.body == b"head,chunk1,chunk2"
        assert not decoded.streaming

    def test_malformed_header_raises(self):
        with pytest.raises(CgiProtocolError):
            protocol.decode_response(b"\x00\x00\x00\x05notjs")
        with pytest.raises(CgiProtocolError):
            protocol.decode_response(b"\x00")


class TestControlCodec:
    def test_round_trip(self):
        fields = {"worker_id": 3, "pid": 1234, "served": 17}
        assert protocol.decode_control(
            protocol.encode_control(fields)) == fields

    def test_empty_is_empty_dict(self):
        assert protocol.decode_control(b"") == {}

    def test_non_object_rejected(self):
        with pytest.raises(CgiProtocolError):
            protocol.decode_control(b"[1, 2]")
