"""The pre-forked dispatcher: warm state, lifecycle, crash recovery.

These spawn real worker processes (the whole point of the subsystem),
so the pool fixtures are module-scoped where the tests allow it.

Every test runs twice — against the local Unix-socket pool and against
the same pool behind a TCP daemon (``WorkerPoolDaemon`` +
``TcpPoolDispatcher``).  The ISSUE-6 contract is that the two
transports are behaviourally identical: same responses, same stats
keys, same crash/replay semantics, same exceptions.
"""

import threading

import pytest

from repro.appserver import (
    AppServerDispatcher,
    TcpPoolDispatcher,
    WorkerPoolDaemon,
)
from repro.apps import urlquery as urlquery_app
from repro.apps.datasets import seed_urldb
from repro.cgi.environ import CgiEnvironment
from repro.cgi.gateway import CgiGateway
from repro.cgi.request import CgiRequest
from repro.errors import CgiProtocolError
from repro.sql.connection import Connection

REPORT_QUERY = "SEARCH=ib&USE_URL=yes&DBFIELDS=title"

TRANSPORTS = ["unix", "tcp"]


class TcpPoolStack:
    """A worker pool behind a loopback TCP daemon, presenting the same
    surface as the local ``AppServerDispatcher``."""

    def __init__(self, env, workers=2, **daemon_kwargs):
        self.daemon = WorkerPoolDaemon(env, workers=workers,
                                       **daemon_kwargs)
        self.client = TcpPoolDispatcher(self.daemon.endpoint,
                                        channels=workers)

    def run(self, request):
        return self.client.run(request)

    def stats(self):
        return self.client.stats()

    def health_check(self):
        return self.client.health_check()

    @property
    def pool_size(self):
        return self.client.pool_size

    def shutdown(self):
        self.client.shutdown()
        self.daemon.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()


def make_pool(transport, env, workers=2, **kwargs):
    if transport == "tcp":
        return TcpPoolStack(env, workers=workers, **kwargs)
    return AppServerDispatcher(env, workers=workers, **kwargs)


@pytest.fixture(params=TRANSPORTS)
def transport(request):
    return request.param


def deployment_env(tmp_path):
    db_path = tmp_path / "urldb.sqlite"
    conn = Connection(str(db_path))
    seed_urldb(conn, 20)
    conn.close()
    macro_dir = tmp_path / "macros"
    macro_dir.mkdir()
    (macro_dir / "urlquery.d2w").write_text(
        urlquery_app.URLQUERY_MACRO, encoding="utf-8")
    return {
        "REPRO_MACRO_DIR": str(macro_dir),
        "REPRO_DATABASE_URLDB": str(db_path),
        "REPRO_QUERY_CACHE": "32",
        "REPRO_POOL_SIZE": "1",
    }


def cgi_request(path_info, query=""):
    return CgiRequest(CgiEnvironment(
        script_name="/cgi-bin/db2www", path_info=path_info,
        query_string=query))


@pytest.fixture(scope="module", params=TRANSPORTS)
def pool(request, tmp_path_factory):
    env = deployment_env(tmp_path_factory.mktemp("appserver"))
    dispatcher = make_pool(request.param, env, workers=2)
    yield dispatcher
    dispatcher.shutdown()


class TestDispatch:
    def test_serves_requests_from_warm_workers(self, pool):
        response = pool.run(cgi_request("/urlquery.d2w/input"))
        assert response.status == 200
        assert b"Submit Query" in response.body
        response = pool.run(
            cgi_request("/urlquery.d2w/report", REPORT_QUERY))
        assert response.status == 200
        assert b"URL Query Result" in response.body

    def test_macro_error_costs_a_page_not_the_worker(self, pool):
        before = pool.stats()["crashes"]
        response = pool.run(cgi_request("/nosuch.d2w/report"))
        assert response.status == 404
        assert pool.stats()["crashes"] == before
        # the worker still serves afterwards
        assert pool.run(
            cgi_request("/urlquery.d2w/input")).status == 200

    def test_mounts_in_cgi_gateway(self, pool):
        gateway = CgiGateway()
        gateway.install("db2www", pool)
        response = gateway.dispatch(
            "db2www", cgi_request("/urlquery.d2w/input"))
        assert response.status == 200

    def test_post_body_crosses_the_socket(self, pool):
        body = b"SEARCH=ibm&USE_URL=yes&DBFIELDS=title"
        request = CgiRequest(
            CgiEnvironment(
                request_method="POST",
                script_name="/cgi-bin/db2www",
                path_info="/urlquery.d2w/report",
                content_type="application/x-www-form-urlencoded",
                content_length=len(body)),
            stdin=body)
        response = pool.run(request)
        assert response.status == 200
        assert b"ibm" in response.body

    def test_per_worker_counters(self, pool):
        for _ in range(4):
            pool.run(cgi_request("/urlquery.d2w/input"))
        stats = pool.stats()
        assert stats["requests"] >= 4
        per_worker = [stats[f"worker_{slot}_requests"]
                      for slot in range(pool.pool_size)]
        assert sum(per_worker) == stats["requests"]

    def test_health_check_reports_alive(self, pool):
        results = pool.health_check()
        assert results  # at least the idle workers answered
        assert all(results.values())


class TestRecycling:
    def test_workers_recycle_after_n_requests(self, tmp_path, transport):
        env = deployment_env(tmp_path)
        with make_pool(transport, env, workers=1,
                       recycle_after=3) as pool:
            for _ in range(7):
                assert pool.run(
                    cgi_request("/urlquery.d2w/input")).status == 200
            stats = pool.stats()
            assert stats["requests"] == 7
            assert stats["recycles"] == 2  # after requests 3 and 6
            assert stats["worker_0_recycles"] == 2


class TestCrashRecovery:
    def test_crash_mid_request_is_replaced_and_replayed(self, tmp_path,
                                                        transport):
        env = deployment_env(tmp_path)
        # Deterministic fault injection: the worker's 2nd request dies
        # mid-request (os._exit while the dispatcher awaits the frame).
        env["REPRO_WORKER_FAULTS"] = "every:2"
        with make_pool(transport, env, workers=1) as pool:
            assert pool.run(
                cgi_request("/urlquery.d2w/input")).status == 200
            # Request 2 crashes the worker; the dispatcher replaces it
            # and replays the (idempotent GET) request transparently.
            response = pool.run(cgi_request("/urlquery.d2w/input"))
            assert response.status == 200
            stats = pool.stats()
            assert stats["crashes"] == 1
            assert stats["crash_retries"] == 1
            assert stats["workers"] == 1  # replacement is live

    def test_crashed_post_is_not_replayed(self, tmp_path, transport):
        env = deployment_env(tmp_path)
        env["REPRO_WORKER_FAULTS"] = "every:1"  # first request crashes
        with make_pool(transport, env, workers=1) as pool:
            body = b"SEARCH=x"
            request = CgiRequest(
                CgiEnvironment(
                    request_method="POST",
                    script_name="/cgi-bin/db2www",
                    path_info="/urlquery.d2w/report",
                    content_type="application/x-www-form-urlencoded",
                    content_length=len(body)),
                stdin=body)
            with pytest.raises(CgiProtocolError, match="died"):
                pool.run(request)
            assert pool.stats()["crash_retries"] == 0

    def test_other_in_flight_requests_survive_a_crash(self, tmp_path,
                                                      transport):
        env = deployment_env(tmp_path)
        # Every 5th request on a worker crashes it; with 3 workers and
        # 30 concurrent GETs, several crashes happen while other
        # requests are in flight on sibling workers.
        env["REPRO_WORKER_FAULTS"] = "every:5"
        with make_pool(transport, env, workers=3) as pool:
            results = []
            lock = threading.Lock()

            def client():
                for _ in range(5):
                    try:
                        response = pool.run(
                            cgi_request("/urlquery.d2w/report",
                                        REPORT_QUERY))
                        outcome = response.status
                    except CgiProtocolError:
                        outcome = "dropped"
                    with lock:
                        results.append(outcome)

            threads = [threading.Thread(target=client)
                       for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = pool.stats()
            assert stats["crashes"] >= 1, "injector never fired"
            # Crashed GETs are replayed once, so a request only drops
            # when its replay *also* lands on a worker at its crash
            # point — two crashes for one drop.  Everything else,
            # including requests in flight on sibling workers while a
            # crash happened, must succeed.
            dropped = results.count("dropped")
            assert results.count(200) == len(results) - dropped
            assert dropped * 2 <= stats["crashes"]
            # the pool healed: all slots live again
            assert stats["workers"] == 3


class TestShutdown:
    def test_checkout_after_shutdown_fails_fast(self, tmp_path,
                                                transport):
        env = deployment_env(tmp_path)
        pool = make_pool(transport, env, workers=1)
        pool.shutdown()
        with pytest.raises(CgiProtocolError, match="shut down"):
            pool.run(cgi_request("/urlquery.d2w/input"))

    def test_shutdown_is_idempotent(self, tmp_path, transport):
        env = deployment_env(tmp_path)
        pool = make_pool(transport, env, workers=1)
        pool.shutdown()
        pool.shutdown()


class TestTcpChannelResilience:
    """TCP-transport specifics: channel breakage and replay."""

    def test_daemon_death_replays_idempotent_requests(self, tmp_path):
        env = deployment_env(tmp_path)
        first = WorkerPoolDaemon(env, workers=1)
        second = WorkerPoolDaemon(env, workers=1)
        client = TcpPoolDispatcher(
            [first.endpoint, second.endpoint], channels=2)
        try:
            assert client.run(
                cgi_request("/urlquery.d2w/input")).status == 200
            # Kill one backend outright: its channel breaks on next
            # use, and the idempotent GET replays on a fresh channel.
            first.shutdown()
            served = 0
            for _ in range(4):
                response = client.run(
                    cgi_request("/urlquery.d2w/input"))
                assert response.status == 200
                served += 1
            assert served == 4
            stats = client.stats()
            assert stats["channel_reconnects"] >= 1
        finally:
            client.shutdown()
            second.shutdown()

    def test_broken_channel_does_not_replay_posts(self, tmp_path):
        env = deployment_env(tmp_path)
        daemon = WorkerPoolDaemon(env, workers=1)
        client = TcpPoolDispatcher(daemon.endpoint, channels=1)
        try:
            assert client.run(
                cgi_request("/urlquery.d2w/input")).status == 200
            daemon.shutdown()
            body = b"SEARCH=x"
            request = CgiRequest(
                CgiEnvironment(
                    request_method="POST",
                    script_name="/cgi-bin/db2www",
                    path_info="/urlquery.d2w/report",
                    content_type="application/x-www-form-urlencoded",
                    content_length=len(body)),
                stdin=body)
            with pytest.raises(CgiProtocolError, match="broke"):
                client.run(request)
        finally:
            client.shutdown()
