"""The asyncio edge: keep-alive pipelining, chunked streaming, limits.

Each test drives the server over a real socket — buffer carry-over,
framing, and connection lifetime are exactly what is under test, so no
client-library smarts are allowed to paper over them.
"""

import socket
import time

import pytest

from repro.cgi.request import CgiResponse
from repro.http.async_server import AsyncHttpServer
from repro.http.message import HttpRequest, content_length_of
from repro.http.persistent import PersistentHttpClient
from repro.http.router import Router
from repro.http.server import HttpServer
from repro.http.urls import Url
from repro.errors import BadRequestError
from repro.obs.metrics import MetricsRegistry

ROWS = 40


class StreamingReport:
    """A CGI program that streams rows like the report engine does."""

    def run(self, request):
        def rows():
            for i in range(ROWS):
                yield f"<P>row {i}</P>\n".encode()
        return CgiResponse(status=200,
                           headers=[("Content-Type", "text/html")],
                           body=b"<H1>Report</H1>\n", body_iter=rows())


def expected_stream_body() -> bytes:
    return b"<H1>Report</H1>\n" + b"".join(
        f"<P>row {i}</P>\n".encode() for i in range(ROWS))


def build_router(metrics=None) -> Router:
    router = Router(metrics=metrics)
    router.add_page("/hello", "<H1>Hello</H1>")
    router.gateway.install("stream", StreamingReport())
    return router


@pytest.fixture()
def metrics():
    return MetricsRegistry()


@pytest.fixture()
def server(metrics):
    with AsyncHttpServer(build_router(metrics), max_connections=3,
                         timeout=5.0) as srv:
        yield srv


def connect(server) -> socket.socket:
    sock = socket.create_connection((server.host, server.port),
                                    timeout=5.0)
    return sock


def read_until_closed(sock) -> bytes:
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk


def read_n_responses(sock, count, deadline=5.0) -> bytes:
    """Read until ``count`` complete Content-Length responses arrived."""
    data = b""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if data.count(b"\r\n\r\n") >= count:
            heads = data.split(b"\r\n\r\n")
            # crude completeness check: all declared bodies present
            total = 0
            complete = True
            rest = data
            got = 0
            while b"\r\n\r\n" in rest and got < count:
                head, _, rest = rest.partition(b"\r\n\r\n")
                length = content_length_of(b"x\r\n" + head)
                if len(rest) < length:
                    complete = False
                    break
                rest = rest[length:]
                got += 1
            if complete and got == count:
                return data
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk
    return data


class TestKeepAlivePipelining:
    def test_pipelined_requests_share_one_connection(self, server):
        """Two whole requests in one write: the read buffer must carry
        request 2's bytes over from request 1's read."""
        with connect(server) as sock:
            sock.sendall(
                b"GET /hello HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"
                b"GET /hello HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            data = read_n_responses(sock, 2)
        assert data.count(b"200 OK") == 2
        assert data.count(b"Hello") == 2

    def test_split_request_head_is_buffered(self, server):
        """A head arriving in two TCP segments parses once complete."""
        with connect(server) as sock:
            sock.sendall(b"GET /hel")
            time.sleep(0.05)
            sock.sendall(b"lo HTTP/1.0\r\n\r\n")
            data = read_until_closed(sock)
        assert b"200 OK" in data and b"Hello" in data

    def test_pipelining_carries_partial_next_request(self, server):
        """Request 2's first bytes ride the same segment as request 1's
        tail; the remainder arrives later."""
        with connect(server) as sock:
            sock.sendall(
                b"GET /hello HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"
                b"GET /hel")
            first = read_n_responses(sock, 1)
            assert b"Hello" in first
            sock.sendall(b"lo HTTP/1.0\r\n\r\n")
            data = read_until_closed(sock)
        assert b"Hello" in data

    def test_http11_is_keep_alive_by_default(self, server):
        with connect(server) as sock:
            sock.sendall(b"GET /hello HTTP/1.1\r\nHost: t\r\n\r\n")
            data = read_n_responses(sock, 1)
            assert b"Keep-Alive" in data
            sock.sendall(b"GET /hello HTTP/1.1\r\nHost: t\r\n"
                         b"Connection: close\r\n\r\n")
            data = read_until_closed(sock)
        assert b"Connection: close" in data


class TestChunkedStreaming:
    def test_chunked_round_trip_and_connection_survives(self, server,
                                                        metrics):
        """HTTP/1.1 + streaming response = chunked framing, and the
        connection serves another request afterwards — the behaviour
        the threaded edge cannot offer (it must close)."""
        with PersistentHttpClient(http11=True) as client:
            url = Url.parse(f"{server.base_url}/cgi-bin/stream")
            first = client.fetch(url, HttpRequest(
                method="GET", target="/cgi-bin/stream"))
            assert first.status == 200
            assert first.body == expected_stream_body()
            # same socket still serves: the stream did not cost it
            again = client.fetch(
                Url.parse(f"{server.base_url}/hello"),
                HttpRequest(method="GET", target="/hello"))
            assert again.status == 200
        assert metrics.flat()["edge_responses_chunked_total"] == 1

    def test_chunked_wire_format(self, server):
        with connect(server) as sock:
            sock.sendall(b"GET /cgi-bin/stream HTTP/1.1\r\n"
                         b"Host: t\r\nConnection: close\r\n\r\n")
            data = read_until_closed(sock)
        head, _, body = data.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200" in head
        assert b"Transfer-Encoding: chunked" in head
        assert b"Content-Length" not in head
        assert body.endswith(b"0\r\n\r\n")  # terminal chunk

    def test_http10_client_still_gets_close_delimited(self, server):
        """Protocol downgrade: a 1996 client sees exactly the framing
        the threaded edge sends — no chunks, close ends the body."""
        with connect(server) as sock:
            sock.sendall(b"GET /cgi-bin/stream HTTP/1.0\r\n\r\n")
            data = read_until_closed(sock)
        head, _, body = data.partition(b"\r\n\r\n")
        assert b"Transfer-Encoding" not in head
        assert b"Connection: close" in head
        assert body == expected_stream_body()


class TestLimitsAndShedding:
    def test_oversized_head_is_rejected(self, server):
        with connect(server) as sock:
            sock.sendall(b"GET /hello HTTP/1.0\r\nX-Pad: ")
            try:
                sock.sendall(b"x" * (70 * 1024) + b"\r\n\r\n")
            except OSError:
                pass  # server may slam the door mid-send
            try:
                data = read_until_closed(sock)
            except OSError:
                data = b""
        assert b"400" in data or data == b""

    def test_duplicate_content_length_is_400(self, server):
        with connect(server) as sock:
            sock.sendall(b"POST /cgi-bin/stream HTTP/1.0\r\n"
                         b"Content-Length: 3\r\nContent-Length: 4\r\n"
                         b"\r\nabc")
            data = read_until_closed(sock)
        assert b"400 Bad Request" in data

    def test_comma_joined_content_length_is_400(self, server):
        with connect(server) as sock:
            sock.sendall(b"POST /cgi-bin/stream HTTP/1.0\r\n"
                         b"Content-Length: 3, 3\r\n\r\nabc")
            data = read_until_closed(sock)
        assert b"400 Bad Request" in data

    def test_connection_budget_sheds_with_503(self, server, metrics):
        held = [connect(server) for _ in range(3)]
        try:
            for sock in held:
                sock.sendall(b"GET /hel")  # partial: pins the slot
            time.sleep(0.2)
            with connect(server) as extra:
                data = read_until_closed(extra)
            assert b"503" in data
            assert b"Retry-After" in data
        finally:
            for sock in held:
                sock.close()
        assert metrics.flat()["edge_shed_total"] >= 1

    def test_edge_metrics_are_on_statusz(self, server):
        with connect(server) as sock:
            sock.sendall(b"GET /statusz HTTP/1.0\r\n\r\n")
            data = read_until_closed(sock)
        assert b"edge_connections_active" in data
        assert b"edge_requests_total" in data


class TestHardenedContentLengthParser:
    """The shared strict parser both edges call (satellite: no silent
    first-wins on smuggling-shaped heads)."""

    def test_single_value_parses(self):
        assert content_length_of(
            b"POST / HTTP/1.0\r\nContent-Length: 42\r\n") == 42

    def test_absent_means_zero(self):
        assert content_length_of(b"GET / HTTP/1.0\r\n") == 0

    def test_duplicate_headers_rejected(self):
        with pytest.raises(BadRequestError, match="2 Content-Length"):
            content_length_of(b"POST / HTTP/1.0\r\n"
                              b"Content-Length: 3\r\n"
                              b"Content-Length: 3\r\n")

    def test_comma_joined_rejected_even_when_equal(self):
        with pytest.raises(BadRequestError, match="comma-joined"):
            content_length_of(
                b"POST / HTTP/1.0\r\nContent-Length: 3, 3\r\n")

    def test_negative_and_garbage_rejected(self):
        for value in (b"-1", b"0x10", b"3.5", b"\xb9"):
            with pytest.raises(BadRequestError, match="malformed"):
                content_length_of(
                    b"POST / HTTP/1.0\r\nContent-Length: " + value
                    + b"\r\n")

    def test_request_line_is_not_scanned(self):
        # a path containing the header name must not confuse the scan
        assert content_length_of(
            b"GET /content-length:9 HTTP/1.0\r\n") == 0


class TestThreadedEdgeSatellites:
    """The legacy edge gained the same 400 and a connection budget."""

    @pytest.fixture()
    def threaded(self):
        server = HttpServer(build_router(), max_connections=2,
                            timeout=5.0).start()
        yield server
        server.shutdown()

    def test_duplicate_content_length_is_400(self, threaded):
        with socket.create_connection(
                (threaded.host, threaded.port), timeout=5.0) as sock:
            sock.sendall(b"POST /cgi-bin/stream HTTP/1.0\r\n"
                         b"Content-Length: 3\r\nContent-Length: 4\r\n"
                         b"\r\nabc")
            data = read_until_closed(sock)
        assert b"400 Bad Request" in data

    def test_connection_budget_sheds_with_503(self, threaded):
        held = [socket.create_connection(
            (threaded.host, threaded.port), timeout=5.0)
            for _ in range(2)]
        try:
            for sock in held:
                sock.sendall(b"GET /hel")
            time.sleep(0.2)
            with socket.create_connection(
                    (threaded.host, threaded.port), timeout=5.0) as s:
                data = read_until_closed(s)
            assert b"503" in data
        finally:
            for sock in held:
                sock.close()
