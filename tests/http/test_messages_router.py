"""HTTP message codecs, headers, and the router."""

import pytest

from repro.cgi.gateway import CgiGateway, FunctionProgram
from repro.cgi.request import CgiResponse
from repro.errors import BadRequestError
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse, html_response
from repro.http.router import Router
from repro.http.status import reason_for


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers([("Content-Type", "text/html")])
        assert headers.get("content-type") == "text/html"
        assert "CONTENT-TYPE" in headers

    def test_set_replaces_all(self):
        headers = Headers([("X", "1"), ("x", "2")])
        headers.set("X", "3")
        assert headers.get_all("x") == ["3"]

    def test_add_keeps_duplicates(self):
        headers = Headers()
        headers.add("Set-Cookie", "a=1")
        headers.add("Set-Cookie", "b=2")
        assert headers.get_all("set-cookie") == ["a=1", "b=2"]

    def test_parse_lines_with_continuation(self):
        headers = Headers.parse_lines(
            ["X-Long: part one", "  part two", "Y: 2"])
        assert headers.get("X-Long") == "part one part two"
        assert headers.get("Y") == "2"

    def test_remove(self):
        headers = Headers([("A", "1"), ("a", "2"), ("B", "3")])
        headers.remove("a")
        assert len(headers) == 1


class TestMessageCodecs:
    def test_request_roundtrip(self):
        request = HttpRequest(method="POST", target="/x?q=1",
                              body=b"a=1")
        request.headers.set("Content-Type", "text/plain")
        parsed = HttpRequest.parse(request.serialize())
        assert parsed.method == "POST"
        assert parsed.target == "/x?q=1"
        assert parsed.path == "/x"
        assert parsed.query == "q=1"
        assert parsed.body == b"a=1"
        assert parsed.headers.get("Content-Length") == "3"

    def test_response_roundtrip(self):
        response = html_response("<H1>ok</H1>", status=201)
        parsed = HttpResponse.parse(response.serialize())
        assert parsed.status == 201
        assert parsed.text == "<H1>ok</H1>"

    def test_http09_request_line(self):
        parsed = HttpRequest.parse(b"GET /page\r\n\r\n")
        assert parsed.version == "HTTP/0.9"

    def test_malformed_request_line(self):
        with pytest.raises(BadRequestError):
            HttpRequest.parse(b"ONE\r\n\r\n")
        with pytest.raises(BadRequestError):
            HttpRequest.parse(b"")

    def test_malformed_status_line(self):
        with pytest.raises(BadRequestError):
            HttpResponse.parse(b"NOTHTTP 200 OK\r\n\r\n")

    def test_reason_for(self):
        assert reason_for(404) == "Not Found"
        assert reason_for(499) == "Client Error"
        assert reason_for(999) == "Unknown"


@pytest.fixture()
def router(tmp_path):
    gateway = CgiGateway()
    gateway.install("echo", FunctionProgram(
        lambda req: CgiResponse(
            body=(f"PATH={req.environ.path_info};"
                  f"QS={req.environ.query_string};"
                  f"BODY={req.stdin.decode()}").encode())))
    (tmp_path / "index.html").write_text("<H1>Home</H1>")
    (tmp_path / "logo.gif").write_bytes(b"GIF89a")
    sub = tmp_path / "docs"
    sub.mkdir()
    (sub / "a.html").write_text("<P>doc a</P>")
    r = Router(document_root=tmp_path, gateway=gateway)
    r.add_page("/memory.html", "<P>in memory</P>")
    return r


class TestRouterStatic:
    def test_serve_file(self, router):
        response = router.handle(HttpRequest(target="/docs/a.html"))
        assert response.status == 200
        assert b"doc a" in response.body

    def test_index_html_for_directory(self, router):
        response = router.handle(HttpRequest(target="/"))
        assert b"Home" in response.body

    def test_mime_type_guessed(self, router):
        response = router.handle(HttpRequest(target="/logo.gif"))
        assert response.headers.get("Content-Type") == "image/gif"

    def test_in_memory_page(self, router):
        response = router.handle(HttpRequest(target="/memory.html"))
        assert b"in memory" in response.body

    def test_404(self, router):
        assert router.handle(HttpRequest(target="/nope")).status == 404

    def test_traversal_blocked(self, router):
        response = router.handle(
            HttpRequest(target="/../../../etc/passwd"))
        assert response.status == 404  # normalized inside the root

    def test_head_omits_body(self, router):
        response = router.handle(
            HttpRequest(method="HEAD", target="/memory.html"))
        assert response.status == 200
        assert response.body == b""

    def test_post_to_static_is_405(self, router):
        response = router.handle(
            HttpRequest(method="POST", target="/memory.html"))
        assert response.status == 405

    def test_unknown_method_501(self, router):
        response = router.handle(
            HttpRequest(method="PUT", target="/memory.html"))
        assert response.status == 501


class TestRouterCgi:
    def test_cgi_get(self, router):
        response = router.handle(
            HttpRequest(target="/cgi-bin/echo/extra/path?a=1"))
        assert response.body == b"PATH=/extra/path;QS=a=1;BODY="

    def test_cgi_post_body_passed(self, router):
        request = HttpRequest(method="POST", target="/cgi-bin/echo/p",
                              body=b"payload")
        response = router.handle(request)
        assert b"BODY=payload" in response.body

    def test_unknown_program_404(self, router):
        response = router.handle(HttpRequest(target="/cgi-bin/ghost/x"))
        assert response.status == 404

    def test_missing_program_name_404(self, router):
        assert router.handle(
            HttpRequest(target="/cgi-bin/")).status == 404
