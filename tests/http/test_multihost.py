"""Figure 1's world: several servers, one browser, cross-site links."""

from repro.apps import urlquery as urlquery_app
from repro.apps.site import DB2WWW_PROGRAM_NAME
from repro.browser.client import Browser
from repro.cgi.gateway import CgiGateway, Db2WwwProgram
from repro.http.inprocess import InProcessTransport
from repro.http.router import Router


def make_host(name: str, html: str) -> Router:
    router = Router(server_name=name)
    router.add_page("/index.html", html)
    return router


class TestMultiHostTransport:
    def test_browser_crosses_hosts_via_links(self):
        transport = InProcessTransport()
        transport.add_host("www.alpha.com", 80, make_host(
            "www.alpha.com",
            '<TITLE>Alpha</TITLE>'
            '<A HREF="http://www.beta.com/">visit beta</A>'))
        transport.add_host("www.beta.com", 80, make_host(
            "www.beta.com", "<TITLE>Beta</TITLE><P>welcome</P>"))
        browser = Browser(transport, base_url="http://www.alpha.com/")
        alpha = browser.get("/")
        assert alpha.title == "Alpha"
        beta = browser.follow("visit beta")
        assert beta.title == "Beta"
        assert beta.url.host == "www.beta.com"

    def test_unknown_host_is_bad_gateway(self):
        transport = InProcessTransport()
        transport.add_host("known.com", 80, make_host("known.com", "x"))
        browser = Browser(transport, base_url="http://known.com/")
        page = browser.get("http://unknown.example.org/")
        assert page.status == 502

    def test_same_app_on_two_ports(self):
        """One gateway program shared by two 'servers' — the farm
        deployment of the era."""
        app = urlquery_app.install(rows=10)
        program = Db2WwwProgram(app.engine, app.library)
        transport = InProcessTransport()
        for port in (80, 8080):
            gateway = CgiGateway()
            gateway.install(DB2WWW_PROGRAM_NAME, program)
            router = Router(gateway=gateway,
                            server_name="farm.example.com",
                            server_port=port)
            transport.add_host("farm.example.com", port, router)
        browser = Browser(transport,
                          base_url="http://farm.example.com/")
        front = browser.get(
            "http://farm.example.com/cgi-bin/db2www/urlquery.d2w/input")
        back = browser.get(
            "http://farm.example.com:8080/cgi-bin/db2www/"
            "urlquery.d2w/input")
        assert front.status == back.status == 200
        assert front.html == back.html
