"""Access-log byte accounting for streamed responses.

Regression: ``AccessLog.record`` used ``len(response.body)`` — zero (or
just the buffered prefix) while ``body_iter`` carried the page — so
streamed reports were logged with the wrong transfer size.  The router
now wraps the stream, counts emitted chunks, and records the entry with
the true total when the stream closes.
"""

import socket

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.site import build_site
from repro.http.accesslog import AccessLog
from repro.http.message import HttpRequest

QUERY = "SEARCH=ib&USE_URL=yes&DBFIELDS=title"


@pytest.fixture()
def streaming_site():
    app = urlquery_app.install(rows=25)
    site = build_site(app.engine, app.library, stream=True)
    site.router.access_log = AccessLog()
    return app, site


class TestStreamedByteAccounting:
    def test_in_process_streamed_size_matches_the_body(
            self, streaming_site):
        app, site = streaming_site
        response = site.router.handle(
            HttpRequest(target=f"{app.report_path}?{QUERY}"))
        assert response.body_iter is not None  # actually streamed
        response.drain()
        (entry,) = site.router.access_log.entries()
        assert entry.status == 200
        assert entry.size == len(response.body)
        assert entry.size > 0

    def test_socket_streamed_size_matches_bytes_on_the_wire(
            self, streaming_site):
        app, site = streaming_site
        server = site.serve()
        try:
            with socket.create_connection(
                    (server.host, server.port), timeout=5) as conn:
                conn.sendall(
                    f"GET {app.report_path}?{QUERY} HTTP/1.0\r\n"
                    f"Connection: close\r\n\r\n".encode())
                data = b""
                while True:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    data += chunk
        finally:
            server.shutdown()
        _, _, body = data.partition(b"\r\n\r\n")
        assert b"URL Query Result" in body
        (entry,) = site.router.access_log.entries()
        assert entry.size == len(body)

    def test_entry_is_recorded_even_if_the_client_stops_early(
            self, streaming_site):
        app, site = streaming_site
        response = site.router.handle(
            HttpRequest(target=f"{app.report_path}?{QUERY}"))
        first = next(response.body_iter)
        response.body_iter.close()  # client hung up mid-stream
        (entry,) = site.router.access_log.entries()
        assert entry.size == len(first) + len(response.body)

    def test_buffered_responses_keep_the_old_accounting(self):
        app = urlquery_app.install(rows=5)
        site = build_site(app.engine, app.library)
        site.router.access_log = AccessLog()
        response = site.router.handle(HttpRequest(target=app.input_path))
        assert response.body_iter is None
        (entry,) = site.router.access_log.entries()
        assert entry.size == len(response.body)
