"""PersistentHttpClient retry semantics on stale keep-alive sockets.

A server may close an idle kept-alive connection at any time; the client
retries once on a fresh socket — but only when the replay cannot repeat
a side effect (idempotent method, or no request bytes ever sent).
"""

import socket
import threading

import pytest

from repro.errors import HttpError
from repro.http.headers import Headers
from repro.http.message import HttpRequest
from repro.http.persistent import PersistentHttpClient
from repro.http.urls import Url


class OneShotServer:
    """Serves exactly one response per connection, then closes it while
    still advertising ``Connection: Keep-Alive`` — so a persistent
    client's cached socket is always stale on its next request."""

    def __init__(self):
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.accepts = 0
        self.requests = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self.accepts += 1
            with conn:
                conn.settimeout(5)
                head = self._read_request(conn)
                if head:
                    self.requests.append(head)
                    conn.sendall(b"HTTP/1.0 200 OK\r\n"
                                 b"Content-Length: 2\r\n"
                                 b"Connection: Keep-Alive\r\n\r\nok")

    def _read_request(self, conn):
        data = b""
        try:
            while b"\r\n\r\n" not in data:
                chunk = conn.recv(4096)
                if not chunk:
                    return data
                data += chunk
            head, _, body = data.partition(b"\r\n\r\n")
            for line in head.split(b"\r\n"):
                if line.lower().startswith(b"content-length"):
                    length = int(line.split(b":")[1])
                    while len(body) < length:
                        body += conn.recv(4096)
        except OSError:
            pass
        return data

    def close(self):
        self.sock.close()


@pytest.fixture()
def server():
    running = OneShotServer()
    yield running
    running.close()


def request_for(server, method="GET", body=b""):
    url = Url.parse(f"http://127.0.0.1:{server.port}/x")
    headers = Headers()
    if body:
        headers.set("Content-Length", str(len(body)))
    return url, HttpRequest(method=method, target="/x",
                            headers=headers, body=body)


class TestIdempotentRetry:
    def test_get_retries_on_a_stale_connection(self, server):
        with PersistentHttpClient(timeout=5) as client:
            url, request = request_for(server)
            assert client.fetch(url, request).status == 200
            # The server closed the socket; this GET fails on the
            # cached connection and is replayed on a fresh one.
            url, request = request_for(server)
            assert client.fetch(url, request).status == 200
        assert server.accepts == 2
        assert len(server.requests) == 2

    def test_post_is_not_replayed_after_bytes_were_sent(self, server):
        with PersistentHttpClient(timeout=5) as client:
            url, request = request_for(server)
            assert client.fetch(url, request).status == 200
            url, request = request_for(server, method="POST",
                                       body=b"amount=1")
            with pytest.raises((HttpError, OSError)):
                client.fetch(url, request)
        # the failed POST never reached a second connection
        assert server.accepts == 1
        assert len(server.requests) == 1

    def test_post_retries_when_connect_failed(self, server, monkeypatch):
        """No bytes left the client, so even a POST is safe to retry."""
        from repro.http import persistent as persistent_mod

        real = socket.create_connection
        calls = {"n": 0}

        def flaky(address, timeout=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("connection refused")
            return real(address, timeout=timeout)

        monkeypatch.setattr(persistent_mod.socket,
                            "create_connection", flaky)
        with PersistentHttpClient(timeout=5) as client:
            url, request = request_for(server, method="POST",
                                       body=b"amount=1")
            assert client.fetch(url, request).status == 200
        assert calls["n"] == 2
        assert len(server.requests) == 1
