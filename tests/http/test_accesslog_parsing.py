"""CLF parsing edges and the ``#stats`` trailer round trip."""

import io

from repro.cli import main as cli_main
from repro.http.accesslog import AccessLog, LogEntry, parse_line
from repro.http.message import HttpRequest, HttpResponse
from repro.obs.metrics import MetricsRegistry


class TestParseLineEdges:
    def test_dash_size_means_unknown(self):
        entry = parse_line('host - - [01/Jan/1996:00:00:00 +0000] '
                           '"GET / HTTP/1.0" 304 -')
        assert entry is not None
        assert entry.size == -1
        assert entry.status == 304
        # and it round-trips back to "-"
        assert entry.format().endswith(" 304 -")

    def test_ident_and_user_fields_survive(self):
        entry = parse_line('10.0.0.9 ident42 alice '
                           '[01/Jan/1996:12:00:00 +0000] '
                           '"POST /cgi-bin/db2www/q.d2w/report HTTP/1.0" '
                           '200 512')
        assert entry is not None
        assert entry.ident == "ident42"
        assert entry.user == "alice"
        assert entry.method == "POST"
        assert entry.path == "/cgi-bin/db2www/q.d2w/report"

    def test_malformed_lines_are_rejected(self):
        bad = [
            "",
            "just some words",
            '#stats {"hits": 1}',
            'host - - [no closing bracket "GET / HTTP/1.0" 200 5',
            'host - - [01/Jan/1996:00:00:00 +0000] GET / HTTP/1.0 200 5',
            'host - - [01/Jan/1996:00:00:00 +0000] "GET / HTTP/1.0" 20 5',
            'host - - [01/Jan/1996:00:00:00 +0000] "GET / HTTP/1.0" abc 5',
        ]
        for line in bad:
            assert parse_line(line) is None, line

    def test_record_format_parse_round_trip(self):
        log = AccessLog()
        entry = log.record(HttpRequest(target="/x?q=1"),
                           HttpResponse(status=200, body=b"hello"),
                           remote_addr="192.0.2.7")
        parsed = parse_line(entry.format())
        assert parsed == entry
        assert parsed.size == 5

    def test_empty_request_line_properties(self):
        entry = LogEntry(host="h", request_line="", status=400, size=0,
                         when="01/Jan/1996:00:00:00 +0000")
        assert entry.method == ""
        assert entry.path == ""


class TestStatsTrailerRoundTrip:
    def make_log(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("http_requests_total", 2)
        registry.observe("request_latency_ms", 4.0)
        registry.attach_stats_source("query_cache",
                                     lambda: {"hits": 7, "misses": 3})
        log = AccessLog(tmp_path / "access.log", metrics=registry)
        log.record(HttpRequest(target="/a"), HttpResponse(body=b"xx"))
        log.record(HttpRequest(target="/b"),
                   HttpResponse(status=404, body=b"nope"))
        line = log.append_stats_note()
        assert line is not None and line.startswith("#stats {")
        return log

    def test_trailer_survives_the_clf_parser(self, tmp_path):
        log = self.make_log(tmp_path)
        lines = log.path.read_text().splitlines()
        assert parse_line(lines[-1]) is None  # CLF consumers skip it
        assert sum(1 for line in lines
                   if parse_line(line) is not None) == 2

    def test_repro_stats_reports_counters_and_latency(self, tmp_path):
        log = self.make_log(tmp_path)
        out = io.StringIO()
        assert cli_main(["stats", str(log.path)], out=out) == 0
        text = out.getvalue()
        assert "requests: 2" in text
        assert "errors: 1" in text
        # registry counters from the trailer
        assert "http_requests_total: 2" in text
        assert "query_cache_hits: 7" in text
        # the latency histogram renders as a table, not raw keys
        assert "server latency:" in text
        assert "request_latency_ms" in text
        assert "request_latency_ms_p50:" not in text

    def test_later_trailers_supersede_earlier_ones(self, tmp_path):
        log = self.make_log(tmp_path)
        log.metrics.inc("http_requests_total", 5)
        log.append_stats_note()
        out = io.StringIO()
        assert cli_main(["stats", str(log.path)], out=out) == 0
        assert "http_requests_total: 7" in out.getvalue()
