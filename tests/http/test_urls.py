"""URL parsing, building and relative resolution."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UrlSyntaxError
from repro.http.urls import Url, join, normalize_path


class TestParsing:
    def test_full_url(self):
        url = Url.parse("http://www.ibm.com:8080/products/db2.html?x=1")
        assert url.scheme == "http"
        assert url.host == "www.ibm.com"
        assert url.port == 8080
        assert url.path == "/products/db2.html"
        assert url.query == "x=1"

    def test_default_port(self):
        assert Url.parse("http://host/").port == 80
        assert Url.parse("https://host/").port == 443

    def test_host_lowercased(self):
        assert Url.parse("http://WWW.IBM.COM/").host == "www.ibm.com"

    def test_bare_host_gets_root_path(self):
        url = Url.parse("http://www.ibm.com")
        assert url.path == "/"

    def test_fragment(self):
        url = Url.parse("http://h/p#sec2")
        assert url.fragment == "sec2"

    @pytest.mark.parametrize("bad", [
        "not a url", "/relative/only", "http//missing.colon", "",
    ])
    def test_rejects_non_absolute(self, bad):
        with pytest.raises(UrlSyntaxError):
            Url.parse(bad)

    def test_str_roundtrip(self):
        text = "http://h:81/p/q?a=1"
        assert str(Url.parse(text)) == text

    def test_str_omits_default_port(self):
        assert str(Url.parse("http://h:80/x")) == "http://h/x"

    def test_request_target(self):
        assert Url.parse("http://h/p?q=1").request_target == "/p?q=1"
        assert Url.parse("http://h").request_target == "/"


class TestJoin:
    base = Url.parse("http://www.example.com/apps/page.html?old=1")

    def test_absolute_reference_wins(self):
        joined = join(self.base, "http://other.com/x")
        assert joined.host == "other.com"

    def test_absolute_path(self):
        joined = join(self.base, "/cgi-bin/db2www/m.d2w/input")
        assert joined.host == "www.example.com"
        assert joined.path == "/cgi-bin/db2www/m.d2w/input"
        assert joined.query == ""

    def test_relative_path(self):
        joined = join(self.base, "other.html")
        assert joined.path == "/apps/other.html"

    def test_dotdot(self):
        joined = join(self.base, "../up.html")
        assert joined.path == "/up.html"

    def test_query_only(self):
        joined = join(self.base, "?new=2")
        assert joined.path == "/apps/page.html"
        assert joined.query == "new=2"

    def test_fragment_only(self):
        joined = join(self.base, "#top")
        assert joined.path == "/apps/page.html"
        assert joined.fragment == "top"

    def test_empty_reference(self):
        assert join(self.base, "") == self.base

    def test_network_path(self):
        joined = join(self.base, "//mirror.example.com/x")
        assert joined.host == "mirror.example.com"

    def test_relative_with_query(self):
        joined = join(self.base, "search?q=db")
        assert joined.path == "/apps/search"
        assert joined.query == "q=db"


class TestNormalizePath:
    @pytest.mark.parametrize("path,expected", [
        ("/a/b/../c", "/a/c"),
        ("/a/./b", "/a/b"),
        ("/../../etc/passwd", "/etc/passwd"),
        ("//double//slash", "/double/slash"),
        ("/", "/"),
        ("/dir/", "/dir/"),
        ("", "/"),
    ])
    def test_normalization(self, path, expected):
        assert normalize_path(path) == expected

    @given(st.lists(st.sampled_from(["a", "b", "..", ".", ""]),
                    max_size=10))
    def test_never_escapes_root(self, segments):
        normalized = normalize_path("/" + "/".join(segments))
        assert normalized.startswith("/")
        assert ".." not in normalized.split("/")
