"""Admission control at the HTTP layer: 503/504 semantics, both edges."""

import socket

import pytest

from repro.http.async_server import AsyncHttpServer
from repro.http.message import HttpRequest
from repro.http.router import Router
from repro.http.server import HttpServer
from repro.obs.metrics import MetricsRegistry
from repro.overload.classify import INTERACTIVE
from repro.overload.control import OverloadController


def make_request(target: str = "/hello") -> HttpRequest:
    return HttpRequest.parse(
        f"GET {target} HTTP/1.0\r\n\r\n".encode())


def make_router(**kwargs) -> Router:
    router = Router(**kwargs)
    router.add_page("/hello", "<P>hi</P>")
    return router


class FakeDeadline:
    def __init__(self, remaining: float):
        self._remaining = remaining

    @property
    def expired(self) -> bool:
        return self._remaining <= 0.0

    def remaining(self) -> float:
        return max(0.0, self._remaining)


class TestRouterAdmission:
    def test_admitted_request_serves_normally(self):
        metrics = MetricsRegistry()
        controller = OverloadController(max_concurrent=4,
                                        metrics=metrics)
        router = make_router(overload=controller, metrics=metrics)
        response = router.handle(make_request())
        assert response.status == 200
        assert controller.stats()["inflight"] == 0  # slot returned
        assert controller.stats()["admitted"] == 1

    def test_shed_request_answers_503_with_shared_retry_after(self):
        metrics = MetricsRegistry()
        controller = OverloadController(
            max_concurrent=1, queue_limit=0, metrics=metrics)
        router = make_router(overload=controller, metrics=metrics)
        # Occupy the only slot out-of-band, so the next request meets
        # a full house and an unqueueable queue.
        holder = controller.admit(cost_class=INTERACTIVE,
                                  client_key="holder")
        response = router.handle(make_request())
        controller.release(holder)
        assert response.status == 503
        retry_after = response.headers.get("Retry-After")
        assert retry_after is not None
        assert int(retry_after) >= 1  # integral, floored: shared rules
        assert metrics.counter("overload_shed_total").value == 1
        # Shed requests are still booked as traffic the operator sees.
        assert metrics.counter("http_requests_total").value == 1
        assert metrics.counter("http_errors_total").value == 1

    def test_expired_deadline_maps_to_504_with_controller(self):
        controller = OverloadController(max_concurrent=4,
                                        metrics=MetricsRegistry())
        router = make_router(overload=controller)
        response = router.handle(make_request(),
                                 deadline=FakeDeadline(0.0))
        assert response.status == 504

    def test_expired_deadline_maps_to_504_without_controller(self):
        router = make_router()
        response = router.handle(make_request(),
                                 deadline=FakeDeadline(0.0))
        assert response.status == 504

    def test_exception_releases_the_slot(self):
        controller = OverloadController(max_concurrent=1,
                                        metrics=MetricsRegistry())
        router = make_router(overload=controller)

        def explode(request, remote_addr, deadline=None):
            raise RuntimeError("handler died")

        router._route = explode
        with pytest.raises(RuntimeError):
            router.handle(make_request())
        assert controller.stats()["inflight"] == 0


class TestThreadedEdgeDeadline:
    def test_generous_deadline_serves_200(self):
        router = make_router()
        with HttpServer(router, request_deadline=30.0) as server:
            status, _ = _fetch(server.host, server.port, "/hello")
        assert status == 200

    def test_microscopic_deadline_answers_504(self):
        router = make_router()
        with HttpServer(router, request_deadline=1e-9) as server:
            status, body = _fetch(server.host, server.port, "/hello")
        assert status == 504
        assert b"deadline" in body.lower()


class TestAsyncEdgeExecutorGuard:
    def test_deadline_expired_in_handoff_504s_without_router(self):
        """Satellite contract: a request whose budget dies in the
        executor hand-off answers 504 and never touches the router."""
        metrics = MetricsRegistry()
        router = make_router(metrics=metrics)
        with AsyncHttpServer(router, offload="always",
                             request_deadline=1e-9,
                             metrics=metrics) as server:
            status, _ = _fetch(server.host, server.port, "/hello")
        assert status == 504
        assert metrics.counter(
            "edge_deadline_expired_total").value == 1
        # The router never saw it: no request was booked.
        assert metrics.counter("http_requests_total").value == 0

    def test_generous_deadline_serves_200(self):
        router = make_router()
        with AsyncHttpServer(router, offload="always",
                             request_deadline=30.0) as server:
            status, _ = _fetch(server.host, server.port, "/hello")
        assert status == 200


class TestAsyncEdgeShedHint:
    def test_connection_shed_uses_controller_hint(self):
        controller = OverloadController(max_concurrent=4,
                                        metrics=MetricsRegistry())
        router = make_router(overload=controller)
        with AsyncHttpServer(router, max_connections=0) as server:
            with socket.create_connection(
                    (server.host, server.port), timeout=5.0) as sock:
                # The edge sheds at accept time, before reading any
                # request bytes — just read the 503 off the wire.
                data = _drain(sock)
        head = data.split(b"\r\n\r\n", 1)[0]
        assert b"503" in head.split(b"\r\n", 1)[0]
        assert b"retry-after:" in head.lower()


def _fetch(host: str, port: int, target: str) -> tuple[int, bytes]:
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(f"GET {target} HTTP/1.0\r\n\r\n".encode())
        data = _drain(sock)
    head, _, body = data.partition(b"\r\n\r\n")
    return int(head.split(None, 2)[1]), body


def _drain(sock: socket.socket) -> bytes:
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk
