"""X-Trace-Id on error and shed responses (satellite: 4xx/503/504).

A client holding a 400, 503 or 504 needs something to quote against
the access log even though those paths open no span — both edges and
the router's unadmitted paths mint a correlation id whenever tracing
is on, and stay header-free when it is off.
"""

import re
import socket
import time

import pytest

from repro.errors import OverloadShedError
from repro.http.async_server import AsyncHttpServer
from repro.http.message import HttpRequest
from repro.http.router import Router
from repro.http.server import HttpServer
from repro.obs.trace import TRACER
from repro.resilience.deadline import Deadline

TRACE_ID_RE = re.compile(rb"X-Trace-Id:\s*(\S+)", re.IGNORECASE)


@pytest.fixture()
def tracing():
    TRACER.enable()
    yield
    TRACER.disable()
    TRACER.clear_sinks()


def build_router() -> Router:
    router = Router()
    router.add_page("/hello", "<H1>Hello</H1>")
    return router


class SheddingController:
    """An overload stub whose admit always refuses."""

    def admit(self, request, **kwargs):
        raise OverloadShedError(retry_after=2.0)


def read_until_closed(sock) -> bytes:
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk


class TestRouterUnadmittedPaths:
    def test_shed_503_carries_a_trace_id(self, tracing):
        router = build_router()
        router.overload = SheddingController()
        response = router.handle(HttpRequest(target="/hello"))
        assert response.status == 503
        assert response.headers.get("X-Trace-Id")

    def test_shed_reuses_the_edge_minted_id(self, tracing):
        router = build_router()
        router.overload = SheddingController()
        response = router.handle(HttpRequest(target="/hello"),
                                 trace_id="edge-id-1")
        assert response.headers.get("X-Trace-Id") == "edge-id-1"

    def test_expired_deadline_504_carries_a_trace_id(self, tracing):
        router = build_router()
        deadline = Deadline.after(0.0)
        time.sleep(0.001)
        response = router.handle(HttpRequest(target="/hello"),
                                 deadline=deadline)
        assert response.status == 504
        assert response.headers.get("X-Trace-Id")

    def test_no_header_when_tracing_off(self):
        router = build_router()
        router.overload = SheddingController()
        response = router.handle(HttpRequest(target="/hello"))
        assert response.status == 503
        assert not response.headers.get("X-Trace-Id")


class TestThreadedEdge:
    def test_bad_request_400_carries_a_trace_id(self, tracing):
        server = HttpServer(build_router(), timeout=5.0).start()
        try:
            with socket.create_connection(
                    (server.host, server.port), timeout=5.0) as sock:
                sock.sendall(b"POST /hello HTTP/1.0\r\n"
                             b"Content-Length: 3\r\n"
                             b"Content-Length: 4\r\n\r\nabc")
                data = read_until_closed(sock)
        finally:
            server.shutdown()
        assert b"400 Bad Request" in data
        assert TRACE_ID_RE.search(data)

    def test_connection_shed_503_carries_a_trace_id(self, tracing):
        server = HttpServer(build_router(), max_connections=1,
                            timeout=5.0).start()
        held = socket.create_connection(
            (server.host, server.port), timeout=5.0)
        try:
            held.sendall(b"GET /hel")  # partial request pins the slot
            time.sleep(0.2)
            with socket.create_connection(
                    (server.host, server.port), timeout=5.0) as extra:
                data = read_until_closed(extra)
        finally:
            held.close()
            server.shutdown()
        assert b"503" in data
        assert TRACE_ID_RE.search(data)

    def test_no_header_when_tracing_off(self):
        server = HttpServer(build_router(), timeout=5.0).start()
        try:
            with socket.create_connection(
                    (server.host, server.port), timeout=5.0) as sock:
                sock.sendall(b"POST /hello HTTP/1.0\r\n"
                             b"Content-Length: 3\r\n"
                             b"Content-Length: 4\r\n\r\nabc")
                data = read_until_closed(sock)
        finally:
            server.shutdown()
        assert b"400 Bad Request" in data
        assert not TRACE_ID_RE.search(data)


class TestAsyncEdge:
    def test_bad_request_400_carries_a_trace_id(self, tracing):
        with AsyncHttpServer(build_router(), timeout=5.0) as server:
            with socket.create_connection(
                    (server.host, server.port), timeout=5.0) as sock:
                sock.sendall(b"POST /hello HTTP/1.0\r\n"
                             b"Content-Length: 3\r\n"
                             b"Content-Length: 4\r\n\r\nabc")
                data = read_until_closed(sock)
        assert b"400 Bad Request" in data
        assert TRACE_ID_RE.search(data)

    def test_connection_shed_503_carries_a_trace_id(self, tracing):
        with AsyncHttpServer(build_router(), max_connections=1,
                             timeout=5.0) as server:
            held = socket.create_connection(
                (server.host, server.port), timeout=5.0)
            try:
                held.sendall(b"GET /hel")
                time.sleep(0.2)
                with socket.create_connection(
                        (server.host, server.port),
                        timeout=5.0) as extra:
                    data = read_until_closed(extra)
            finally:
                held.close()
        assert b"503" in data
        assert TRACE_ID_RE.search(data)
