"""Access logging (Common Log Format) and HTTP/1.0 conditional GET."""

import email.utils
import time

import pytest

from repro.http.accesslog import AccessLog, LogEntry, parse_line
from repro.http.headers import Headers
from repro.http.message import HttpRequest, HttpResponse
from repro.http.router import Router


class TestLogFormat:
    def test_format_and_parse_roundtrip(self):
        entry = LogEntry(host="10.1.2.3", when="05/Jul/1996:10:30:00 +0000",
                         request_line="GET /index.html HTTP/1.0",
                         status=200, size=2326)
        line = entry.format()
        assert line == ('10.1.2.3 - - [05/Jul/1996:10:30:00 +0000] '
                        '"GET /index.html HTTP/1.0" 200 2326')
        parsed = parse_line(line)
        assert parsed == entry
        assert parsed.method == "GET"
        assert parsed.path == "/index.html"

    def test_missing_size_renders_dash(self):
        entry = LogEntry(host="h", when="x", request_line="GET / HTTP/1.0",
                         status=304, size=-1)
        assert entry.format().endswith(" 304 -")
        assert parse_line(entry.format()).size == -1

    def test_parse_rejects_non_clf(self):
        assert parse_line("not a log line") is None
        assert parse_line("") is None


class TestAccessLog:
    def test_record_and_stats(self):
        log = AccessLog()
        request = HttpRequest(target="/a")
        log.record(request, HttpResponse(status=200, body=b"x" * 10),
                   remote_addr="1.2.3.4")
        log.record(request, HttpResponse(status=404, body=b"nope"),
                   remote_addr="1.2.3.4")
        assert len(log) == 2
        stats = log.stats()
        assert stats == {"hits": 2, "errors": 1, "bytes": 14}

    def test_file_output(self, tmp_path):
        path = tmp_path / "access.log"
        log = AccessLog(path)
        log.record(HttpRequest(target="/x"), HttpResponse(status=200),
                   remote_addr="9.9.9.9")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert parse_line(lines[0]).host == "9.9.9.9"

    def test_memory_bounded(self):
        log = AccessLog(max_entries=5)
        for i in range(12):
            log.record(HttpRequest(target=f"/{i}"), HttpResponse())
        assert len(log) == 5
        assert log.entries()[-1].path == "/11"

    def test_router_integration(self):
        log = AccessLog()
        router = Router(access_log=log)
        router.add_page("/index.html", "<H1>x</H1>")
        router.handle(HttpRequest(target="/index.html"),
                      remote_addr="8.8.4.4")
        router.handle(HttpRequest(target="/missing"))
        entries = log.entries()
        assert [e.status for e in entries] == [200, 404]
        assert entries[0].host == "8.8.4.4"
        assert entries[0].request_line == "GET /index.html HTTP/1.0"


@pytest.fixture()
def file_router(tmp_path):
    (tmp_path / "page.html").write_text("<P>cached content</P>")
    return Router(document_root=tmp_path), tmp_path


class TestConditionalGet:
    def test_last_modified_header_sent(self, file_router):
        router, _ = file_router
        response = router.handle(HttpRequest(target="/page.html"))
        assert response.status == 200
        assert response.headers.get("Last-Modified").endswith("GMT")

    def test_not_modified_when_fresh(self, file_router):
        router, _ = file_router
        first = router.handle(HttpRequest(target="/page.html"))
        stamp = first.headers.get("Last-Modified")
        headers = Headers()
        headers.set("If-Modified-Since", stamp)
        second = router.handle(
            HttpRequest(target="/page.html", headers=headers))
        assert second.status == 304
        assert second.body == b""

    def test_full_response_when_stale(self, file_router):
        router, tmp_path = file_router
        old = email.utils.formatdate(time.time() - 86400, usegmt=True)
        headers = Headers()
        headers.set("If-Modified-Since", old)
        response = router.handle(
            HttpRequest(target="/page.html", headers=headers))
        assert response.status == 200
        assert b"cached content" in response.body

    def test_garbage_date_ignored(self, file_router):
        router, _ = file_router
        headers = Headers()
        headers.set("If-Modified-Since", "not a date at all")
        response = router.handle(
            HttpRequest(target="/page.html", headers=headers))
        assert response.status == 200

    def test_in_memory_pages_unconditional(self, file_router):
        router, _ = file_router
        router.add_page("/mem.html", "<P>m</P>")
        headers = Headers()
        headers.set("If-Modified-Since",
                    email.utils.formatdate(usegmt=True))
        response = router.handle(
            HttpRequest(target="/mem.html", headers=headers))
        assert response.status == 200  # no mtime to compare against
