"""Keep-alive idle timeout: a stalled client must not pin a thread."""

import socket
import time

import pytest

from repro.cgi.gateway import CgiGateway
from repro.http.router import Router
from repro.http.server import HttpServer


@pytest.fixture()
def server():
    router = Router(gateway=CgiGateway())
    router.add_page("/index.html", "<H1>idle</H1>")
    with HttpServer(router, timeout=10.0, idle_timeout=0.3) as running:
        yield running


def exchange(conn, keep_alive=True):
    connection = "Keep-Alive" if keep_alive else "close"
    conn.sendall(f"GET /index.html HTTP/1.0\r\n"
                 f"Connection: {connection}\r\n\r\n".encode())
    head = b""
    while b"\r\n\r\n" not in head:
        chunk = conn.recv(4096)
        assert chunk, "server closed unexpectedly"
        head += chunk
    return head


class TestIdleTimeout:
    def test_stalled_keep_alive_client_closed(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as conn:
            head = exchange(conn)
            assert b"Keep-Alive" in head
            # say nothing: the server must hang up after idle_timeout,
            # well before the 10 s per-read timeout
            started = time.perf_counter()
            conn.settimeout(5)
            rest = conn.recv(4096)
            elapsed = time.perf_counter() - started
        assert rest == b""  # clean close, not a 4xx/5xx answer
        assert elapsed < 5.0

    def test_prompt_next_request_unaffected(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as conn:
            exchange(conn)
            time.sleep(0.05)  # well inside the idle window
            head = exchange(conn)
            assert head.startswith(b"HTTP/1.0 200")

    def test_idle_timeout_defaults_to_timeout(self):
        router = Router(gateway=CgiGateway())
        with HttpServer(router, timeout=3.5) as running:
            assert running.idle_timeout == 3.5
