"""Streaming responses over a real socket: close-delimited emission.

A streaming page has no ``Content-Length`` (its length is unknown while
the cursor is live); HTTP/1.0's framing for that case is ``Connection:
close`` and end-of-body == end-of-connection.  The page bytes must be
identical to the buffered rendering of the same macro.
"""

import socket

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.site import build_site

QUERY = "SEARCH=ib&USE_URL=yes&DBFIELDS=title"


def raw_get(server, target):
    """One strict HTTP/1.0 GET; returns (head, body-to-EOF)."""
    with socket.create_connection((server.host, server.port),
                                  timeout=5) as conn:
        conn.sendall(f"GET {target} HTTP/1.0\r\n"
                     f"Connection: close\r\n\r\n".encode())
        data = b""
        while True:
            chunk = conn.recv(4096)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    return head, body


@pytest.fixture(scope="module")
def servers():
    """The same application served buffered and streaming."""
    app = urlquery_app.install(rows=25)
    buffered = build_site(app.engine, app.library).serve()
    streaming = build_site(app.engine, app.library, stream=True).serve()
    yield app, buffered, streaming
    streaming.shutdown()
    buffered.shutdown()


class TestCloseDelimitedStreaming:
    def test_no_content_length_and_connection_close(self, servers):
        app, _, streaming = servers
        head, body = raw_get(streaming, f"{app.report_path}?{QUERY}")
        assert b"200" in head.split(b"\r\n", 1)[0]
        assert b"content-length" not in head.lower()
        assert b"Connection: close" in head
        assert b"Content-Type: text/html" in head

    def test_streamed_body_matches_buffered(self, servers):
        app, buffered, streaming = servers
        target = f"{app.report_path}?{QUERY}"
        _, buffered_body = raw_get(buffered, target)
        _, streamed_body = raw_get(streaming, target)
        assert streamed_body == buffered_body
        assert b"URL Query Result" in streamed_body

    def test_streaming_overrides_keep_alive(self, servers):
        """Even a Keep-Alive request gets a close-delimited response."""
        app, _, streaming = servers
        with socket.create_connection(
                (streaming.host, streaming.port), timeout=5) as conn:
            conn.sendall(f"GET {app.report_path}?{QUERY} HTTP/1.0\r\n"
                         f"Connection: Keep-Alive\r\n\r\n".encode())
            data = b""
            while True:
                chunk = conn.recv(4096)
                if not chunk:
                    break
                data += chunk
            # server hung up after the body: a second recv sees EOF
            assert conn.recv(1) == b""
        assert b"Connection: close" in data

    def test_error_pages_still_framed_normally(self, servers):
        """Non-stream responses (404s) keep Content-Length framing."""
        _, _, streaming = servers
        head, body = raw_get(streaming, "/cgi-bin/db2www/nosuch.d2w/input")
        assert b"404" in head.split(b"\r\n", 1)[0]
        assert b"content-length" in head.lower()
