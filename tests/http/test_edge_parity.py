"""Threaded vs async edge: byte-identical bodies on the golden requests.

The cmp6 comparison pins five gateway programs (DB2WWW and the four
Section-6 baselines) to known report requests.  Whatever front end the
deployment picks must be invisible to the client: for each golden
request, the HTTP/1.0 response body from the threaded edge and from the
asyncio edge must match byte for byte.
"""

import socket

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.site import build_site
from repro.baselines import gsql, plsql, rawcgi, wdb
from repro.http.async_server import AsyncHttpServer
from repro.http.router import Router
from repro.http.server import HttpServer
from repro.obs.metrics import MetricsRegistry
from repro.overload.control import OverloadController

#: program → (mount, path_info, query): the cmp6 golden report requests
GOLDEN_REQUESTS = {
    "db2www": ("db2www", "/urlquery.d2w/report",
               "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"),
    "rawcgi": ("rawcgi", "/report",
               "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"),
    "gsql": ("gsql", "/report", "SEARCH=ib"),
    "wdb": ("wdb", "/report", "title=Ibm"),
    "plsql": ("owa", "/urlquery_report",
              "SEARCH=ib&USE_URL=yes&USE_TITLE=yes"),
}


def build_arena_router():
    app = urlquery_app.install(rows=150)
    site = build_site(app.engine, app.library)
    site.gateway.install("rawcgi", rawcgi.RawCgiUrlQuery(app.registry))
    site.gateway.install("gsql", gsql.install_urlquery(app.registry))
    site.gateway.install("wdb", wdb.install_urlquery(app.registry))
    site.gateway.install("owa", plsql.install_urlquery(app.registry))
    return site.router


def fetch_body(host, port, target) -> tuple[int, bytes]:
    """One strict HTTP/1.0 exchange, body delimited by close."""
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(f"GET {target} HTTP/1.0\r\n\r\n".encode())
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, body


@pytest.fixture(scope="module")
def edges():
    """The same router behind both front ends at once."""
    threaded_router = build_arena_router()
    async_router = build_arena_router()
    with HttpServer(threaded_router) as threaded:
        with AsyncHttpServer(async_router) as asynced:
            yield threaded, asynced


@pytest.mark.parametrize("name", sorted(GOLDEN_REQUESTS))
def test_edges_serve_identical_bytes(edges, name):
    threaded, asynced = edges
    program, path_info, query = GOLDEN_REQUESTS[name]
    target = f"/cgi-bin/{program}{path_info}?{query}"
    status_t, body_t = fetch_body(threaded.host, threaded.port, target)
    status_a, body_a = fetch_body(asynced.host, asynced.port, target)
    assert status_t == status_a == 200
    assert body_t == body_a
    assert body_t  # a pair of empty bodies proves nothing


# -- overload shedding vs pipelined framing ---------------------------------


def build_shedding_router() -> Router:
    """A router whose admission controller always sheds CGI traffic.

    The deferrable admit rate is pinned at zero (and the tick frozen so
    AIMD recovery cannot raise it mid-test): every ``/cgi-bin/`` request
    is UNCLASSIFIED and rate-shed at admission, while static pages are
    CACHED and always admitted — the deterministic mid-burst 503.
    """
    controller = OverloadController(
        max_concurrent=8, queue_limit=8, tick_interval=3600.0,
        metrics=MetricsRegistry())
    controller._rates["deferrable"] = 0.0
    router = Router(overload=controller, metrics=controller.metrics)
    router.add_page("/a", "<P>page a before the shed</P>")
    router.add_page("/b", "<P>page b after the shed</P>")
    return router


def read_one_response(stream) -> tuple[int, dict, bytes]:
    """Parse one Content-Length-framed response off a socket file."""
    status_line = stream.readline()
    assert status_line, "peer closed before a full response"
    status = int(status_line.split(None, 2)[1])
    headers: dict[str, str] = {}
    while True:
        line = stream.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        key, _, value = line.decode("latin-1").partition(":")
        headers[key.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = stream.read(length)
    assert len(body) == length, "body truncated mid-frame"
    return status, headers, body


@pytest.mark.parametrize("edge_cls,version,middle_ka", [
    (HttpServer, "HTTP/1.0", "Connection: keep-alive\r\n"),
    (AsyncHttpServer, "HTTP/1.1", ""),
], ids=["threaded", "async"])
def test_mid_burst_503_does_not_corrupt_pipelined_framing(
        edge_cls, version, middle_ka):
    """503 to request N of a pipelined keep-alive burst must leave
    requests N-1 and N+1 perfectly framed on the same connection."""
    router = build_shedding_router()
    shed_target = "/cgi-bin/db2www/urlquery.d2w/report?SEARCH="
    ka = "Connection: keep-alive\r\n" if version == "HTTP/1.0" else ""
    burst = (
        f"GET /a {version}\r\n{ka}\r\n"
        f"GET {shed_target} {version}\r\n{middle_ka}\r\n"
        f"GET /b {version}\r\nConnection: close\r\n\r\n"
    ).encode()
    with edge_cls(router) as server:
        with socket.create_connection((server.host, server.port),
                                      timeout=10.0) as sock:
            sock.sendall(burst)
            stream = sock.makefile("rb")
            first = read_one_response(stream)
            shed = read_one_response(stream)
            third = read_one_response(stream)
            assert stream.read() == b""  # connection closed cleanly
    assert first[0] == 200
    assert b"page a before the shed" in first[2]
    assert shed[0] == 503
    assert int(shed[1]["retry-after"]) >= 1  # shared header semantics
    assert third[0] == 200
    assert b"page b after the shed" in third[2]
