"""Threaded vs async edge: byte-identical bodies on the golden requests.

The cmp6 comparison pins five gateway programs (DB2WWW and the four
Section-6 baselines) to known report requests.  Whatever front end the
deployment picks must be invisible to the client: for each golden
request, the HTTP/1.0 response body from the threaded edge and from the
asyncio edge must match byte for byte.
"""

import socket

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.site import build_site
from repro.baselines import gsql, plsql, rawcgi, wdb
from repro.http.async_server import AsyncHttpServer
from repro.http.server import HttpServer

#: program → (mount, path_info, query): the cmp6 golden report requests
GOLDEN_REQUESTS = {
    "db2www": ("db2www", "/urlquery.d2w/report",
               "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"),
    "rawcgi": ("rawcgi", "/report",
               "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"),
    "gsql": ("gsql", "/report", "SEARCH=ib"),
    "wdb": ("wdb", "/report", "title=Ibm"),
    "plsql": ("owa", "/urlquery_report",
              "SEARCH=ib&USE_URL=yes&USE_TITLE=yes"),
}


def build_arena_router():
    app = urlquery_app.install(rows=150)
    site = build_site(app.engine, app.library)
    site.gateway.install("rawcgi", rawcgi.RawCgiUrlQuery(app.registry))
    site.gateway.install("gsql", gsql.install_urlquery(app.registry))
    site.gateway.install("wdb", wdb.install_urlquery(app.registry))
    site.gateway.install("owa", plsql.install_urlquery(app.registry))
    return site.router


def fetch_body(host, port, target) -> tuple[int, bytes]:
    """One strict HTTP/1.0 exchange, body delimited by close."""
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(f"GET {target} HTTP/1.0\r\n\r\n".encode())
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, body


@pytest.fixture(scope="module")
def edges():
    """The same router behind both front ends at once."""
    threaded_router = build_arena_router()
    async_router = build_arena_router()
    with HttpServer(threaded_router) as threaded:
        with AsyncHttpServer(async_router) as asynced:
            yield threaded, asynced


@pytest.mark.parametrize("name", sorted(GOLDEN_REQUESTS))
def test_edges_serve_identical_bytes(edges, name):
    threaded, asynced = edges
    program, path_info, query = GOLDEN_REQUESTS[name]
    target = f"/cgi-bin/{program}{path_info}?{query}"
    status_t, body_t = fetch_body(threaded.host, threaded.port, target)
    status_a, body_a = fetch_body(asynced.host, asynced.port, target)
    assert status_t == status_a == 200
    assert body_t == body_a
    assert body_t  # a pair of empty bodies proves nothing
