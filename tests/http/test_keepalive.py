"""HTTP/1.0 Keep-Alive: server loop and persistent client."""

import socket

import pytest

from repro.cgi.gateway import CgiGateway, FunctionProgram
from repro.cgi.request import CgiResponse
from repro.http.client import HttpClient
from repro.http.headers import Headers
from repro.http.message import HttpRequest
from repro.http.persistent import PersistentHttpClient
from repro.http.router import Router
from repro.http.server import HttpServer
from repro.http.urls import Url


@pytest.fixture()
def server():
    counter = {"n": 0}

    def count(request):
        counter["n"] += 1
        return CgiResponse(body=f"hit {counter['n']}".encode())

    gateway = CgiGateway()
    gateway.install("count", FunctionProgram(count))
    router = Router(gateway=gateway)
    router.add_page("/index.html", "<H1>ka</H1>")
    with HttpServer(router, keep_alive_max=5) as running:
        yield running


class TestServerKeepAlive:
    def _exchange(self, conn, target, keep_alive=True):
        connection = "Keep-Alive" if keep_alive else "close"
        conn.sendall(
            f"GET {target} HTTP/1.0\r\nConnection: {connection}\r\n"
            f"\r\n".encode())
        head = b""
        while b"\r\n\r\n" not in head:
            chunk = conn.recv(4096)
            assert chunk, "server closed unexpectedly"
            head += chunk
        header_part, _, body = head.partition(b"\r\n\r\n")
        length = int(next(
            line.split(b":")[1] for line in header_part.split(b"\r\n")
            if line.lower().startswith(b"content-length")))
        while len(body) < length:
            body += conn.recv(4096)
        return header_part, body[:length], body[length:]

    def test_two_requests_one_connection(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as conn:
            head1, body1, rest = self._exchange(conn, "/cgi-bin/count/x")
            assert b"Connection: Keep-Alive" in head1
            assert body1 == b"hit 1"
            assert rest == b""
            head2, body2, _ = self._exchange(conn, "/cgi-bin/count/x")
            assert body2 == b"hit 2"

    def test_close_requested_closes(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as conn:
            head, _body, _ = self._exchange(conn, "/index.html",
                                            keep_alive=False)
            assert b"Connection: close" in head
            assert conn.recv(1) == b""  # server hung up

    def test_keep_alive_max_enforced(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as conn:
            for i in range(4):
                head, _, _ = self._exchange(conn, "/index.html")
                assert b"Keep-Alive" in head
            head, _, _ = self._exchange(conn, "/index.html")  # 5th
            assert b"Connection: close" in head
            assert conn.recv(1) == b""

    def test_plain_client_unaffected(self, server):
        url = Url.parse(f"{server.base_url}/index.html")
        response = HttpClient().fetch(
            url, HttpRequest(target=url.request_target))
        assert response.status == 200
        assert response.headers.get("Connection") == "close"


class TestPersistentClient:
    def test_reuses_connection(self, server):
        with PersistentHttpClient() as client:
            url = Url.parse(f"{server.base_url}/cgi-bin/count/x")
            bodies = []
            for _ in range(3):
                response = client.fetch(
                    url, HttpRequest(target=url.request_target,
                                     headers=Headers()))
                bodies.append(response.text)
            assert bodies == ["hit 1", "hit 2", "hit 3"]
            assert len(client._sockets) == 1

    def test_recovers_after_server_close(self, server):
        with PersistentHttpClient() as client:
            url = Url.parse(f"{server.base_url}/index.html")
            for _ in range(7):  # crosses the keep_alive_max=5 boundary
                response = client.fetch(
                    url, HttpRequest(target=url.request_target,
                                     headers=Headers()))
                assert response.status == 200

    def test_interleaved_posts(self, server):
        with PersistentHttpClient() as client:
            url = Url.parse(f"{server.base_url}/cgi-bin/count/x")
            headers = Headers()
            headers.set("Content-Type",
                        "application/x-www-form-urlencoded")
            request = HttpRequest(method="POST",
                                  target=url.request_target,
                                  headers=headers, body=b"a=1")
            first = client.fetch(url, request)
            assert first.status == 200
            second = client.fetch(
                url, HttpRequest(target=url.request_target,
                                 headers=Headers()))
            assert second.status == 200
