"""The router's observability surface: /metrics, /statusz, request spans."""

import json

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.site import build_site
from repro.http.message import HttpRequest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACER

QUERY = "SEARCH=ib&USE_URL=yes&DBFIELDS=title"


@pytest.fixture()
def site():
    app = urlquery_app.install(rows=30)
    site = build_site(app.engine, app.library)
    site.router.metrics = MetricsRegistry()
    return app, site


@pytest.fixture()
def traced():
    """The process-wide tracer, on for one test, with a capture sink."""
    captured = []
    TRACER.enable()
    TRACER.add_sink(captured.append)
    yield captured
    TRACER.disable()
    TRACER.clear_sinks()


def get(site, target):
    response = site.router.handle(HttpRequest(target=target))
    response.drain()
    return response


class TestMetricsEndpoint:
    def test_scrape_exposes_request_counters_and_latency(self, site):
        app, site = site
        get(site, app.input_path)
        get(site, f"{app.report_path}?{QUERY}")
        get(site, "/no-such-page")
        response = get(site, "/metrics")
        assert response.status == 200
        assert response.headers.get("Content-Type") == \
            "text/plain; version=0.0.4; charset=utf-8"
        text = response.body.decode()
        assert "http_requests_total 3" in text
        assert "http_errors_total 1" in text
        assert "# TYPE request_latency_ms summary" in text
        for quantile in ("0.5", "0.95", "0.99"):
            assert f'request_latency_ms{{quantile="{quantile}"}}' in text
        assert "request_latency_ms_count 3" in text

    def test_scrape_includes_attached_legacy_sources(self, site):
        _, site = site
        site.router.metrics.attach_stats_source(
            "query_cache", lambda: {"hits": 5})
        text = get(site, "/metrics").body.decode()
        assert "query_cache_hits 5" in text

    def test_no_registry_means_no_endpoint(self):
        app = urlquery_app.install(rows=2)
        bare = build_site(app.engine, app.library)
        assert get(bare, "/metrics").status == 404
        assert get(bare, "/statusz").status == 404


class TestStatusz:
    def test_json_snapshot(self, site):
        app, site = site
        get(site, app.input_path)
        response = get(site, "/statusz")
        assert response.status == 200
        assert response.headers.get("Content-Type") == \
            "application/json; charset=utf-8"
        snapshot = json.loads(response.body)
        assert snapshot["counters"]["http_requests_total"] == 1
        assert snapshot["histograms"]["request_latency_ms"]["count"] == 1
        assert "sources" in snapshot

    def test_scrape_requests_are_counted_too(self, site):
        """Each scrape reflects the requests completed before it."""
        _, site = site
        get(site, "/statusz")
        get(site, "/statusz")
        snapshot = json.loads(get(site, "/statusz").body)
        assert snapshot["counters"]["http_requests_total"] == 2


class TestRequestSpans:
    def test_no_trace_header_when_tracing_off(self, site):
        app, site = site
        response = get(site, app.input_path)
        assert not response.headers.get("X-Trace-Id")

    def test_buffered_report_trace_covers_the_whole_stack(
            self, site, traced):
        app, site = site
        response = get(site, f"{app.report_path}?{QUERY}")
        assert response.status == 200
        trace_id = response.headers.get("X-Trace-Id")
        assert trace_id
        (root,) = traced
        assert root.name == "request"
        assert root.trace_id == trace_id
        assert root.attrs["status"] == 200
        names = {span.name for span in root.walk()}
        assert {"request", "macro.load", "substitute",
                "sql.execute", "report.render"} <= names
        sql_spans = [span for span in root.walk()
                     if span.name == "sql.execute"]
        assert sql_spans[0].attrs["digest"]
        assert sql_spans[0].attrs["rows"] >= 1

    def test_disk_macro_parse_is_spanned_once(self, tmp_path, traced):
        """The parse span appears on the first disk load only (the
        mtime cache serves later requests without re-parsing)."""
        from repro.core.macrofile import MacroLibrary

        app = urlquery_app.install(rows=5)
        macro_dir = tmp_path / "macros"
        macro_dir.mkdir()
        (macro_dir / "urlquery.d2w").write_text(
            urlquery_app.URLQUERY_MACRO, encoding="utf-8")
        site = build_site(app.engine, MacroLibrary(macro_dir))
        get(site, app.input_path)
        get(site, app.input_path)
        first, second = traced
        assert "parse" in {span.name for span in first.walk()}
        assert "parse" not in {span.name for span in second.walk()}

    def test_streaming_report_finishes_the_span_at_drain(self, traced):
        app = urlquery_app.install(rows=30)
        site = build_site(app.engine, app.library, stream=True)
        site.router.metrics = MetricsRegistry()
        response = get(site, f"{app.report_path}?{QUERY}")
        assert b"URL Query Result" in response.body
        (root,) = traced
        assert root.end is not None
        assert root.attrs["bytes"] == len(response.body)
        names = {span.name for span in root.walk()}
        assert {"request", "emit", "sql.execute",
                "report.render"} <= names
        sql_spans = [span for span in root.walk()
                     if span.name == "sql.execute"]
        assert sql_spans[0].attrs["streaming"] is True
        assert sql_spans[0].attrs["rows"] >= 1
        # the streamed bytes were really observed by the registry too
        flat = site.router.metrics.flat()
        assert flat["http_response_bytes_total"] == len(response.body)

    def test_error_responses_are_spanned_and_counted(self, site, traced):
        _, site = site
        response = get(site, "/missing")
        assert response.status == 404
        (root,) = traced
        assert root.attrs["status"] == 404
        assert site.router.metrics.counter("http_errors_total").value == 1


class TestStatementsEndpoint:
    @pytest.fixture()
    def statements(self):
        from repro.sql.digest import StatementStats
        stats = StatementStats()
        stats.enabled = True
        return stats

    def test_not_routed_without_a_store(self, site):
        _, site = site
        assert get(site, "/statements").status == 404

    def test_serves_the_digest_table_as_json(self, site, statements):
        _, site = site
        site.router.statements = statements
        statements.record(digest="abc", statement="select ?",
                          duration_ms=3.0, rows=5)
        response = get(site, "/statements")
        assert response.status == 200
        assert response.headers.get("Content-Type") == \
            "application/json; charset=utf-8"
        body = json.loads(response.body)
        (row,) = body["statements"]
        assert row["digest"] == "abc"
        assert row["calls"] == 1
        assert body["recorded_total"] == 1

    def test_limit_query_parameter_caps_rows(self, site, statements):
        _, site = site
        site.router.statements = statements
        statements.record(digest="hot", duration_ms=100.0)
        statements.record(digest="cold", duration_ms=1.0)
        body = json.loads(get(site, "/statements?limit=1").body)
        assert [r["digest"] for r in body["statements"]] == ["hot"]
        assert get(site, "/statements?limit=bogus").status == 400

    def test_live_traffic_lands_in_the_table(self, site, statements,
                                             traced):
        """End to end: the store as a tracer sink sees the report's
        sql.execute span and /statements shows its digest."""
        app, site = site
        site.router.statements = statements
        TRACER.add_sink(statements)
        response = get(site, f"{app.report_path}?{QUERY}")
        assert response.status == 200
        body = json.loads(get(site, "/statements").body)
        assert body["statements"], "no digest rows after traffic"
        row = body["statements"][0]
        assert row["calls"] >= 1
        assert row["rows"] >= 1
        assert "select" in row["statement"].lower()
