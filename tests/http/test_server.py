"""The socket HTTP server and client, over real TCP."""

import socket

import pytest

from repro.cgi.gateway import CgiGateway, FunctionProgram
from repro.cgi.request import CgiResponse
from repro.errors import HttpError
from repro.http.client import HttpClient
from repro.http.headers import Headers
from repro.http.message import HttpRequest
from repro.http.router import Router
from repro.http.server import HttpServer
from repro.http.urls import Url


@pytest.fixture()
def server():
    gateway = CgiGateway()
    gateway.install("hello", FunctionProgram(
        lambda req: CgiResponse(
            body=f"hi {req.environ.remote_addr}".encode())))
    router = Router(gateway=gateway)
    router.add_page("/index.html", "<H1>socket home</H1>")
    with HttpServer(router) as running:
        yield running


class TestSocketServer:
    def test_static_page_over_tcp(self, server):
        client = HttpClient()
        url = Url.parse(f"{server.base_url}/index.html")
        response = client.fetch(
            url, HttpRequest(target=url.request_target))
        assert response.status == 200
        assert "socket home" in response.text

    def test_cgi_over_tcp(self, server):
        client = HttpClient()
        url = Url.parse(f"{server.base_url}/cgi-bin/hello/x")
        response = client.fetch(
            url, HttpRequest(target=url.request_target))
        assert response.text.startswith("hi 127.0.0.1")

    def test_post_over_tcp(self, server):
        gatewayed = Url.parse(f"{server.base_url}/cgi-bin/hello/x")
        headers = Headers()
        headers.set("Content-Type", "application/x-www-form-urlencoded")
        request = HttpRequest(method="POST",
                              target=gatewayed.request_target,
                              headers=headers, body=b"a=1")
        response = HttpClient().fetch(gatewayed, request)
        assert response.status == 200

    def test_404_over_tcp(self, server):
        url = Url.parse(f"{server.base_url}/missing")
        response = HttpClient().fetch(
            url, HttpRequest(target=url.request_target))
        assert response.status == 404

    def test_malformed_request_gets_400(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as conn:
            conn.sendall(b"GARBAGE\r\n\r\n")
            conn.shutdown(socket.SHUT_WR)
            data = b""
            while True:
                chunk = conn.recv(4096)
                if not chunk:
                    break
                data += chunk
        assert b"400" in data.split(b"\r\n", 1)[0]

    def test_concurrent_requests(self, server):
        import threading
        results = []

        def fetch():
            url = Url.parse(f"{server.base_url}/index.html")
            response = HttpClient().fetch(
                url, HttpRequest(target=url.request_target))
            results.append(response.status)

        threads = [threading.Thread(target=fetch) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [200] * 10

    def test_connection_refused_raises_http_error(self):
        url = Url.parse("http://127.0.0.1:1/x")  # nothing listens on 1
        with pytest.raises(HttpError):
            HttpClient(timeout=0.5).fetch(
                url, HttpRequest(target="/x"))

    def test_shutdown_stops_accepting(self):
        router = Router()
        server = HttpServer(router).start()
        host, port = server.host, server.port
        server.shutdown()
        with pytest.raises(OSError):
            probe = socket.create_connection((host, port), timeout=0.3)
            # If the listener lingers, at least the read must fail fast.
            probe.settimeout(0.3)
            probe.sendall(b"GET / HTTP/1.0\r\n\r\n")
            if not probe.recv(1):
                probe.close()
                raise OSError("closed")


class TestServerLimits:
    def test_oversized_header_connection_dropped(self, server):
        """A head larger than the 64 KiB cap must not crash the server
        or buffer unboundedly; the connection just closes."""
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as conn:
            conn.sendall(b"GET / HTTP/1.0\r\nX-Big: ")
            try:
                for _ in range(80):       # ~80 KiB of header value
                    conn.sendall(b"x" * 1024)
                conn.sendall(b"\r\n\r\n")
            except OSError:
                pass  # server already hung up mid-send: acceptable
            conn.settimeout(2)
            data = b""
            try:
                while True:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    data += chunk
            except OSError:
                pass
        assert b"200" not in data.split(b"\r\n", 1)[:1][0] \
            if data else True
        # And the server still answers normal requests afterwards.
        url = Url.parse(f"{server.base_url}/index.html")
        response = HttpClient().fetch(
            url, HttpRequest(target=url.request_target))
        assert response.status == 200

    def test_content_length_lie_truncates_body(self, server):
        """Body read is bounded by Content-Length, not by the client's
        generosity."""
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as conn:
            conn.sendall(
                b"POST /cgi-bin/hello/x HTTP/1.0\r\n"
                b"Content-Type: application/x-www-form-urlencoded\r\n"
                b"Content-Length: 3\r\n\r\n"
                b"a=1&b=EXTRA_BYTES_BEYOND_LENGTH")
            conn.shutdown(socket.SHUT_WR)
            data = b""
            while True:
                chunk = conn.recv(4096)
                if not chunk:
                    break
                data += chunk
        assert b"200" in data.split(b"\r\n", 1)[0]
