"""Concurrent workload runner."""

import pytest

from repro.apps import build_site
from repro.apps import urlquery as urlquery_app
from repro.workloads.concurrent import run_concurrent, throughput_sweep
from repro.workloads.generator import UrlQueryWorkload
from repro.workloads.runner import db2www_request_builder


@pytest.fixture(scope="module")
def site():
    app = urlquery_app.install(rows=40)
    return build_site(app.engine, app.library)


class TestRunConcurrent:
    def test_all_requests_processed(self, site):
        result = run_concurrent(
            site.gateway, UrlQueryWorkload(seed=11).requests(80),
            db2www_request_builder("urlquery.d2w"), threads=4)
        assert result.ok
        assert result.responses == 80
        assert result.summary.count == 80
        assert result.threads == 4

    def test_failures_counted(self, site):
        result = run_concurrent(
            site.gateway, UrlQueryWorkload(seed=11).requests(10),
            db2www_request_builder("ghost.d2w"), threads=2)
        assert result.failures == 10

    def test_single_thread_matches_sequential_count(self, site):
        result = run_concurrent(
            site.gateway, UrlQueryWorkload(seed=3).requests(30),
            db2www_request_builder("urlquery.d2w"), threads=1)
        assert result.ok and result.summary.count == 30

    def test_results_consistent_under_contention(self, site):
        """Same pages regardless of how many threads served them."""
        from repro.cgi.environ import CgiEnvironment
        from repro.cgi.request import CgiRequest

        request = CgiRequest(CgiEnvironment(
            path_info="/urlquery.d2w/report",
            query_string="SEARCH=ib&USE_TITLE=yes&DBFIELDS=title"))
        sequential = site.gateway.dispatch("db2www", request).body

        import threading
        bodies = []
        lock = threading.Lock()

        def hit():
            body = site.gateway.dispatch("db2www", request).body
            with lock:
                bodies.append(body)

        threads = [threading.Thread(target=hit) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(body == sequential for body in bodies)


class TestThroughputSweep:
    def test_sweep_shapes(self, site):
        results = throughput_sweep(
            site.gateway,
            lambda: UrlQueryWorkload(seed=5).requests(60),
            db2www_request_builder("urlquery.d2w"),
            thread_counts=(1, 4))
        assert [r.threads for r in results] == [1, 4]
        assert all(r.ok for r in results)
        assert all(r.summary.throughput_rps > 0 for r in results)
