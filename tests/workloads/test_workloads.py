"""Workload generation and measurement."""

import pytest

from repro.apps import build_site
from repro.apps import urlquery as urlquery_app
from repro.workloads.generator import (
    OrderSearchWorkload,
    UrlQueryWorkload,
)
from repro.workloads.metrics import LatencyRecorder, percentile
from repro.workloads.runner import (
    db2www_request_builder,
    plain_request_builder,
    run_workload,
)


class TestGenerators:
    def test_deterministic(self):
        first = list(UrlQueryWorkload(seed=5).requests(50))
        second = list(UrlQueryWorkload(seed=5).requests(50))
        assert first == second

    def test_report_fraction_respected(self):
        requests = list(UrlQueryWorkload(
            seed=1, report_fraction=1.0).requests(40))
        assert all(r.is_report for r in requests)

    def test_mix_contains_input_requests(self):
        requests = list(UrlQueryWorkload(
            seed=2, report_fraction=0.5).requests(100))
        commands = {r.command for r in requests}
        assert commands == {"input", "report"}

    def test_report_requests_always_have_a_report_field(self):
        for request in UrlQueryWorkload(seed=3).requests(100):
            if request.is_report:
                assert ("DBFIELDS", "title") in request.pairs

    def test_order_workload_shapes(self):
        requests = list(OrderSearchWorkload(seed=4).requests(100))
        assert all(r.is_report for r in requests)
        # All four Section 3.1.3 combinations appear in a long stream.
        shapes = {tuple(sorted(n for n, _ in r.pairs))
                  for r in requests}
        assert ("cust_inp",) in shapes
        assert ("prod_inp",) in shapes
        assert ("cust_inp", "prod_inp") in shapes
        assert () in shapes


class TestMetrics:
    def test_percentile_interpolation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 4.0
        assert percentile(samples, 0.5) == 2.5

    def test_percentile_single_sample(self):
        assert percentile([7.0], 0.95) == 7.0

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_recorder_summary(self):
        recorder = LatencyRecorder()
        recorder.start_run()
        for ms in (1, 2, 3, 4, 100):
            recorder.record(ms / 1000)
        recorder.finish_run()
        summary = recorder.summary()
        assert summary.count == 5
        assert summary.min_ms == pytest.approx(1.0)
        assert summary.max_ms == pytest.approx(100.0)
        assert summary.p50_ms == pytest.approx(3.0)
        assert summary.throughput_rps > 0

    def test_recorder_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().summary()

    def test_timer_context(self):
        recorder = LatencyRecorder()
        with recorder.time():
            pass
        assert len(recorder.samples) == 1
        assert recorder.samples[0] >= 0

    def test_summary_row_format(self):
        recorder = LatencyRecorder()
        recorder.record(0.001)
        row = recorder.summary().row("label")
        assert row.startswith("label")
        assert len(row.split()) == 7


class TestRunner:
    @pytest.fixture(scope="class")
    def site(self):
        app = urlquery_app.install(rows=40)
        return build_site(app.engine, app.library)

    def test_db2www_run_all_succeed(self, site):
        result = run_workload(
            site.gateway, UrlQueryWorkload(seed=9).requests(60),
            db2www_request_builder("urlquery.d2w"))
        assert result.ok
        assert result.responses == 60
        assert result.summary.count == 60

    def test_failures_counted_not_raised(self, site):
        result = run_workload(
            site.gateway, UrlQueryWorkload(seed=9).requests(10),
            db2www_request_builder("missing.d2w"))
        assert result.failures == 10
        assert not result.ok

    def test_plain_builder_urls(self):
        builder = plain_request_builder("rawcgi")
        from repro.workloads.generator import WorkloadRequest
        program, request = builder(WorkloadRequest(
            command="report", pairs=(("SEARCH", "a b"),)))
        assert program == "rawcgi"
        assert request.environ.path_info == "/report"
        assert request.environ.query_string == "SEARCH=a+b"


class TestLogReplay:
    def test_replay_reconstructs_gateway_requests(self):
        from repro.http.accesslog import LogEntry
        from repro.workloads.generator import replay_log

        entries = [
            LogEntry(host="h", when="x", status=200, size=1,
                     request_line="GET /cgi-bin/db2www/urlquery.d2w/"
                                  "report?SEARCH=ib&USE_URL=yes "
                                  "HTTP/1.0"),
            LogEntry(host="h", when="x", status=200, size=1,
                     request_line="GET /index.html HTTP/1.0"),
            LogEntry(host="h", when="x", status=200, size=1,
                     request_line="GET /cgi-bin/db2www/urlquery.d2w/"
                                  "input HTTP/1.0"),
            LogEntry(host="h", when="x", status=404, size=1,
                     request_line="GET /cgi-bin/other/thing HTTP/1.0"),
        ]
        replayed = list(replay_log(entries))
        assert len(replayed) == 2
        assert replayed[0].command == "report"
        assert ("SEARCH", "ib") in replayed[0].pairs
        assert replayed[1].command == "input"

    def test_replayed_log_drives_the_gateway(self):
        from repro.apps import build_site
        from repro.apps import urlquery as urlquery_app
        from repro.http.accesslog import AccessLog
        from repro.workloads.generator import replay_log
        from repro.workloads.runner import (
            db2www_request_builder,
            run_workload,
        )

        app = urlquery_app.install(rows=20)
        site = build_site(app.engine, app.library)
        log = AccessLog()
        site.router.access_log = log
        browser = site.new_browser()
        browser.get(app.input_path)
        browser.get(app.report_path
                    + "?SEARCH=ib&USE_TITLE=yes&DBFIELDS=title")

        result = run_workload(
            site.gateway, replay_log(log.entries()),
            db2www_request_builder("urlquery.d2w"))
        assert result.ok
        assert result.responses == 2
