"""The open-loop generator: fixed schedules, intended-time latency."""

import threading
import time

import pytest

from repro.http.message import HttpRequest
from repro.http.router import Router
from repro.workloads.openloop import (
    ArrivalSchedule,
    run_open_loop,
    router_submitter,
)


class TestArrivalSchedule:
    def test_poisson_is_deterministic_per_seed(self):
        a = ArrivalSchedule.poisson(100.0, 1.0, seed=7)
        b = ArrivalSchedule.poisson(100.0, 1.0, seed=7)
        c = ArrivalSchedule.poisson(100.0, 1.0, seed=8)
        assert a.offsets == b.offsets
        assert a.offsets != c.offsets

    def test_poisson_rate_approximates_target(self):
        schedule = ArrivalSchedule.poisson(200.0, 5.0, seed=1)
        assert len(schedule) == pytest.approx(1000, rel=0.15)
        assert all(x < y for x, y in zip(schedule.offsets,
                                         schedule.offsets[1:]))

    def test_uniform_spacing(self):
        schedule = ArrivalSchedule.uniform(10.0, 1.0)
        assert len(schedule) == 10
        gaps = [y - x for x, y in zip(schedule.offsets,
                                      schedule.offsets[1:])]
        assert all(gap == pytest.approx(0.1) for gap in gaps)

    def test_rate_property(self):
        schedule = ArrivalSchedule.uniform(50.0, 2.0)
        assert schedule.rate == pytest.approx(50.0, rel=0.05)


class TestRunOpenLoop:
    def test_all_arrivals_submitted_and_indexed(self):
        seen = []
        lock = threading.Lock()

        def submit(index):
            with lock:
                seen.append(index)
            return 200

        result = run_open_loop(submit,
                               ArrivalSchedule.uniform(200.0, 0.1),
                               workers=4)
        assert sorted(seen) == list(range(20))
        assert result.attempted == 20
        assert result.successes() == 20
        assert result.abandoned == 0

    def test_latency_charged_from_intended_time(self):
        """Coordinated-omission safety: worker-queue wait is latency.

        One worker, three arrivals due at t=0, each taking 50ms: the
        third request's latency must include the ~100ms it waited for
        the worker, not just its own service time.
        """

        def submit(index):
            time.sleep(0.05)
            return 200

        result = run_open_loop(submit, [0.0, 0.0, 0.0], workers=1)
        ordered = sorted(s.latency for s in result.samples)
        assert ordered[0] < 0.09
        assert ordered[-1] > 0.13  # ~2 waits + own service

    def test_give_up_after_abandons_instead_of_submitting_late(self):
        submitted = []
        lock = threading.Lock()

        def submit(index):
            with lock:
                submitted.append(index)
            time.sleep(0.2)
            return 200

        result = run_open_loop(submit, [0.0, 0.0, 0.0, 0.0],
                               workers=1, give_up_after=0.1)
        assert len(submitted) == 1  # the rest gave up waiting
        assert result.abandoned == 3
        for sample in result.samples:
            if sample.abandoned:
                assert sample.status == 0
                assert sample.latency >= 0.1  # the wait it suffered
        # Abandoned arrivals are failures, not omissions.
        assert result.successes() == 1
        assert result.latency_ms(0.99) > 100.0

    def test_goodput_within_budget(self):
        latencies = {0: 0.0, 1: 0.0, 2: 0.3}

        def submit(index):
            time.sleep(latencies[index])
            return 200

        result = run_open_loop(submit, [0.0, 0.01, 0.02], workers=3)
        assert result.successes() == 3
        assert result.successes(within=0.1) == 2

    def test_submit_exception_counts_as_599(self):
        def submit(index):
            raise RuntimeError("boom")

        result = run_open_loop(submit, [0.0], workers=1)
        assert result.samples[0].status == 599
        assert result.successes() == 0

    def test_non_200_is_not_goodput(self):
        result = run_open_loop(lambda i: 503, [0.0, 0.0], workers=2)
        assert result.successes() == 0
        assert result.status_counts == {503: 2}


class TestRouterSubmitter:
    def test_drives_router_in_process(self):
        router = Router()
        router.add_page("/hello", "<P>hi</P>")
        submit = router_submitter(
            router, lambda index: HttpRequest.parse(
                b"GET /hello HTTP/1.0\r\n\r\n"))
        assert submit(0) == 200

    def test_client_key_varies_remote_addr(self):
        seen = []

        class SpyRouter:
            def handle(self, request, *, remote_addr):
                seen.append(remote_addr)

                class R:
                    status = 200
                    streaming = False
                    body_iter = None
                return R()

        submit = router_submitter(
            SpyRouter(), lambda index: object(),
            client_key=lambda index: f"10.0.0.{index % 4}")
        for i in range(4):
            submit(i)
        assert seen == ["10.0.0.0", "10.0.0.1", "10.0.0.2", "10.0.0.3"]
