"""PERF-CONC — throughput under concurrent clients (Figure 1's premise).

Drives the URL-query application from 1/2/4/8 worker threads over the
in-process gateway and records aggregate throughput.  Expected shape:
modest gains then a plateau — the SQLite connection and the GIL
serialise the hot path, an honest stand-in for a single-disk 1996
server saturating.
"""

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.site import build_site
from repro.workloads.concurrent import run_concurrent
from repro.workloads.generator import UrlQueryWorkload
from repro.workloads.runner import db2www_request_builder

REQUESTS_PER_RUN = 200


@pytest.fixture(scope="module")
def site():
    app = urlquery_app.install(rows=150)
    return build_site(app.engine, app.library)


@pytest.mark.parametrize("threads", [1, 2, 4, 8])
def test_perf_conc_thread_sweep(benchmark, site, threads):
    def run():
        return run_concurrent(
            site.gateway,
            UrlQueryWorkload(seed=17).requests(REQUESTS_PER_RUN),
            db2www_request_builder("urlquery.d2w"),
            threads=threads)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.ok
    assert result.summary.count == REQUESTS_PER_RUN


def test_perf_conc_artifact(benchmark, site, artifact):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["PERF-CONC — concurrent clients, in-process gateway",
             "",
             f"{'threads':>8}{'req_per_s':>12}{'p95_ms':>10}"]
    for threads in (1, 2, 4, 8):
        result = run_concurrent(
            site.gateway,
            UrlQueryWorkload(seed=17).requests(REQUESTS_PER_RUN),
            db2www_request_builder("urlquery.d2w"),
            threads=threads)
        assert result.ok
        lines.append(f"{threads:>8}"
                     f"{result.summary.throughput_rps:>12.0f}"
                     f"{result.summary.p95_ms:>10.3f}")
    lines += ["",
              "Shape: limited scaling — the shared connection and",
              "interpreter serialise the hot path, as a 1996 single-",
              "disk server's DBMS did."]
    artifact("perf_concurrency.txt", "\n".join(lines) + "\n")
