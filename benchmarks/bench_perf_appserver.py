"""PERF-APPSRV — persistent app-server gateway and the streaming path.

Two acceptance claims from the app-server work:

* **Throughput** — the pre-forked worker pool (warm interpreter, parsed
  macros, pooled connections) must serve the same report at >= 5x the
  requests/sec of faithful process-per-request CGI, which re-pays
  interpreter start-up and a fresh DBMS connect every time.
* **Memory** — a streaming render of a 100k-row report must hold peak
  RSS within 1.5x of a small-report baseline, while the buffered render
  grows with the page (it materialises every row before the first byte
  leaves).

Both are measured here and written to ``out/perf_appserver.txt`` (with
the ``speedup:`` line summarize.py lifts into the perf baseline) and
``out/BENCH_appserver.json`` (machine-readable, checked in).

``REPRO_BENCH_QUICK=1`` shrinks rounds and row counts for CI smoke runs
(the speedup bar still holds; the RSS ratio check is relaxed to the
same shape at smaller scale).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.datasets import seed_urldb
from repro.appserver import AppServerDispatcher
from repro.cgi.environ import CgiEnvironment
from repro.cgi.process import SubprocessCgiRunner
from repro.cgi.request import CgiRequest
from repro.sql.connection import Connection
from repro.workloads.metrics import WorkerReport

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

QUERY = "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"

#: requests per throughput measurement
APPSERVER_ROUNDS = 30 if QUICK else 200
SUBPROCESS_ROUNDS = 3 if QUICK else 10

#: rows for the streaming RSS probe (quick mode still needs enough
#: rows that the buffered page dominates interpreter noise in ru_maxrss)
BIG_ROWS = 50_000 if QUICK else 100_000
SMALL_ROWS = 100


def report_request() -> CgiRequest:
    return CgiRequest(CgiEnvironment(
        request_method="GET", script_name="/cgi-bin/db2www",
        path_info="/urlquery.d2w/report", query_string=QUERY))


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("appsrv")
    db_path = tmp_path / "urldb.sqlite"
    conn = Connection(str(db_path))
    seed_urldb(conn, 150)
    conn.close()
    macro_dir = tmp_path / "macros"
    macro_dir.mkdir()
    (macro_dir / "urlquery.d2w").write_text(
        urlquery_app.URLQUERY_MACRO, encoding="utf-8")
    return {"REPRO_MACRO_DIR": str(macro_dir),
            "REPRO_DATABASE_URLDB": str(db_path),
            "REPRO_QUERY_CACHE": "64",
            "REPRO_POOL_SIZE": "1"}


def _requests_per_second(run, rounds: int) -> float:
    run()  # warm-up (first subprocess spawn, first worker checkout)
    start = time.perf_counter()
    for _ in range(rounds):
        response = run()
        assert response.status == 200
    return rounds / (time.perf_counter() - start)


# ---------------------------------------------------------------------------
# Throughput: warm worker pool vs process-per-request
# ---------------------------------------------------------------------------

def test_perf_appserver_throughput(benchmark, deployment, artifact):
    """>= 5x requests/sec over subprocess CGI on the same deployment."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    runner = SubprocessCgiRunner(extra_env=deployment)
    subprocess_rps = _requests_per_second(
        lambda: runner.run(report_request()), SUBPROCESS_ROUNDS)

    with AppServerDispatcher(deployment, workers=4) as pool:
        before = WorkerReport.from_stats(pool.stats())
        appserver_rps = _requests_per_second(
            lambda: pool.run(report_request()), APPSERVER_ROUNDS)
        report = WorkerReport.from_stats(pool.stats()).delta(before)

    speedup = appserver_rps / subprocess_rps
    lines = [
        f"PERF-APPSRV — one report request, persistent worker pool "
        f"vs process-per-request CGI ({APPSERVER_ROUNDS} rounds)",
        "",
        f"{'mode':<28}{'req_per_s':>12}",
        f"{'process-per-request CGI':<28}{subprocess_rps:>12.1f}",
        f"{'app-server (4 workers)':<28}{appserver_rps:>12.1f}",
        "",
        f"speedup: {speedup:.2f}x",
        "",
        WorkerReport.header(),
        report.row("bench"),
    ]
    artifact("perf_appserver.txt", "\n".join(lines) + "\n")

    _merge_json(artifact, {
        "quick": QUICK,
        "throughput": {
            "rounds": APPSERVER_ROUNDS,
            "subprocess_req_per_s": round(subprocess_rps, 2),
            "appserver_req_per_s": round(appserver_rps, 2),
            "speedup": round(speedup, 2),
            "pool": report.__dict__,
        },
    })
    assert report.crashes == 0
    assert report.requests == APPSERVER_ROUNDS + 1
    assert speedup >= 5.0, (
        f"app server only {speedup:.2f}x over subprocess CGI")


# ---------------------------------------------------------------------------
# Memory: streaming vs buffered render of a large report
# ---------------------------------------------------------------------------

#: Run in a child interpreter so ru_maxrss is a clean high-water mark
#: for exactly one render mode (the mark cannot be reset in-process).
_RSS_PROBE = """
import json, resource, sys
from repro.core.engine import MacroEngine
from repro.core.parser import parse_macro
from repro.sql.gateway import DatabaseRegistry

mode, rows = sys.argv[1], int(sys.argv[2])
registry = DatabaseRegistry()
db = registry.register_memory("BIG")
with db.connect() as conn:
    conn.execute("CREATE TABLE entries (n INTEGER, payload TEXT)")
    conn.begin()
    for i in range(rows):
        conn.execute("INSERT INTO entries VALUES (?, ?)",
                     (i, "x" * 200))
    conn.commit()
macro = parse_macro(
    '%DEFINE DATABASE = "BIG"\\n'
    '%SQL{ SELECT n, payload FROM entries ORDER BY n\\n'
    '%SQL_REPORT{%ROW{<LI>$(V1): $(V2)\\n%}%}\\n%}\\n'
    '%HTML_REPORT{%EXEC_SQL done%}')
engine = MacroEngine(registry)
emitted = 0
if mode == "stream":
    for chunk in engine.execute_report_stream(macro).chunks:
        emitted += len(chunk)   # consume and discard, like a socket
else:
    emitted = len(engine.execute_report(macro).html)
print(json.dumps({
    "mode": mode, "rows": rows, "page_bytes": emitted,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _probe(mode: str, rows: int) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, mode, str(rows)],
        capture_output=True, env=env, timeout=600, check=True)
    return json.loads(proc.stdout)


def test_perf_appserver_streaming_rss(benchmark, artifact):
    """Streaming a 100k-row report stays flat; buffering grows with it."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    baseline = _probe("stream", SMALL_ROWS)
    streamed = _probe("stream", BIG_ROWS)
    buffered = _probe("buffer", BIG_ROWS)
    assert streamed["page_bytes"] == buffered["page_bytes"]

    stream_ratio = streamed["peak_rss_kb"] / baseline["peak_rss_kb"]
    buffer_ratio = buffered["peak_rss_kb"] / baseline["peak_rss_kb"]
    lines = [
        f"PERF-APPSRV — peak RSS rendering a {BIG_ROWS}-row report "
        f"({streamed['page_bytes'] / 1e6:.1f} MB page)",
        "",
        f"{'mode':<26}{'rows':>9}{'peak_rss_kb':>13}{'vs_small':>10}",
        f"{'stream (baseline)':<26}{SMALL_ROWS:>9}"
        f"{baseline['peak_rss_kb']:>13}{1.0:>9.2f}x",
        f"{'stream':<26}{BIG_ROWS:>9}"
        f"{streamed['peak_rss_kb']:>13}{stream_ratio:>9.2f}x",
        f"{'buffered':<26}{BIG_ROWS:>9}"
        f"{buffered['peak_rss_kb']:>13}{buffer_ratio:>9.2f}x",
        "",
        "Shape: the streaming path rides the live cursor, so peak",
        "memory is independent of report size; the buffered path",
        "materialises the page and grows linearly with it.",
    ]
    artifact("perf_appserver_rss.txt", "\n".join(lines) + "\n")
    _merge_json(artifact, {"streaming_rss": {
        "rows": BIG_ROWS,
        "page_bytes": streamed["page_bytes"],
        "baseline_peak_rss_kb": baseline["peak_rss_kb"],
        "stream_peak_rss_kb": streamed["peak_rss_kb"],
        "buffered_peak_rss_kb": buffered["peak_rss_kb"],
        "stream_ratio": round(stream_ratio, 3),
        "buffered_ratio": round(buffer_ratio, 3),
    }})

    # buffered materialisation costs real memory over streaming...
    assert buffered["peak_rss_kb"] > streamed["peak_rss_kb"]
    # ...while streaming stays within 1.5x of the small-report baseline
    assert stream_ratio <= 1.5, (
        f"streaming peak RSS {stream_ratio:.2f}x small-report baseline")


def _merge_json(artifact, fields: dict) -> None:
    """Accumulate both tests' results into one checked-in JSON file."""
    path = Path(__file__).parent / "out" / "BENCH_appserver.json"
    payload = {}
    if path.is_file():
        payload = json.loads(path.read_text())
    payload.update(fields)
    artifact("BENCH_appserver.json",
             json.dumps(payload, indent=2, sort_keys=True) + "\n")
