"""BENCH-OVERLOAD — open-loop load sweep, naive vs admission-controlled.

The closed-loop harnesses elsewhere in this directory throttle
themselves when the server slows down — exactly the coordinated
omission that hides overload collapse.  This bench drives the same
urlquery deployment **open-loop**: a fixed Poisson arrival schedule at
1x..10x the measured capacity, every latency charged from the arrival's
*intended* time, abandoned arrivals counted as failures.

Two configurations face the same schedules:

* **naive** — the router as-is: every arrival is dispatched, however
  many are already inside.  Past capacity the backlog grows without
  bound and goodput (200s completing within the latency budget)
  collapses.
* **controlled** — the same router behind an
  :class:`~repro.overload.OverloadController`: bounded WFQ admission
  queue, per-class cost classification (operator rule for the heavy
  report shape, learned profile for the rest) and AIMD shedding.
  Excess heavy traffic buys fast honest 503s; interactive work keeps
  flowing near its SLO.

The acceptance bars (asserted here, re-checked by CI's overload-smoke
job under ``REPRO_BENCH_QUICK=1``):

* controlled goodput at 10x >= 80% of the measured 1x capacity;
* controlled interactive p99 (client-side, queue wait included) under
  the SLO;
* the naive configuration fails **both** of those bars at 10x.

Results land in ``out/bench_overload.txt`` and machine-readable
``out/BENCH_overload.json``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.apps import build_site
from repro.apps import urlquery as urlquery_app
from repro.core.engine import EngineConfig, MacroEngine
from repro.http.message import HttpRequest
from repro.obs.metrics import MetricsRegistry
from repro.overload.classify import HEAVY, LatencyProfiler, RequestClassifier
from repro.overload.control import OverloadController
from repro.sql.gateway import DatabaseRegistry
from repro.sql.querycache import QueryResultCache
from repro.workloads.metrics import percentile
from repro.workloads.openloop import (
    ArrivalSchedule,
    run_open_loop,
    router_submitter,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

ROWS = 3000               # urldb size: one heavy scan ~= tens of ms
SLO_MS = 150.0            # interactive p99 target (client-side)
LATENCY_BUDGET = 1.0      # seconds: a 200 later than this is not goodput
GIVE_UP_AFTER = 2.0       # seconds: the synthetic user walks away
GOODPUT_BAR = 0.8         # of measured 1x capacity, at 10x offered load
WORKERS = 64              # open-loop generator concurrency bound
MAX_CONCURRENT = 4        # controlled: requests past admission
QUEUE_LIMIT = 32

CAP_SECONDS = 1.5 if QUICK else 3.0
SWEEP_SECONDS = 3.0 if QUICK else 5.0
MULTIPLIERS = (1, 3, 10) if QUICK else (1, 2, 4, 6, 8, 10)

#: per 10 arrivals: 1 heavy full-scan report, 3 repeats of one cached
#: query, 6 interactive selective searches
HEAVY_SLOT = 0
CACHED_SLOTS = (1, 2, 3)

_REPORT = "/cgi-bin/db2www/urlquery.d2w/report"
_CACHED_TARGET = (f"{_REPORT}?SEARCH=multimedia&USE_TITLE=yes"
                  f"&DBFIELDS=title")
_INTERACTIVE_TERMS = ("lantern", "cyberdyne", "zebra", "quartz",
                      "zeppelin", "xylophone", "yonder", "nimbus")


def class_of(index: int) -> str:
    slot = index % 10
    if slot == HEAVY_SLOT:
        return "heavy"
    if slot in CACHED_SLOTS:
        return "cached"
    return "interactive"


def request_for(index: int) -> HttpRequest:
    cls = class_of(index)
    if cls == "heavy":
        # A unique search term per arrival defeats the query cache: the
        # full LIKE scan over every row runs every time.  USE_DESC=yes
        # only ever appears here — the operator rule keys on it.
        target = (f"{_REPORT}?SEARCH=q{index}&USE_URL=yes"
                  f"&USE_TITLE=yes&USE_DESC=yes"
                  f"&DBFIELDS=title&DBFIELDS=description")
    elif cls == "cached":
        target = _CACHED_TARGET
    else:
        term = _INTERACTIVE_TERMS[(index // 10) % len(_INTERACTIVE_TERMS)]
        target = (f"{_REPORT}?SEARCH={term}&USE_TITLE=yes"
                  f"&DBFIELDS=title")
    return HttpRequest.parse(f"GET {target} HTTP/1.0\r\n\r\n".encode())


def build_router():
    registry = DatabaseRegistry()
    engine = MacroEngine(registry, config=EngineConfig(
        query_cache=QueryResultCache(max_entries=64)))
    app = urlquery_app.install(rows=ROWS, registry=registry,
                               engine=engine)
    return build_site(app.engine, app.library).router


def build_controller() -> OverloadController:
    # The operator knows the all-fields report shape is expensive; the
    # profiler learns everything else (repeated queries become cache
    # hits, which the profiler observes as sub-millisecond CACHED).
    classifier = RequestClassifier(
        rules=[("USE_DESC=yes", HEAVY)],
        profiler=LatencyProfiler())
    return OverloadController(
        max_concurrent=MAX_CONCURRENT, queue_limit=QUEUE_LIMIT,
        interactive_slo_ms=SLO_MS, max_queue_wait=0.1,
        classifier=classifier, metrics=MetricsRegistry())


def warm(router, submit) -> None:
    """Prime sqlite caches, the query cache and the learned profile."""
    for index in range(40):
        if class_of(index) == "heavy" and index > HEAVY_SLOT:
            continue  # one heavy warms sqlite; the rest are unique
        submit(index)


def measure_capacity(submit) -> float:
    """Closed-loop req/s of the mixed stream at healthy concurrency."""
    stop_at = time.perf_counter() + CAP_SECONDS
    counts = [0] * MAX_CONCURRENT
    cursor = [0]
    lock = threading.Lock()

    def worker(slot: int) -> None:
        while time.perf_counter() < stop_at:
            with lock:
                index = cursor[0]
                cursor[0] += 1
            status = submit(index)
            assert status == 200, status
            counts[slot] += 1

    threads = [threading.Thread(target=worker, args=(slot,))
               for slot in range(MAX_CONCURRENT)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return sum(counts) / (time.perf_counter() - start)


def sweep_point(router, rate: float, seed: int) -> dict:
    submit = router_submitter(
        router, request_for,
        client_key=lambda index: f"10.0.0.{index % 16}")
    schedule = ArrivalSchedule.poisson(rate, SWEEP_SECONDS, seed=seed)
    result = run_open_loop(submit, schedule, workers=WORKERS,
                           give_up_after=GIVE_UP_AFTER)
    interactive = sorted(
        sample.latency for sample in result.samples
        if class_of(sample.index) == "interactive"
        and not sample.abandoned and sample.status == 200)
    p99_ms = (percentile(interactive, 0.99) * 1e3
              if interactive else float("inf"))
    statuses = result.status_counts
    return {
        "offered_rps": round(rate, 1),
        "arrivals": result.attempted,
        "goodput_rps": round(
            result.goodput_rps(within=LATENCY_BUDGET), 1),
        "interactive_p99_ms": round(p99_ms, 1),
        "shed_503": statuses.get(503, 0),
        "expired_504": statuses.get(504, 0),
        "abandoned": result.abandoned,
    }


def test_bench_overload_sweep(benchmark, artifact):
    """Goodput + p99 curves, naive vs controlled, 1x..10x capacity."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    naive_router = build_router()
    controlled_router = build_router()
    controller = build_controller()
    controlled_router.overload = controller

    warm(naive_router, router_submitter(naive_router, request_for))
    warm(controlled_router,
         router_submitter(controlled_router, request_for))

    capacity = measure_capacity(
        router_submitter(naive_router, request_for))
    goodput_floor = GOODPUT_BAR * capacity

    sweep = []
    for position, multiplier in enumerate(MULTIPLIERS):
        rate = multiplier * capacity
        naive = sweep_point(naive_router, rate, seed=100 + position)
        controlled = sweep_point(controlled_router, rate,
                                 seed=100 + position)
        sweep.append({"multiplier": multiplier, "naive": naive,
                      "controlled": controlled})

    at_10x = next(entry for entry in sweep
                  if entry["multiplier"] == MULTIPLIERS[-1])
    naive_10x, controlled_10x = at_10x["naive"], at_10x["controlled"]

    lines = [
        f"BENCH-OVERLOAD — open-loop Poisson sweep, "
        f"{SWEEP_SECONDS:.0f}s per point "
        f"(capacity {capacity:.0f} req/s closed-loop at "
        f"{MAX_CONCURRENT} concurrent; goodput = 200s within "
        f"{LATENCY_BUDGET:.0f}s of intended send; "
        f"interactive SLO p99 <= {SLO_MS:.0f} ms)",
        "",
        f"{'load':>5} {'offered':>9} | {'naive_good':>10} "
        f"{'naive_p99':>10} {'abandoned':>9} | {'ctrl_good':>10} "
        f"{'ctrl_p99':>9} {'shed503':>8}",
    ]
    for entry in sweep:
        naive, controlled = entry["naive"], entry["controlled"]
        lines.append(
            f"{entry['multiplier']:>4}x {naive['offered_rps']:>9} | "
            f"{naive['goodput_rps']:>10} "
            f"{naive['interactive_p99_ms']:>10} "
            f"{naive['abandoned']:>9} | "
            f"{controlled['goodput_rps']:>10} "
            f"{controlled['interactive_p99_ms']:>9} "
            f"{controlled['shed_503']:>8}")
    lines += [
        "",
        f"bars at {MULTIPLIERS[-1]}x: goodput >= "
        f"{goodput_floor:.0f} req/s, interactive p99 <= "
        f"{SLO_MS:.0f} ms",
        f"controlled: goodput {controlled_10x['goodput_rps']}, "
        f"p99 {controlled_10x['interactive_p99_ms']} ms",
        f"naive:      goodput {naive_10x['goodput_rps']}, "
        f"p99 {naive_10x['interactive_p99_ms']} ms",
    ]
    artifact("bench_overload.txt", "\n".join(lines) + "\n")

    stats = controller.stats()
    payload = {
        "quick": QUICK,
        "rows": ROWS,
        "slo_ms": SLO_MS,
        "latency_budget_s": LATENCY_BUDGET,
        "capacity_req_per_s": round(capacity, 1),
        "goodput_bar_fraction": GOODPUT_BAR,
        "max_concurrent": MAX_CONCURRENT,
        "queue_limit": QUEUE_LIMIT,
        "sweep": sweep,
        "controller": {
            "admitted": stats["admitted"],
            "queued": stats["queued"],
            "shed": stats["shed"],
            "evicted": stats["evicted"],
            "expired_in_queue": stats["expired_in_queue"],
        },
        "bars": {
            "controlled_goodput_ok":
                controlled_10x["goodput_rps"] >= goodput_floor,
            "controlled_p99_ok":
                controlled_10x["interactive_p99_ms"] <= SLO_MS,
            "naive_goodput_failed":
                naive_10x["goodput_rps"] < goodput_floor,
            "naive_p99_failed":
                naive_10x["interactive_p99_ms"] > SLO_MS,
        },
    }
    artifact("BENCH_overload.json",
             json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert controlled_10x["goodput_rps"] >= goodput_floor, (
        f"controlled goodput {controlled_10x['goodput_rps']} under "
        f"{goodput_floor:.0f} req/s at {MULTIPLIERS[-1]}x")
    assert controlled_10x["interactive_p99_ms"] <= SLO_MS, (
        f"controlled interactive p99 "
        f"{controlled_10x['interactive_p99_ms']} ms over the "
        f"{SLO_MS:.0f} ms SLO at {MULTIPLIERS[-1]}x")
    assert naive_10x["goodput_rps"] < goodput_floor, (
        "naive goodput held the bar — the overload run is not "
        "actually overloading")
    assert naive_10x["interactive_p99_ms"] > SLO_MS, (
        "naive interactive p99 held the SLO — the overload run is "
        "not actually overloading")
    # Control honesty: shedding actually happened, with real 503s.
    assert controlled_10x["shed_503"] > 0
