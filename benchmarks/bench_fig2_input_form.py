"""FIG2 — Figure 2: the sample HTML input form.

The paper's Figure 2 lists the HTML source of the URL-query input form
(six input variables across INPUT and SELECT tags).  This bench times
input-mode macro processing — the operation that *produces* that listing
— and regenerates the form source as the artifact.
"""


def test_fig2_generate_input_form(benchmark, urlquery, artifact):
    macro = urlquery.library.load(urlquery.macro_name)

    result = benchmark(urlquery.engine.execute_input, macro)

    html = result.html
    artifact("fig2_input_form.html", html)
    # The figure's six input variables, all present in the generated form.
    for name in ("SEARCH", "USE_URL", "USE_TITLE", "USE_DESC",
                 "DBFIELDS", "SHOWSQL"):
        assert f'NAME="{name}"' in html
    # Form posts back to the report-mode URL of Section 4.
    assert 'ACTION="/cgi-bin/db2www/urlquery.d2w/report"' in html
    # The hidden-variable escape appears as a literal in the source.
    assert 'VALUE="$(hidden_a)"' in html


def test_fig2_parse_macro_from_source(benchmark, urlquery):
    """Authoring-side cost: parsing the Appendix A macro text."""
    from repro.apps.urlquery import URLQUERY_MACRO
    from repro.core.parser import parse_macro

    macro = benchmark(parse_macro, URLQUERY_MACRO)
    assert macro.html_input is not None
    assert len(macro.sql_sections()) == 1
