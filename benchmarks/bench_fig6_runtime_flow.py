"""FIG6 — Figure 6: the DB2 WWW runtime flow control.

The figure shows the two entries into the runtime: an input-mode call
producing the form and a report-mode call running the dynamic SQL.  The
bench times the complete user cycle — fetch form, fill, submit, read
report — and each mode separately, writing the flow trace as artifact.
"""


def test_fig6_full_user_cycle(benchmark, urlquery_site, urlquery,
                              artifact):
    def cycle():
        browser = urlquery_site.new_browser()
        page = browser.get(urlquery.input_path)
        form = page.form(0)
        form.set("SEARCH", "ib")
        return browser.submit(form, click="Submit Query")

    report = benchmark(cycle)

    assert report.title == "DB2 WWW URL Query Result"
    artifact("fig6_runtime_flow.txt", (
        "Figure 6 — runtime flow control\n"
        "  1. GET  .../urlquery.d2w/input   -> DEFINE sections +"
        " HTML input section processed\n"
        "  2. user fills the form; client packages variables\n"
        "  3. POST .../urlquery.d2w/report  -> DEFINE sections +"
        " HTML report section processed,\n"
        "     %EXEC_SQL runs dynamic SQL, report variables"
        " instantiated per row\n"
        f"  -> report page: {report.title!r}\n"))


def test_fig6_input_mode_only(benchmark, urlquery):
    macro = urlquery.library.load(urlquery.macro_name)
    result = benchmark(urlquery.engine.execute_input, macro)
    assert result.statements == []  # SQL sections skipped entirely


def test_fig6_report_mode_only(benchmark, urlquery):
    macro = urlquery.library.load(urlquery.macro_name)
    inputs = [("SEARCH", "ib"), ("USE_TITLE", "yes"),
              ("DBFIELDS", "title")]
    result = benchmark(urlquery.engine.execute_report, macro, inputs)
    assert len(result.statements) == 1
