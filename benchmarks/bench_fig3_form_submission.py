"""FIG3 — Figure 3: the form as seen by the user, and the variable
bindings the Web client sends.

Times the client-side pipeline (parse page → build form model → apply
the user's clicks → encode the submission) and regenerates both halves
of the figure: the rendered page and the exact bindings listing.
"""

from repro.cgi.query_string import decode_pairs, encode_pairs
from repro.html.forms import extract_forms
from repro.html.parser import parse_html
from repro.html.render import render_text


def _user_selections(form):
    """Figure 3's user: empty search box, URL+Title checked, Title and
    Description picked for the report, Show SQL left on No."""
    form.set("SEARCH", "")
    form["DBFIELDS"].select("$(hidden_b)")
    return form


def test_fig3_client_side_pipeline(benchmark, urlquery, artifact):
    page_html = urlquery.engine.execute_input(
        urlquery.library.load(urlquery.macro_name)).html

    def client_pipeline() -> str:
        document = parse_html(page_html)
        form = _user_selections(extract_forms(document)[0])
        return encode_pairs(form.submission_pairs(click="Submit Query"))

    query_string = benchmark(client_pipeline)

    pairs = decode_pairs(query_string)
    listing = "\n".join(f'{name} = "{value}"' for name, value in pairs)
    artifact("fig3_client_bindings.txt", listing + "\n")
    # The figure's bindings: SEARCH empty, both checked search flags,
    # two DBFIELDS values, SHOWSQL null; USE_DESC absent entirely.
    assert ("SEARCH", "") in pairs
    assert ("USE_URL", "yes") in pairs
    assert ("USE_TITLE", "yes") in pairs
    assert [v for n, v in pairs if n == "DBFIELDS"] == \
        ["$(hidden_a)", "$(hidden_b)"]
    assert ("SHOWSQL", "") in pairs
    assert all(n != "USE_DESC" for n, _ in pairs)


def test_fig3_render_page_as_browser(benchmark, urlquery, artifact):
    page_html = urlquery.engine.execute_input(
        urlquery.library.load(urlquery.macro_name)).html
    document = parse_html(page_html)

    text = benchmark(render_text, document)

    artifact("fig3_rendered_form.txt", text)
    assert "[x] URL" in text
    assert "[ ] Description" in text
    assert "< Submit Query >" in text
