"""EXT-PAGE — the scrollable cursor the paper promises (Section 4.3).

"The lazy substitution mechanism and the HTML input variable processing
features can also be used as a basis for implementing useful application
features like hiding variables from the end user, scrollable cursors,
and relating multiple client-server interactions on the web as part of
the same application."

The bench drives the paging application — window rendering per page,
and a full user walk across the whole result set — and regenerates a
transcript of the three-page browse as the artifact.
"""

import pytest

from repro.apps import paging
from repro.apps.site import build_site


@pytest.fixture(scope="module")
def site_and_app():
    app = paging.install(rows=45)  # page size 10 -> 5 pages
    return build_site(app.engine, app.library), app


def test_ext_page_single_window(benchmark, site_and_app):
    site, app = site_and_app
    macro = app.library.load(app.macro_name)
    inputs = [("q", ""), ("START_ROW_NUM", "21")]

    result = benchmark(app.engine.execute_report, macro, inputs)
    assert result.html.count("<LI>") == 10
    assert "#21 " in result.html


def test_ext_page_full_walk(benchmark, site_and_app, artifact):
    site, app = site_and_app

    def walk() -> list[int]:
        browser = site.new_browser()
        page = browser.get(app.report_path + "?q=")
        counts = [page.html.count("<LI>")]
        while any("Next page" in link.text for link in page.links):
            page = browser.follow("Next page")
            counts.append(page.html.count("<LI>"))
        return counts

    counts = benchmark(walk)
    assert counts == [10, 10, 10, 10, 5]
    artifact("ext_scrollable_cursor.txt", "\n".join([
        "EXT-PAGE — browsing 45 rows, page size 10",
        "",
        *(f"  page {i + 1}: {n} rows"
          + ("  [Next]" if i + 1 < len(counts) else "  [end]")
          for i, n in enumerate(counts)),
        "",
        "State (START_ROW_NUM, q) travels in hyperlinks built from",
        "conditional + %EXEC variables; the gateway holds no session.",
    ]) + "\n")


def test_ext_page_window_cost_independent_of_offset(benchmark,
                                                    site_and_app):
    """Later pages cost the same render work (fetch is the same; only
    the printed window moves), matching the mechanism's design."""
    _site, app = site_and_app
    macro = app.library.load(app.macro_name)

    result = benchmark(app.engine.execute_report, macro,
                       [("q", ""), ("START_ROW_NUM", "41")])
    assert result.html.count("<LI>") == 5
