"""EXT-KEEPALIVE — persistent connections vs HTTP/1.0 close-per-request.

The paper's deployment world paid a TCP connect per page; Netscape-era
Keep-Alive removed it.  This bench runs the same report request over
the socket server with the strict 1.0 client (new connection each
time) and the persistent client (one connection, many requests), so the
per-connect cost is isolated.  Expected shape: keep-alive strictly
faster per request, the gap being the connect/teardown overhead.
"""

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.site import build_site
from repro.http.client import HttpClient
from repro.http.headers import Headers
from repro.http.message import HttpRequest
from repro.http.persistent import PersistentHttpClient
from repro.http.urls import Url

QUERY = "SEARCH=ib&USE_TITLE=yes&DBFIELDS=title"


@pytest.fixture(scope="module")
def served():
    app = urlquery_app.install(rows=80)
    site = build_site(app.engine, app.library)
    server = site.serve()
    yield server
    server.shutdown()


def _request(url: Url) -> HttpRequest:
    return HttpRequest(target=url.request_target, headers=Headers())


def test_ext_keepalive_close_per_request(benchmark, served):
    url = Url.parse(f"{served.base_url}/cgi-bin/db2www/urlquery.d2w/"
                    f"report?{QUERY}")
    client = HttpClient()

    response = benchmark(lambda: client.fetch(url, _request(url)))
    assert response.status == 200


def test_ext_keepalive_persistent(benchmark, served):
    url = Url.parse(f"{served.base_url}/cgi-bin/db2www/urlquery.d2w/"
                    f"report?{QUERY}")
    with PersistentHttpClient() as client:
        client.fetch(url, _request(url))  # warm the connection

        response = benchmark(lambda: client.fetch(url, _request(url)))
        assert response.status == 200


def test_ext_keepalive_artifact(benchmark, served, artifact):
    import time
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    url = Url.parse(f"{served.base_url}/cgi-bin/db2www/urlquery.d2w/"
                    f"report?{QUERY}")

    def timed(fetch, rounds=100):
        start = time.perf_counter()
        for _ in range(rounds):
            fetch()
        return (time.perf_counter() - start) / rounds * 1e3

    close_client = HttpClient()
    close_ms = timed(lambda: close_client.fetch(url, _request(url)))
    with PersistentHttpClient() as keep_client:
        keep_client.fetch(url, _request(url))
        keep_ms = timed(lambda: keep_client.fetch(url, _request(url)))

    artifact("ext_keepalive.txt", "\n".join([
        "EXT-KEEPALIVE — connection strategy over real TCP",
        "",
        f"{'client':<32}{'ms/request':>12}",
        f"{'HTTP/1.0 close-per-request':<32}{close_ms:>12.3f}",
        f"{'Keep-Alive persistent':<32}{keep_ms:>12.3f}",
        "",
        "The gap is pure TCP connect/teardown — the cost Netscape-era",
        "Keep-Alive removed from every page element fetch.",
    ]) + "\n")
    assert keep_ms < close_ms
