"""FIG7 + FIG8 — the Appendix A application's two screens.

Figure 7 is the application input form as displayed to the user;
Figure 8 is the hyperlinked report.  The benches time the server-side
page generation for each and write the text-mode renderings — the
reproduction's version of the screenshots — as artifacts.
"""

from repro.html.render import render_markup


def test_fig7_appendix_input_page(benchmark, urlquery, artifact):
    macro = urlquery.library.load(urlquery.macro_name)

    result = benchmark(urlquery.engine.execute_input, macro)

    rendering = render_markup(result.html)
    artifact("fig7_appendix_input.txt", rendering)
    assert "Query URL Information" in rendering
    assert "[x] URL" in rendering
    assert "[x] Title" in rendering
    assert "[ ] Description" in rendering
    assert "( ) Yes" in rendering and "(o) No" in rendering
    assert "< Submit Query >" in rendering


def test_fig8_appendix_report_page(benchmark, urlquery, artifact):
    macro = urlquery.library.load(urlquery.macro_name)
    # The Figure 7 user's submission, post client round trip.
    inputs = [("SEARCH", "ib"), ("USE_URL", "yes"),
              ("USE_TITLE", "yes"),
              ("DBFIELDS", "$(hidden_a)"), ("DBFIELDS", "$(hidden_b)")]

    result = benchmark(urlquery.engine.execute_report, macro, inputs)

    rendering = render_markup(result.html)
    artifact("fig8_appendix_report.txt", rendering)
    assert "URL Query Result" in rendering
    assert "Select any of the following" in rendering
    # Hyperlinked URLs, as in the figure.
    assert result.html.count('<A HREF="http://') >= 1
    # Conditional extra columns resolved from the hidden variables.
    assert "description" in result.statements[0]


def test_fig8_report_scales_with_hits(benchmark, urlquery):
    """The no-filter query returns every row — the report's worst case
    at this database size (150 rows)."""
    macro = urlquery.library.load(urlquery.macro_name)
    inputs = [("SEARCH", "zz-nothing"), ("DBFIELDS", "title")]

    result = benchmark(urlquery.engine.execute_report, macro, inputs)
    assert result.html.count("<LI> <A HREF=") == urlquery.rows
