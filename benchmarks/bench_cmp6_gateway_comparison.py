"""CMP6 — the Section 6 related-work comparison, made quantitative.

Mounts DB2WWW and the four baseline gateways on one CGI gateway, runs
the same seeded URL-query workload against each, and reports latency,
throughput, developer effort and the capability matrix.  pytest-benchmark
times each gateway's report-path request; the run artifact carries the
full comparison table.

Expected shape (see DESIGN.md): all gateways are within a small factor
on latency — they do the same SQL work — while differing by an order of
magnitude in authoring effort and sharply in the capability checklist.
"""

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.site import build_site
from repro.baselines import comparison, gsql, plsql, rawcgi, wdb
from repro.cgi.environ import CgiEnvironment
from repro.cgi.request import CgiRequest
from repro.workloads.generator import UrlQueryWorkload
from repro.workloads.metrics import Summary
from repro.workloads.runner import (
    db2www_request_builder,
    plain_request_builder,
    run_workload,
)


@pytest.fixture(scope="module")
def arena():
    app = urlquery_app.install(rows=150)
    site = build_site(app.engine, app.library)
    site.gateway.install("rawcgi", rawcgi.RawCgiUrlQuery(app.registry))
    site.gateway.install("gsql", gsql.install_urlquery(app.registry))
    site.gateway.install("wdb", wdb.install_urlquery(app.registry))
    site.gateway.install("owa", plsql.install_urlquery(app.registry))
    return site


REPORT_REQUESTS = {
    "db2www": ("db2www", "/urlquery.d2w/report",
               "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"),
    "rawcgi": ("rawcgi", "/report",
               "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"),
    "gsql": ("gsql", "/report", "SEARCH=ib"),
    "wdb": ("wdb", "/report", "title=Ibm"),
    "plsql": ("owa", "/urlquery_report",
              "SEARCH=ib&USE_URL=yes&USE_TITLE=yes"),
}


@pytest.mark.parametrize("gateway_name", sorted(REPORT_REQUESTS))
def test_cmp6_report_latency(benchmark, arena, gateway_name):
    program, path_info, query = REPORT_REQUESTS[gateway_name]
    request = CgiRequest(CgiEnvironment(
        request_method="GET", script_name=f"/cgi-bin/{program}",
        path_info=path_info, query_string=query))

    response = benchmark(arena.gateway.dispatch, program, request)
    assert response.status == 200


def test_cmp6_workload_and_tables(benchmark, arena, artifact):
    """The full comparison run: 300 mixed requests per gateway."""
    summaries: dict[str, Summary] = {}

    db2 = benchmark.pedantic(
        run_workload, rounds=1, iterations=1,
        args=(arena.gateway, UrlQueryWorkload(seed=42).requests(300),
              db2www_request_builder("urlquery.d2w")))
    assert db2.ok
    summaries["db2www"] = db2.summary

    raw = run_workload(
        arena.gateway, UrlQueryWorkload(seed=42).requests(300),
        plain_request_builder("rawcgi"))
    assert raw.ok
    summaries["rawcgi"] = raw.summary

    # GSQL/WDB/PLSQL accept different parameter names; reuse the same
    # request stream but let each gateway read what it understands
    # (unknown names are simply unused form fields to them).
    for name, (program, path, _q) in (("gsql", REPORT_REQUESTS["gsql"]),
                                      ("wdb", REPORT_REQUESTS["wdb"])):
        result = run_workload(
            arena.gateway, UrlQueryWorkload(seed=42).requests(300),
            plain_request_builder(program, report_path=path))
        assert result.ok, name
        summaries[name] = result.summary

    plsql_result = run_workload(
        arena.gateway, UrlQueryWorkload(seed=42).requests(300),
        plain_request_builder("owa",
                              report_path="/urlquery_report",
                              input_path="/urlquery_form"))
    assert plsql_result.ok
    summaries["plsql"] = plsql_result.summary

    lines = ["CMP6 — same workload, five gateways",
             "", Summary.header()]
    for name in ("db2www", "rawcgi", "gsql", "wdb", "plsql"):
        lines.append(summaries[name].row(name))
    lines += ["", "Developer effort and capabilities:", "",
              comparison.capability_table()]
    artifact("cmp6_gateway_comparison.txt", "\n".join(lines) + "\n")

    # Shape assertions (not absolute numbers): DB2WWW pays a bounded
    # macro-processing overhead versus the hand-coded program...
    assert summaries["db2www"].mean_ms < \
        summaries["rawcgi"].mean_ms * 20
    # ...while requiring no procedural code at ~the same authoring size
    # class as a macro, an order less than the hand-written program.
    profiles = {p.name: p for p in comparison.profiles()}
    assert profiles["db2www"].capability_count() > \
        max(p.capability_count() for n, p in profiles.items()
            if n != "db2www")
