"""CMP6 — the Section 6 related-work comparison, made quantitative.

Mounts DB2WWW and the four baseline gateways on one CGI gateway, runs
the same seeded URL-query workload against each, and reports latency,
throughput, developer effort and the capability matrix.  pytest-benchmark
times each gateway's report-path request; the run artifact carries the
full comparison table.

Expected shape (see DESIGN.md): all gateways are within a small factor
on latency — they do the same SQL work — while differing by an order of
magnitude in authoring effort and sharply in the capability checklist.
"""

import os
import time

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.datasets import seed_urldb
from repro.apps.site import build_site
from repro.appserver import AppServerDispatcher
from repro.baselines import comparison, gsql, plsql, rawcgi, wdb
from repro.cgi.db2www_main import build_program
from repro.cgi.environ import CgiEnvironment
from repro.cgi.process import SubprocessCgiRunner
from repro.cgi.request import CgiRequest
from repro.sql.connection import Connection
from repro.workloads.generator import UrlQueryWorkload
from repro.workloads.metrics import Summary, WorkerReport
from repro.workloads.runner import (
    db2www_request_builder,
    plain_request_builder,
    run_workload,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))


@pytest.fixture(scope="module")
def arena():
    app = urlquery_app.install(rows=150)
    site = build_site(app.engine, app.library)
    site.gateway.install("rawcgi", rawcgi.RawCgiUrlQuery(app.registry))
    site.gateway.install("gsql", gsql.install_urlquery(app.registry))
    site.gateway.install("wdb", wdb.install_urlquery(app.registry))
    site.gateway.install("owa", plsql.install_urlquery(app.registry))
    return site


REPORT_REQUESTS = {
    "db2www": ("db2www", "/urlquery.d2w/report",
               "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"),
    "rawcgi": ("rawcgi", "/report",
               "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"),
    "gsql": ("gsql", "/report", "SEARCH=ib"),
    "wdb": ("wdb", "/report", "title=Ibm"),
    "plsql": ("owa", "/urlquery_report",
              "SEARCH=ib&USE_URL=yes&USE_TITLE=yes"),
}


@pytest.mark.parametrize("gateway_name", sorted(REPORT_REQUESTS))
def test_cmp6_report_latency(benchmark, arena, gateway_name):
    program, path_info, query = REPORT_REQUESTS[gateway_name]
    request = CgiRequest(CgiEnvironment(
        request_method="GET", script_name=f"/cgi-bin/{program}",
        path_info=path_info, query_string=query))

    response = benchmark(arena.gateway.dispatch, program, request)
    assert response.status == 200


def test_cmp6_workload_and_tables(benchmark, arena, artifact):
    """The full comparison run: 300 mixed requests per gateway."""
    summaries: dict[str, Summary] = {}

    db2 = benchmark.pedantic(
        run_workload, rounds=1, iterations=1,
        args=(arena.gateway, UrlQueryWorkload(seed=42).requests(300),
              db2www_request_builder("urlquery.d2w")))
    assert db2.ok
    summaries["db2www"] = db2.summary

    raw = run_workload(
        arena.gateway, UrlQueryWorkload(seed=42).requests(300),
        plain_request_builder("rawcgi"))
    assert raw.ok
    summaries["rawcgi"] = raw.summary

    # GSQL/WDB/PLSQL accept different parameter names; reuse the same
    # request stream but let each gateway read what it understands
    # (unknown names are simply unused form fields to them).
    for name, (program, path, _q) in (("gsql", REPORT_REQUESTS["gsql"]),
                                      ("wdb", REPORT_REQUESTS["wdb"])):
        result = run_workload(
            arena.gateway, UrlQueryWorkload(seed=42).requests(300),
            plain_request_builder(program, report_path=path))
        assert result.ok, name
        summaries[name] = result.summary

    plsql_result = run_workload(
        arena.gateway, UrlQueryWorkload(seed=42).requests(300),
        plain_request_builder("owa",
                              report_path="/urlquery_report",
                              input_path="/urlquery_form"))
    assert plsql_result.ok
    summaries["plsql"] = plsql_result.summary

    lines = ["CMP6 — same workload, five gateways",
             "", Summary.header()]
    for name in ("db2www", "rawcgi", "gsql", "wdb", "plsql"):
        lines.append(summaries[name].row(name))
    lines += ["", "Developer effort and capabilities:", "",
              comparison.capability_table()]
    artifact("cmp6_gateway_comparison.txt", "\n".join(lines) + "\n")

    # Shape assertions (not absolute numbers): DB2WWW pays a bounded
    # macro-processing overhead versus the hand-coded program...
    assert summaries["db2www"].mean_ms < \
        summaries["rawcgi"].mean_ms * 20
    # ...while requiring no procedural code at ~the same authoring size
    # class as a macro, an order less than the hand-written program.
    profiles = {p.name: p for p in comparison.profiles()}
    assert profiles["db2www"].capability_count() > \
        max(p.capability_count() for n, p in profiles.items()
            if n != "db2www")


# ---------------------------------------------------------------------------
# Dispatch modes: the same DB2WWW program behind three gateways
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def dispatch_deployment(tmp_path_factory):
    """File-backed deployment shared by all three dispatch modes."""
    tmp_path = tmp_path_factory.mktemp("cmp6-dispatch")
    db_path = tmp_path / "urldb.sqlite"
    conn = Connection(str(db_path))
    seed_urldb(conn, 150)
    conn.close()
    macro_dir = tmp_path / "macros"
    macro_dir.mkdir()
    (macro_dir / "urlquery.d2w").write_text(
        urlquery_app.URLQUERY_MACRO, encoding="utf-8")
    return {"REPRO_MACRO_DIR": str(macro_dir),
            "REPRO_DATABASE_URLDB": str(db_path),
            "REPRO_QUERY_CACHE": "64",
            "REPRO_POOL_SIZE": "1"}


def test_cmp6_dispatch_modes(benchmark, dispatch_deployment, artifact):
    """In-process vs subprocess CGI vs app server on one deployment.

    Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the round counts so CI
    can smoke all three gateways per push; the shape assertions hold at
    either scale.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rounds = 20 if QUICK else 100
    subprocess_rounds = 3 if QUICK else 10
    program, path_info, query = REPORT_REQUESTS["db2www"]

    def request():
        return CgiRequest(CgiEnvironment(
            request_method="GET", script_name=f"/cgi-bin/{program}",
            path_info=path_info, query_string=query))

    def timed(run, n):
        response = run()  # warm-up
        assert response.status == 200
        start = time.perf_counter()
        for _ in range(n):
            assert run().status == 200
        return (time.perf_counter() - start) / n * 1e3

    inprocess = build_program(dispatch_deployment)
    inprocess_ms = timed(lambda: inprocess.run(request()), rounds)

    runner = SubprocessCgiRunner(extra_env=dispatch_deployment)
    subprocess_ms = timed(lambda: runner.run(request()),
                          subprocess_rounds)

    with AppServerDispatcher(dispatch_deployment, workers=2) as pool:
        appserver_ms = timed(lambda: pool.run(request()), rounds)
        report = WorkerReport.from_stats(pool.stats())

    lines = [
        "CMP6 — one DB2WWW report request, three dispatch modes"
        + (" (quick)" if QUICK else ""),
        "",
        f"{'mode':<28}{'mean_ms':>10}{'req_per_s':>12}",
        f"{'in-process dispatch':<28}{inprocess_ms:>10.3f}"
        f"{1e3 / inprocess_ms:>12.1f}",
        f"{'app-server (2 workers)':<28}{appserver_ms:>10.3f}"
        f"{1e3 / appserver_ms:>12.1f}",
        f"{'process-per-request CGI':<28}{subprocess_ms:>10.3f}"
        f"{1e3 / subprocess_ms:>12.1f}",
        "",
        WorkerReport.header(),
        report.row("appserver"),
    ]
    artifact("cmp6_dispatch_modes.txt", "\n".join(lines) + "\n")

    # Shape: the app server pays a socket hop over in-process dispatch
    # but stays within the same order of magnitude, far below the
    # process-per-request cost it replaces.
    assert report.crashes == 0
    assert appserver_ms < subprocess_ms
    assert inprocess_ms < subprocess_ms
