"""ABL — ablations of the design choices DESIGN.md calls out.

1. **Lazy re-evaluation vs memoisation** — the paper's evaluator
   re-evaluates a variable at every reference.  A memoising evaluator is
   faster on reference-heavy pages, but the tests alongside show it
   corrupts per-row report variables — which is exactly why the real
   engine does not cache.  The bench quantifies the price of
   correctness.

2. **Connection strategy** — process-per-request 1996 CGI opened a DBMS
   connection per request.  The bench compares per-request connections
   against a reusing pool on a file-backed database, the case where
   connection setup actually costs something.
"""

import pytest

from repro.apps.datasets import seed_urldb
from repro.core.ablation import EagerStoreEvaluator, MemoizingEvaluator
from repro.core.substitution import Evaluator
from repro.core.values import ValueString
from repro.core.variables import VariableStore
from repro.sql.connection import Connection
from repro.sql.pool import ConnectionPool, PerRequestPool


def reference_heavy_store() -> tuple[VariableStore, ValueString]:
    """One variable chain referenced 200 times from the page."""
    store = VariableStore()
    store.assign_simple("base", ValueString.parse("value"))
    for i in range(10):
        prev = "base" if i == 0 else f"level{i - 1}"
        store.assign_simple(f"level{i}",
                            ValueString.parse(f"$({prev})!"))
    template = ValueString.parse("$(level9)" * 200)
    return store, template


@pytest.mark.parametrize("evaluator_cls, label", [
    (Evaluator, "lazy (the paper)"),
    (MemoizingEvaluator, "memoized (ablation)"),
], ids=["lazy", "memoized"])
def test_abl_memoization_throughput(benchmark, evaluator_cls, label):
    store, template = reference_heavy_store()
    evaluator = evaluator_cls(store)

    text = benchmark(evaluator.evaluate, template)
    assert text.count("value") == 200


def test_abl_memoization_breaks_row_variables(benchmark):
    """Why the engine must NOT cache: V1 changes per row."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    store = VariableStore()
    lazy = Evaluator(store)
    cached = MemoizingEvaluator(store)
    template = ValueString.parse("<$(V1)>")

    store.set_system("V1", "row-one")
    assert lazy.evaluate(template) == "<row-one>"
    assert cached.evaluate(template) == "<row-one>"

    store.set_system("V1", "row-two")  # the report loop advances
    assert lazy.evaluate(template) == "<row-two>"       # correct
    assert cached.evaluate(template) == "<row-one>"     # stale!


def test_abl_eager_breaks_positional_semantics(benchmark):
    """Why substitution is lazy: eager snapshots freeze nulls."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    store = VariableStore()
    store.assign_simple("X", ValueString.parse("One$(Y)"))
    eager = EagerStoreEvaluator(store)          # Y not defined yet
    store.assign_simple("Y", ValueString.parse(" Two"))
    lazy = Evaluator(store)

    assert lazy.evaluate_name("X") == "One Two"  # sees the definition
    assert eager.evaluate_name("X") == "One"     # froze the null


@pytest.fixture(scope="module")
def file_database(tmp_path_factory):
    path = tmp_path_factory.mktemp("abl") / "urls.sqlite"
    conn = Connection(str(path))
    seed_urldb(conn, 100)
    conn.close()
    return str(path)


def _query_once(conn: Connection) -> int:
    cursor = conn.execute(
        "SELECT COUNT(*) FROM urldb WHERE title LIKE '%a%'")
    return int(cursor.fetchone()[0])


@pytest.mark.parametrize("pool_kind", ["per_request", "pooled"])
def test_abl_connection_strategy(benchmark, file_database, pool_kind):
    if pool_kind == "per_request":
        pool = PerRequestPool(lambda: Connection(file_database))
    else:
        pool = ConnectionPool(lambda: Connection(file_database), size=2)

    def one_request() -> int:
        conn = pool.acquire()
        try:
            return _query_once(conn)
        finally:
            pool.release(conn)

    count = benchmark(one_request)
    assert count > 0
    pool.close()


def test_abl_artifact(benchmark, file_database, artifact):
    import time
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(fn, rounds=200):
        start = time.perf_counter()
        for _ in range(rounds):
            fn()
        return (time.perf_counter() - start) / rounds * 1e6

    store, template = reference_heavy_store()
    lazy_us = timed(lambda: Evaluator(store).evaluate(template), 50)
    memo_us = timed(
        lambda: MemoizingEvaluator(store).evaluate(template), 50)

    per_request = PerRequestPool(lambda: Connection(file_database))
    pooled = ConnectionPool(lambda: Connection(file_database), size=2)

    def via(pool):
        conn = pool.acquire()
        try:
            _query_once(conn)
        finally:
            pool.release(conn)

    per_request_us = timed(lambda: via(per_request))
    pooled_us = timed(lambda: via(pooled))
    pooled.close()

    artifact("abl_design_choices.txt", "\n".join([
        "ABL — design-choice ablations",
        "",
        f"{'substitution':<34}{'micros/page':>12}",
        f"{'lazy re-evaluation (paper)':<34}{lazy_us:>12.1f}",
        f"{'memoized (ablation, incorrect)':<34}{memo_us:>12.1f}",
        "",
        f"{'connection strategy':<34}{'micros/req':>12}",
        f"{'per-request (1996 CGI)':<34}{per_request_us:>12.1f}",
        f"{'pooled (size 2)':<34}{pooled_us:>12.1f}",
        "",
        "Memoization is faster but stale for per-row report variables;",
        "pooling removes the dominant per-request connection cost.",
    ]) + "\n")
    assert pooled_us < per_request_us
