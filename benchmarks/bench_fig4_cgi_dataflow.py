"""FIG4 — Figure 4: the data flow using the CGI interface.

The figure traces two invocations of the DB2WWW executable: a GET whose
variables arrive in ``QUERY_STRING`` and a POST whose variables arrive
on standard input, both with ``PATH_INFO=/{macro}/{cmd}``.  The bench
times each dispatch path and writes the reconstructed data-flow trace.
"""

from repro.cgi.environ import CgiEnvironment
from repro.cgi.query_string import encode_pairs
from repro.cgi.request import CgiRequest

PAIRS = [("SEARCH", "ib"), ("USE_URL", "yes"), ("USE_TITLE", "yes"),
         ("DBFIELDS", "title")]


def _get_request() -> CgiRequest:
    return CgiRequest(CgiEnvironment(
        request_method="GET",
        script_name="/cgi-bin/db2www",
        path_info="/urlquery.d2w/report",
        query_string=encode_pairs(PAIRS)))


def _post_request() -> CgiRequest:
    body = encode_pairs(PAIRS).encode()
    return CgiRequest(CgiEnvironment(
        request_method="POST",
        script_name="/cgi-bin/db2www",
        path_info="/urlquery.d2w/report",
        content_type="application/x-www-form-urlencoded",
        content_length=len(body)), stdin=body)


def test_fig4_get_with_query_string(benchmark, urlquery_site, artifact):
    request = _get_request()

    response = benchmark(urlquery_site.gateway.dispatch, "db2www",
                         request)

    assert response.status == 200
    env = request.environ.to_dict()
    trace = (
        "Scenario 1: GET (variables via QUERY_STRING)\n"
        f"  URL          = http://server/cgi-bin/db2www"
        f"{env['PATH_INFO']}?{env['QUERY_STRING']}\n"
        f"  PATH_INFO    = {env['PATH_INFO']}\n"
        f"  QUERY_STRING = {env['QUERY_STRING']}\n"
        f"  -> {len(response.body)} bytes of HTML back to the client\n")
    artifact("fig4_dataflow_get.txt", trace)
    assert env["PATH_INFO"] == "/urlquery.d2w/report"
    assert "SEARCH=ib" in env["QUERY_STRING"]


def test_fig4_post_with_stdin(benchmark, urlquery_site, artifact):
    request = _post_request()

    response = benchmark(urlquery_site.gateway.dispatch, "db2www",
                         request)

    assert response.status == 200
    env = request.environ.to_dict()
    trace = (
        "Scenario 2: POST (variables via standard input)\n"
        f"  PATH_INFO      = {env['PATH_INFO']}\n"
        f"  CONTENT_LENGTH = {env['CONTENT_LENGTH']}\n"
        f"  stdin          = {request.stdin.decode()}\n"
        f"  -> {len(response.body)} bytes of HTML back to the client\n")
    artifact("fig4_dataflow_post.txt", trace)
    assert env["REQUEST_METHOD"] == "POST"


def test_fig4_get_and_post_equivalent(benchmark, urlquery_site):
    """Both arrows of Figure 4 deliver the same variables: same page."""
    def both():
        get_page = urlquery_site.gateway.dispatch(
            "db2www", _get_request())
        post_page = urlquery_site.gateway.dispatch(
            "db2www", _post_request())
        return get_page, post_page

    get_page, post_page = benchmark(both)
    assert get_page.body == post_page.body
