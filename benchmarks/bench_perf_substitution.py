"""PERF-SUB — characterising the substitution engine.

The cross-language substitution mechanism is the paper's core; these
sweeps establish how its cost scales with the three dimensions a macro
author controls: number of variables in a page, reference nesting depth,
and list-variable length.  Expected shape: linear in all three (the
evaluator is a single pass with memo-free lazy semantics).
"""

import pytest

from repro.core.substitution import Evaluator
from repro.core.values import ValueString
from repro.core.variables import VariableStore


def store_with_flat_variables(count: int) -> VariableStore:
    store = VariableStore()
    for i in range(count):
        store.assign_simple(f"v{i}", ValueString.parse(f"value-{i}"))
    return store


@pytest.mark.parametrize("count", [10, 100, 1000])
def test_perf_sub_variable_count(benchmark, count):
    """Evaluating a page that references every one of N variables."""
    store = store_with_flat_variables(count)
    template = ValueString.parse(
        " ".join(f"$(v{i})" for i in range(count)))
    evaluator = Evaluator(store)

    text = benchmark(evaluator.evaluate, template)
    assert text.count("value-") == count


@pytest.mark.parametrize("depth", [1, 8, 64, 256])
def test_perf_sub_nesting_depth(benchmark, depth):
    """A chain v0 -> v1 -> ... -> v_depth, dereferenced from the top."""
    store = VariableStore()
    for i in range(depth):
        store.assign_simple(f"v{i}", ValueString.parse(f"$(v{i+1})."))
    store.assign_simple(f"v{depth}", ValueString.parse("end"))
    evaluator = Evaluator(store)

    text = benchmark(evaluator.evaluate_name, "v0")
    assert text == "end" + "." * depth


@pytest.mark.parametrize("length", [4, 64, 512])
def test_perf_sub_list_join(benchmark, length):
    """A where_list-style list variable with N conditional elements."""
    store = VariableStore()
    store.declare_list("L", ValueString.parse(" AND "))
    for i in range(length):
        store.assign_simple(f"in{i}", ValueString.literal(str(i)))
    for i in range(length):
        store.assign_conditional(
            "L", ValueString.parse(f"col{i} = $(in{i})"))
    evaluator = Evaluator(store)

    text = benchmark(evaluator.evaluate_name, "L")
    assert text.count(" AND ") == length - 1


def test_perf_sub_escape_heavy_page(benchmark):
    """Pages full of $$ escapes (hidden-variable idiom at scale)."""
    template = ValueString.parse(
        "".join(f'<OPTION VALUE="$$(h{i})">' for i in range(200)))
    evaluator = Evaluator(VariableStore())

    text = benchmark(evaluator.evaluate, template)
    assert text.count("$(h") == 200


def test_perf_sub_artifact(benchmark, artifact):
    """Record the scaling series (re-measured coarsely) for the report."""
    import time
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["PERF-SUB — substitution scaling (coarse single-shot)",
             "", f"{'dimension':<18}{'n':>8}{'micros':>12}"]
    for count in (10, 100, 1000):
        store = store_with_flat_variables(count)
        template = ValueString.parse(
            " ".join(f"$(v{i})" for i in range(count)))
        evaluator = Evaluator(store)
        start = time.perf_counter()
        for _ in range(20):
            evaluator.evaluate(template)
        micros = (time.perf_counter() - start) / 20 * 1e6
        lines.append(f"{'variables':<18}{count:>8}{micros:>12.1f}")
    artifact("perf_substitution.txt", "\n".join(lines) + "\n")
