#!/usr/bin/env python3
"""Summarise a benchmark run into one experiment report.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/summarize.py bench.json > benchmarks/out/SUMMARY.txt

Groups the pytest-benchmark results by experiment id (the ``bench_*``
file prefix mapped through DESIGN.md's experiment index), appends the
regenerated artifacts, and prints a single text report — the
"reviewer's packet" for EXPERIMENTS.md.

As a side effect it writes ``benchmarks/out/BENCH_perf.json``: the
PERF-* experiment means plus the speedup ratios parsed from the
compiled-template and query-cache artifacts, in a machine-readable form
CI can diff against a baseline.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

#: bench file prefix -> (experiment id, one-line description)
EXPERIMENTS = {
    "bench_fig1": ("FIG1", "Web architecture: full-stack request"),
    "bench_fig2": ("FIG2", "Sample HTML input form generation"),
    "bench_fig3": ("FIG3", "Client-side form fill + submission"),
    "bench_fig4": ("FIG4", "CGI data flow (GET vs POST)"),
    "bench_fig5": ("FIG5", "Macro authoring: parse/unparse/load"),
    "bench_fig6": ("FIG6", "Runtime flow: input + report modes"),
    "bench_fig7": ("FIG7/8", "Appendix A input and report pages"),
    "bench_s313": ("EX-S313", "Section 3.1.3 WHERE-clause assembly"),
    "bench_cmp6": ("CMP6", "Five-gateway comparison"),
    "bench_txn5": ("TXN5", "Transaction modes under failure"),
    "bench_perf_substitution": ("PERF-SUB", "Substitution scaling"),
    "bench_perf_report": ("PERF-RPT", "Report scaling"),
    "bench_perf_end": ("PERF-E2E", "Execution-mode latency"),
    "bench_perf_appserver": ("PERF-APPSRV",
                             "App-server gateway + streaming"),
    "bench_perf_concurrency": ("PERF-CONC", "Concurrent clients"),
    "bench_ext_scrollable": ("EXT-PAGE", "Scrollable cursor paging"),
    "bench_ext_keepalive": ("EXT-KEEPALIVE", "Persistent connections"),
    "bench_resilience": ("RES", "Degraded-backend resilience"),
    "bench_abl": ("ABL", "Design-choice ablations"),
}


def experiment_for(fullname: str) -> tuple[str, str]:
    filename = fullname.split("::")[0].rsplit("/", 1)[-1]
    # Longest prefix wins (bench_ext_keepalive vs bench_ext_...).
    best = None
    for prefix, info in EXPERIMENTS.items():
        if filename.startswith(prefix):
            if best is None or len(prefix) > len(best[0]):
                best = (prefix, info)
    if best is not None:
        return best[1]
    return ("?", filename)


#: artifact file -> key under "speedups" in BENCH_perf.json
_SPEEDUP_ARTIFACTS = {
    "perf_compiled_speedup.txt": "compiled_report_rows_per_sec",
    "perf_query_cache.txt": "query_cache_requests_per_sec",
    "perf_appserver.txt": "appserver_requests_per_sec",
}


def _parse_speedup(path: Path) -> float | None:
    """The ``speedup: N.NNx`` line of one perf artifact, if present."""
    for line in path.read_text().splitlines():
        if line.startswith("speedup:"):
            try:
                return float(line.split(":", 1)[1].strip().rstrip("x"))
            except ValueError:
                return None
    return None


def write_perf_baseline(groups: dict[str, list[tuple[str, float]]],
                        machine: dict) -> Path:
    """Emit BENCH_perf.json: PERF-* means + artifact speedup ratios."""
    perf = {
        exp_id: {name: round(mean_ms, 4)
                 for name, mean_ms in sorted(benches)}
        for exp_id, benches in sorted(groups.items())
        if exp_id.startswith("PERF")
    }
    speedups = {}
    for filename, key in _SPEEDUP_ARTIFACTS.items():
        path = OUT_DIR / filename
        if path.is_file():
            ratio = _parse_speedup(path)
            if ratio is not None:
                speedups[key] = ratio
    payload = {
        "machine": {
            "python_version": machine.get("python_version", "?"),
            "system": machine.get("system", "?"),
            "machine": machine.get("machine", "?"),
        },
        "mean_ms": perf,
        "speedups": speedups,
    }
    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "BENCH_perf.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
    return out_path


def summarize(json_path: str) -> str:
    data = json.loads(Path(json_path).read_text())
    groups: dict[str, list[tuple[str, float]]] = {}
    descriptions: dict[str, str] = {}
    for bench in data.get("benchmarks", []):
        exp_id, description = experiment_for(bench["fullname"])
        descriptions[exp_id] = description
        groups.setdefault(exp_id, []).append(
            (bench["name"], bench["stats"]["mean"] * 1e3))
    lines = ["EXPERIMENT SUMMARY", "=" * 70, ""]
    machine = data.get("machine_info", {})
    lines.append(
        f"python {machine.get('python_version', '?')} on "
        f"{machine.get('system', '?')} ({machine.get('machine', '?')})")
    lines.append("")
    for exp_id in sorted(groups):
        lines.append(f"{exp_id} — {descriptions[exp_id]}")
        for name, mean_ms in sorted(groups[exp_id],
                                    key=lambda item: item[1]):
            lines.append(f"    {name:<55} {mean_ms:>10.3f} ms")
        lines.append("")
    baseline = write_perf_baseline(groups, machine)
    lines.append(f"perf baseline written to {baseline}")
    lines.append("")
    artifacts = sorted(OUT_DIR.glob("*.txt")) if OUT_DIR.is_dir() else []
    if artifacts:
        lines.append("REGENERATED ARTIFACTS")
        lines.append("=" * 70)
        for path in artifacts:
            lines.append("")
            lines.append(f"--- {path.name} ---")
            lines.append(path.read_text().rstrip())
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    sys.stdout.write(summarize(sys.argv[1]))
