"""BENCH-SHARD — scatter-gather scaling, replica fan-out, chaos audit.

Three sections, one JSON artifact (``out/BENCH_shard.json``):

* **Scaling** — a fixed dataset split over 1/2/4/8 shards, every query
  a full ``ORDER BY`` report merged through the streaming k-way merge.
  Per-statement ``slow`` faults model a remote database whose scan time
  is proportional to the rows it holds (stall = SCAN/S), so the wall
  clock is dominated by GIL-releasing sleeps and the scatter threads
  genuinely overlap.  Bars (re-checked by CI's shard-smoke job):
  rows/s at 2 shards >= 1.6x the 1-shard baseline, >= 2.5x at 4.
* **Replica fan-out** — one shard, pool size 1 per endpoint (the
  bounded-connections reality of a real database server): six client
  threads serialise on the lone primary connection, then spread over
  primary + 2 replicas.  Bar: >= 1.5x cacheable-SELECT throughput.
* **Chaos** — two shards, one refusing every connection.  1000 mixed
  read/write requests with ``degrade`` set: merged reports come back
  partial (and are never cached), keyed reads keep hitting the cache,
  and every response is audited against a model of committed state.
  Bar: zero stale responses.

Results land in ``out/bench_shard.txt`` + ``out/BENCH_shard.json``.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.resilience.faults import FaultInjector, wrap_factory
from repro.sql.connection import MemoryDatabase
from repro.sql.gateway import DatabaseRegistry
from repro.sql.querycache import QueryResultCache
from repro.sql.sharding import ShardMap, ShardedSqlSession
from repro.workloads.metrics import percentile

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

TOTAL_ROWS = 1000 if QUICK else 2000   # fixed dataset, split per config
SCAN_SECONDS = 0.08 if QUICK else 0.12  # remote scan time for ALL rows
SHARD_COUNTS = (1, 2, 4, 8)
QUERIES = 10 if QUICK else 20          # merged reports per config
SPEEDUP_BAR_2 = 1.6
SPEEDUP_BAR_4 = 2.5

REPLICA_CLIENTS = 6
REPLICA_QUERIES = 5 if QUICK else 8    # per client
REPLICA_STALL = 0.02
REPLICA_BAR = 1.5

CHAOS_REQUESTS = 1000
MERGED_SELECT = "SELECT id, label FROM stock ORDER BY id"


def build_tier(shards: int, *, stall: float,
               replicas: int = 0,
               down: tuple[int, ...] = ()):
    """A sharded registry over seeded in-memory databases.

    Seeding goes straight to the backing database; the registered
    factories are wrapped with the fault injector afterwards so only
    benchmark traffic pays the modelled remote latency.  Row ids are
    dealt round-robin so the global ``ORDER BY`` interleaves all shards.
    """
    registry = DatabaseRegistry()
    shard_map = ShardMap("INV")
    injector = FaultInjector.parse(f"slow:1:{stall}") if stall else None
    for index in range(shards):
        db = MemoryDatabase()
        conn = db.connect()
        conn.executescript("CREATE TABLE stock (id INTEGER, label TEXT);")
        values = ",".join(f"({row}, 'item{row}')"
                          for row in range(index, TOTAL_ROWS, shards))
        conn.execute(f"INSERT INTO stock VALUES {values}")
        conn.commit()
        conn.close()
        factory = db.connect
        if index in down:
            factory = wrap_factory(factory, FaultInjector.parse("down"))
        elif injector is not None:
            factory = wrap_factory(factory, injector)
        registry.register_factory(f"INV#{index}", factory)
        names = []
        for r_index in range(1, replicas + 1):
            name = f"INV#{index}.r{r_index}"
            replica_factory = db.connect
            if injector is not None:
                replica_factory = wrap_factory(replica_factory, injector)
            registry.register_factory(name, replica_factory)
            names.append(name)
        shard_map.add_shard(f"INV#{index}", replicas=tuple(names))
    registry.register_sharded("INV", shard_map)
    return registry, shard_map


def key_routing_to(shard_map: ShardMap, index: int) -> str:
    for attempt in range(10_000):
        key = f"k{attempt}"
        if shard_map.route(key).index == index:
            return key
    raise AssertionError(f"no key reaches shard {index}")


# -- section 1: scatter-gather scaling ---------------------------------

def scaling_point(shards: int) -> dict:
    registry, shard_map = build_tier(
        shards, stall=SCAN_SECONDS / shards)
    latencies = []
    start = time.perf_counter()
    for _ in range(QUERIES):
        began = time.perf_counter()
        session = ShardedSqlSession(registry, shard_map, cache=None)
        result = session.execute(MERGED_SELECT)
        assert len(result.rows) == TOTAL_ROWS
        assert [row[0] for row in result.rows[:4]] == [0, 1, 2, 3]
        session.finish()
        latencies.append(time.perf_counter() - began)
    elapsed = time.perf_counter() - start
    return {
        "shards": shards,
        "rows_per_s": round(QUERIES * TOTAL_ROWS / elapsed, 1),
        "p99_ms": round(percentile(sorted(latencies), 0.99) * 1e3, 1),
        "queries": QUERIES,
    }


# -- section 2: replica fan-out ----------------------------------------

def replica_throughput(replicas: int) -> float:
    registry, shard_map = build_tier(
        1, stall=REPLICA_STALL, replicas=replicas)
    registry.enable_pools(size=1, timeout=30.0)
    key = key_routing_to(shard_map, 0)
    barrier = threading.Barrier(REPLICA_CLIENTS + 1)

    def client() -> None:
        barrier.wait()
        for _ in range(REPLICA_QUERIES):
            session = ShardedSqlSession(registry, shard_map,
                                        cache=None, shard_key=key)
            result = session.execute("SELECT label FROM stock")
            assert result.rows
            session.finish()

    threads = [threading.Thread(target=client)
               for _ in range(REPLICA_CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    registry.close_all()
    return REPLICA_CLIENTS * REPLICA_QUERIES / elapsed


# -- section 3: chaos audit --------------------------------------------

def chaos_audit() -> dict:
    """One shard down, 1000 mixed requests, every response audited."""
    registry, shard_map = build_tier(2, stall=0.0, down=(1,))
    cache = QueryResultCache()
    key = key_routing_to(shard_map, 0)
    live = {row: f"item{row}" for row in range(0, TOTAL_ROWS, 2)}
    next_id = TOTAL_ROWS
    partial_reads = cache_hits = stale = 0
    keyed_select = "SELECT id, label FROM stock ORDER BY id"

    for step in range(CHAOS_REQUESTS):
        slot = step % 10
        if slot == 0:  # keyed write to the live shard
            session = ShardedSqlSession(registry, shard_map,
                                        cache=cache, shard_key=key)
            session.execute(f"INSERT INTO stock VALUES "
                            f"({next_id}, 'w{step}')")
            session.finish()
            live[next_id] = f"w{step}"
            next_id += 1
        elif slot in (1, 2, 3):  # keyed read: cacheable, audited
            session = ShardedSqlSession(registry, shard_map,
                                        cache=cache, shard_key=key)
            result = session.execute(keyed_select)
            cache_hits += session.cache_hits
            if {row[0]: row[1] for row in result.rows} != live:
                stale += 1
            session.finish()
        else:  # merged report: degraded partial, audited, never cached
            session = ShardedSqlSession(registry, shard_map,
                                        cache=cache, degrade=True)
            result = session.execute(MERGED_SELECT)
            assert result.partial and result.failed_shards == ("1",)
            partial_reads += 1
            if {row[0]: row[1] for row in result.rows} != live:
                stale += 1
            if session.cache_hits:  # partials must never be served back
                stale += 1
            session.finish()

    return {
        "requests": CHAOS_REQUESTS,
        "partial_reads": partial_reads,
        "cache_hits": cache_hits,
        "stale_responses": stale,
        "shard_down": "INV#1",
    }


def test_bench_shard_scaling(benchmark, artifact):
    """Scaling curve + replica fan-out + chaos audit, bars asserted."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    curve = [scaling_point(shards) for shards in SHARD_COUNTS]
    base = curve[0]["rows_per_s"]
    for point in curve:
        point["speedup"] = round(point["rows_per_s"] / base, 2)
    by_count = {point["shards"]: point for point in curve}

    primary_qps = replica_throughput(0)
    replica_qps = replica_throughput(2)
    replica_speedup = replica_qps / primary_qps

    chaos = chaos_audit()

    lines = [
        f"BENCH-SHARD — {TOTAL_ROWS} rows split over 1/2/4/8 shards, "
        f"{QUERIES} ORDER BY reports per point; modelled remote scan "
        f"{SCAN_SECONDS * 1e3:.0f} ms for the full dataset "
        f"(stall = scan/shards per shard, parallel across workers)",
        "",
        f"{'shards':>6} {'rows/s':>10} {'p99_ms':>8} {'speedup':>8}",
    ]
    for point in curve:
        lines.append(f"{point['shards']:>6} {point['rows_per_s']:>10} "
                     f"{point['p99_ms']:>8} {point['speedup']:>7}x")
    lines += [
        "",
        f"bars: >= {SPEEDUP_BAR_2}x at 2 shards "
        f"(got {by_count[2]['speedup']}x), >= {SPEEDUP_BAR_4}x at 4 "
        f"(got {by_count[4]['speedup']}x)",
        "",
        f"replica fan-out (1 shard, pool size 1/endpoint, "
        f"{REPLICA_CLIENTS} clients): primary-only "
        f"{primary_qps:.1f} q/s, +2 replicas {replica_qps:.1f} q/s "
        f"= {replica_speedup:.2f}x (bar >= {REPLICA_BAR}x)",
        "",
        f"chaos (shard 1 down, degrade on): "
        f"{chaos['partial_reads']} partial reports, "
        f"{chaos['cache_hits']} cache hits, "
        f"{chaos['stale_responses']} stale responses over "
        f"{chaos['requests']} requests",
    ]
    artifact("bench_shard.txt", "\n".join(lines) + "\n")

    payload = {
        "quick": QUICK,
        "total_rows": TOTAL_ROWS,
        "scan_seconds": SCAN_SECONDS,
        "scaling": curve,
        "replica": {
            "clients": REPLICA_CLIENTS,
            "primary_only_qps": round(primary_qps, 1),
            "two_replicas_qps": round(replica_qps, 1),
            "speedup": round(replica_speedup, 2),
        },
        "chaos": chaos,
        "bars": {
            "speedup_2_shards_ok":
                by_count[2]["speedup"] >= SPEEDUP_BAR_2,
            "speedup_4_shards_ok":
                by_count[4]["speedup"] >= SPEEDUP_BAR_4,
            "replica_fanout_ok": replica_speedup >= REPLICA_BAR,
            "zero_stale": chaos["stale_responses"] == 0,
        },
    }
    artifact("BENCH_shard.json",
             json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert by_count[2]["speedup"] >= SPEEDUP_BAR_2, (
        f"2-shard scatter only {by_count[2]['speedup']}x the 1-shard "
        f"baseline (bar {SPEEDUP_BAR_2}x)")
    assert by_count[4]["speedup"] >= SPEEDUP_BAR_4, (
        f"4-shard scatter only {by_count[4]['speedup']}x the 1-shard "
        f"baseline (bar {SPEEDUP_BAR_4}x)")
    assert replica_speedup >= REPLICA_BAR, (
        f"replica fan-out only {replica_speedup:.2f}x primary-only "
        f"throughput (bar {REPLICA_BAR}x)")
    assert chaos["partial_reads"] > 0
    assert chaos["cache_hits"] > 0, (
        "the chaos audit never hit the cache — the staleness check "
        "checked nothing")
    assert chaos["stale_responses"] == 0, (
        f"{chaos['stale_responses']} stale responses served under chaos")
