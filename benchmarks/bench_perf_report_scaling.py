"""PERF-RPT — report generation versus result-set size.

Sweeps the number of result rows through custom ``%ROW`` reports, the
default table format, and ``RPT_MAXROWS`` cutoffs.  Expected shape:
time linear in *fetched* rows; RPT_MAXROWS caps the printing cost but
not the fetch/count cost (ROW_NUM still reports the true total), so a
capped report over many rows sits between the uncapped small and large
cases.
"""

import pytest

from repro.core.engine import EngineConfig, MacroEngine
from repro.core.parser import parse_macro
from repro.sql.gateway import DatabaseRegistry

ROW_COUNTS = [10, 100, 1000, 5000]

#: Result-set size for the compiled-vs-interpreted comparison; large
#: enough that per-row rendering dominates parse/connect overheads.
SPEEDUP_ROWS = 10_000


@pytest.fixture(scope="module")
def registry():
    reg = DatabaseRegistry()
    db = reg.register_memory("BIG")
    with db.connect() as conn:
        conn.executescript(
            "CREATE TABLE wide (n INTEGER, a TEXT, b TEXT, c TEXT);")
        conn.begin()
        for i in range(max(ROW_COUNTS + [SPEEDUP_ROWS])):
            conn.execute(
                "INSERT INTO wide VALUES (?, ?, ?, ?)",
                (i, f"alpha-{i}", f"beta-{i}", f"gamma-{i}"))
        conn.commit()
    return reg


def custom_macro(limit_define: str = "") -> str:
    return f"""
%DEFINE DATABASE = "BIG"
{limit_define}
%SQL{{
SELECT n, a, b, c FROM wide WHERE n < $(max_n) ORDER BY n
%SQL_REPORT{{
<TABLE>
%ROW{{<TR><TD>$(V1)</TD><TD>$(V_a)</TD><TD>$(V_b)</TD><TD>$(V_c)</TD></TR>
%}}
</TABLE><P>$(ROW_NUM) rows</P>
%}}
%}}
%HTML_REPORT{{%EXEC_SQL%}}
"""


@pytest.mark.parametrize("rows", ROW_COUNTS)
def test_perf_rpt_custom_report(benchmark, registry, rows):
    engine = MacroEngine(registry)
    macro = parse_macro(custom_macro())

    result = benchmark(engine.execute_report, macro,
                       [("max_n", str(rows))])
    assert f"<P>{rows} rows</P>" in result.html


@pytest.mark.parametrize("rows", [100, 5000])
def test_perf_rpt_default_table(benchmark, registry, rows):
    engine = MacroEngine(registry)
    macro = parse_macro("""
%DEFINE DATABASE = "BIG"
%SQL{ SELECT n, a FROM wide WHERE n < $(max_n) %}
%HTML_REPORT{%EXEC_SQL%}
""")
    result = benchmark(engine.execute_report, macro,
                       [("max_n", str(rows))])
    assert result.html.count("<TR>") == rows + 1  # + header row


def test_perf_rpt_maxrows_caps_printing(benchmark, registry):
    """5000 rows fetched, 50 printed: cheaper than printing all 5000."""
    engine = MacroEngine(registry)
    macro = parse_macro(custom_macro('%DEFINE RPT_MAXROWS = "50"'))

    result = benchmark(engine.execute_report, macro,
                       [("max_n", "5000")])
    assert result.html.count("<TR>") == 50
    assert "<P>5000 rows</P>" in result.html  # ROW_NUM = true total


def _rows_per_second(engine, macro, rows, *, rounds=3):
    import time
    engine.execute_report(macro, [("max_n", str(rows))])  # warm up
    start = time.perf_counter()
    for _ in range(rounds):
        result = engine.execute_report(macro, [("max_n", str(rows))])
    elapsed = (time.perf_counter() - start) / rounds
    assert f"<P>{rows} rows</P>" in result.html
    return rows / elapsed


def test_perf_rpt_compiled_speedup(benchmark, registry, artifact):
    """Compiled %ROW rendering vs the interpreted evaluator, 10k rows.

    The compiled path replaces per-row ``set_system`` rebuilds and
    Evaluator dispatch with direct tuple indexing; the acceptance bar
    for this optimisation is >= 2x rows/sec on the 10k-row report.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    macro = parse_macro(custom_macro())
    compiled_engine = MacroEngine(registry)
    interpreted_engine = MacroEngine(
        registry, config=EngineConfig(compiled_reports=False))

    compiled_rps = _rows_per_second(compiled_engine, macro, SPEEDUP_ROWS)
    interpreted_rps = _rows_per_second(
        interpreted_engine, macro, SPEEDUP_ROWS)
    speedup = compiled_rps / interpreted_rps

    artifact("perf_compiled_speedup.txt", "\n".join([
        f"PERF-RPT — compiled vs interpreted %ROW, "
        f"{SPEEDUP_ROWS} rows",
        "",
        f"{'path':<14}{'rows_per_s':>14}",
        f"{'interpreted':<14}{interpreted_rps:>14.0f}",
        f"{'compiled':<14}{compiled_rps:>14.0f}",
        "",
        f"speedup: {speedup:.2f}x",
    ]) + "\n")
    assert speedup >= 2.0, (
        f"compiled path only {speedup:.2f}x over interpreted")


def test_perf_rpt_artifact(benchmark, registry, artifact):
    import time
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    engine = MacroEngine(registry)
    macro = parse_macro(custom_macro())
    lines = ["PERF-RPT — report time vs fetched rows (coarse)",
             "", f"{'rows':>8}{'millis':>12}"]
    for rows in ROW_COUNTS:
        start = time.perf_counter()
        for _ in range(3):
            engine.execute_report(macro, [("max_n", str(rows))])
        millis = (time.perf_counter() - start) / 3 * 1e3
        lines.append(f"{rows:>8}{millis:>12.2f}")
    artifact("perf_report_scaling.txt", "\n".join(lines) + "\n")
