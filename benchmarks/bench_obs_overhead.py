"""OBS-OVHD — what the observability layer costs on the hot path.

The tracing design gates every instrumentation point on one attribute
read (:attr:`repro.obs.trace.Tracer.enabled`), so the layer must be
nearly free when off and cheap when on.  Three measurements pin that:

* **no-op cost** — a disabled ``tracer.span(...)`` context, timed with
  pytest-benchmark (expected: sub-microsecond, a dict lookup's worth).
* **added cost per request** — the same report request through the
  full router with tracing off vs on (metrics registry wired in *both*
  modes, as `repro serve` wires it; the toggle under test is tracing,
  i.e. `--no-trace`).  Measured in-process so the span machinery's
  few-dozen-microsecond delta isn't drowned by socket jitter.  The two
  modes *alternate every request*, each request individually timed
  with the GC parked, and the estimate is ``median(on) - median(off)``.
  Adjacent-in-time samples see the same machine state, so clock drift
  and noisy neighbours cancel exactly — chunked A/B designs on this
  workload swing tens of microseconds run to run; this one reproduces
  within ~2µs (and leans conservative: each sample also pays the
  interpreter re-warming the just-toggled branches, which a steadily
  *on* server does not).
* **end-to-end overhead** — that added cost against the end-to-end
  request time of ``bench_perf_end_to_end``'s served mode (HTTP over
  real TCP, tracing off).  The tracing work per request is identical
  in both modes — in-process dispatch is the same pipeline minus the
  socket — so this quotient is the end-to-end throughput cost.
  Acceptance bar: **<= 5%**.  The traced mode runs the *full* layer
  the way ``repro serve`` wires it: metrics bridge + statement-digest
  store outside a :class:`TailSampler` that guards the trace log, all
  fused into one deferred :class:`FanoutSink` — the request thread
  enqueues the finished tree and aggregation runs off the latency
  path (a drain thread, flushed before any read).
* **tail-sampling bound** — a synthetic mixed workload (a handful of
  statement shapes, ~2% errors, ~3% over-SLO) through the sampler: at
  a load where head sampling would write every one of N traces, the
  tail sampler must write **<= 10% of N** while retaining **100%** of
  the error and over-SLO traces.

Results go to ``out/obs_overhead.txt`` and the checked-in
``out/BENCH_obs.json``.  ``REPRO_BENCH_QUICK=1`` shrinks batch sizes
for CI smoke runs (the 5% and 10% bars still hold).
"""

from __future__ import annotations

import gc
import json
import os
import random
import statistics
import time

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.site import build_site
from repro.http.client import HttpClient
from repro.http.headers import Headers
from repro.http.message import HttpRequest
from repro.http.urls import Url
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import TailSampler
from repro.obs.sinks import FanoutSink, MetricsBridge, TraceLog
from repro.obs.trace import TRACER, Span, Tracer
from repro.sql.digest import StatementStats

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

QUERY = "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"

#: individually-timed off/on request pairs, alternating every request
SAMPLE_PAIRS = 1200 if QUICK else 4000
TCP_ROUNDS = 100 if QUICK else 200

#: acceptance bar: tracing adds at most this fraction of end-to-end time
OVERHEAD_BAR = 0.05


@pytest.fixture(scope="module")
def site():
    app = urlquery_app.install(rows=150)
    return build_site(app.engine, app.library)


def _timed_us(run_once, rounds: int, *, skip: int = 0) -> float:
    """Mean microseconds per call; `skip` untimed warm-up calls first.

    Callers park the GC around batches of these (pytest-benchmark
    hygiene) — collection pauses otherwise dwarf the effect measured.
    """
    for _ in range(skip):
        run_once()
    start = time.perf_counter()
    for _ in range(rounds):
        run_once()
    return (time.perf_counter() - start) * 1e6 / rounds


def test_obs_noop_span_cost(benchmark):
    """A disabled tracer's span() must cost nanoseconds, not requests."""
    tracer = Tracer()
    assert not tracer.enabled

    def noop_span():
        with tracer.span("sql.execute") as span:
            span.set("ignored", 1)

    benchmark(noop_span)


def test_obs_enabled_overhead_within_bar(benchmark, site, artifact,
                                         tmp_path):
    """The full observability stack on the report path: <= 5%.

    The traced mode wires what ``repro serve`` wires: the metrics
    bridge and the statement-digest store see every trace, and a
    :class:`TailSampler` guards the JSONL trace log (so the file I/O
    the sampler exists to bound is inside the measurement too) — all
    behind one deferred :class:`FanoutSink`, so what the request
    thread pays is span bookkeeping plus an enqueue.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    target = f"/cgi-bin/db2www/urlquery.d2w/report?{QUERY}"
    registry = MetricsRegistry()
    bridge = MetricsBridge(registry, slow_query_ms=250.0)
    statements = StatementStats()
    statements.enabled = True
    sampler = TailSampler(TraceLog(tmp_path / "trace.log"),
                          slo_ms=250.0, registry=registry)
    site.router.metrics = registry  # wired in BOTH modes, like `serve`

    fanout = FanoutSink(bridge, statements, sampler, defer_cap=1024)

    def tracing_on():
        TRACER.enable()
        TRACER.clear_sinks()
        # One fused, deferred sink, exactly as `repro serve` wires it:
        # the request thread enqueues the finished tree; the drain
        # summarizes it once and fans out to every consumer.
        TRACER.add_sink(fanout)

    def tracing_off():
        TRACER.disable()
        TRACER.clear_sinks()

    def in_process():
        response = site.router.handle(HttpRequest(target=target))
        assert response.status == 200

    off_samples, on_samples = [], []
    try:
        # The bridge stays attached throughout: with tracing disabled
        # no trace is ever delivered, so the per-request toggle is the
        # one the `--no-trace` flag actually flips — Tracer.enabled.
        tracing_on()
        perf = time.perf_counter
        for _ in range(2 * TCP_ROUNDS):
            in_process()  # warm-up
        gc.collect()
        gc.disable()
        try:
            for _ in range(SAMPLE_PAIRS):
                TRACER.enabled = False
                start = perf()
                in_process()
                off_samples.append(perf() - start)
                TRACER.enabled = True
                start = perf()
                in_process()
                on_samples.append(perf() - start)
        finally:
            gc.enable()

        # End-to-end request time: the served (real TCP) mode of
        # bench_perf_end_to_end, tracing off.
        tracing_off()
        server = site.serve()
        try:
            url = Url.parse(
                f"{server.base_url}/cgi-bin/db2www/urlquery.d2w/report"
                f"?{QUERY}")
            client = HttpClient()

            def over_tcp():
                response = client.fetch(
                    url, HttpRequest(target=url.request_target,
                                     headers=Headers()))
                assert response.status == 200

            _timed_us(over_tcp, max(20, TCP_ROUNDS // 5))  # warm-up
            gc.collect()
            gc.disable()
            try:
                e2e_chunks = [_timed_us(over_tcp, TCP_ROUNDS)
                              for _ in range(3)]
            finally:
                gc.enable()
        finally:
            server.shutdown()
    finally:
        tracing_off()
        site.router.metrics = None

    fanout.flush()  # deferred aggregation settles before the reads
    ip_off_us = statistics.median(off_samples) * 1e6
    added_us = statistics.median(on_samples) * 1e6 - ip_off_us
    e2e_us = min(e2e_chunks)
    overhead = max(0.0, added_us) / e2e_us
    traced = registry.counter("traces_total").value
    digest_rows = len(statements.snapshot()["statements"])
    sampler_stats = sampler.stats()

    lines = [
        f"OBS-OVHD — report request with the full stack off vs on "
        f"({SAMPLE_PAIRS} alternating request pairs, each timed)",
        "",
        f"{'measure':<36}{'value':>12}",
        f"{'in-process request (tracing off)':<36}"
        f"{ip_off_us:>10.1f}us",
        f"{'added by the full stack':<36}"
        f"{added_us:>+10.1f}us",
        f"{'end-to-end request over TCP':<36}{e2e_us:>10.1f}us",
        "",
        f"end-to-end overhead: {overhead * 100:.2f}%   "
        f"(bar: <= {OVERHEAD_BAR * 100:.0f}%)",
        f"traces recorded: {traced}   digest rows: {digest_rows}   "
        f"trace-log writes: {sampler_stats['kept_total']:.0f} of "
        f"{traced} (tail-sampled)",
    ]
    artifact("obs_overhead.txt", "\n".join(lines) + "\n")

    _merge_bench(artifact, {
        "quick": QUICK,
        "sample_pairs": SAMPLE_PAIRS,
        "estimator": "per-request-alternation-paired-medians",
        "full_stack":
            "deferred_fanout(bridge+statements+tail_sampled_trace_log)",
        "in_process_off_us": round(ip_off_us, 2),
        "tracing_added_us_per_request": round(added_us, 2),
        "end_to_end_request_us": round(e2e_us, 2),
        "overhead_fraction": round(overhead, 4),
        "overhead_bar": OVERHEAD_BAR,
        "traces_recorded": traced,
    })

    assert traced >= SAMPLE_PAIRS
    assert digest_rows >= 1  # the store really saw the sql spans
    # the sampler bounded the log: a per-digest reservoir's worth, not
    # one line per request
    assert sampler_stats["kept_total"] <= max(50, 0.1 * traced)
    assert overhead <= OVERHEAD_BAR, (
        f"full-stack overhead {overhead * 100:.2f}% of the end-to-end "
        f"request exceeds the {OVERHEAD_BAR * 100:.0f}% bar "
        f"(added {added_us:.1f}us on a {e2e_us:.1f}us request)")


def _merge_bench(artifact, updates: dict) -> None:
    """Update ``BENCH_obs.json`` in place: the overhead and sampling
    tests each own their keys, so either can regenerate alone."""
    bench_path = os.path.join(os.path.dirname(__file__), "out",
                              "BENCH_obs.json")
    merged: dict = {}
    try:
        with open(bench_path, encoding="utf-8") as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        pass
    merged.update(updates)
    artifact("BENCH_obs.json",
             json.dumps(merged, indent=2, sort_keys=True) + "\n")


# -- tail sampling: bounded volume, total recall of what matters --------

#: synthetic finished traces pushed through the sampler
SAMPLED_TRACES = 2000
#: the acceptance bar: <= 10% of what head sampling would write
SAMPLING_BAR = 0.10
ERROR_RATE = 0.02
SLOW_RATE = 0.03
DIGESTS = [f"digest{i:02d}" for i in range(8)]


def _synthetic_root(rng: random.Random, index: int) -> tuple[Span, str]:
    """One finished request tree and its kind (ok/error/slow)."""
    kind = "ok"
    duration_ms = rng.uniform(5.0, 60.0)
    attrs = {"status": 200, "target": f"/report?Q={index % 40}"}
    roll = rng.random()
    if roll < ERROR_RATE:
        kind = "error"
        attrs["status"] = 500
    elif roll < ERROR_RATE + SLOW_RATE:
        kind = "slow"
        duration_ms = rng.uniform(300.0, 900.0)
    sql_attrs = {"digest": rng.choice(DIGESTS), "rows": index % 20}
    if kind == "error":
        sql_attrs["error"] = "SQLError"
    root = Span.from_dict({
        "name": "request", "trace_id": f"tid-{index}", "span_id": 1,
        "offset_ms": 0.0, "duration_ms": duration_ms, "attrs": attrs,
        "children": [{"name": "sql.execute", "trace_id": f"tid-{index}",
                      "span_id": 2, "offset_ms": 1.0,
                      "duration_ms": duration_ms * 0.8,
                      "attrs": sql_attrs}]})
    return root, kind


def test_obs_tail_sampling_bounds_the_log(artifact):
    """<= 10% of head-sampled volume written; every error and
    over-SLO trace retained."""
    rng = random.Random(42)
    written: list[str] = []
    sampler = TailSampler(lambda root: written.append(root.trace_id),
                          slo_ms=250.0, per_key=5, window_s=3600.0)
    must_keep: dict[str, list[str]] = {"error": [], "slow": []}
    for index in range(SAMPLED_TRACES):
        root, kind = _synthetic_root(rng, index)
        if kind != "ok":
            must_keep[kind].append(root.trace_id)
        sampler(root)

    written_ids = set(written)
    stats = sampler.stats()
    missed_errors = [tid for tid in must_keep["error"]
                     if tid not in written_ids]
    missed_slow = [tid for tid in must_keep["slow"]
                   if tid not in written_ids]
    fraction = len(written) / SAMPLED_TRACES

    artifact("obs_tail_sampling.txt", "\n".join([
        f"OBS-SAMPLE — {SAMPLED_TRACES} synthetic traces "
        f"({len(DIGESTS)} statement shapes, "
        f"{ERROR_RATE:.0%} errors, {SLOW_RATE:.0%} over-SLO)",
        "",
        f"head sampling would write:  {SAMPLED_TRACES}",
        f"tail sampler wrote:         {len(written)} "
        f"({fraction:.1%}, bar <= {SAMPLING_BAR:.0%})",
        f"  kept as errors:     {stats['kept_error']:.0f}",
        f"  kept as over-SLO:   {stats['kept_over_slo']:.0f}",
        f"  kept by reservoir:  {stats['kept_reservoir']:.0f}",
        f"errors retained:   {len(must_keep['error'])}/"
        f"{len(must_keep['error'])}" if not missed_errors else
        f"errors MISSED: {len(missed_errors)}",
        f"over-SLO retained: {len(must_keep['slow'])}/"
        f"{len(must_keep['slow'])}" if not missed_slow else
        f"over-SLO MISSED: {len(missed_slow)}",
    ]) + "\n")

    _merge_bench(artifact, {"tail_sampling": {
        "traces": SAMPLED_TRACES,
        "head_would_write": SAMPLED_TRACES,
        "tail_wrote": len(written),
        "written_fraction": round(fraction, 4),
        "sampling_bar": SAMPLING_BAR,
        "errors_total": len(must_keep["error"]),
        "errors_retained": len(must_keep["error"]) - len(missed_errors),
        "over_slo_total": len(must_keep["slow"]),
        "over_slo_retained": len(must_keep["slow"]) - len(missed_slow),
        "kept_by_reservoir": stats["kept_reservoir"],
    }})

    assert not missed_errors, f"dropped error traces: {missed_errors[:5]}"
    assert not missed_slow, f"dropped over-SLO traces: {missed_slow[:5]}"
    assert fraction <= SAMPLING_BAR, (
        f"tail sampler wrote {len(written)} of {SAMPLED_TRACES} traces "
        f"({fraction:.1%}) — over the {SAMPLING_BAR:.0%} bar")
