"""OBS-OVHD — what the observability layer costs on the hot path.

The tracing design gates every instrumentation point on one attribute
read (:attr:`repro.obs.trace.Tracer.enabled`), so the layer must be
nearly free when off and cheap when on.  Three measurements pin that:

* **no-op cost** — a disabled ``tracer.span(...)`` context, timed with
  pytest-benchmark (expected: sub-microsecond, a dict lookup's worth).
* **added cost per request** — the same report request through the
  full router with tracing off vs on (metrics registry wired in *both*
  modes, as `repro serve` wires it; the toggle under test is tracing,
  i.e. `--no-trace`).  Measured in-process so the span machinery's
  few-dozen-microsecond delta isn't drowned by socket jitter.  The two
  modes *alternate every request*, each request individually timed
  with the GC parked, and the estimate is ``median(on) - median(off)``.
  Adjacent-in-time samples see the same machine state, so clock drift
  and noisy neighbours cancel exactly — chunked A/B designs on this
  workload swing tens of microseconds run to run; this one reproduces
  within ~2µs (and leans conservative: each sample also pays the
  interpreter re-warming the just-toggled branches, which a steadily
  *on* server does not).
* **end-to-end overhead** — that added cost against the end-to-end
  request time of ``bench_perf_end_to_end``'s served mode (HTTP over
  real TCP, tracing off).  The tracing work per request is identical
  in both modes — in-process dispatch is the same pipeline minus the
  socket — so this quotient is the end-to-end throughput cost.
  Acceptance bar: **<= 5%**.

Results go to ``out/obs_overhead.txt`` and the checked-in
``out/BENCH_obs.json``.  ``REPRO_BENCH_QUICK=1`` shrinks batch sizes
for CI smoke runs (the 5% bar still holds).
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.site import build_site
from repro.http.client import HttpClient
from repro.http.headers import Headers
from repro.http.message import HttpRequest
from repro.http.urls import Url
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import MetricsBridge
from repro.obs.trace import TRACER, Tracer

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

QUERY = "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"

#: individually-timed off/on request pairs, alternating every request
SAMPLE_PAIRS = 1200 if QUICK else 4000
TCP_ROUNDS = 100 if QUICK else 200

#: acceptance bar: tracing adds at most this fraction of end-to-end time
OVERHEAD_BAR = 0.05


@pytest.fixture(scope="module")
def site():
    app = urlquery_app.install(rows=150)
    return build_site(app.engine, app.library)


def _timed_us(run_once, rounds: int, *, skip: int = 0) -> float:
    """Mean microseconds per call; `skip` untimed warm-up calls first.

    Callers park the GC around batches of these (pytest-benchmark
    hygiene) — collection pauses otherwise dwarf the effect measured.
    """
    for _ in range(skip):
        run_once()
    start = time.perf_counter()
    for _ in range(rounds):
        run_once()
    return (time.perf_counter() - start) * 1e6 / rounds


def test_obs_noop_span_cost(benchmark):
    """A disabled tracer's span() must cost nanoseconds, not requests."""
    tracer = Tracer()
    assert not tracer.enabled

    def noop_span():
        with tracer.span("sql.execute") as span:
            span.set("ignored", 1)

    benchmark(noop_span)


def test_obs_enabled_overhead_within_bar(benchmark, site, artifact):
    """Tracing + metrics bridge on the report path: <= 5% end-to-end."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    target = f"/cgi-bin/db2www/urlquery.d2w/report?{QUERY}"
    registry = MetricsRegistry()
    bridge = MetricsBridge(registry, slow_query_ms=250.0)
    site.router.metrics = registry  # wired in BOTH modes, like `serve`

    def tracing_on():
        TRACER.enable()
        TRACER.clear_sinks()
        TRACER.add_sink(bridge)

    def tracing_off():
        TRACER.disable()
        TRACER.clear_sinks()

    def in_process():
        response = site.router.handle(HttpRequest(target=target))
        assert response.status == 200

    off_samples, on_samples = [], []
    try:
        # The bridge stays attached throughout: with tracing disabled
        # no trace is ever delivered, so the per-request toggle is the
        # one the `--no-trace` flag actually flips — Tracer.enabled.
        tracing_on()
        perf = time.perf_counter
        for _ in range(2 * TCP_ROUNDS):
            in_process()  # warm-up
        gc.collect()
        gc.disable()
        try:
            for _ in range(SAMPLE_PAIRS):
                TRACER.enabled = False
                start = perf()
                in_process()
                off_samples.append(perf() - start)
                TRACER.enabled = True
                start = perf()
                in_process()
                on_samples.append(perf() - start)
        finally:
            gc.enable()

        # End-to-end request time: the served (real TCP) mode of
        # bench_perf_end_to_end, tracing off.
        tracing_off()
        server = site.serve()
        try:
            url = Url.parse(
                f"{server.base_url}/cgi-bin/db2www/urlquery.d2w/report"
                f"?{QUERY}")
            client = HttpClient()

            def over_tcp():
                response = client.fetch(
                    url, HttpRequest(target=url.request_target,
                                     headers=Headers()))
                assert response.status == 200

            _timed_us(over_tcp, max(20, TCP_ROUNDS // 5))  # warm-up
            gc.collect()
            gc.disable()
            try:
                e2e_chunks = [_timed_us(over_tcp, TCP_ROUNDS)
                              for _ in range(3)]
            finally:
                gc.enable()
        finally:
            server.shutdown()
    finally:
        tracing_off()
        site.router.metrics = None

    ip_off_us = statistics.median(off_samples) * 1e6
    added_us = statistics.median(on_samples) * 1e6 - ip_off_us
    e2e_us = min(e2e_chunks)
    overhead = max(0.0, added_us) / e2e_us
    traced = registry.counter("traces_total").value

    lines = [
        f"OBS-OVHD — report request with tracing off vs on "
        f"({SAMPLE_PAIRS} alternating request pairs, each timed)",
        "",
        f"{'measure':<36}{'value':>12}",
        f"{'in-process request (tracing off)':<36}"
        f"{ip_off_us:>10.1f}us",
        f"{'added by tracing (paired medians)':<36}"
        f"{added_us:>+10.1f}us",
        f"{'end-to-end request over TCP':<36}{e2e_us:>10.1f}us",
        "",
        f"end-to-end overhead: {overhead * 100:.2f}%   "
        f"(bar: <= {OVERHEAD_BAR * 100:.0f}%)",
        f"traces recorded: {traced}",
    ]
    artifact("obs_overhead.txt", "\n".join(lines) + "\n")

    artifact("BENCH_obs.json", json.dumps({
        "quick": QUICK,
        "sample_pairs": SAMPLE_PAIRS,
        "estimator": "per-request-alternation-paired-medians",
        "in_process_off_us": round(ip_off_us, 2),
        "tracing_added_us_per_request": round(added_us, 2),
        "end_to_end_request_us": round(e2e_us, 2),
        "overhead_fraction": round(overhead, 4),
        "overhead_bar": OVERHEAD_BAR,
        "traces_recorded": traced,
    }, indent=2, sort_keys=True) + "\n")

    assert traced >= SAMPLE_PAIRS
    assert overhead <= OVERHEAD_BAR, (
        f"tracing overhead {overhead * 100:.2f}% of the end-to-end "
        f"request exceeds the {OVERHEAD_BAR * 100:.0f}% bar "
        f"(added {added_us:.1f}us on a {e2e_us:.1f}us request)")
