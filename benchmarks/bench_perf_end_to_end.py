"""PERF-E2E — end-to-end request latency across execution modes.

The 1996 deployment paid a process fork + interpreter start + DBMS
connect on *every* request (Figure 4's "start the CGI application as a
separate process").  This experiment quantifies that against in-process
dispatch and against real-TCP transport, on the same application and
request.

Expected shape: subprocess CGI is dominated by process start-up
(hundreds of ms for a Python interpreter — the 1996 pain, amplified),
TCP adds socket overhead over in-process, and the gateway work itself
is a small slice.
"""

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.datasets import seed_urldb
from repro.apps.site import build_site
from repro.cgi.environ import CgiEnvironment
from repro.cgi.process import SubprocessCgiRunner
from repro.cgi.request import CgiRequest
from repro.http.client import HttpClient
from repro.http.headers import Headers
from repro.http.message import HttpRequest
from repro.http.urls import Url
from repro.sql.connection import Connection

QUERY = "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"


def report_request() -> CgiRequest:
    return CgiRequest(CgiEnvironment(
        request_method="GET", script_name="/cgi-bin/db2www",
        path_info="/urlquery.d2w/report", query_string=QUERY))


def test_perf_e2e_in_process_dispatch(benchmark, urlquery_site):
    response = benchmark(urlquery_site.gateway.dispatch, "db2www",
                         report_request())
    assert response.status == 200


def test_perf_e2e_over_tcp(benchmark, urlquery_site):
    server = urlquery_site.serve()
    try:
        url = Url.parse(
            f"{server.base_url}/cgi-bin/db2www/urlquery.d2w/report"
            f"?{QUERY}")
        client = HttpClient()

        def over_tcp():
            return client.fetch(
                url, HttpRequest(target=url.request_target,
                                 headers=Headers()))

        response = benchmark(over_tcp)
        assert response.status == 200
    finally:
        server.shutdown()


@pytest.fixture(scope="module")
def subprocess_deployment(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("e2e")
    db_path = tmp_path / "urldb.sqlite"
    conn = Connection(str(db_path))
    seed_urldb(conn, 150)
    conn.close()
    macro_dir = tmp_path / "macros"
    macro_dir.mkdir()
    (macro_dir / "urlquery.d2w").write_text(
        urlquery_app.URLQUERY_MACRO, encoding="utf-8")
    return {"REPRO_MACRO_DIR": str(macro_dir),
            "REPRO_DATABASE_URLDB": str(db_path)}


def test_perf_e2e_process_per_request(benchmark, subprocess_deployment):
    """The faithful 1996 mode: fork/exec a fresh gateway per request."""
    runner = SubprocessCgiRunner(extra_env=subprocess_deployment)

    response = benchmark.pedantic(
        runner.run, args=(report_request(),), rounds=5, iterations=1)
    assert response.status == 200


def test_perf_e2e_artifact(benchmark, urlquery_site,
                           subprocess_deployment, artifact):
    """One comparison table across the three execution modes."""
    import time
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(fn, rounds):
        start = time.perf_counter()
        for _ in range(rounds):
            fn()
        return (time.perf_counter() - start) / rounds * 1e3

    in_process = timed(
        lambda: urlquery_site.gateway.dispatch("db2www",
                                               report_request()), 50)
    server = urlquery_site.serve()
    try:
        url = Url.parse(
            f"{server.base_url}/cgi-bin/db2www/urlquery.d2w/report"
            f"?{QUERY}")
        client = HttpClient()
        over_tcp = timed(
            lambda: client.fetch(
                url, HttpRequest(target=url.request_target,
                                 headers=Headers())), 50)
    finally:
        server.shutdown()
    runner = SubprocessCgiRunner(extra_env=subprocess_deployment)
    subprocess_ms = timed(lambda: runner.run(report_request()), 3)

    lines = [
        "PERF-E2E — one report request, three execution modes",
        "",
        f"{'mode':<28}{'mean_ms':>10}",
        f"{'in-process dispatch':<28}{in_process:>10.3f}",
        f"{'HTTP over real TCP':<28}{over_tcp:>10.3f}",
        f"{'process-per-request CGI':<28}{subprocess_ms:>10.3f}",
        "",
        "Shape: the 1996 process-per-request model is dominated by",
        "process start-up; gateway work is a small slice of it.",
    ]
    artifact("perf_end_to_end.txt", "\n".join(lines) + "\n")
    assert subprocess_ms > in_process
