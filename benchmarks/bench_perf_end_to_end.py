"""PERF-E2E — end-to-end request latency across execution modes.

The 1996 deployment paid a process fork + interpreter start + DBMS
connect on *every* request (Figure 4's "start the CGI application as a
separate process").  This experiment quantifies that against in-process
dispatch and against real-TCP transport, on the same application and
request.

Expected shape: subprocess CGI is dominated by process start-up
(hundreds of ms for a Python interpreter — the 1996 pain, amplified),
TCP adds socket overhead over in-process, and the gateway work itself
is a small slice.
"""

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.datasets import seed_urldb
from repro.apps.site import build_site
from repro.cgi.environ import CgiEnvironment
from repro.cgi.process import SubprocessCgiRunner
from repro.cgi.request import CgiRequest
from repro.core.engine import EngineConfig, MacroEngine
from repro.core.parser import parse_macro
from repro.http.client import HttpClient
from repro.http.headers import Headers
from repro.http.message import HttpRequest
from repro.http.urls import Url
from repro.sql.connection import Connection
from repro.sql.gateway import DatabaseRegistry
from repro.sql.querycache import QueryResultCache
from repro.workloads.metrics import CacheReport

QUERY = "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"


def report_request() -> CgiRequest:
    return CgiRequest(CgiEnvironment(
        request_method="GET", script_name="/cgi-bin/db2www",
        path_info="/urlquery.d2w/report", query_string=QUERY))


def test_perf_e2e_in_process_dispatch(benchmark, urlquery_site):
    response = benchmark(urlquery_site.gateway.dispatch, "db2www",
                         report_request())
    assert response.status == 200


def test_perf_e2e_over_tcp(benchmark, urlquery_site):
    server = urlquery_site.serve()
    try:
        url = Url.parse(
            f"{server.base_url}/cgi-bin/db2www/urlquery.d2w/report"
            f"?{QUERY}")
        client = HttpClient()

        def over_tcp():
            return client.fetch(
                url, HttpRequest(target=url.request_target,
                                 headers=Headers()))

        response = benchmark(over_tcp)
        assert response.status == 200
    finally:
        server.shutdown()


# ---------------------------------------------------------------------------
# Repeated-SELECT workload: query cache on vs off
# ---------------------------------------------------------------------------

#: Rows in the archive table; RPT_MAXROWS keeps printing cheap so the
#: repeated cost is dominated by the fetch the cache elides.
ARCHIVE_ROWS = 20_000

ARCHIVE_MACRO = """\
%DEFINE DATABASE = "ARCHIVE"
%DEFINE RPT_MAXROWS = "20"
%SQL{ SELECT n, payload FROM entries ORDER BY n
%SQL_REPORT{%ROW{<LI>$(V1): $(V2)
%}<P>$(ROW_NUM) entries</P>
%}
%}
%HTML_REPORT{%EXEC_SQL%}
"""


@pytest.fixture(scope="module")
def archive_registry():
    reg = DatabaseRegistry()
    db = reg.register_memory("ARCHIVE")
    with db.connect() as conn:
        conn.execute("CREATE TABLE entries (n INTEGER, payload TEXT)")
        conn.begin()
        for i in range(ARCHIVE_ROWS):
            conn.execute("INSERT INTO entries VALUES (?, ?)",
                         (i, f"entry-{i:06d}"))
        conn.commit()
    return reg


def _requests_per_second(engine, macro, *, rounds=30):
    import time
    engine.execute_report(macro, [])  # warm up
    start = time.perf_counter()
    for _ in range(rounds):
        result = engine.execute_report(macro, [])
    elapsed = (time.perf_counter() - start) / rounds
    assert f"<P>{ARCHIVE_ROWS} entries</P>" in result.html
    return 1.0 / elapsed


def test_perf_e2e_query_cache_speedup(benchmark, archive_registry,
                                      artifact):
    """Repeated identical SELECTs with the generation-keyed cache on
    versus off.  The read-mostly deployment profile of the paper: the
    same report URL fetched over and over between writes.  Acceptance
    bar: >= 3x requests/sec with the cache enabled."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    macro = parse_macro(ARCHIVE_MACRO)

    cold_engine = MacroEngine(archive_registry)  # no cache configured
    cache = QueryResultCache()
    cached_config = EngineConfig()
    cached_config.query_cache = cache
    cached_engine = MacroEngine(archive_registry, config=cached_config)

    cold_rps = _requests_per_second(cold_engine, macro)
    before = CacheReport.from_stats(cache.stats())
    cached_rps = _requests_per_second(cached_engine, macro)
    report = CacheReport.from_stats(cache.stats()).delta(before)
    speedup = cached_rps / cold_rps

    artifact("perf_query_cache.txt", "\n".join([
        f"PERF-E2E — repeated SELECT over {ARCHIVE_ROWS} rows, "
        f"query cache off vs on",
        "",
        f"{'mode':<14}{'req_per_s':>12}",
        f"{'cache off':<14}{cold_rps:>12.1f}",
        f"{'cache on':<14}{cached_rps:>12.1f}",
        "",
        f"speedup: {speedup:.2f}x",
        "",
        CacheReport.header(),
        report.row("workload"),
    ]) + "\n")
    assert report.hits > 0, "cache never hit during cached run"
    assert speedup >= 3.0, (
        f"cached path only {speedup:.2f}x over uncached")


def test_perf_e2e_query_cache_write_invalidation(archive_registry):
    """A write between repeats forces a re-read: the next request must
    see the new row and the cache must count an invalidation."""
    cache = QueryResultCache()
    config = EngineConfig()
    config.query_cache = cache
    engine = MacroEngine(archive_registry, config=config)
    read = parse_macro(ARCHIVE_MACRO)
    write = parse_macro("""\
%DEFINE DATABASE = "ARCHIVE"
%SQL{ UPDATE entries SET payload = 'HOT-ITEM' WHERE n = 0 %}
%HTML_REPORT{%EXEC_SQL ok%}
""")
    engine.execute_report(read, [])
    engine.execute_report(read, [])
    assert cache.stats()["hits"] == 1
    engine.execute_report(write, [])
    html = engine.execute_report(read, []).html
    assert "HOT-ITEM" in html
    assert cache.stats()["invalidations"] == 1
    # restore for other module-scoped consumers
    with archive_registry.connect("ARCHIVE") as conn:
        conn.execute(
            "UPDATE entries SET payload = 'entry-000000' WHERE n = 0")


@pytest.fixture(scope="module")
def subprocess_deployment(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("e2e")
    db_path = tmp_path / "urldb.sqlite"
    conn = Connection(str(db_path))
    seed_urldb(conn, 150)
    conn.close()
    macro_dir = tmp_path / "macros"
    macro_dir.mkdir()
    (macro_dir / "urlquery.d2w").write_text(
        urlquery_app.URLQUERY_MACRO, encoding="utf-8")
    return {"REPRO_MACRO_DIR": str(macro_dir),
            "REPRO_DATABASE_URLDB": str(db_path)}


def test_perf_e2e_process_per_request(benchmark, subprocess_deployment):
    """The faithful 1996 mode: fork/exec a fresh gateway per request."""
    runner = SubprocessCgiRunner(extra_env=subprocess_deployment)

    response = benchmark.pedantic(
        runner.run, args=(report_request(),), rounds=5, iterations=1)
    assert response.status == 200


def test_perf_e2e_artifact(benchmark, urlquery_site,
                           subprocess_deployment, artifact):
    """One comparison table across the three execution modes."""
    import time
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def timed(fn, rounds):
        start = time.perf_counter()
        for _ in range(rounds):
            fn()
        return (time.perf_counter() - start) / rounds * 1e3

    in_process = timed(
        lambda: urlquery_site.gateway.dispatch("db2www",
                                               report_request()), 50)
    server = urlquery_site.serve()
    try:
        url = Url.parse(
            f"{server.base_url}/cgi-bin/db2www/urlquery.d2w/report"
            f"?{QUERY}")
        client = HttpClient()
        over_tcp = timed(
            lambda: client.fetch(
                url, HttpRequest(target=url.request_target,
                                 headers=Headers())), 50)
    finally:
        server.shutdown()
    runner = SubprocessCgiRunner(extra_env=subprocess_deployment)
    subprocess_ms = timed(lambda: runner.run(report_request()), 3)

    lines = [
        "PERF-E2E — one report request, three execution modes",
        "",
        f"{'mode':<28}{'mean_ms':>10}",
        f"{'in-process dispatch':<28}{in_process:>10.3f}",
        f"{'HTTP over real TCP':<28}{over_tcp:>10.3f}",
        f"{'process-per-request CGI':<28}{subprocess_ms:>10.3f}",
        "",
        "Shape: the 1996 process-per-request model is dominated by",
        "process start-up; gateway work is a small slice of it.",
    ]
    artifact("perf_end_to_end.txt", "\n".join(lines) + "\n")
    assert subprocess_ms > in_process
