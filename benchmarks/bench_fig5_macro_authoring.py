"""FIG5 — Figure 5: the application development system overview.

Figure 5 shows macros authored with existing HTML editors and SQL query
tools and stored at the web server.  The authoring-side operations are
parse (validate what the developer wrote), unparse (regenerate source
from the tree — what a macro-aware editor would save) and the library's
load-with-cache path the server uses per request.
"""

import pytest

from repro.apps.library import LIBRARY_MACRO
from repro.apps.orders import ENTRY_MACRO, SEARCH_MACRO
from repro.apps.urlquery import URLQUERY_MACRO
from repro.core.macrofile import MacroLibrary
from repro.core.parser import parse_macro

ALL_MACROS = {
    "urlquery": URLQUERY_MACRO,
    "ordersearch": SEARCH_MACRO,
    "orderentry": ENTRY_MACRO,
    "library": LIBRARY_MACRO,
}


@pytest.mark.parametrize("name", sorted(ALL_MACROS))
def test_fig5_parse_each_application_macro(benchmark, name):
    source = ALL_MACROS[name]
    macro = benchmark(parse_macro, source)
    assert macro.html_report is not None


def test_fig5_parse_unparse_roundtrip(benchmark, artifact):
    macro = parse_macro(URLQUERY_MACRO)

    regenerated = benchmark(macro.unparse)

    artifact("fig5_unparsed_macro.d2w", regenerated)
    # A macro-editor save/load cycle is lossless at the semantic level.
    again = parse_macro(regenerated)
    assert len(again.sections) == len(macro.sections)
    assert again.html_input.body == macro.html_input.body
    assert again.unnamed_sql_sections()[0].command == \
        macro.unnamed_sql_sections()[0].command


def test_fig5_library_cached_load(benchmark, tmp_path):
    """The server-side load path: cache hit after first parse."""
    path = tmp_path / "urlquery.d2w"
    path.write_text(URLQUERY_MACRO, encoding="utf-8")
    library = MacroLibrary(tmp_path)
    library.load("urlquery.d2w")  # warm the cache

    macro = benchmark(library.load, "urlquery.d2w")
    assert macro.html_input is not None


def test_fig5_section431_lazy_example(benchmark):
    """The Section 4.3.1 lazy-evaluation macro, parsed and evaluated
    (indexed under FIG5 in DESIGN.md's experiment table)."""
    from repro.core.engine import MacroEngine

    source = (
        '%define X = "One$(Y)$(Z)"\n'
        '%define Y = " Two"\n'
        "%HTML_INPUT{$(X)%}\n"
        '%define Z = " Three"')
    engine = MacroEngine()

    def parse_and_run() -> str:
        return engine.execute_input(parse_macro(source)).html

    assert benchmark(parse_and_run) == "One Two"
