"""TXN5 — Section 5's two transaction modes under failure injection.

A two-statement order-entry macro whose second statement fails (the
audit table is missing) is run under auto-commit and single-transaction
modes.  The experiment verifies the semantic difference — first insert
kept vs rolled back — and times multi-statement macros under both modes
on the success path, where single mode amortises one commit across the
macro.
"""

import pytest

from repro.apps import orders as orders_app
from repro.core.parser import parse_macro
from repro.sql.transactions import TransactionMode

BATCH_MACRO_TEXT = """
%DEFINE DATABASE = "CELDIAL"
%SQL{ INSERT INTO orders (custid, product_name, quantity)
VALUES (10100, 'bikes', 1) %}
%SQL{ INSERT INTO orders (custid, product_name, quantity)
VALUES (10200, 'tents', 2) %}
%SQL{ INSERT INTO orders (custid, product_name, quantity)
VALUES (10300, 'ropes', 3) %}
%SQL{ DELETE FROM orders WHERE custid IN (10100, 10200, 10300)
AND order_id > 300 %}
%HTML_REPORT{%EXEC_SQL%}
"""


def order_count(app) -> int:
    conn = app.registry.connect(orders_app.DATABASE_NAME)
    try:
        return conn.execute("SELECT COUNT(*) FROM orders").fetchone()[0]
    finally:
        conn.close()


@pytest.mark.parametrize("mode", [TransactionMode.AUTO_COMMIT,
                                  TransactionMode.SINGLE],
                         ids=lambda m: m.value)
def test_txn5_multistatement_macro_throughput(benchmark, mode):
    """Four statements per macro, success path, both modes."""
    app = orders_app.install(transaction_mode=mode)
    macro = parse_macro(BATCH_MACRO_TEXT)

    def run_macro():
        return app.engine.execute_report(macro)

    result = benchmark(run_macro)
    assert result.ok
    assert len(result.statements) == 4


def test_txn5_failure_semantics(benchmark, artifact):
    """The behavioural half: what survives a mid-macro failure."""
    lines = ["TXN5 — mid-macro failure: what survives?", ""]
    outcomes = {}

    def run_both_modes():
        for mode in (TransactionMode.AUTO_COMMIT,
                     TransactionMode.SINGLE):
            yield mode

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for mode in run_both_modes():
        app = orders_app.install(with_audit_table=False,
                                 transaction_mode=mode)
        before = order_count(app)
        macro = app.library.load(orders_app.ENTRY_MACRO_NAME)
        result = app.engine.execute_report(macro, [
            ("order_cust", "10100"), ("order_prod", "bikes")])
        after = order_count(app)
        survived = after - before
        outcomes[mode] = survived
        lines.append(
            f"{mode.value:<12} statement1=INSERT ok,"
            f" statement2=INSERT failed -> "
            f"{survived} row(s) kept "
            f"({'partial effect visible' if survived else 'rolled back'})"
        )
        assert not result.ok
    artifact("txn5_transaction_modes.txt", "\n".join(lines) + "\n")
    # The paper's stated semantics:
    assert outcomes[TransactionMode.AUTO_COMMIT] == 1
    assert outcomes[TransactionMode.SINGLE] == 0
