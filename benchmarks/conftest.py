"""Shared fixtures and artifact collection for the benchmark harness.

Every benchmark regenerates a paper artifact (a figure's page, a data
flow trace, a comparison table) in addition to timing the code path that
produces it.  Artifacts are written under ``benchmarks/out/`` so a run
leaves behind the regenerated "figures" for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.apps import build_site
from repro.apps import orders as orders_app
from repro.apps import urlquery as urlquery_app

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact():
    """Writer for regenerated paper artifacts."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> Path:
        path = OUT_DIR / name
        path.write_text(text, encoding="utf-8")
        return path

    return write


@pytest.fixture(scope="session")
def urlquery():
    return urlquery_app.install(rows=150)


@pytest.fixture(scope="session")
def urlquery_site(urlquery):
    return build_site(urlquery.engine, urlquery.library)


@pytest.fixture(scope="session")
def orders():
    return orders_app.install()
