"""PERF-EDGE — the asyncio edge and TCP app-server scale-out.

Three measurements pin the ISSUE-6 transport work:

* **Edge capacity** — the asyncio edge serving pipelined keep-alive
  requests must sustain >= 5x the req/s of the recorded app-server
  gateway baseline (``BENCH_appserver.json``).  The edge's job is to
  never be the bottleneck: request framing, routing and response
  writing must cost far less than a worker dispatch.
* **Full-stack TCP dispatch** — the same edge fronting a worker-pool
  daemon over loopback TCP, recorded informationally (on the 1-CPU CI
  box the worker dominates, so no bar is asserted here).
* **Two-pool scale-out** — one dispatcher fanning out over two pool
  daemons ("two hosts" over loopback TCP) on a latency-bound workload
  must beat a single pool by >= 1.4x: the paper's multi-host app-server
  story, made measurable.

Results land in ``out/bench_edge_async.txt`` and the machine-readable
``out/BENCH_edge.json`` (checked in; CI re-asserts both bars under
``REPRO_BENCH_QUICK=1``).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.apps import urlquery as urlquery_app
from repro.apps.datasets import seed_urldb
from repro.appserver.remote import TcpPoolDispatcher, WorkerPoolDaemon
from repro.cgi.environ import CgiEnvironment
from repro.cgi.request import CgiRequest
from repro.http.async_server import AsyncHttpServer
from repro.http.message import HttpRequest
from repro.http.persistent import PersistentHttpClient
from repro.http.router import Router
from repro.http.urls import Url
from repro.sql.connection import Connection

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

QUERY = "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"
REPORT_TARGET = f"/cgi-bin/db2www/urlquery.d2w/report?{QUERY}"

#: pipelined requests per write on the capacity bench
PIPELINE_DEPTH = 32
#: total requests for the capacity measurement
CAPACITY_REQUESTS = 2_048 if QUICK else 16_384
#: sequential report requests through the full TCP stack
FULL_STACK_ROUNDS = 30 if QUICK else 150
#: requests per scale-out configuration
SCALEOUT_ROUNDS = 80 if QUICK else 240
#: client threads driving the scale-out dispatcher
SCALEOUT_CLIENTS = 4
#: injected per-request stall making the scale-out workload
#: latency-bound (so adding a second pool, not a second CPU, pays)
SLOW_SECONDS = 0.005

#: the recorded single-pool gateway baseline the edge must beat 5x
FALLBACK_BASELINE_RPS = 2257.35


def _baseline_rps() -> float:
    path = Path(__file__).parent / "out" / "BENCH_appserver.json"
    if path.is_file():
        payload = json.loads(path.read_text())
        recorded = payload.get("throughput", {}).get(
            "appserver_req_per_s")
        if recorded:
            return float(recorded)
    return FALLBACK_BASELINE_RPS


def report_request() -> CgiRequest:
    return CgiRequest(CgiEnvironment(
        request_method="GET", script_name="/cgi-bin/db2www",
        path_info="/urlquery.d2w/report", query_string=QUERY))


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("edge-bench")
    db_path = tmp_path / "urldb.sqlite"
    conn = Connection(str(db_path))
    seed_urldb(conn, 150)
    conn.close()
    macro_dir = tmp_path / "macros"
    macro_dir.mkdir()
    (macro_dir / "urlquery.d2w").write_text(
        urlquery_app.URLQUERY_MACRO, encoding="utf-8")
    return {"REPRO_MACRO_DIR": str(macro_dir),
            "REPRO_DATABASE_URLDB": str(db_path),
            "REPRO_QUERY_CACHE": "64",
            "REPRO_POOL_SIZE": "1"}


# ---------------------------------------------------------------------------
# Edge capacity: pipelined keep-alive requests against the asyncio edge
# ---------------------------------------------------------------------------

def test_bench_edge_capacity(benchmark, artifact):
    """The asyncio edge >= 5x the recorded app-server gateway req/s."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    router = Router()
    router.add_page("/hello", "<H1>Hello</H1>")
    batch = (b"GET /hello HTTP/1.1\r\nHost: bench\r\n\r\n"
             * PIPELINE_DEPTH)
    marker = b"HTTP/1.1 200"
    batches = CAPACITY_REQUESTS // PIPELINE_DEPTH

    with AsyncHttpServer(router, keep_alive_max=10_000_000) as server:
        with socket.create_connection((server.host, server.port),
                                      timeout=30.0) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

            def run_batch() -> None:
                sock.sendall(batch)
                seen = 0
                tail = b""
                while seen < PIPELINE_DEPTH:
                    chunk = sock.recv(1 << 16)
                    if not chunk:
                        raise AssertionError(
                            "edge closed mid-pipeline")
                    data = tail + chunk
                    seen += data.count(marker)
                    tail = data[-(len(marker) - 1):]

            run_batch()  # warm-up
            start = time.perf_counter()
            for _ in range(batches):
                run_batch()
            elapsed = time.perf_counter() - start

    requests = batches * PIPELINE_DEPTH
    edge_rps = requests / elapsed
    baseline = _baseline_rps()
    speedup = edge_rps / baseline

    lines = [
        f"PERF-EDGE — pipelined keep-alive capacity of the asyncio "
        f"edge ({requests} requests, depth {PIPELINE_DEPTH})",
        "",
        f"{'mode':<34}{'req_per_s':>12}",
        f"{'app-server gateway (recorded)':<34}{baseline:>12.1f}",
        f"{'async edge, static page':<34}{edge_rps:>12.1f}",
        "",
        f"edge_speedup: {speedup:.2f}x",
    ]
    artifact("bench_edge_async.txt", "\n".join(lines) + "\n")
    _merge_json(artifact, {
        "quick": QUICK,
        "edge_capacity": {
            "pipeline_depth": PIPELINE_DEPTH,
            "requests": requests,
            "edge_req_per_s": round(edge_rps, 2),
            "baseline_req_per_s": round(baseline, 2),
            "speedup": round(speedup, 2),
            "bar": 5.0,
        },
    })
    assert speedup >= 5.0, (
        f"async edge only {speedup:.2f}x the gateway baseline")


# ---------------------------------------------------------------------------
# Full stack over TCP: edge → dispatcher → pool daemon → worker
# ---------------------------------------------------------------------------

def test_bench_full_stack_tcp(benchmark, deployment, artifact):
    """Report req/s through the complete TCP stack (informational)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    with WorkerPoolDaemon(deployment, workers=2) as daemon:
        dispatcher = TcpPoolDispatcher(daemon.endpoint, channels=2)
        try:
            router = Router()
            router.gateway.install("db2www", dispatcher)
            with AsyncHttpServer(router) as server:
                with PersistentHttpClient(http11=True) as client:
                    url = Url.parse(server.base_url + REPORT_TARGET)

                    def run() -> None:
                        response = client.fetch(url, HttpRequest(
                            method="GET", target=REPORT_TARGET))
                        assert response.status == 200

                    run()  # warm-up
                    start = time.perf_counter()
                    for _ in range(FULL_STACK_ROUNDS):
                        run()
                    elapsed = time.perf_counter() - start
        finally:
            dispatcher.shutdown()

    stack_rps = FULL_STACK_ROUNDS / elapsed
    _merge_json(artifact, {"full_stack_tcp": {
        "rounds": FULL_STACK_ROUNDS,
        "req_per_s": round(stack_rps, 2),
    }})
    assert stack_rps > 0


# ---------------------------------------------------------------------------
# Two-pool scale-out over loopback TCP
# ---------------------------------------------------------------------------

def _drive(dispatcher: TcpPoolDispatcher, total: int) -> float:
    """``total`` report requests from SCALEOUT_CLIENTS threads."""
    remaining = [total]
    lock = threading.Lock()
    failures: list[BaseException] = []

    def client() -> None:
        while True:
            with lock:
                if remaining[0] <= 0:
                    return
                remaining[0] -= 1
            try:
                response = dispatcher.run(report_request())
                assert response.status == 200
            except BaseException as exc:  # surfaced after join
                with lock:
                    failures.append(exc)
                return

    dispatcher.run(report_request())  # warm-up: channels + workers
    threads = [threading.Thread(target=client)
               for _ in range(SCALEOUT_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise failures[0]
    return total / elapsed


def test_bench_two_pool_scaleout(benchmark, deployment, artifact):
    """Two pool daemons >= 1.4x one on a latency-bound workload."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Each request stalls SLOW_SECONDS in the worker: throughput is
    # bounded by (workers busy) / stall, not by the single CPU, so a
    # second "host" genuinely adds capacity.
    env = dict(deployment)
    env["REPRO_WORKER_FAULTS"] = f"slow:1:{SLOW_SECONDS}"

    with WorkerPoolDaemon(env, workers=2) as first:
        one = TcpPoolDispatcher(first.endpoint,
                                channels=SCALEOUT_CLIENTS)
        try:
            one_pool_rps = _drive(one, SCALEOUT_ROUNDS)
        finally:
            one.shutdown()

        with WorkerPoolDaemon(env, workers=2) as second:
            two = TcpPoolDispatcher(
                [first.endpoint, second.endpoint],
                channels=SCALEOUT_CLIENTS)
            try:
                two_pool_rps = _drive(two, SCALEOUT_ROUNDS)
                stats = two.stats()
            finally:
                two.shutdown()

    ratio = two_pool_rps / one_pool_rps
    lines = [
        f"PERF-EDGE — two-pool scale-out over loopback TCP "
        f"({SCALEOUT_ROUNDS} requests, {SCALEOUT_CLIENTS} clients, "
        f"{SLOW_SECONDS * 1000:.0f} ms injected stall/request)",
        "",
        f"{'configuration':<30}{'req_per_s':>12}",
        f"{'one pool  (2 workers)':<30}{one_pool_rps:>12.1f}",
        f"{'two pools (2 workers each)':<30}{two_pool_rps:>12.1f}",
        "",
        f"scaleout: {ratio:.2f}x",
    ]
    artifact("bench_edge_scaleout.txt", "\n".join(lines) + "\n")
    _merge_json(artifact, {"scaleout": {
        "rounds": SCALEOUT_ROUNDS,
        "clients": SCALEOUT_CLIENTS,
        "slow_ms": SLOW_SECONDS * 1000,
        "one_pool_req_per_s": round(one_pool_rps, 2),
        "two_pool_req_per_s": round(two_pool_rps, 2),
        "ratio": round(ratio, 2),
        "bar": 1.4,
        "pool_size": stats.get("channels"),
    }})
    assert ratio >= 1.4, (
        f"two pools only {ratio:.2f}x one pool on a "
        f"latency-bound workload")


def _merge_json(artifact, fields: dict) -> None:
    """Accumulate the three tests' results into one JSON artifact."""
    path = Path(__file__).parent / "out" / "BENCH_edge.json"
    payload = {}
    if path.is_file():
        payload = json.loads(path.read_text())
    payload.update(fields)
    artifact("BENCH_edge.json",
             json.dumps(payload, indent=2, sort_keys=True) + "\n")
