"""RES — throughput and tail latency against a degraded backend.

The resilience experiment: the same Appendix A workload is driven
against a backend injecting ~5% transient faults (deadlocks, timeouts,
dropped connects), once with the gateway's failure handling switched
off and once with retry + degradation + circuit breakers on.  The
resilient configuration must hold its success rate at ≥99% while the
naive one visibly bleeds error pages — quantifying what the layer buys
and what its backoff sleeps cost in p99.

Writes ``out/resilience_degraded.txt`` (the comparison table) and
``out/BENCH_resilience.json`` (machine-readable, diffed by CI).
"""

import json
from pathlib import Path

from repro.apps import build_site
from repro.apps import urlquery as urlquery_app
from repro.core.engine import EngineConfig, MacroEngine
from repro.resilience.retry import RetryPolicy
from repro.sql.gateway import DatabaseRegistry
from repro.workloads.concurrent import run_concurrent
from repro.workloads.generator import UrlQueryWorkload
from repro.workloads.metrics import ResilienceReport, Summary
from repro.workloads.runner import db2www_request_builder

FAULT_SPEC = "prob:0.05,seed:96"
REQUESTS = 600
THREADS = 4


def _run_scenario(*, resilient: bool):
    registry = DatabaseRegistry()
    if resilient:
        config = EngineConfig(
            retry_policy=RetryPolicy(max_attempts=4, base_delay=0.001,
                                     max_delay=0.01),
            degrade_sql_errors=True)
    else:
        config = EngineConfig()
    engine = MacroEngine(registry, config=config)
    app = urlquery_app.install(rows=80, registry=registry, engine=engine)
    registry.inject_faults(FAULT_SPEC)  # after seeding
    if resilient:
        registry.enable_breakers(failure_threshold=5, reset_timeout=0.5)
    site = build_site(app.engine, app.library)

    def clean(response):
        return (response.status == 200
                and b"SQLSTATE" not in response.body
                and b"injected" not in response.body)

    result = run_concurrent(
        site.gateway, UrlQueryWorkload(seed=96).requests(REQUESTS),
        db2www_request_builder("urlquery.d2w"), threads=THREADS,
        check=clean)
    return result, ResilienceReport.from_stats(registry.resilience_stats())


def _scenario_json(result, report: ResilienceReport) -> dict:
    summary: Summary = result.summary
    return {
        "requests": result.responses,
        "success_rate": round(result.success_rate, 4),
        "throughput_rps": round(summary.throughput_rps, 1),
        "p50_ms": round(summary.p50_ms, 3),
        "p99_ms": round(summary.p99_ms, 3),
        "injected_faults": report.injected_total,
        "retries": report.retries,
        "breaker_opens": report.breaker_opens,
        "status_counts": {str(code): count for code, count
                          in sorted(result.status_counts.items())},
    }


def test_res_degraded_backend(artifact):
    naive, naive_report = _run_scenario(resilient=False)
    resilient, resilient_report = _run_scenario(resilient=True)

    lines = [
        f"RES: {REQUESTS} requests, {THREADS} threads, "
        f"faults={FAULT_SPEC}",
        "",
        Summary.header(),
        naive.summary.row("naive"),
        resilient.summary.row("resilient"),
        "",
        f"{'config':<14} {'success':>8} {'faults':>8} {'retries':>8} "
        f"{'opens':>6}",
        f"{'naive':<14} {naive.success_rate:>8.1%} "
        f"{naive_report.injected_total:>8} {naive_report.retries:>8} "
        f"{naive_report.breaker_opens:>6}",
        f"{'resilient':<14} {resilient.success_rate:>8.1%} "
        f"{resilient_report.injected_total:>8} "
        f"{resilient_report.retries:>8} "
        f"{resilient_report.breaker_opens:>6}",
    ]
    artifact("resilience_degraded.txt", "\n".join(lines) + "\n")

    payload = {
        "fault_spec": FAULT_SPEC,
        "naive": _scenario_json(naive, naive_report),
        "resilient": _scenario_json(resilient, resilient_report),
    }
    out = Path(__file__).parent / "out" / "BENCH_resilience.json"
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # the acceptance claims, enforced on every run
    assert naive.summary.count == REQUESTS
    assert resilient.summary.count == REQUESTS
    assert resilient.success_rate >= 0.99
    assert resilient.status_counts.get(500, 0) == 0
    assert naive.success_rate < resilient.success_rate
    assert naive_report.injected_total > 0
    assert resilient_report.injected_total > 0
