"""EX-S313 — the Section 3.1.3 worked example as an experiment.

Regenerates the paper's evaluation table for ``where_list`` /
``where_clause`` across all four input combinations, and times the
substitution machinery that builds the clause.
"""

import pytest

from repro.core.engine import MacroEngine
from repro.core.parser import parse_macro

FRAGMENT = """
%define{
%list " AND " where_list
where_list = ? "custid = $(cust_inp)"
where_list = ? "product_name LIKE '$(prod_inp)%'"
where_clause = ? "WHERE $(where_list)"
%}
%HTML_INPUT{$(where_clause)%}
"""

CASES = {
    "both": ([("cust_inp", "10100"), ("prod_inp", "bikes")],
             "WHERE custid = 10100 AND product_name LIKE 'bikes%'"),
    "cust_only": ([("cust_inp", "10100")],
                  "WHERE custid = 10100"),
    "prod_only": ([("prod_inp", "bikes")],
                  "WHERE product_name LIKE 'bikes%'"),
    "neither": ([], ""),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_s313_clause_assembly(benchmark, case):
    inputs, expected = CASES[case]
    engine = MacroEngine()
    macro = parse_macro(FRAGMENT)

    result = benchmark(engine.execute_input, macro, inputs)
    assert result.html.strip() == expected


def test_s313_regenerate_paper_table(benchmark, artifact):
    """The artifact: the paper's own evaluation table, regenerated."""
    engine = MacroEngine()
    macro = parse_macro(FRAGMENT)

    def regenerate():
        rows = []
        for name, (inputs, expected) in CASES.items():
            bound = dict(inputs)
            got = engine.execute_input(macro, inputs).html.strip()
            assert got == expected, name
            rows.append((bound, got))
        return rows

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    lines = [f"{'cust_inp':<10} {'prod_inp':<10} where_clause",
             "-" * 60]
    for bound, got in rows:
        lines.append(f"{bound.get('cust_inp', '(none)'):<10} "
                     f"{bound.get('prod_inp', '(none)'):<10} "
                     f"{got or '(no WHERE clause)'}")
    artifact("s313_where_clause_table.txt", "\n".join(lines) + "\n")


def test_s313_against_live_database(benchmark, orders):
    """The same clause driving a real query over the orders table."""
    macro = orders.library.load("ordersearch.d2w")
    inputs = [("cust_inp", "10100"), ("prod_inp", "bike")]

    result = benchmark(orders.engine.execute_report, macro, inputs)
    assert result.ok
    assert "o.custid = 10100" in result.statements[0]
