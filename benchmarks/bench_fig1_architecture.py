"""FIG1 — Figure 1: the World Wide Web architecture.

Browsers on multiple (simulated) client machines reach one web server,
which reaches the DBMS through the gateway.  The bench measures one
complete user request across the whole stack — browser encode → HTTP →
router → CGI → macro engine → SQL → page parse — and writes a trace of
the layers traversed as the artifact.
"""

from repro.http.headers import Headers
from repro.http.message import HttpRequest
from repro.http.urls import Url


def test_fig1_full_stack_request(benchmark, urlquery_site, urlquery,
                                 artifact):
    transport = urlquery_site.transport
    url = Url.parse(
        "http://www.example.com/cgi-bin/db2www/urlquery.d2w/report"
        "?SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title")

    def one_request():
        request = HttpRequest(target=url.request_target,
                              headers=Headers())
        return transport.fetch(url, request)

    response = benchmark(one_request)

    assert response.status == 200
    trace = (
        "Figure 1 — one request across the architecture\n"
        "  Web client (browser)      encodes the URL + variables\n"
        f"  -> HTTP request           GET {url.request_target}\n"
        "  -> Web server (router)     matches /cgi-bin/, builds CGI env\n"
        "  -> DB2WWW (CGI program)    loads macro urlquery.d2w,"
        " report mode\n"
        "  -> DBMS gateway            executes the substituted SELECT\n"
        f"  <- HTML page               {len(response.body)} bytes,"
        f" status {response.status}\n")
    artifact("fig1_architecture_trace.txt", trace)


def test_fig1_many_clients_one_server(benchmark, urlquery_site):
    """Figure 1 shows many workstations: N independent browser sessions
    issuing interleaved requests against one server."""
    sessions = [urlquery_site.new_browser() for _ in range(8)]

    def all_clients():
        pages = []
        for i, browser in enumerate(sessions):
            pages.append(browser.get(
                f"/cgi-bin/db2www/urlquery.d2w/report?SEARCH=ib"
                f"&USE_TITLE=yes&DBFIELDS=title&client={i}"))
        return pages

    pages = benchmark(all_clients)
    assert all(page.status == 200 for page in pages)
