"""Scrollable cursors over the Web — the paper's promised application.

Section 4.3 closes with: "The lazy substitution mechanism and the HTML
input variable processing features can also be used as a basis for
implementing useful application features like hiding variables from the
end user, **scrollable cursors**, and **relating multiple client-server
interactions on the web as part of the same application**."

This module is that application, built from nothing but the paper's own
mechanisms:

* ``START_ROW_NUM`` / ``RPT_MAXROWS`` window the report (the scrollable
  cursor — the query re-runs, the report shows one page);
* ``%EXEC`` variables do the page arithmetic (the paper's extension
  point for "invocation of any program", standing in for the built-in
  functions the shipped successor grew);
* conditional variables hide the Next/Previous links at the ends of the
  result set (an ``%EXEC`` command returning the null string makes the
  strict conditional evaluate to null);
* the links carry ``START_ROW_NUM`` back as an HTML input variable,
  which is how consecutive requests become "part of the same
  application" — state lives in the page, the gateway stays stateless.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.datasets import seed_urldb
from repro.core.engine import MacroEngine
from repro.core.execvars import RegistryExecRunner
from repro.core.macrofile import MacroLibrary
from repro.sql.connection import MemoryDatabase
from repro.sql.gateway import DatabaseRegistry

MACRO_NAME = "browse.d2w"
DATABASE_NAME = "URLDB"

BROWSE_MACRO = """\
%DEFINE{
DATABASE = "URLDB"
RPT_MAXROWS = "10"
START_ROW_NUM = "1"
q = ""
next_start = %EXEC "page_next $(START_ROW_NUM) $(RPT_MAXROWS) $(ROW_NUM)"
prev_start = %EXEC "page_prev $(START_ROW_NUM) $(RPT_MAXROWS)"
page_base = "/cgi-bin/db2www/browse.d2w/report?q=$(q)&START_ROW_NUM="
next_link = ? "<A HREF=\\"$(page_base)$(next_start)\\">Next page</A>"
prev_link = ? "<A HREF=\\"$(page_base)$(prev_start)\\">Previous page</A>"
%}

%SQL{
SELECT url, title FROM urldb WHERE title LIKE '%$(q)%' ORDER BY title
%SQL_REPORT{
<UL>
%ROW{<LI>#$(ROW_NUM) <A HREF="$(V_url)">$(V_title)</A>
%}
</UL>
<P>Showing from row $(START_ROW_NUM) (page size $(RPT_MAXROWS)) of
$(ROW_NUM) total matches.</P>
%}
%}

%HTML_INPUT{<HTML><HEAD><TITLE>Browse URLs</TITLE></HEAD>
<BODY>
<H1>Browse the URL database</H1>
<FORM METHOD="get" ACTION="/cgi-bin/db2www/browse.d2w/report">
Title contains: <INPUT TYPE="text" NAME="q">
<INPUT TYPE="submit" VALUE="Browse">
</FORM>
</BODY></HTML>
%}

%HTML_REPORT{<HTML><HEAD><TITLE>Browse URLs</TITLE></HEAD>
<BODY>
<H1>URL listing</H1>
%EXEC_SQL
<P>$(prev_link) $(next_link)</P>
<P><A HREF="/cgi-bin/db2www/browse.d2w/input">New search</A></P>
</BODY></HTML>
%}
"""


def paging_exec_runner() -> RegistryExecRunner:
    """The arithmetic commands the browse macro's %EXEC variables call.

    Each returns either a row number as text or the null string, so the
    conditional link variables show/hide themselves.
    """
    runner = RegistryExecRunner()

    @runner.register("page_next")
    def page_next(args: list[str]) -> str:
        start, size, total = (int(a) for a in args)
        next_start = start + size
        return str(next_start) if next_start <= total else ""

    @runner.register("page_prev")
    def page_prev(args: list[str]) -> str:
        start, size = int(args[0]), int(args[1])
        if start <= 1:
            return ""
        return str(max(start - size, 1))

    return runner


@dataclass
class PagingApp:
    engine: MacroEngine
    library: MacroLibrary
    registry: DatabaseRegistry
    database: MemoryDatabase
    macro_name: str = MACRO_NAME
    rows: int = 0

    @property
    def input_path(self) -> str:
        return f"/cgi-bin/db2www/{self.macro_name}/input"

    @property
    def report_path(self) -> str:
        return f"/cgi-bin/db2www/{self.macro_name}/report"


def install(*, rows: int = 45, seed: int = 96,
            registry: DatabaseRegistry | None = None,
            library: MacroLibrary | None = None) -> PagingApp:
    """Create the URL database and register the paging macro."""
    registry = registry or DatabaseRegistry()
    library = library or MacroLibrary()
    if DATABASE_NAME not in registry:
        database = registry.register_memory(DATABASE_NAME)
        with database.connect() as conn:
            inserted = seed_urldb(conn, rows, seed=seed)
    else:  # share an existing URLDB (composing with the urlquery app)
        database = None  # type: ignore[assignment]
        inserted = rows
    library.add_text(MACRO_NAME, BROWSE_MACRO)
    engine = MacroEngine(registry, exec_runner=paging_exec_runner())
    return PagingApp(engine=engine, library=library, registry=registry,
                     database=database, rows=inserted)
