"""Web-server statistics — the webmaster's wwwstat page, via the gateway.

Every 1996 site ran a log summariser (wwwstat, getstats) over its
Common Log Format access log.  This application does it with the
paper's own machinery — which is the point: the access log is loaded
into a relational table and the report pages are just macros, so the
gateway reports on itself.

Exercises pieces no other example combines: a run-time-selected named
SQL section (`%EXEC_SQL($(view))`) over *aggregating* SQL (GROUP BY,
ORDER BY count), fed by data produced by :mod:`repro.http.accesslog`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.engine import MacroEngine
from repro.core.macrofile import MacroLibrary
from repro.http.accesslog import LogEntry
from repro.sql.connection import MemoryDatabase
from repro.sql.gateway import DatabaseRegistry

MACRO_NAME = "webstats.d2w"
DATABASE_NAME = "WEBSTATS"

SCHEMA = """
CREATE TABLE access_log (
    host    VARCHAR(64)  NOT NULL,
    method  VARCHAR(8)   NOT NULL,
    path    VARCHAR(200) NOT NULL,
    status  INTEGER      NOT NULL,
    bytes   INTEGER      NOT NULL
);
"""

WEBSTATS_MACRO = """\
%DEFINE{
DATABASE = "WEBSTATS"
view = "top_pages"
RPT_MAXROWS = "15"
%}

%SQL(top_pages){
SELECT path, COUNT(*) AS hits, SUM(bytes) AS bytes_sent
FROM access_log GROUP BY path ORDER BY hits DESC, path
%SQL_REPORT{
<H2>Most requested pages</H2>
<TABLE BORDER=1>
<TR><TH>$(N_path)</TH><TH>$(N_hits)</TH><TH>$(N_bytes_sent)</TH></TR>
%ROW{<TR><TD>$(V_path)</TD><TD>$(V_hits)</TD><TD>$(V_bytes_sent)</TD></TR>
%}
</TABLE>
%}
%}

%SQL(status_summary){
SELECT status, COUNT(*) AS hits FROM access_log
GROUP BY status ORDER BY status
%SQL_REPORT{
<H2>Responses by status code</H2>
<UL>
%ROW{<LI>$(V_status): $(V_hits) request(s)
%}
</UL>
%}
%}

%SQL(top_hosts){
SELECT host, COUNT(*) AS hits FROM access_log
GROUP BY host ORDER BY hits DESC, host
%SQL_REPORT{
<H2>Busiest client hosts</H2>
<UL>
%ROW{<LI>$(V_host): $(V_hits) request(s)
%}
</UL>
%}
%}

%SQL(errors){
SELECT path, status, COUNT(*) AS hits FROM access_log
WHERE status >= 400 GROUP BY path, status ORDER BY hits DESC
%SQL_REPORT{
<H2>Errors</H2>
<UL>
%ROW{<LI>$(V_status) on $(V_path): $(V_hits) time(s)
%}
</UL>
<P>$(ROW_NUM) distinct error source(s).</P>
%}
%}

%HTML_INPUT{<HTML><HEAD><TITLE>Server statistics</TITLE></HEAD>
<BODY>
<H1>Server statistics</H1>
<FORM METHOD="get" ACTION="/cgi-bin/db2www/webstats.d2w/report">
Report:
<SELECT NAME="view">
<OPTION VALUE="top_pages" SELECTED> Most requested pages
<OPTION VALUE="status_summary">Status codes
<OPTION VALUE="top_hosts">Busiest hosts
<OPTION VALUE="errors">Errors
</SELECT>
<INPUT TYPE="submit" VALUE="Show">
</FORM>
</BODY></HTML>
%}

%HTML_REPORT{<HTML><HEAD><TITLE>Server statistics</TITLE></HEAD>
<BODY>
<H1>Server statistics</H1>
%EXEC_SQL($(view))
<P><A HREF="/cgi-bin/db2www/webstats.d2w/input">Other reports</A></P>
</BODY></HTML>
%}
"""


def load_entries(conn, entries: Iterable[LogEntry]) -> int:
    """Import parsed log entries into the access_log table."""
    count = 0
    for entry in entries:
        conn.execute(
            "INSERT INTO access_log (host, method, path, status, bytes)"
            " VALUES (?, ?, ?, ?, ?)",
            (entry.host, entry.method, entry.path, entry.status,
             max(entry.size, 0)))
        count += 1
    return count


@dataclass
class WebStatsApp:
    engine: MacroEngine
    library: MacroLibrary
    registry: DatabaseRegistry
    database: MemoryDatabase
    imported: int

    input_path: str = f"/cgi-bin/db2www/{MACRO_NAME}/input"
    report_path: str = f"/cgi-bin/db2www/{MACRO_NAME}/report"

    def reload(self, entries: Iterable[LogEntry]) -> int:
        """Replace the imported log with fresh entries."""
        with self.database.connect() as conn:
            conn.execute("DELETE FROM access_log")
            self.imported = load_entries(conn, entries)
        return self.imported


def install(entries: Iterable[LogEntry] = (), *,
            registry: DatabaseRegistry | None = None,
            library: MacroLibrary | None = None) -> WebStatsApp:
    registry = registry or DatabaseRegistry()
    library = library or MacroLibrary()
    database = registry.register_memory(DATABASE_NAME)
    with database.connect() as conn:
        conn.executescript(SCHEMA)
        imported = load_entries(conn, entries)
    library.add_text(MACRO_NAME, WEBSTATS_MACRO)
    engine = MacroEngine(registry)
    return WebStatsApp(engine=engine, library=library,
                       registry=registry, database=database,
                       imported=imported)
