"""The Appendix A application: the URL database query.

This is the paper's complete worked example — the macro whose input mode
is Figure 7 and whose report mode is Figure 8.  The macro text below is
the Appendix A source with the OCR damage of the scanned paper repaired
(the scanned listing garbles several tag names) and nothing else changed:
the hidden-variable ``$$`` idiom, the conditional ``D2``/``D3`` report
columns, the OR-joined ``L_INFO`` search list and the ``SHOWSQL`` radio
buttons are all exactly as published.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.datasets import seed_urldb
from repro.core.engine import MacroEngine
from repro.core.macrofile import MacroLibrary
from repro.sql.connection import MemoryDatabase
from repro.sql.gateway import DatabaseRegistry

MACRO_NAME = "urlquery.d2w"
DATABASE_NAME = "URLDB"

URLQUERY_MACRO = """\
%DEFINE{
DATABASE = "URLDB"
dbtbl = "urldb"
%LIST " OR " L_INFO
L_INFO = USE_URL ? "$(dbtbl).url LIKE '%$(SEARCH)%'" : ""
L_INFO = USE_TITLE ? "$(dbtbl).title LIKE '%$(SEARCH)%'" : ""
L_INFO = USE_DESC ? "$(dbtbl).description LIKE '%$(SEARCH)%'" : ""
WHERELIST = ? "WHERE $(L_INFO)"
%LIST " , " DBFIELDS
D2 = ? "<BR>$(V2)"
D3 = ? "<BR>$(V3)"
%}

%SQL{
SELECT url, $(DBFIELDS)
FROM $(dbtbl) $(WHERELIST) ORDER BY title
%SQL_REPORT{
Select any of the following to go to the specified URL:
<UL>
%ROW{<LI> <A HREF="$(V1)">$(V1)</A> $(D2) $(D3)
%}
</UL>
%}
%}

%HTML_INPUT{<HTML><HEAD><TITLE>DB2 WWW URL Query</TITLE></HEAD>
<BODY>
<IMG SRC="/icons/headldg.gif" ALT="DB2 WWW">
<H1>Query URL Information</H1>
<P>Enter a search string to query URLs. You do not need to specify the
entire value for a particular field. For example use "ib" instead of
"ibm". URLs matching the query will be listed after the query.
<P>
<FORM METHOD="post"
 ACTION="/cgi-bin/db2www/urlquery.d2w/report">
Search String: <INPUT TYPE="text" NAME="SEARCH" SIZE=20 VALUE="ib">
<P>
Use the above search string in which of the following:
<P>
<INPUT TYPE="checkbox" NAME="USE_URL" VALUE="yes" CHECKED> URL<BR>
<INPUT TYPE="checkbox" NAME="USE_TITLE" VALUE="yes" CHECKED> Title<BR>
<INPUT TYPE="checkbox" NAME="USE_DESC" VALUE="yes"> Description
<P>
Note: If you unselect all of the above checkboxes, all of the URLs in
the database will be displayed on output.
<P>
Please select what additional field(s) to see in the report:<BR>
<SELECT NAME="DBFIELDS" SIZE=2 MULTIPLE>
<OPTION VALUE="$$(hidden_a)" SELECTED> Title
<OPTION VALUE="$$(hidden_b)">Description
</SELECT>
<P>
<HR>
Show SQL statement on output?
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="YES"> Yes
<INPUT TYPE="radio" NAME="SHOWSQL" VALUE="" CHECKED> No
<P>
<INPUT TYPE="submit" VALUE="Submit Query">
<INPUT TYPE="reset" VALUE="Reset Input">
</FORM>
<HR>
Other pages of interest:
<UL>
<LI><A HREF="http://www.ibm.com/">IBM Corporation</A>
<LI><A HREF="http://www.software.ibm.com/data/db2/">DB2 Product Family</A>
</UL>
</BODY></HTML>
%}

%DEFINE{
hidden_a = "title"
hidden_b = "description"
%}

%HTML_REPORT{<HTML><HEAD><TITLE>DB2 WWW URL Query Result</TITLE></HEAD>
<BODY>
<IMG SRC="/icons/headldl.gif" ALT="DB2 WWW">
<H1>URL Query Result</H1>
<HR>
%EXEC_SQL
<HR>
Other pages of interest:
<UL>
<LI><A HREF="http://www.ibm.com/">IBM Corporation</A>
<LI><A HREF="/cgi-bin/db2www/urlquery.d2w/input">New URL query</A>
</UL>
</BODY></HTML>
%}
"""


@dataclass
class UrlQueryApp:
    """The installed application: engine, macro library and database."""

    engine: MacroEngine
    library: MacroLibrary
    registry: DatabaseRegistry
    database: MemoryDatabase
    macro_name: str = MACRO_NAME
    rows: int = 0

    @property
    def input_path(self) -> str:
        return f"/cgi-bin/db2www/{self.macro_name}/input"

    @property
    def report_path(self) -> str:
        return f"/cgi-bin/db2www/{self.macro_name}/report"


def install(*, rows: int = 150, seed: int = 96,
            registry: DatabaseRegistry | None = None,
            library: MacroLibrary | None = None,
            engine: MacroEngine | None = None) -> UrlQueryApp:
    """Create the URL database, seed it and register the macro.

    Returns a ready :class:`UrlQueryApp`; compose it with
    :func:`repro.apps.site.build_site` to serve it over HTTP/CGI.
    """
    registry = registry or DatabaseRegistry()
    library = library or MacroLibrary()
    database = registry.register_memory(DATABASE_NAME)
    with database.connect() as conn:
        inserted = seed_urldb(conn, rows, seed=seed)
    library.add_text(MACRO_NAME, URLQUERY_MACRO)
    engine = engine or MacroEngine(registry)
    engine.registry = registry
    return UrlQueryApp(engine=engine, library=library, registry=registry,
                       database=database, rows=inserted)


#: The exact variable bindings of Figure 3 — what the Web client sends
#: when the user of Figure 2's form leaves the search box empty, keeps
#: URL and Title checked, selects Title and Description in the list and
#: leaves "Show SQL" on No.  (``USE_DESC`` and ``SHOWSQL`` do not travel:
#: an unchecked checkbox and a value-less radio submit nothing, which the
#: paper folds into "not defined and ... null string are treated
#: identically".)
FIGURE3_BINDINGS: list[tuple[str, str]] = [
    ("SEARCH", ""),
    ("USE_URL", "yes"),
    ("USE_TITLE", "yes"),
    ("DBFIELDS", "title"),
    ("DBFIELDS", "description"),
]
