"""A guestbook: the archetypal 1996 read-and-update Web application.

The paper's introduction defines Web/DBMS applications as form →
extract inputs → access the DBMS ("both read and/or update access is
possible here") → format a report.  The URL-query app covers the read
side; this guestbook covers the update side in its simplest period
form: a TEXTAREA form INSERTs a row, and the same report page lists
every entry newest-first.

It also demonstrates defensive macro authoring with the tools this
library adds on top of the paper:

* the engine runs with ``escape_report_values=True`` so visitor text
  cannot inject markup into the listing (the 1996 default would);
* ``RPT_MAXROWS`` keeps the page bounded;
* a ``%SQL_MESSAGE`` rule turns constraint violations (empty name)
  into a polite message with ``continue``, so the listing still shows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import EngineConfig, MacroEngine
from repro.core.macrofile import MacroLibrary
from repro.sql.connection import MemoryDatabase
from repro.sql.gateway import DatabaseRegistry

MACRO_NAME = "guestbook.d2w"
DATABASE_NAME = "GUESTBOOK"

SCHEMA = """
CREATE TABLE guestbook (
    entry_id  INTEGER PRIMARY KEY,
    visitor   VARCHAR(60) NOT NULL CHECK (length(visitor) > 0),
    message   VARCHAR(500) NOT NULL,
    signed_at TEXT NOT NULL DEFAULT (datetime('now'))
);
"""

GUESTBOOK_MACRO = """\
%DEFINE{
DATABASE = "GUESTBOOK"
RPT_MAXROWS = "20"
do_sign = ""
%}

%SQL(sign){
INSERT INTO guestbook (visitor, message)
VALUES ('$(visitor)', '$(message)')
%SQL_REPORT{
<P><I>Thanks for signing, $(visitor)!</I></P>
%}
%SQL_MESSAGE{
23505 : "<P><I>Please tell us your name before signing.</I></P>" : continue
default : "<P><I>Could not record your entry: $(SQL_MESSAGE)</I></P>" : continue
%}
%}

%SQL(noop){
SELECT 1 WHERE 1 = 0
%SQL_REPORT{%}
%}

%SQL(listing){
SELECT visitor, message, signed_at FROM guestbook
ORDER BY entry_id DESC
%SQL_REPORT{
<DL>
%ROW{<DT><B>$(V_visitor)</B> wrote on $(V_signed_at):
<DD>$(V_message)
%}
</DL>
<P>$(ROW_NUM) entr(y/ies) in the book.</P>
%}
%}

%HTML_INPUT{<HTML><HEAD><TITLE>Guestbook</TITLE></HEAD>
<BODY>
<H1>Sign our guestbook</H1>
<FORM METHOD="post" ACTION="/cgi-bin/db2www/guestbook.d2w/report">
<INPUT TYPE="hidden" NAME="do_sign" VALUE="yes">
Your name: <INPUT TYPE="text" NAME="visitor" SIZE=30>
<P>Your message:<BR>
<TEXTAREA NAME="message" ROWS=4 COLS=40></TEXTAREA>
<P><INPUT TYPE="submit" VALUE="Sign the book">
</FORM>
<P><A HREF="/cgi-bin/db2www/guestbook.d2w/report">Just read it</A></P>
</BODY></HTML>
%}

%DEFINE sign_or_skip = do_sign ? "sign" : "noop"

%HTML_REPORT{<HTML><HEAD><TITLE>Guestbook</TITLE></HEAD>
<BODY>
<H1>Our guestbook</H1>
%EXEC_SQL($(sign_or_skip))
%EXEC_SQL(listing)
<P><A HREF="/cgi-bin/db2www/guestbook.d2w/input">Sign the book</A></P>
</BODY></HTML>
%}
"""


@dataclass
class GuestbookApp:
    engine: MacroEngine
    library: MacroLibrary
    registry: DatabaseRegistry
    database: MemoryDatabase

    input_path: str = f"/cgi-bin/db2www/{MACRO_NAME}/input"
    report_path: str = f"/cgi-bin/db2www/{MACRO_NAME}/report"


def install(*, registry: DatabaseRegistry | None = None,
            library: MacroLibrary | None = None) -> GuestbookApp:
    registry = registry or DatabaseRegistry()
    library = library or MacroLibrary()
    database = registry.register_memory(DATABASE_NAME)
    with database.connect() as conn:
        conn.executescript(SCHEMA)
        conn.execute(
            "INSERT INTO guestbook (visitor, message) VALUES (?, ?)",
            ("webmaster", "Welcome to our corner of the Web!"))
    library.add_text(MACRO_NAME, GUESTBOOK_MACRO)
    engine = MacroEngine(
        registry, config=EngineConfig(escape_report_values=True))
    return GuestbookApp(engine=engine, library=library,
                        registry=registry, database=database)
