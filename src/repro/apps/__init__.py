"""Example applications from the paper, installable in one call.

* :mod:`repro.apps.urlquery` — Appendix A's URL database query
  (Figures 2, 3, 7, 8)
* :mod:`repro.apps.orders` — Section 3.1.3's conditional order search and
  a multi-statement order-entry macro for the transaction experiments
* :mod:`repro.apps.library` — named SQL sections with run-time dispatch
* :mod:`repro.apps.datasets` — the deterministic data generators
* :mod:`repro.apps.site` — wiring an app into the full HTTP/CGI stack
"""

from repro.apps.site import Site, build_site

__all__ = ["Site", "build_site"]
