"""Site assembly: wire an application into the full Figure 1 stack.

Applications built from :mod:`repro.apps` carry an engine and a macro
library; :func:`build_site` mounts them behind the DB2WWW CGI program on
a router (optionally alongside other CGI programs and static pages) and
returns the pieces plus a ready in-process browser, so examples, tests
and benchmarks all assemble the stack the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.client import Browser
from repro.cgi.gateway import CgiGateway, Db2WwwProgram
from repro.core.engine import MacroEngine
from repro.core.macrofile import MacroLibrary
from repro.http.inprocess import InProcessTransport
from repro.http.router import Router

DB2WWW_PROGRAM_NAME = "db2www"


@dataclass
class Site:
    """A mounted web site: router, gateway and a browser pointed at it."""

    router: Router
    gateway: CgiGateway
    transport: InProcessTransport
    browser: Browser

    def new_browser(self) -> Browser:
        """A fresh browser session against the same site."""
        return Browser(self.transport,
                       base_url=f"http://{self.router.server_name}/")

    def serve(self, *, host: str = "127.0.0.1", port: int = 0):
        """Start a real socket server for this site (caller shuts down)."""
        from repro.http.server import HttpServer
        return HttpServer(self.router, host=host, port=port).start()


def build_site(engine: MacroEngine, library: MacroLibrary, *,
               server_name: str = "www.example.com",
               home_page: str | None = None,
               stream: bool = False) -> Site:
    """Mount DB2WWW (and optionally a home page) on a fresh router.

    ``stream`` mounts the program in streaming mode: pages ride the live
    SQL cursor and are emitted close-delimited over sockets (in-process
    transports materialise them, so browsers see identical pages).
    """
    gateway = CgiGateway()
    gateway.install(DB2WWW_PROGRAM_NAME,
                    Db2WwwProgram(engine, library, stream=stream))
    router = Router(gateway=gateway, server_name=server_name)
    if home_page is not None:
        router.add_page("/index.html", home_page)
    transport = InProcessTransport(router)
    browser = Browser(transport, base_url=f"http://{server_name}/")
    return Site(router=router, gateway=gateway, transport=transport,
                browser=browser)
