"""Synthetic datasets for the example applications and benchmarks.

The paper's applications ran against IBM-internal databases (the URL
database of Appendix A, the customer/product database of Section 3.1.3).
These generators produce deterministic substitutes: same seed, same rows,
so every benchmark run and test assertion is repeatable.
"""

from __future__ import annotations

import random
from typing import Iterator

_ORGS = [
    "ibm", "acme", "globex", "initech", "umbrella", "wayne", "stark",
    "tyrell", "cyberdyne", "hooli", "wonka", "oscorp", "dunder",
    "prestige", "vandelay", "sirius", "massive", "pied-piper",
]
_TOPICS = [
    "products", "support", "research", "downloads", "news", "databases",
    "internet", "software", "hardware", "services", "careers", "events",
    "developers", "partners", "education", "multimedia",
]
_WORDS = [
    "world", "wide", "web", "database", "relational", "query", "report",
    "server", "client", "gateway", "dynamic", "page", "access", "form",
    "search", "index", "archive", "catalog", "online", "information",
    "technology", "systems", "solutions", "enterprise", "network",
]
_FIRST_NAMES = [
    "Tam", "Srini", "Ada", "Grace", "Edgar", "Jim", "Michael", "Pat",
    "Donald", "Barbara", "Alan", "Hedy", "Radia", "Vint", "Tim", "Marc",
]
_LAST_NAMES = [
    "Nguyen", "Srinivasan", "Codd", "Gray", "Hopper", "Lovelace",
    "Stonebraker", "Selinger", "Bachman", "Kernighan", "Ritchie",
    "Berners-Lee", "Andreessen", "Cerf", "Perlman", "Lamarr",
]
_PRODUCTS = [
    "bikes", "helmets", "tents", "lanterns", "canoes", "skis", "ropes",
    "boots", "stoves", "maps", "packs", "kayaks", "compasses", "paddles",
    "jackets", "gloves",
]


def _title_case(words: list[str]) -> str:
    return " ".join(word.capitalize() for word in words)


def generate_urls(count: int, *,
                  seed: int = 96) -> Iterator[tuple[str, str, str]]:
    """Yield ``(url, title, description)`` rows for the URL database.

    The Appendix A application searches these three fields with LIKE and
    hyperlinks the url column in its report (Figure 8).
    """
    rng = random.Random(seed)
    for i in range(count):
        org = rng.choice(_ORGS)
        topic = rng.choice(_TOPICS)
        url = f"http://www.{org}.com/{topic}/page{i}.html"
        title = _title_case([org, topic, rng.choice(_WORDS)])
        description = (
            f"{_title_case([rng.choice(_WORDS), rng.choice(_WORDS)])} "
            f"{rng.choice(_WORDS)} about {topic} at {org}."
        )
        yield url, title, description


URLDB_SCHEMA = """
CREATE TABLE urldb (
    url         VARCHAR(200) NOT NULL PRIMARY KEY,
    title       VARCHAR(100) NOT NULL,
    description VARCHAR(250)
);
"""


def seed_urldb(conn, count: int = 150, *, seed: int = 96) -> int:
    """Create and populate the URL database schema; returns rows inserted.

    Inserts go through ``INSERT OR IGNORE`` because the generator can
    repeat an (org, topic, page) URL only if asked for more rows than the
    key space — with distinct page numbers it cannot, but the guard keeps
    the seeding total."""
    conn.executescript(URLDB_SCHEMA)
    inserted = 0
    for url, title, description in generate_urls(count, seed=seed):
        conn.execute(
            "INSERT OR IGNORE INTO urldb (url, title, description) "
            "VALUES (?, ?, ?)", (url, title, description))
        inserted += 1
    return inserted


ORDERS_SCHEMA = """
CREATE TABLE customers (
    custid   INTEGER NOT NULL PRIMARY KEY,
    name     VARCHAR(60) NOT NULL,
    city     VARCHAR(40) NOT NULL
);
CREATE TABLE products (
    product_name VARCHAR(40) NOT NULL PRIMARY KEY,
    price        REAL NOT NULL
);
CREATE TABLE orders (
    order_id     INTEGER PRIMARY KEY,
    custid       INTEGER NOT NULL REFERENCES customers(custid),
    product_name VARCHAR(40) NOT NULL REFERENCES products(product_name),
    quantity     INTEGER NOT NULL CHECK (quantity > 0)
);
"""


def seed_orders(conn, *, customers: int = 40, orders: int = 300,
                seed: int = 96) -> dict[str, int]:
    """Create and populate the Section 3.1.3 customer/product database.

    Customer ids start at 10100 so the paper's worked example
    (``custid = 10100``) lands on a real customer.
    """
    rng = random.Random(seed)
    conn.executescript(ORDERS_SCHEMA)
    for offset in range(customers):
        custid = 10100 + offset * 100
        name = (f"{rng.choice(_FIRST_NAMES)} "
                f"{rng.choice(_LAST_NAMES)}")
        city = rng.choice(["San Jose", "Montreal", "Toronto", "Almaden",
                           "Austin", "Boeblingen", "Hursley", "Yamato"])
        conn.execute(
            "INSERT INTO customers (custid, name, city) VALUES (?, ?, ?)",
            (custid, name, city))
    for product in _PRODUCTS:
        conn.execute(
            "INSERT INTO products (product_name, price) VALUES (?, ?)",
            (product, round(rng.uniform(5, 500), 2)))
    for order_id in range(1, orders + 1):
        conn.execute(
            "INSERT INTO orders (order_id, custid, product_name, quantity)"
            " VALUES (?, ?, ?, ?)",
            (order_id,
             10100 + rng.randrange(customers) * 100,
             rng.choice(_PRODUCTS),
             rng.randint(1, 12)))
    return {"customers": customers, "products": len(_PRODUCTS),
            "orders": orders}


LIBRARY_SCHEMA = """
CREATE TABLE books (
    book_id   INTEGER PRIMARY KEY,
    title     VARCHAR(120) NOT NULL,
    author    VARCHAR(80) NOT NULL,
    year      INTEGER NOT NULL,
    copies    INTEGER NOT NULL CHECK (copies >= 0)
);
CREATE TABLE loans (
    loan_id   INTEGER PRIMARY KEY,
    book_id   INTEGER NOT NULL REFERENCES books(book_id),
    borrower  VARCHAR(80) NOT NULL
);
"""


def seed_library(conn, *, books: int = 120, seed: int = 96) -> int:
    """Create and populate the lending-library database (multi-query app)."""
    rng = random.Random(seed)
    conn.executescript(LIBRARY_SCHEMA)
    for book_id in range(1, books + 1):
        title = _title_case(
            [rng.choice(_WORDS), rng.choice(_WORDS), rng.choice(_TOPICS)])
        author = (f"{rng.choice(_FIRST_NAMES)} "
                  f"{rng.choice(_LAST_NAMES)}")
        conn.execute(
            "INSERT INTO books (book_id, title, author, year, copies) "
            "VALUES (?, ?, ?, ?, ?)",
            (book_id, title, author, rng.randint(1968, 1996),
             rng.randint(0, 5)))
    return books
