"""A multi-step order wizard: the paper's "relating multiple
client-server interactions on the web as part of the same application".

Three macros form one stateful-feeling application over the stateless
CGI gateway:

1. ``wizard_customer.d2w`` — pick a customer (a query-backed SELECT);
2. ``wizard_product.d2w``  — pick a product; the chosen customer rides
   along in a hidden field;
3. ``wizard_confirm.d2w``  — review (both choices now hidden fields) and
   INSERT the order.

Every hop forward carries the accumulated state in ``TYPE="hidden"``
INPUT fields (Section 4.3: variables "preset by hidden fields in the
HTML forms"), so the server keeps no session — 1996's only option, and
still a perfectly sound design.  The hidden fields are *written by a SQL
report block*, which is the part only this paper's mechanism makes
declarative: the options list and the hidden state are both just
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.datasets import seed_orders
from repro.core.builtins import standard_exec_runner
from repro.core.engine import MacroEngine
from repro.core.macrofile import MacroLibrary
from repro.sql.connection import MemoryDatabase
from repro.sql.gateway import DatabaseRegistry

DATABASE_NAME = "CELDIAL"

CUSTOMER_MACRO = """\
%DEFINE DATABASE = "CELDIAL"

%SQL{
SELECT custid, name, city FROM customers ORDER BY name
%SQL_REPORT{
<SELECT NAME="wiz_cust">
%ROW{<OPTION VALUE="$(V_custid)">$(V_name) ($(V_city))
%}
</SELECT>
%}
%}

%HTML_REPORT{<HTML><HEAD><TITLE>Order Wizard 1/3</TITLE></HEAD>
<BODY>
<H1>Step 1 of 3: choose a customer</H1>
<FORM METHOD="post" ACTION="/cgi-bin/db2www/wizard_product.d2w/report">
%EXEC_SQL
<P><INPUT TYPE="submit" VALUE="Continue"></P>
</FORM>
</BODY></HTML>
%}
"""

PRODUCT_MACRO = """\
%DEFINE DATABASE = "CELDIAL"

%SQL{
SELECT product_name, price FROM products ORDER BY product_name
%SQL_REPORT{
<SELECT NAME="wiz_prod">
%ROW{<OPTION VALUE="$(V_product_name)">$(V_product_name) at $(V_price)
%}
</SELECT>
%}
%}

%HTML_REPORT{<HTML><HEAD><TITLE>Order Wizard 2/3</TITLE></HEAD>
<BODY>
<H1>Step 2 of 3: choose a product</H1>
<FORM METHOD="post" ACTION="/cgi-bin/db2www/wizard_confirm.d2w/report">
<INPUT TYPE="hidden" NAME="wiz_cust" VALUE="$(wiz_cust)">
%EXEC_SQL
Quantity: <INPUT TYPE="text" NAME="wiz_qty" VALUE="1" SIZE=4>
<P><INPUT TYPE="submit" VALUE="Continue"></P>
</FORM>
</BODY></HTML>
%}
"""

CONFIRM_MACRO = """\
%DEFINE DATABASE = "CELDIAL"
%DEFINE wiz_qty = "1"

%SQL(customer_line){
SELECT name, city FROM customers WHERE custid = $(wiz_cust)
%SQL_REPORT{
%ROW{<P>Customer: $(V_name), $(V_city) (id $(wiz_cust))</P>%}
%}
%}

%SQL(product_line){
SELECT product_name, CAST(price * 100 AS INTEGER) AS cents
FROM products WHERE product_name = '$(wiz_prod)'
%SQL_REPORT{
%ROW{<P>Product: $(V_product_name), $(wiz_qty) unit(s).</P>%}
%}
%}

%SQL(record){
INSERT INTO orders (custid, product_name, quantity)
VALUES ($(wiz_cust), '$(wiz_prod)', $(wiz_qty))
%SQL_REPORT{
<P><B>Order recorded.</B></P>
%}
%SQL_MESSAGE{
default : "<P><B>Could not record the order:</B> $(SQL_MESSAGE)</P>"
%}
%}

%HTML_REPORT{<HTML><HEAD><TITLE>Order Wizard 3/3</TITLE></HEAD>
<BODY>
<H1>Step 3 of 3: confirmation</H1>
%EXEC_SQL(customer_line)
%EXEC_SQL(product_line)
%EXEC_SQL(record)
<P><A HREF="/cgi-bin/db2www/wizard_customer.d2w/report">Enter another
order</A></P>
</BODY></HTML>
%}
"""


@dataclass
class WizardApp:
    engine: MacroEngine
    library: MacroLibrary
    registry: DatabaseRegistry
    database: MemoryDatabase

    start_path: str = "/cgi-bin/db2www/wizard_customer.d2w/report"


def install(*, seed: int = 96,
            registry: DatabaseRegistry | None = None,
            library: MacroLibrary | None = None) -> WizardApp:
    registry = registry or DatabaseRegistry()
    library = library or MacroLibrary()
    database = registry.register_memory(DATABASE_NAME)
    with database.connect() as conn:
        seed_orders(conn, seed=seed)
    library.add_text("wizard_customer.d2w", CUSTOMER_MACRO)
    library.add_text("wizard_product.d2w", PRODUCT_MACRO)
    library.add_text("wizard_confirm.d2w", CONFIRM_MACRO)
    engine = MacroEngine(registry, exec_runner=standard_exec_runner())
    return WizardApp(engine=engine, library=library, registry=registry,
                     database=database)
