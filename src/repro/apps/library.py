"""The lending-library application: named SQL sections and run-time
section dispatch.

Exercises the two ``%EXEC_SQL`` features the URL-query app does not:

* several *named* SQL sections in one macro (``by_author``, ``by_title``,
  ``availability``), and
* a section name stored in a variable and dereferenced at run time —
  "``%EXEC_SQL($(sqlcmd))`` is allowed ... This feature can be used to
  allow the end user to select which SQL command to execute at run time"
  (Section 3.4).  The input form's radio buttons set ``sqlcmd``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.datasets import seed_library
from repro.core.engine import MacroEngine
from repro.core.macrofile import MacroLibrary
from repro.sql.connection import MemoryDatabase
from repro.sql.gateway import DatabaseRegistry

MACRO_NAME = "library.d2w"
DATABASE_NAME = "LIBRARY"

LIBRARY_MACRO = """\
%DEFINE{
DATABASE = "LIBRARY"
sqlcmd = "by_title"
term = ""
%}

%SQL(by_title){
SELECT title, author, year, copies FROM books
WHERE title LIKE '%$(term)%' ORDER BY title
%SQL_REPORT{
<H2>Books matching title '$(term)'</H2>
<UL>
%ROW{<LI>$(V_title) &mdash; $(V_author) ($(V_year)), $(V_copies) copies
%}
</UL>
<P>$(ROW_NUM) title(s) found.</P>
%}
%}

%SQL(by_author){
SELECT title, author, year, copies FROM books
WHERE author LIKE '%$(term)%' ORDER BY author, title
%SQL_REPORT{
<H2>Books by authors matching '$(term)'</H2>
<UL>
%ROW{<LI>$(V_author): $(V_title) ($(V_year))
%}
</UL>
<P>$(ROW_NUM) title(s) found.</P>
%}
%}

%SQL(availability){
SELECT b.title, b.copies - COUNT(l.loan_id) AS available
FROM books b LEFT JOIN loans l ON l.book_id = b.book_id
WHERE b.title LIKE '%$(term)%'
GROUP BY b.book_id ORDER BY b.title
%SQL_REPORT{
<H2>Availability for '$(term)'</H2>
<TABLE BORDER=1>
<TR><TH>$(N_title)</TH><TH>$(N_available)</TH></TR>
%ROW{<TR><TD>$(V_title)</TD><TD>$(V_available)</TD></TR>
%}
</TABLE>
%}
%}

%HTML_INPUT{<HTML><HEAD><TITLE>Library Search</TITLE></HEAD>
<BODY>
<H1>Library Catalog</H1>
<FORM METHOD="post" ACTION="/cgi-bin/db2www/library.d2w/report">
Search term: <INPUT TYPE="text" NAME="term" SIZE=24>
<P>Search by:
<INPUT TYPE="radio" NAME="sqlcmd" VALUE="by_title" CHECKED> Title
<INPUT TYPE="radio" NAME="sqlcmd" VALUE="by_author"> Author
<INPUT TYPE="radio" NAME="sqlcmd" VALUE="availability"> Availability
<P>
<INPUT TYPE="submit" VALUE="Search Catalog">
</FORM>
</BODY></HTML>
%}

%HTML_REPORT{<HTML><HEAD><TITLE>Library Search Result</TITLE></HEAD>
<BODY>
<H1>Catalog Search</H1>
%EXEC_SQL($(sqlcmd))
<HR>
<P><A HREF="/cgi-bin/db2www/library.d2w/input">Search again</A></P>
</BODY></HTML>
%}
"""


@dataclass
class LibraryApp:
    engine: MacroEngine
    library: MacroLibrary
    registry: DatabaseRegistry
    database: MemoryDatabase
    books: int


def install(*, books: int = 120, seed: int = 96,
            registry: DatabaseRegistry | None = None,
            library: MacroLibrary | None = None) -> LibraryApp:
    """Create the books database and register the catalog macro."""
    registry = registry or DatabaseRegistry()
    library = library or MacroLibrary()
    database = registry.register_memory(DATABASE_NAME)
    with database.connect() as conn:
        count = seed_library(conn, books=books, seed=seed)
        conn.execute(
            "INSERT INTO loans (book_id, borrower) "
            "SELECT book_id, 'Branch patron' FROM books "
            "WHERE copies > 0 AND book_id % 7 = 0")
    library.add_text(MACRO_NAME, LIBRARY_MACRO)
    engine = MacroEngine(registry)
    return LibraryApp(engine=engine, library=library, registry=registry,
                      database=database, books=count)
