"""The order-search application built around Section 3.1.3's example.

The paper's list/conditional worked example assembles::

    WHERE custid = $(cust_inp) AND product_name LIKE '$(prod_inp)%'

from two optional form fields, dropping each missing conjunct and the
whole WHERE clause when both are missing.  This module ships that macro
(query) plus an order-entry macro (multi-statement update) used by the
transaction-mode experiment TXN5: the entry macro inserts an order row
and updates a stock count in one macro, so a failure in the second
statement demonstrates auto-commit vs single-transaction behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.datasets import seed_orders
from repro.core.engine import EngineConfig, MacroEngine
from repro.core.macrofile import MacroLibrary
from repro.sql.connection import MemoryDatabase
from repro.sql.gateway import DatabaseRegistry
from repro.sql.transactions import TransactionMode

SEARCH_MACRO_NAME = "ordersearch.d2w"
ENTRY_MACRO_NAME = "orderentry.d2w"
DATABASE_NAME = "CELDIAL"

SEARCH_MACRO = """\
%DEFINE{
DATABASE = "CELDIAL"
%LIST " AND " where_list
where_list = ? "o.custid = $(cust_inp)"
where_list = ? "o.product_name LIKE '$(prod_inp)%'"
extra_preds = ? " AND $(where_list)"
RPT_MAXROWS = "25"
%}

%SQL{
SELECT o.order_id, c.name, o.product_name, o.quantity
FROM orders o, customers c
WHERE c.custid = o.custid$(extra_preds) ORDER BY o.order_id
%SQL_REPORT{
<TABLE BORDER=1>
<TR><TH>$(N1)</TH><TH>$(N2)</TH><TH>$(N3)</TH><TH>$(N4)</TH></TR>
%ROW{<TR><TD>$(V_order_id)</TD><TD>$(V_name)</TD><TD>$(V_product_name)</TD><TD>$(V_quantity)</TD></TR>
%}
</TABLE>
<P>$(ROW_NUM) order(s) matched.</P>
%}
%SQL_MESSAGE{
-204 : "<P>The order database is not available right now.</P>" : exit
default : "<P>Order search failed: $(SQL_MESSAGE)</P>" : exit
%}
%}

%HTML_INPUT{<HTML><HEAD><TITLE>Order Search</TITLE></HEAD>
<BODY>
<H1>Search Customer Orders</H1>
<FORM METHOD="post" ACTION="/cgi-bin/db2www/ordersearch.d2w/report">
Customer id: <INPUT TYPE="text" NAME="cust_inp" SIZE=10>
<BR>
Product name prefix: <INPUT TYPE="text" NAME="prod_inp" SIZE=20>
<P>
<INPUT TYPE="submit" VALUE="Search Orders">
</FORM>
</BODY></HTML>
%}

%HTML_REPORT{<HTML><HEAD><TITLE>Order Search Result</TITLE></HEAD>
<BODY>
<H1>Matching Orders</H1>
%EXEC_SQL
<P><A HREF="/cgi-bin/db2www/ordersearch.d2w/input">New search</A></P>
</BODY></HTML>
%}
"""

#: The search macro joins two tables, so the join predicate must always
#: be present and the user conjuncts conditionally *extend* the WHERE
#: clause (``extra_preds``).  The paper's pure fragment — an optional
#: WHERE over one table — is kept verbatim below for the Section 3.1.3
#: experiment.

PAPER_FRAGMENT_MACRO = """\
%DEFINE{
DATABASE = "CELDIAL"
%LIST " AND " where_list
where_list = ? "custid = $(cust_inp)"
where_list = ? "product_name LIKE '$(prod_inp)%'"
where_clause = ? "WHERE $(where_list)"
%}
%SQL{
SELECT custid, product_name FROM orders $(where_clause)
%}
%HTML_INPUT{<P>$(where_clause)</P>
%}
%HTML_REPORT{<P>clause: [$(where_clause)]</P>
%EXEC_SQL
%}
"""

ENTRY_MACRO = """\
%DEFINE{
DATABASE = "CELDIAL"
order_qty = "1"
%}

%SQL(add_order){
INSERT INTO orders (custid, product_name, quantity)
VALUES ($(order_cust), '$(order_prod)', $(order_qty))
%SQL_REPORT{
<P>Order recorded for customer $(order_cust).</P>
%}
%SQL_MESSAGE{
default : "<P>Could not record the order: $(SQL_MESSAGE)</P>" : exit
%}
%}

%SQL(audit){
INSERT INTO order_audit (custid, product_name, quantity)
VALUES ($(order_cust), '$(order_prod)', $(order_qty))
%SQL_REPORT{
<P>Audit trail written.</P>
%}
%}

%HTML_INPUT{<HTML><BODY>
<H1>Enter an Order</H1>
<FORM METHOD="post" ACTION="/cgi-bin/db2www/orderentry.d2w/report">
Customer id: <INPUT TYPE="text" NAME="order_cust">
Product: <INPUT TYPE="text" NAME="order_prod">
Quantity: <INPUT TYPE="text" NAME="order_qty" VALUE="1">
<INPUT TYPE="submit" VALUE="Record Order">
</FORM>
</BODY></HTML>
%}

%HTML_REPORT{<HTML><BODY>
<H1>Order Entry</H1>
%EXEC_SQL(add_order)
%EXEC_SQL(audit)
</BODY></HTML>
%}
"""


@dataclass
class OrdersApp:
    engine: MacroEngine
    library: MacroLibrary
    registry: DatabaseRegistry
    database: MemoryDatabase
    counts: dict[str, int]


def install(*, seed: int = 96,
            transaction_mode: TransactionMode = TransactionMode.AUTO_COMMIT,
            registry: DatabaseRegistry | None = None,
            library: MacroLibrary | None = None,
            with_audit_table: bool = True) -> OrdersApp:
    """Create the customer/product database and register the macros.

    ``with_audit_table=False`` omits the ``order_audit`` table so that the
    entry macro's second statement fails — the failure-injection switch
    the TXN5 transaction-mode experiment flips.
    """
    registry = registry or DatabaseRegistry()
    library = library or MacroLibrary()
    database = registry.register_memory(DATABASE_NAME)
    with database.connect() as conn:
        counts = seed_orders(conn, seed=seed)
        if with_audit_table:
            conn.executescript(
                "CREATE TABLE order_audit ("
                " custid INTEGER, product_name VARCHAR(40),"
                " quantity INTEGER);")
    library.add_text(SEARCH_MACRO_NAME, SEARCH_MACRO)
    library.add_text(ENTRY_MACRO_NAME, ENTRY_MACRO)
    library.add_text("paperfragment.d2w", PAPER_FRAGMENT_MACRO)
    engine = MacroEngine(
        registry, config=EngineConfig(transaction_mode=transaction_mode))
    return OrdersApp(engine=engine, library=library, registry=registry,
                     database=database, counts=counts)
