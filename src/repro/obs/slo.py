"""SLO tracking: availability and latency error-budget burn rates.

A latency histogram answers "how slow is it right now"; an SLO answers
"are we keeping our promise this month."  The bridge between them is
the **burn rate** (the SRE-workbook shape): over a lookback window,

    burn = (bad events / total events) / (1 - target)

A burn rate of 1.0 consumes the error budget exactly as fast as the
target allows; 14.4 over 5 minutes is the classic page-now threshold.
Multi-window gauges (a fast window catches incidents, a slow one
catches smoulder) make one number alertable without bespoke math in
the scrape consumer.

:class:`SloTracker` is deliberately *pull-based*: it owns no
per-request hook and re-reads the very counters and histogram the
router already maintains (``http_requests_total``,
``http_errors_total``, ``request_latency_ms`` — the same histogram the
overload controller ticks its live p99 from) using the bucket-snapshot
window-diff trick.  Each read takes a sample; burn rates are computed
against the oldest sample inside each window, so accuracy follows the
scrape cadence — exactly right for a surface whose consumer *is* the
scraper.  It attaches as the ``slo`` stats source, so the gauges ride
``/metrics``, ``/statusz``, the access-log trailer and ``repro stats``
like every other family.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from typing import Callable, Optional

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["SloTracker"]

#: Default burn-rate lookback windows: (label, seconds).
DEFAULT_WINDOWS = (("5m", 300.0), ("1h", 3600.0), ("6h", 21600.0))


class SloTracker:
    """Multi-window availability + latency burn-rate gauges.

    ``availability_target`` is the promised success fraction (0.999 →
    a 0.1% error budget); ``latency_target`` the promised fraction of
    requests under ``latency_slo_ms``.  ``stats()`` returns, per
    window, ``availability_burn_<label>`` and ``latency_burn_<label>``
    plus the raw bad-event fractions, rounded for rendering.
    """

    #: Minimum spacing between retained samples; bursts of scrapes
    #: collapse onto one sample so the ring stays small.
    MIN_SAMPLE_SPACING = 1.0

    def __init__(self, registry: MetricsRegistry, *,
                 availability_target: float = 0.999,
                 latency_slo_ms: float = 100.0,
                 latency_target: float = 0.99,
                 windows=DEFAULT_WINDOWS,
                 clock: Callable[[], float] = time.monotonic):
        if not 0.0 < availability_target < 1.0:
            raise ValueError("availability_target must be in (0, 1)")
        if not 0.0 < latency_target < 1.0:
            raise ValueError("latency_target must be in (0, 1)")
        self.registry = registry
        self.availability_target = availability_target
        self.latency_slo_ms = latency_slo_ms
        self.latency_target = latency_target
        self.windows = tuple(windows)
        self._clock = clock
        self._lock = threading.Lock()
        self._requests = registry.counter("http_requests_total")
        self._errors = registry.counter("http_errors_total")
        self._latency = registry.histogram("request_latency_ms")
        # Observations strictly over the SLO occupy buckets past this
        # index (the same bisect an observe() pays; boundary-bucket
        # blur is the histogram's usual ≤12%).
        self._slo_bucket = bisect_right(Histogram.BOUNDS, latency_slo_ms)
        #: (t, requests, errors, bucket_counts) ring, oldest first.
        self._samples: list[tuple[float, int, int, list[int]]] = []

    # -- sampling ----------------------------------------------------------

    def tick(self) -> None:
        """Take one sample now (called implicitly by ``stats()``)."""
        now = self._clock()
        sample = (now, self._requests.value, self._errors.value,
                  self._latency.bucket_counts())
        horizon = now - max(seconds for _, seconds in self.windows) \
            - self.MIN_SAMPLE_SPACING
        with self._lock:
            if (self._samples
                    and now - self._samples[-1][0]
                    < self.MIN_SAMPLE_SPACING):
                return
            self._samples.append(sample)
            while self._samples and self._samples[0][0] < horizon:
                self._samples.pop(0)

    def _baseline(self, now: float, seconds: float):
        """The oldest retained sample inside the window."""
        cutoff = now - seconds
        with self._lock:
            for sample in self._samples:
                if sample[0] >= cutoff:
                    return sample
        return None

    # -- the read path -----------------------------------------------------

    def stats(self) -> dict[str, float]:
        self.tick()
        now = self._clock()
        current = (self._requests.value, self._errors.value,
                   self._latency.bucket_counts())
        out: dict[str, float] = {
            "availability_target": self.availability_target,
            "latency_target": self.latency_target,
            "latency_slo_ms": self.latency_slo_ms,
        }
        avail_budget = 1.0 - self.availability_target
        latency_budget = 1.0 - self.latency_target
        for label, seconds in self.windows:
            base = self._baseline(now, seconds)
            requests = errors = over = 0
            if base is not None:
                requests = current[0] - base[1]
                errors = current[1] - base[2]
                over = (sum(current[2][self._slo_bucket + 1:])
                        - sum(base[3][self._slo_bucket + 1:]))
            if requests <= 0:
                error_fraction = slow_fraction = 0.0
            else:
                error_fraction = max(0, errors) / requests
                slow_fraction = max(0, over) / requests
            out[f"availability_burn_{label}"] = round(
                error_fraction / avail_budget, 3)
            out[f"latency_burn_{label}"] = round(
                slow_fraction / latency_budget, 3)
            out[f"error_fraction_{label}"] = round(error_fraction, 5)
            out[f"slow_fraction_{label}"] = round(slow_fraction, 5)
        return out

    def over_slo(self, duration_ms: float) -> bool:
        """Is one request's latency over the SLO? (edge/test helper)"""
        return duration_ms >= self.latency_slo_ms
