"""Bounded-cardinality labeled metrics.

PR 4's registry is flat: per-tenant and per-shard counters were mangled
into key names (``tenant_alpha_requests_total``, ``shard_0_routed``),
which a metrics backend cannot aggregate across and which grow without
bound as names churn.  This module adds one-label metric families in
the Prometheus shape — ``tenant_requests_total{tenant="alpha"}`` —
with a hard series budget: past ``max_series`` distinct label values,
further ones collapse into a single ``_other`` bucket, so a hostile or
merely enthusiastic label source (tenant names, statement digests)
cannot blow up the scrape.

Two shapes:

* :class:`LabeledValues` — a write-path family (``.inc(value)``), for
  instrumentation that knows its label at record time (cost classes).
* :class:`LabeledSourceView` — the migration adapter for polled legacy
  stats bags: a source returning ``{label_value: {key: number}}``
  renders *both* as labeled series and under the historical flattened
  ``<prefix>_<value>_<key>`` names, so every pre-existing consumer
  (``repro stats``, the access-log trailer, tests) keeps its keys.

:class:`~repro.obs.metrics.MetricsRegistry` owns instances of both; see
``labeled`` / ``attach_labeled_source`` there.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["LabeledValues", "LabeledSourceView", "OTHER_LABEL"]

#: The overflow bucket every capped family shares.
OTHER_LABEL = "_other"


class LabeledValues:
    """One metric family over a single label, bounded in cardinality.

    Values are plain accumulators (``inc``) or last-writes (``set``);
    the first ``max_series`` distinct label values get their own
    series, later ones merge into :data:`OTHER_LABEL`.  First-come
    membership is deterministic for a given traffic order and never
    reshuffles, so a series that exists keeps existing.
    """

    __slots__ = ("name", "label", "kind", "max_series", "_series",
                 "_lock")

    def __init__(self, name: str, label: str, *, kind: str = "counter",
                 max_series: int = 32):
        if kind not in ("counter", "gauge"):
            raise ValueError(f"unknown labeled metric kind {kind!r}")
        self.name = name
        self.label = label
        self.kind = kind
        self.max_series = max_series
        self._series: dict[str, float] = {}
        self._lock = threading.Lock()

    def _slot(self, value: str) -> str:
        if value in self._series or len(self._series) < self.max_series:
            return value
        return OTHER_LABEL

    def inc(self, value: str, amount: float = 1) -> None:
        with self._lock:
            slot = self._slot(value)
            self._series[slot] = self._series.get(slot, 0) + amount

    def set(self, value: str, number: float) -> None:
        # Overflow gauges share one slot last-write-wins: the bucket
        # still reads as "some overflow series exists".
        with self._lock:
            self._series[self._slot(value)] = number

    def series(self) -> dict[str, float]:
        """A consistent ``label value -> number`` snapshot."""
        with self._lock:
            return dict(self._series)


class LabeledSourceView:
    """A polled legacy stats bag re-read as one-label metric families.

    ``source()`` returns ``{label_value: {key: number}}``; the empty
    label value ``""`` marks unlabeled (topology-wide) keys.  The view
    computes, per poll:

    * ``labeled()`` — ``{key: {label_value: number}}``, capped at
      ``max_series`` values (lexicographically first kept, the rest
      summed into ``_other``), for the labeled text exposition;
    * ``flat()`` — the historical ``<value>_<key>`` /
      ``<key>`` names (*uncapped*: legacy consumers parse exact keys).
    """

    __slots__ = ("prefix", "label", "source", "max_series")

    def __init__(self, prefix: str, label: str,
                 source: Callable[[], dict], *, max_series: int = 64):
        self.prefix = prefix
        self.label = label
        self.source = source
        self.max_series = max_series

    def _poll(self) -> dict[str, dict]:
        try:
            polled = self.source()
        except Exception:  # noqa: BLE001 - a broken bag must not take
            return {}      # the metrics surface down
        return {str(value): dict(bag)
                for value, bag in polled.items()
                if isinstance(bag, dict)}

    def flat(self) -> dict[str, float]:
        flat: dict[str, float] = {}
        for value, bag in sorted(self._poll().items()):
            for key, number in bag.items():
                name = f"{value}_{key}" if value else key
                flat[name] = number
        return flat

    def labeled(self) -> dict[str, dict[str, float]]:
        polled = self._poll()
        values = sorted(value for value in polled if value)
        kept, spilled = (values[:self.max_series],
                         values[self.max_series:])
        by_key: dict[str, dict[str, float]] = {}
        for value in kept:
            for key, number in polled[value].items():
                by_key.setdefault(key, {})[value] = number
        for value in spilled:
            for key, number in polled[value].items():
                bucket = by_key.setdefault(key, {})
                bucket[OTHER_LABEL] = bucket.get(OTHER_LABEL, 0) + number
        return by_key

    def unlabeled(self) -> dict[str, float]:
        """The topology-wide keys (label value ``""``)."""
        return dict(self._poll().get("", {}))
