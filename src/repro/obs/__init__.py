"""Unified observability: metrics, request tracing, slow-query log.

The gateway's instrument panel (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms
  with streaming p50/p95/p99, scraped at ``/metrics`` (text) and
  ``/statusz`` (JSON), absorbing the legacy per-subsystem stats bags.
* :mod:`repro.obs.trace` — a span tree per request with one trace id
  end-to-end (HTTP → CGI environment → app-server frames → SQL layer).
* :mod:`repro.obs.sinks` — where finished traces go: the structured
  request log, the ``--slow-query-ms`` watchdog, the metrics bridge.

``configure_from_env`` is the out-of-process hook: app-server workers
and subprocess CGI runs read their observability settings from the
same environment block that carries ``REPRO_MACRO_DIR``.
"""

from __future__ import annotations

from repro.obs.labels import LabeledSourceView, LabeledValues
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.sampling import TailSampler, parse_sample_spec
from repro.obs.sinks import (FanoutSink, MetricsBridge, SlowQueryLog,
                             TraceLog)
from repro.obs.slo import SloTracker
from repro.obs.trace import TRACER, Span, Tracer, new_trace_id

__all__ = [
    "MetricsRegistry", "REGISTRY",
    "Tracer", "TRACER", "Span", "new_trace_id",
    "TraceLog", "SlowQueryLog", "MetricsBridge", "FanoutSink",
    "LabeledValues", "LabeledSourceView",
    "TailSampler", "parse_sample_spec", "SloTracker",
    "configure_from_env",
]

_configured = False


def configure_from_env(env: dict[str, str]) -> bool:
    """Configure the process-wide tracer from environment variables.

    Honoured keys (set by ``repro serve`` for its worker processes):

    ``REPRO_TRACE``
        Non-empty/non-zero enables tracing on the global tracer.
    ``REPRO_TRACE_LOG``
        Path of a JSONL trace log; every finished trace appends a line.
    ``REPRO_SLOW_QUERY_MS`` / ``REPRO_SLOW_QUERY_LOG``
        Threshold and path of the slow-query log.
    ``REPRO_TRACE_SAMPLE``
        Tail-sampling spec (see
        :func:`repro.obs.sampling.parse_sample_spec`); wraps the file
        sinks in a :class:`TailSampler` so worker trace logs stay
        bounded the same way the dispatcher's does.  The metrics
        bridge stays outside the sampler — aggregates must see every
        trace.

    Idempotent per process (workers call it once from ``build_program``;
    repeated calls are no-ops so in-process tests cannot stack sinks).
    Returns True when this call performed the configuration.
    """
    global _configured
    if _configured:
        return False
    flag = env.get("REPRO_TRACE", "").strip()
    slow_ms = env.get("REPRO_SLOW_QUERY_MS", "").strip()
    if not flag and not slow_ms:
        return False
    _configured = True
    if flag and flag != "0":
        TRACER.enable()
    file_sinks = []
    trace_log = env.get("REPRO_TRACE_LOG", "").strip()
    if trace_log:
        file_sinks.append(TraceLog(trace_log))
    threshold = None
    if slow_ms:
        try:
            threshold = float(slow_ms)
        except ValueError:
            threshold = 0.0
        slow_path = env.get("REPRO_SLOW_QUERY_LOG", "").strip()
        if slow_path:
            file_sinks.append(SlowQueryLog(slow_path, threshold))
    sample_spec = env.get("REPRO_TRACE_SAMPLE", "").strip()
    if sample_spec and file_sinks:
        try:
            kwargs = parse_sample_spec(sample_spec)
        except ValueError:
            kwargs = {}
        file_sinks = [TailSampler(*file_sinks, registry=REGISTRY,
                                  **kwargs)]
    consumers = list(file_sinks)
    if threshold is not None:
        consumers.append(MetricsBridge(REGISTRY,
                                       slow_query_ms=threshold))
    if consumers:
        TRACER.add_sink(FanoutSink(*consumers))
    return True
