"""Unified observability: metrics, request tracing, slow-query log.

The gateway's instrument panel (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms
  with streaming p50/p95/p99, scraped at ``/metrics`` (text) and
  ``/statusz`` (JSON), absorbing the legacy per-subsystem stats bags.
* :mod:`repro.obs.trace` — a span tree per request with one trace id
  end-to-end (HTTP → CGI environment → app-server frames → SQL layer).
* :mod:`repro.obs.sinks` — where finished traces go: the structured
  request log, the ``--slow-query-ms`` watchdog, the metrics bridge.

``configure_from_env`` is the out-of-process hook: app-server workers
and subprocess CGI runs read their observability settings from the
same environment block that carries ``REPRO_MACRO_DIR``.
"""

from __future__ import annotations

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.sinks import MetricsBridge, SlowQueryLog, TraceLog
from repro.obs.trace import TRACER, Span, Tracer, new_trace_id

__all__ = [
    "MetricsRegistry", "REGISTRY",
    "Tracer", "TRACER", "Span", "new_trace_id",
    "TraceLog", "SlowQueryLog", "MetricsBridge",
    "configure_from_env",
]

_configured = False


def configure_from_env(env: dict[str, str]) -> bool:
    """Configure the process-wide tracer from environment variables.

    Honoured keys (set by ``repro serve`` for its worker processes):

    ``REPRO_TRACE``
        Non-empty/non-zero enables tracing on the global tracer.
    ``REPRO_TRACE_LOG``
        Path of a JSONL trace log; every finished trace appends a line.
    ``REPRO_SLOW_QUERY_MS`` / ``REPRO_SLOW_QUERY_LOG``
        Threshold and path of the slow-query log.

    Idempotent per process (workers call it once from ``build_program``;
    repeated calls are no-ops so in-process tests cannot stack sinks).
    Returns True when this call performed the configuration.
    """
    global _configured
    if _configured:
        return False
    flag = env.get("REPRO_TRACE", "").strip()
    slow_ms = env.get("REPRO_SLOW_QUERY_MS", "").strip()
    if not flag and not slow_ms:
        return False
    _configured = True
    if flag and flag != "0":
        TRACER.enable()
    trace_log = env.get("REPRO_TRACE_LOG", "").strip()
    if trace_log:
        TRACER.add_sink(TraceLog(trace_log))
    if slow_ms:
        try:
            threshold = float(slow_ms)
        except ValueError:
            threshold = 0.0
        slow_path = env.get("REPRO_SLOW_QUERY_LOG", "").strip()
        if slow_path:
            TRACER.add_sink(SlowQueryLog(slow_path, threshold))
        TRACER.add_sink(MetricsBridge(REGISTRY, slow_query_ms=threshold))
    return True
