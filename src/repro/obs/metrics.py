"""Process-wide metrics: counters, gauges and streaming histograms.

The 1996 webmaster's instrument panel was the access log; everything
since (mod_status, FastCGI process managers, Prometheus) grew a second
surface: live counters scraped from the running server.  This module is
that surface for the gateway — a :class:`MetricsRegistry` holding

* **counters** — monotonically increasing totals (requests, errors),
* **gauges** — point-in-time values (pool size, worker count),
* **histograms** — latency distributions with streaming p50/p95/p99,
  implemented as log-spaced buckets so an observation costs one bisect
  and one list increment regardless of how many samples came before.

The registry also *absorbs* the pre-existing stats bags (query cache,
resilience registry, app-server worker pool): legacy ``stats()``
callables attach as polled **sources** whose counters appear — under
their historical ``<name>_<key>`` names — in every rendering: the text
``/metrics`` scrape, the JSON ``/statusz``, the access log's ``#stats``
trailer, and ``repro stats``.  One registry, four read paths.

Everything is thread-safe (the HTTP server handles requests on
threads); observation cost is a few dictionary operations, so metrics
stay on even when tracing is off.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_right
from typing import Callable, Iterable, Optional

from repro.obs.labels import LabeledSourceView, LabeledValues

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
           "quantile_from_counts"]

_NAME_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _scrape_name(name: str) -> str:
    """A metric name made safe for the text exposition format."""
    return _NAME_SANITIZE_RE.sub("_", name)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value; set, not accumulated."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


def _log_bounds(lowest: float, highest: float, factor: float) -> list[float]:
    bounds = []
    edge = lowest
    while edge < highest:
        bounds.append(edge)
        edge *= factor
    bounds.append(highest)
    return bounds


class Histogram:
    """A streaming latency distribution with quantile estimates.

    Observations land in log-spaced buckets (factor 1.25 from 1µs to
    10 minutes, in milliseconds), so quantiles carry at most ~12%
    relative error — plenty for a latency panel — while observation
    cost and memory stay constant.  ``sum``/``count``/``min``/``max``
    are tracked exactly.
    """

    #: Bucket upper bounds in milliseconds, shared by every histogram.
    BOUNDS: list[float] = _log_bounds(0.001, 600_000.0, 1.25)

    __slots__ = ("name", "_counts", "_count", "_sum", "_min", "_max",
                 "_lock")

    def __init__(self, name: str):
        self.name = name
        self._counts = [0] * (len(self.BOUNDS) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_right(self.BOUNDS, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1); 0.0 with no samples."""
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        target = q * self._count
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            seen += bucket_count
            if seen >= target:
                lower = self.BOUNDS[index - 1] if index > 0 else 0.0
                upper = (self.BOUNDS[index] if index < len(self.BOUNDS)
                         else self._max)
                # Clamp the bucket edges to the observed extremes so a
                # single-sample histogram reports the sample itself.
                lower = max(lower, min(self._min, upper))
                upper = min(upper, self._max)
                if upper < lower:
                    upper = lower
                return (lower + upper) / 2.0
        return self._max  # pragma: no cover - defensive

    def bucket_counts(self) -> list[int]:
        """A consistent copy of the cumulative per-bucket counts.

        The window trick: snapshot now, snapshot later, subtract — the
        difference is a histogram of only the observations in between.
        :func:`quantile_from_counts` turns that difference back into a
        quantile, which is how the overload controller reads a *live*
        p99 off the same histogram the scrape endpoints render
        cumulatively.
        """
        with self._lock:
            return list(self._counts)

    def snapshot(self) -> dict[str, float]:
        """Count, sum and the standard quantiles, one consistent view."""
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                        "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
            return {
                "count": self._count,
                "sum": round(self._sum, 3),
                "mean": round(self._sum / self._count, 3),
                "min": round(self._min, 3),
                "max": round(self._max, 3),
                "p50": round(self._quantile_locked(0.50), 3),
                "p95": round(self._quantile_locked(0.95), 3),
                "p99": round(self._quantile_locked(0.99), 3),
            }


def quantile_from_counts(counts: list[int], q: float, *,
                         bounds: Optional[list[float]] = None) -> float:
    """Estimated ``q``-quantile of a bucket-count vector.

    ``counts`` has the :attr:`Histogram.BOUNDS` shape (one overflow
    bucket at the end); typically it is the element-wise difference of
    two :meth:`Histogram.bucket_counts` snapshots — the observations of
    one window.  Returns 0.0 for an empty (or all-zero) vector.
    """
    if bounds is None:
        bounds = Histogram.BOUNDS
    total = sum(counts)
    if total <= 0:
        return 0.0
    target = q * total
    seen = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        seen += bucket_count
        if seen >= target:
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index] if index < len(bounds) else bounds[-1]
            return (lower + upper) / 2.0
    return bounds[-1]  # pragma: no cover - defensive


class MetricsRegistry:
    """The process-wide bag of named metrics plus polled legacy sources.

    Metric creation is get-or-create by name (``inc``/``observe``/
    ``set_gauge`` are the one-line forms), so instrumentation points
    never need wiring beyond a registry reference.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sources: dict[str, Callable[[], dict]] = {}
        self._labeled: dict[str, LabeledValues] = {}
        self._labeled_sources: dict[str, LabeledSourceView] = {}

    # -- get-or-create ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge(name))
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(name,
                                                     Histogram(name))
        return metric

    def labeled(self, name: str, label: str, *, kind: str = "counter",
                max_series: int = 32) -> LabeledValues:
        """Get-or-create a one-label metric family (bounded series;
        overflow collapses into ``_other`` — see repro.obs.labels)."""
        family = self._labeled.get(name)
        if family is None:
            with self._lock:
                family = self._labeled.setdefault(
                    name, LabeledValues(name, label, kind=kind,
                                        max_series=max_series))
        return family

    # -- one-line instrumentation ----------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- legacy stats bags as polled sources -----------------------------

    def attach_stats_source(self, name: str,
                            source: Callable[[], dict]) -> None:
        """Attach a legacy ``stats()`` callable under a prefix.

        The source is polled at read time; its counters appear as
        ``<name>_<key>`` in :meth:`flat` and the scrape — the exact keys
        :meth:`repro.http.accesslog.AccessLog.stats` produced before the
        registry existed, so log-trailer consumers keep working.
        """
        with self._lock:
            self._sources[name] = source

    def attach_labeled_source(self, prefix: str, label: str,
                              source: Callable[[], dict], *,
                              max_series: int = 64) -> None:
        """Attach a per-entity stats bag as a *labeled* source.

        ``source()`` returns ``{label_value: {key: number}}`` (the
        empty label value marks topology-wide keys).  The scrape
        renders each key both as ``<prefix>_<key>{<label>="value"}``
        and under the historical flattened ``<prefix>_<value>_<key>``
        name, so the flat tenant/shard key families migrate onto
        labels without breaking a single legacy consumer.
        """
        with self._lock:
            self._labeled_sources[prefix] = LabeledSourceView(
                prefix, label, source, max_series=max_series)

    def source_names(self) -> list[str]:
        with self._lock:
            return sorted(set(self._sources)
                          | set(self._labeled_sources))

    def _poll_sources(self) -> dict[str, dict]:
        with self._lock:
            sources = dict(self._sources)
            labeled_sources = dict(self._labeled_sources)
        polled: dict[str, dict] = {}
        for name, source in sources.items():
            try:
                polled[name] = dict(source())
            except Exception:  # noqa: BLE001 - a broken bag must not
                polled[name] = {}  # take the metrics surface down
        for name, view in labeled_sources.items():
            # Labeled sources keep publishing their historical
            # flattened keys through the same read paths.
            bag = polled.setdefault(name, {})
            bag.update(view.flat())
        return polled

    def _labeled_views(self) -> dict[str, LabeledSourceView]:
        with self._lock:
            return dict(self._labeled_sources)

    def _labeled_families(self) -> dict[str, LabeledValues]:
        with self._lock:
            return dict(self._labeled)

    # -- read paths ------------------------------------------------------

    def flat(self) -> dict[str, float]:
        """Every metric as one flat ``name -> number`` dict.

        Histograms flatten to ``<name>_count`` / ``<name>_mean`` /
        ``<name>_p50`` / ``<name>_p95`` / ``<name>_p99``; sources to
        their historical ``<source>_<key>`` names.  This is the shape
        the access log's ``#stats`` trailer and ``repro stats`` consume.
        """
        flat: dict[str, float] = {}
        for name, counter in sorted(self._counters.items()):
            flat[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            flat[name] = gauge.value
        for name, histogram in sorted(self._histograms.items()):
            snap = histogram.snapshot()
            for key in ("count", "mean", "p50", "p95", "p99"):
                flat[f"{name}_{key}"] = snap[key]
        for name, family in sorted(self._labeled_families().items()):
            for value, number in sorted(family.series().items()):
                flat[f"{name}_{value}"] = number
        for source_name, counters in sorted(self._poll_sources().items()):
            for key, value in counters.items():
                flat[f"{source_name}_{key}"] = value
        return flat

    def snapshot(self) -> dict:
        """Nested JSON-ready view — the body of ``/statusz``."""
        snapshot = {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.snapshot()
                           for name, h in
                           sorted(self._histograms.items())},
            "sources": dict(sorted(self._poll_sources().items())),
        }
        labeled: dict[str, dict] = {}
        for name, family in sorted(self._labeled_families().items()):
            labeled[name] = {"label": family.label,
                             "series": dict(sorted(
                                 family.series().items()))}
        for prefix, view in sorted(self._labeled_views().items()):
            for key, series in sorted(view.labeled().items()):
                labeled[f"{prefix}_{key}"] = {
                    "label": view.label,
                    "series": dict(sorted(series.items()))}
        if labeled:
            snapshot["labeled"] = labeled
        return snapshot

    def render_text(self) -> str:
        """The ``/metrics`` scrape body (Prometheus text exposition).

        Histograms render as summaries (quantile-labelled samples plus
        ``_count``/``_sum``); sources render as plain counters under
        their historical flattened names.
        """
        lines: list[str] = []
        for name, counter in sorted(self._counters.items()):
            scrape = _scrape_name(name)
            lines.append(f"# TYPE {scrape} counter")
            lines.append(f"{scrape} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            scrape = _scrape_name(name)
            lines.append(f"# TYPE {scrape} gauge")
            lines.append(f"{scrape} {_number(gauge.value)}")
        for name, histogram in sorted(self._histograms.items()):
            scrape = _scrape_name(name)
            snap = histogram.snapshot()
            lines.append(f"# TYPE {scrape} summary")
            for label, key in (("0.5", "p50"), ("0.95", "p95"),
                               ("0.99", "p99")):
                lines.append(
                    f'{scrape}{{quantile="{label}"}} '
                    f'{_number(snap[key])}')
            lines.append(f"{scrape}_count {snap['count']}")
            lines.append(f"{scrape}_sum {_number(snap['sum'])}")
        for name, family in sorted(self._labeled_families().items()):
            scrape = _scrape_name(name)
            label = _scrape_name(family.label)
            lines.append(f"# TYPE {scrape} {family.kind}")
            for value, number in sorted(family.series().items()):
                lines.append(f'{scrape}{{{label}="{_label_value(value)}"}}'
                             f' {_number(number)}')
        for source_name, counters in sorted(self._poll_sources().items()):
            for key, value in sorted(counters.items()):
                scrape = _scrape_name(f"{source_name}_{key}")
                lines.append(f"# TYPE {scrape} counter")
                lines.append(f"{scrape} {_number(value)}")
        for prefix, view in sorted(self._labeled_views().items()):
            label = _scrape_name(view.label)
            for key, series in sorted(view.labeled().items()):
                scrape = _scrape_name(f"{prefix}_{key}")
                lines.append(f"# TYPE {scrape} counter")
                for value, number in sorted(series.items()):
                    lines.append(
                        f'{scrape}{{{label}="{_label_value(value)}"}}'
                        f' {_number(number)}')
        return "\n".join(lines) + "\n"


def _label_value(value: str) -> str:
    """Escape one label value for the text exposition format."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _number(value) -> str:
    """Render a metric value without a trailing ``.0`` on whole numbers."""
    if isinstance(value, bool):  # bools are ints; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


#: The default process-wide registry.  The serving stack wires this one
#: unless told otherwise; tests build private registries.
REGISTRY = MetricsRegistry()
