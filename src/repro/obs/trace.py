"""Request tracing: a span tree per request, propagated end-to-end.

One request through the Figure 1 stack touches many layers — HTTP
accept, CGI dispatch, macro load and parse, variable substitution, one
or more SQL executions, report rendering, emission.  The tracer records
that as a tree of **spans**, all carrying one **trace id** that is

* generated where the request enters (:mod:`repro.http.server` /
  :class:`repro.http.router.Router`),
* threaded through the CGI environment (``REPRO_TRACE_ID`` — so a
  subprocess CGI run and the app-server worker see it),
* carried across the app-server's Unix-socket frames and back: a worker
  runs its own span tree under the propagated id and ships it home in
  the RESPONSE frame, where the dispatcher grafts it into the live
  request trace (:meth:`Tracer.graft`).

The current span travels in a :mod:`contextvars` context variable, so
nested layers need no plumbing and the streaming-generator path stays
correct (the router re-activates the request span around each chunk it
pulls — see :meth:`ActiveSpan.activate`).

**Gating**: the tracer is off by default.  Every instrumentation point
first checks :attr:`Tracer.enabled` (an attribute read) and, when off,
:meth:`Tracer.span` returns a shared no-op context manager — the no-op
cost of the whole subsystem is a dict lookup per request, and the
*enabled* cost is bounded by the ≤5% bar of
``benchmarks/bench_obs_overhead.py``.

Finished root spans are delivered to **sinks** (the structured request
log, the slow-query log, the metrics bridge — see
:mod:`repro.obs.sinks`); a sink that raises is disabled for the
delivery, never the request.
"""

from __future__ import annotations

import contextvars
import hashlib
import itertools
import os
import threading
import time
from typing import Callable, Iterator, Optional

__all__ = ["Span", "ActiveSpan", "Tracer", "TRACER", "new_trace_id",
           "TraceSummary", "summarize",
           "statement_digest"]

_current_span: contextvars.ContextVar[Optional["Span"]] = \
    contextvars.ContextVar("repro_current_span", default=None)

# itertools.count.__next__ is atomic in CPython, so neither counter
# needs a lock; both sit on the per-request hot path.
_span_ids = itertools.count(1)
_trace_counter = itertools.count(1)

_digest_cache: dict[str, str] = {}
_DIGEST_CACHE_LIMIT = 1024


def new_trace_id() -> str:
    """A process-unique trace id: pid, coarse time, and a counter."""
    return (f"{_pid_prefix()}-{int(time.time()):x}-"
            f"{next(_trace_counter) & 0xFFFF:04x}")


def _pid_prefix() -> str:
    # Re-derived on pid change so forked workers (the app server) mint
    # ids under their own pid, not the parent's cached one.
    global _PID, _PID_HEX
    pid = os.getpid()
    if pid != _PID:
        _PID, _PID_HEX = pid, f"{pid:x}"
    return _PID_HEX


_PID = -1
_PID_HEX = ""


def statement_digest(sql: str) -> str:
    """A short stable digest of one SQL statement's text.

    Slow-query log lines and ``sql.execute`` spans carry this so
    operators can group occurrences of the same (dynamically assembled)
    statement without shipping the full text everywhere.  Digests are
    memoised: a server executes the same handful of (assembled)
    statements over and over, and hashing is hot-path work.
    """
    digest = _digest_cache.get(sql)
    if digest is None:
        digest = hashlib.sha1(
            sql.encode("utf-8", "replace")).hexdigest()[:12]
        if len(_digest_cache) >= _DIGEST_CACHE_LIMIT:
            _digest_cache.clear()
        _digest_cache[sql] = digest
    return digest


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start",
                 "end", "_attrs", "_children", "remote")

    def __init__(self, name: str, trace_id: str,
                 parent_id: Optional[int] = None,
                 attrs: Optional[dict] = None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = next(_span_ids)
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        # attrs/children stay unallocated until used: most spans carry
        # neither, and several are minted per request.
        self._attrs: Optional[dict] = attrs
        self._children: Optional[list[Span]] = None
        #: True for spans rebuilt from an exported tree (another
        #: process's clock); their offsets are relative to the graft
        #: root, not this process's request span.
        self.remote = False

    @property
    def attrs(self) -> dict:
        attrs = self._attrs
        if attrs is None:
            attrs = self._attrs = {}
        return attrs

    @property
    def children(self) -> list["Span"]:
        children = self._children
        if children is None:
            children = self._children = []
        return children

    def add_child(self, span: "Span") -> None:
        children = self._children
        if children is None:
            self._children = [span]
        else:
            children.append(span)

    def set(self, key: str, value) -> None:
        attrs = self._attrs
        if attrs is None:
            attrs = self._attrs = {}
        attrs[key] = value

    @property
    def duration_ms(self) -> float:
        if self.end is None:
            return 0.0
        return (self.end - self.start) * 1000.0

    def finish(self) -> None:
        if self.end is None:
            self.end = time.perf_counter()

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        if self._children:
            for child in self._children:
                yield from child.walk()

    def phase_totals(self) -> dict[str, float]:
        """Total milliseconds per span name across the subtree."""
        totals: dict[str, float] = {}
        for span in self.walk():
            totals[span.name] = (totals.get(span.name, 0.0)
                                 + span.duration_ms)
        return {name: round(ms, 3) for name, ms in totals.items()}

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """Nested JSON-ready form; offsets are relative to the parent."""
        return self._to_dict(parent=None)

    def _to_dict(self, parent: Optional["Span"]) -> dict:
        if parent is None or parent.remote != self.remote:
            offset = 0.0
        else:
            offset = (self.start - parent.start) * 1000.0
        record = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "offset_ms": round(offset, 3),
            "duration_ms": round(self.duration_ms, 3),
        }
        if self._attrs:
            record["attrs"] = dict(self._attrs)
        if self._children:
            record["children"] = [child._to_dict(self)
                                  for child in self._children]
        return record

    @classmethod
    def from_dict(cls, record: dict,
                  parent: Optional["Span"] = None) -> "Span":
        """Rebuild an exported tree (a worker's spans, a logged trace).

        Timing is reconstructed on a synthetic clock: the rebuilt root
        starts at 0, children at their recorded offsets, so durations
        and relative layout survive while absolute times (another
        process's ``perf_counter``) do not.
        """
        span = cls(str(record.get("name", "?")),
                   str(record.get("trace_id", "")),
                   parent.span_id if parent is not None else None,
                   dict(record.get("attrs", {})))
        base = parent.start if parent is not None else 0.0
        offset = float(record.get("offset_ms", 0.0)) / 1000.0
        span.start = base + offset
        span.end = span.start + float(record.get("duration_ms", 0.0)) / 1000.0
        span.remote = True
        for child_record in record.get("children", ()):
            span.add_child(cls.from_dict(child_record, span))
        return span


class TraceSummary:
    """One walk's worth of facts about a finished trace.

    Every aggregating consumer of a delivered root needs the same
    traversal: per-phase duration totals, the ``sql.execute`` spans,
    and whether anything in the tree errored.  Walking once and
    fanning the summary out (see :class:`repro.obs.sinks.FanoutSink`)
    keeps the per-request delivery cost flat no matter how many
    consumers are wired — this sits on the hot path of every traced
    request, inside the ≤5% overhead bar.
    """

    __slots__ = ("root", "totals", "sql_spans", "has_error")

    def __init__(self, root: "Span", totals: dict,
                 sql_spans: Optional[list], has_error: bool):
        self.root = root
        #: span name -> total milliseconds across the tree.
        self.totals = totals
        #: every ``sql.execute`` span, in delivery order (or ``None``).
        self.sql_spans = sql_spans
        #: True when any span in the tree carries an ``error`` attr.
        self.has_error = has_error


#: Span name the SQL-aware consumers match (one definition would be
#: circular: sinks and sql.digest both mirror this string).
_SQL_SPAN = "sql.execute"


def summarize(root: "Span") -> TraceSummary:
    """Collect a :class:`TraceSummary` in one iterative walk."""
    totals: dict[str, float] = {}
    sql_spans: Optional[list] = None
    has_error = False
    stack = [root]
    while stack:
        span = stack.pop()
        children = span._children
        if children:
            stack.extend(children)
        name = span.name
        end = span.end
        duration = 0.0 if end is None else (end - span.start) * 1000.0
        if name in totals:
            totals[name] += duration
        else:
            totals[name] = duration
        attrs = span._attrs
        if attrs:
            if "error" in attrs:
                has_error = True
            if name == _SQL_SPAN:
                if sql_spans is None:
                    sql_spans = [span]
                else:
                    sql_spans.append(span)
        elif name == _SQL_SPAN:
            if sql_spans is None:
                sql_spans = [span]
            else:
                sql_spans.append(span)
    return TraceSummary(root, totals, sql_spans, has_error)


class ActiveSpan:
    """A begun span plus its context activation, for explicit lifecycles.

    The router uses this shape because a streaming response outlives
    ``Router.handle``: the span deactivates when handle returns and is
    re-activated around each chunk the transport pulls, finishing only
    when the stream closes.
    """

    __slots__ = ("tracer", "span", "_token", "_finished")

    def __init__(self, tracer: "Tracer", span: Span):
        self.tracer = tracer
        self.span = span
        self._token = _current_span.set(span)
        self._finished = False

    def activate(self) -> None:
        """Make this span current again (streaming re-entry)."""
        if self._token is None:
            self._token = _current_span.set(self.span)

    def deactivate(self) -> None:
        """Restore the previous current span."""
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None

    def finish(self) -> None:
        """End the span, restore context, deliver a finished root."""
        if self._finished:
            return
        self._finished = True
        self.deactivate()
        self.span.finish()
        if self.span.parent_id is None:
            self.tracer._deliver(self.span)


class _NoopSpan:
    """Absorbs attribute writes when tracing is off."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass


class _NoopContext:
    """Shared do-nothing context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc_info: object) -> None:
        pass


NOOP_SPAN = _NoopSpan()
_NOOP_CONTEXT = _NoopContext()


class _SpanContext:
    """Context manager for one interior span."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = _current_span.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> None:
        _current_span.reset(self._token)
        self._span.finish()
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        if self._span.parent_id is None:
            self._tracer._deliver(self._span)


class Tracer:
    """The process-wide span factory and sink fan-out."""

    def __init__(self) -> None:
        #: The gate every instrumentation point checks first.
        self.enabled = False
        self._sinks: list[Callable[[Span], None]] = []
        #: immutable snapshot delivery iterates — rebuilt under the
        #: lock on every add/remove, read lock-free per request.
        self._sinks_snapshot: tuple[Callable[[Span], None], ...] = ()
        self._lock = threading.Lock()

    # -- configuration -----------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def add_sink(self, sink: Callable[[Span], None]) -> None:
        """Register a callable invoked with every finished root span."""
        with self._lock:
            self._sinks.append(sink)
            self._sinks_snapshot = tuple(self._sinks)

    def remove_sink(self, sink: Callable[[Span], None]) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
            self._sinks_snapshot = tuple(self._sinks)

    def clear_sinks(self) -> None:
        with self._lock:
            self._sinks.clear()
            self._sinks_snapshot = ()

    # -- span creation -----------------------------------------------------

    def span(self, name: str, attrs: Optional[dict] = None):
        """Context manager for one span under the current one.

        With tracing off (or on a thread with no active request span
        and no need for a root — a bare ``span`` call still roots its
        own trace) the disabled path returns a shared no-op.
        """
        if not self.enabled:
            return _NOOP_CONTEXT
        parent = _current_span.get()
        if parent is None:
            span = Span(name, new_trace_id(), None, attrs)
        else:
            span = Span(name, parent.trace_id, parent.span_id, attrs)
            parent.add_child(span)
        return _SpanContext(self, span)

    def leaf(self, name: str) -> Optional[Span]:
        """A started child :class:`Span` under the current span, or
        ``None`` when tracing is off or no span is current.

        For hot leaf phases (variable substitution runs several times
        per request): the span is attached but *not* made current, so
        the caller skips the context-variable set/reset a ``with
        span(...)`` pays.  The caller must ``finish()`` it.
        """
        if not self.enabled:
            return None
        parent = _current_span.get()
        if parent is None:
            return None
        span = Span(name, parent.trace_id, parent.span_id)
        parent.add_child(span)
        return span

    def begin(self, name: str, *, trace_id: Optional[str] = None,
              attrs: Optional[dict] = None) -> Optional[ActiveSpan]:
        """Open a root span with an explicit lifecycle.

        Returns ``None`` when tracing is off, so callers can keep a
        single ``if act is not None`` guard.
        """
        if not self.enabled:
            return None
        span = Span(name, trace_id or new_trace_id(), None, attrs)
        return ActiveSpan(self, span)

    def child_of(self, parent: Optional[Span],
                 name: str) -> Optional[Span]:
        """A started child of an *explicit* parent span (cross-thread).

        The scatter-gather merge hands each shard worker a span created
        on the request thread — creating them there, before the workers
        start, keeps ``parent``'s lazy child-list initialisation
        single-threaded.  Returns ``None`` when tracing is off or there
        is no parent; the caller must ``finish()`` it.
        """
        if not self.enabled or parent is None:
            return None
        span = Span(name, parent.trace_id, parent.span_id)
        parent.add_child(span)
        return span

    # -- context introspection ---------------------------------------------

    def current(self) -> Optional[Span]:
        return _current_span.get()

    def current_trace_id(self) -> str:
        span = _current_span.get()
        return span.trace_id if span is not None else ""

    # -- cross-process stitches --------------------------------------------

    def graft(self, tree: dict) -> Optional[Span]:
        """Attach an exported span tree under the current span.

        This is how worker-side spans join the dispatcher's trace: the
        RESPONSE frame carries the worker's tree, the dispatcher grafts
        it while its request span is still current.  No-op without an
        active span (nothing to graft onto).
        """
        parent = _current_span.get()
        if not self.enabled or parent is None or not tree:
            return None
        grafted = Span.from_dict(tree, None)
        grafted.parent_id = parent.span_id
        parent.add_child(grafted)
        return grafted

    # -- delivery ----------------------------------------------------------

    def _deliver(self, root: Span) -> None:
        for sink in self._sinks_snapshot:
            try:
                sink(root)
            except Exception:  # noqa: BLE001 - observability must never
                pass           # take the request down


#: The process-wide tracer every layer imports.  Disabled by default;
#: ``repro serve`` (and the worker processes it spawns) enable it.
TRACER = Tracer()
