"""Trace sinks: where finished request traces go.

Three consumers hang off :class:`repro.obs.trace.Tracer`:

* :class:`TraceLog` — one structured JSON line per request (trace id,
  duration, per-phase breakdown, full span tree), the grep-able
  per-request log the paper era never had.  ``repro trace <file>``
  pretty-prints it.
* :class:`SlowQueryLog` — the ``--slow-query-ms`` watchdog: any
  ``sql.execute`` span at or over the threshold dumps its statement
  digest and the whole offending span subtree as a ``slow_query``
  record (same file format, so ``repro trace`` renders those too).
* :class:`MetricsBridge` — folds span durations into a
  :class:`~repro.obs.metrics.MetricsRegistry` (per-phase latency
  histograms, slow-query counter), so the scrape endpoint shows where
  time goes even when nobody is tailing logs.

All file sinks append JSON Lines with a single ``write`` per record, so
multiple processes (app-server workers) can share one file.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, TraceSummary, summarize

__all__ = ["TraceLog", "SlowQueryLog", "MetricsBridge", "FanoutSink",
           "format_trace", "read_trace_log"]

#: Span name the slow-query watchdog matches.
SQL_SPAN_NAME = "sql.execute"


class _JsonLineFile:
    """Append-only JSON Lines writer (one ``write`` syscall per record)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()

    def write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True, default=str) + "\n"
        with self._lock:
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(line)


class TraceLog:
    """One JSON line per finished request trace."""

    def __init__(self, path: str | Path):
        self._file = _JsonLineFile(path)

    @property
    def path(self) -> Path:
        return self._file.path

    def __call__(self, root: Span) -> None:
        self._file.write({
            "type": "trace",
            "ts": round(time.time(), 3),
            "trace_id": root.trace_id,
            "name": root.name,
            "duration_ms": round(root.duration_ms, 3),
            "phases": root.phase_totals(),
            "attrs": dict(root.attrs),
            "spans": root.to_dict(),
        })


class SlowQueryLog:
    """Dump the span subtree of every SQL execution over the threshold."""

    def __init__(self, path: str | Path, threshold_ms: float,
                 statements=None):
        self._file = _JsonLineFile(path)
        self.threshold_ms = float(threshold_ms)
        #: Optional :class:`repro.sql.digest.StatementStats`: when set,
        #: each dump carries the digest's rolling profile, so one slow
        #: occurrence reads in context ("p95 is 3ms, this was 400ms —
        #: an outlier" vs "every call is slow").
        self.statements = statements
        self._count = 0

    @property
    def path(self) -> Path:
        return self._file.path

    @property
    def count(self) -> int:
        """Slow statements recorded so far (for tests and counters)."""
        return self._count

    def __call__(self, root: Span) -> None:
        for span in root.walk():
            if (span.name == SQL_SPAN_NAME
                    and span.duration_ms >= self.threshold_ms):
                self._count += 1
                digest = span.attrs.get("digest", "")
                record = {
                    "type": "slow_query",
                    "ts": round(time.time(), 3),
                    "trace_id": root.trace_id,
                    "request": {"name": root.name,
                                "attrs": dict(root.attrs),
                                "duration_ms":
                                    round(root.duration_ms, 3)},
                    "duration_ms": round(span.duration_ms, 3),
                    "threshold_ms": self.threshold_ms,
                    "digest": digest,
                    "sql": span.attrs.get("sql", ""),
                    "spans": span.to_dict(),
                }
                if self.statements is not None and digest:
                    profile = self.statements.digest_snapshot(digest)
                    if profile is not None:
                        record["digest_stats"] = profile
                self._file.write(record)


class MetricsBridge:
    """Fold finished traces into latency histograms.

    Per span name: ``span_<name>_ms`` (dots become underscores), one
    observation per trace carrying the trace's *total* time in that
    phase — the same per-request phase breakdown the trace log records.
    The request root additionally counts into ``traces_total``; slow
    SQL spans (when a threshold is given) into ``slow_queries_total``.
    """

    def __init__(self, registry: MetricsRegistry, *,
                 slow_query_ms: Optional[float] = None):
        self.registry = registry
        self.slow_query_ms = slow_query_ms
        self._traces = registry.counter("traces_total")
        # Only materialise the slow counter when watching: its absence
        # from the scrape is how "no threshold configured" reads.
        self._slow = (registry.counter("slow_queries_total")
                      if slow_query_ms is not None else None)
        #: span name -> Histogram, resolved once — this sink runs on
        #: every request, so it must not pay string assembly or registry
        #: lookups per span.
        self._histograms: dict[str, object] = {}

    def _histogram(self, name: str):
        histogram = self._histograms.get(name)
        if histogram is None:
            safe = name.replace(".", "_")
            histogram = self.registry.histogram(f"span_{safe}_ms")
            self._histograms[name] = histogram
        return histogram

    def __call__(self, root: Span) -> None:
        self.on_summary(summarize(root))

    def on_summary(self, summary: TraceSummary) -> None:
        """Fold one pre-walked trace (see :class:`FanoutSink`)."""
        self._traces.inc()
        if self._slow is not None and summary.sql_spans:
            slow_ms = self.slow_query_ms
            for span in summary.sql_spans:
                if span.duration_ms >= slow_ms:
                    self._slow.inc()
        for name, total in summary.totals.items():
            self._histogram(name).observe(total)


class FanoutSink:
    """One tracer sink that walks once and feeds many consumers.

    ``repro serve`` hangs several aggregators off every finished trace
    — the metrics bridge, the statement-digest store, the tail sampler
    guarding the file logs.  Registered individually each would walk
    the span tree itself; fused, the tree is summarized once
    (:func:`repro.obs.trace.summarize`) and consumers exposing
    ``on_summary`` are fed the shared summary.  Consumers without
    ``on_summary`` (plain file sinks) still receive the root span.

    With ``defer_cap`` > 0 delivery is **two-phase**: the request
    thread only appends the finished root to a queue (a deque append —
    well under a microsecond) and the aggregation work runs off the
    latency path, from a daemon drain thread that wakes every
    ``drain_interval`` seconds.  Readers that need current aggregates
    (the scrape endpoints) call :meth:`flush` first, so scrapes stay
    exact; the cap is a backstop — a request that finds ``defer_cap``
    roots queued drains them inline rather than letting the queue grow
    unboundedly.  With ``defer_cap=0`` (the default) delivery is
    inline and synchronous, which is what unit tests want.

    A consumer that raises is skipped for the delivery, never the
    request — the same containment as ``Tracer._deliver``.
    """

    def __init__(self, *consumers, defer_cap: int = 0,
                 drain_interval: float = 0.05):
        self.consumers = list(consumers)
        self._handlers = [
            getattr(consumer, "on_summary", None)
            or (lambda summary, _sink=consumer: _sink(summary.root))
            for consumer in consumers]
        self.defer_cap = defer_cap
        self.drain_interval = drain_interval
        self._queue: deque = deque()
        self._drain_lock = threading.Lock()
        self._drainer: Optional[threading.Thread] = None
        if defer_cap > 0:
            self._drainer = threading.Thread(
                target=self._drain_loop, name="obs-fanout-drain",
                daemon=True)
            self._drainer.start()

    def __call__(self, root: Span) -> None:
        if self.defer_cap > 0:
            queue = self._queue
            queue.append(root)
            if len(queue) >= self.defer_cap:
                self.flush()
            return
        self._deliver(root)

    def _deliver(self, root: Span) -> None:
        summary = summarize(root)
        for handler in self._handlers:
            try:
                handler(summary)
            except Exception:  # noqa: BLE001 - mirror Tracer._deliver
                pass

    def flush(self) -> None:
        """Drain every queued root through the consumers, then return.

        Safe from any thread; the scrape handlers call this before
        rendering so deferred aggregates are never stale on a read.
        """
        queue = self._queue
        with self._drain_lock:
            while True:
                try:
                    root = queue.popleft()
                except IndexError:
                    break
                self._deliver(root)

    def _drain_loop(self) -> None:  # pragma: no cover - timing thread
        while True:
            time.sleep(self.drain_interval)
            if self._queue:
                self.flush()


# ---------------------------------------------------------------------------
# reading and pretty-printing (the `repro trace` command)
# ---------------------------------------------------------------------------


def read_trace_log(path: str | Path) -> list[dict]:
    """Parse a trace/slow-query JSONL file; malformed lines are skipped.

    A live log's last line is often mid-write (a crashed worker, a
    tail during load); bad bytes and truncated JSON must not take the
    whole file down, so decoding is lossy and each line parses
    independently.
    """
    records = []
    text = Path(path).read_bytes().decode("utf-8", errors="replace")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and record.get("type") in (
                "trace", "slow_query"):
            records.append(record)
    return records


def format_trace(record: dict) -> str:
    """Render one logged trace (or slow-query) record as an ASCII tree."""
    lines = []
    kind = record.get("type", "trace")
    trace_id = record.get("trace_id", "?")
    duration = record.get("duration_ms", 0.0)
    if kind == "slow_query":
        lines.append(f"slow_query {trace_id}  {duration:.1f}ms  "
                     f"(threshold {record.get('threshold_ms', 0)}ms, "
                     f"digest {record.get('digest', '')})")
    else:
        lines.append(f"trace {trace_id}  {duration:.1f}ms")
    phases = record.get("phases")
    if phases:
        breakdown = "  ".join(f"{name}={ms:.1f}ms"
                              for name, ms in sorted(phases.items())
                              if name != record.get("name"))
        if breakdown:
            lines.append(f"  phases: {breakdown}")
    spans = record.get("spans")
    if spans:
        _format_span(spans, lines, depth=1)
    return "\n".join(lines)


def _format_span(span: dict, lines: list[str], depth: int) -> None:
    indent = "  " * depth
    attrs = span.get("attrs", {})
    detail = " ".join(f"{key}={_short(value)}"
                      for key, value in sorted(attrs.items()))
    lines.append(f"{indent}{span.get('name', '?')} "
                 f"{span.get('duration_ms', 0.0):.2f}ms"
                 + (f"  [{detail}]" if detail else ""))
    for child in span.get("children", ()):
        _format_span(child, lines, depth + 1)


def _short(value, limit: int = 48) -> str:
    text = str(value)
    return text if len(text) <= limit else text[:limit - 1] + "…"
