"""Tail-based trace sampling: decide after the request, not before.

Head sampling (flip a coin when the request starts) throws away exactly
the traces an operator needs: the errors and the outliers, which are
rare by definition.  The tracer already buffers each request's full
span tree and delivers it at completion, so the sampling decision can
wait until everything about the request is known:

* an **error** anywhere in the tree → always kept,
* an **over-SLO** root duration → always kept,
* otherwise a bounded **per-digest reservoir**: the first ``per_key``
  traces of each statement-digest group per window are kept (every
  query shape stays represented in the log), the rest fall through to
* a configurable **head probability** (default 0: drop).

:class:`TailSampler` wraps the *file* sinks only — ``repro serve``
keeps the metrics bridge and statement stats outside the sampler, so
aggregates see every trace while the JSONL log stays bounded under
load.  ``benchmarks/bench_obs_overhead.py`` enforces the bound: ≤10%
of the head-sampled volume written, 100% of error and over-SLO traces
retained.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional

__all__ = ["TailSampler", "parse_sample_spec"]

#: Span name carrying statement digests (mirrors repro.obs.sinks).
_SQL_SPAN_NAME = "sql.execute"

KEEP_ERROR = "error"
KEEP_SLOW = "over_slo"
KEEP_RESERVOIR = "reservoir"
KEEP_HEAD = "head"


def parse_sample_spec(spec: str) -> dict:
    """Parse a ``--trace-sample`` spec into :class:`TailSampler` kwargs.

    ``"slo_ms=250,per_key=5,window_s=60,head=0.01"`` — any subset, in
    any order; a bare ``"on"``/``"1"`` takes every default.  Raises
    :class:`ValueError` on unknown keys or non-numeric values so a
    typo fails at startup, not silently at sampling time.
    """
    kwargs: dict = {}
    spec = spec.strip()
    if spec.lower() in ("", "on", "1", "true"):
        return kwargs
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        key = key.strip().lower()
        try:
            number = float(value.strip())
        except ValueError:
            raise ValueError(
                f"trace-sample entry {part!r} is not key=number")
        if key in ("slo_ms", "slo"):
            kwargs["slo_ms"] = number
        elif key in ("per_key", "reservoir"):
            kwargs["per_key"] = int(number)
        elif key in ("window_s", "window"):
            kwargs["window_s"] = number
        elif key in ("head", "head_probability"):
            kwargs["head_probability"] = number
        else:
            raise ValueError(f"unknown trace-sample key {key!r}")
    return kwargs


class TailSampler:
    """A filtering trace sink: forward kept traces to wrapped sinks."""

    def __init__(self, *sinks: Callable, slo_ms: Optional[float] = None,
                 per_key: int = 5, window_s: float = 60.0,
                 head_probability: float = 0.0,
                 registry=None, clock: Callable[[], float] = time.monotonic,
                 rng: Optional[random.Random] = None):
        self.sinks = list(sinks)
        self.slo_ms = slo_ms
        self.per_key = per_key
        self.window_s = window_s
        self.head_probability = head_probability
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._window_start = clock()
        self._window_counts: dict[str, int] = {}
        self._kept = {KEEP_ERROR: 0, KEEP_SLOW: 0, KEEP_RESERVOIR: 0,
                      KEEP_HEAD: 0}
        self._dropped = 0
        if registry is not None:
            self._m_kept = registry.counter("trace_sampler_kept_total")
            self._m_dropped = registry.counter(
                "trace_sampler_dropped_total")
        else:
            self._m_kept = self._m_dropped = None

    # -- the decision ------------------------------------------------------

    def decide(self, root) -> tuple[bool, str]:
        """``(keep, reason)`` for one finished root span."""
        digests: Optional[list] = None
        has_error = False
        for span in root.walk():
            attrs = span._attrs
            if not attrs:
                continue
            if "error" in attrs:
                has_error = True
                break
            if span.name == _SQL_SPAN_NAME:
                digest = attrs.get("digest")
                if digest:
                    if digests is None:
                        digests = [digest]
                    else:
                        digests.append(digest)
        return self._decide(root, has_error, digests)

    def _decide(self, root, has_error: bool,
                digests: Optional[list]) -> tuple[bool, str]:
        if has_error:
            return True, KEEP_ERROR
        root_attrs = root._attrs or {}
        status = root_attrs.get("status")
        if isinstance(status, int) and status >= 500:
            return True, KEEP_ERROR
        if self.slo_ms is not None and root.duration_ms >= self.slo_ms:
            return True, KEEP_SLOW
        if digests is None:
            key = root_attrs.get("target") or root.name
        elif len(digests) == 1:
            key = digests[0]
        else:
            key = ",".join(sorted(set(digests)))
        if self._reserve(str(key)):
            return True, KEEP_RESERVOIR
        if (self.head_probability > 0.0
                and self._rng.random() < self.head_probability):
            return True, KEEP_HEAD
        return False, ""

    def _reserve(self, key: str) -> bool:
        now = self._clock()
        with self._lock:
            if now - self._window_start >= self.window_s:
                self._window_start = now
                self._window_counts.clear()
            seen = self._window_counts.get(key, 0)
            if seen >= self.per_key:
                return False
            self._window_counts[key] = seen + 1
            return True

    # -- the sink surface --------------------------------------------------

    def on_summary(self, summary) -> None:
        """Pre-walked delivery (see :class:`repro.obs.sinks.FanoutSink`).

        The summary already knows whether the tree errored and which
        ``sql.execute`` spans it holds, so the decision skips the walk
        :meth:`decide` pays — this is the hot path of every traced
        request in ``repro serve``.
        """
        sql_spans = summary.sql_spans
        digests: Optional[list] = None
        if sql_spans:
            for span in sql_spans:
                attrs = span._attrs
                digest = attrs.get("digest") if attrs else None
                if digest:
                    if digests is None:
                        digests = [digest]
                    else:
                        digests.append(digest)
        root = summary.root
        self._settle(root, *self._decide(root, summary.has_error,
                                         digests))

    def __call__(self, root) -> None:
        self._settle(root, *self.decide(root))

    def _settle(self, root, keep: bool, reason: str) -> None:
        if not keep:
            with self._lock:
                self._dropped += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
            return
        with self._lock:
            self._kept[reason] += 1
        if self._m_kept is not None:
            self._m_kept.inc()
        for sink in self.sinks:
            try:
                sink(root)
            except Exception:  # noqa: BLE001 - mirror Tracer._deliver:
                pass           # a broken sink must not take the request

    def stats(self) -> dict[str, float]:
        """Kept/dropped counters by decision (tests, stats source)."""
        with self._lock:
            stats: dict[str, float] = {
                f"kept_{reason}": count
                for reason, count in self._kept.items()}
            stats["kept_total"] = sum(self._kept.values())
            stats["dropped_total"] = self._dropped
            return stats
