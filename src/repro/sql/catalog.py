"""Catalog introspection: tables and columns of a database.

Used by two parts of the reproduction:

* the WDB baseline (Section 6): WDB's "FDF generator extracts table and
  field definitions from a database to build a skeleton form definition
  file" — :func:`describe_table` is exactly that extraction;
* the example applications, to assert their seeded schemas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLObjectError
from repro.sql.connection import Connection


@dataclass(frozen=True)
class ColumnInfo:
    """One column of a table, as a 1996 catalog query would describe it."""

    name: str
    type_name: str
    not_null: bool
    primary_key: bool
    default: str | None = None

    @property
    def is_character(self) -> bool:
        """True for character-ish types (searchable with LIKE)."""
        folded = self.type_name.upper()
        return any(tag in folded for tag in
                   ("CHAR", "TEXT", "CLOB", "VARCHAR"))

    @property
    def is_numeric(self) -> bool:
        folded = self.type_name.upper()
        return any(tag in folded for tag in
                   ("INT", "REAL", "FLOA", "DOUB", "NUM", "DEC"))


@dataclass(frozen=True)
class TableInfo:
    """A table with its columns."""

    name: str
    columns: tuple[ColumnInfo, ...]

    def column(self, name: str) -> ColumnInfo:
        folded = name.lower()
        for col in self.columns:
            if col.name.lower() == folded:
                return col
        raise SQLObjectError(f"no such column: {self.name}.{name}",
                             sqlstate="42703")

    @property
    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]


def list_tables(conn: Connection) -> list[str]:
    """Names of user tables, in creation order."""
    cursor = conn.execute(
        "SELECT name FROM sqlite_master "
        "WHERE type = 'table' AND name NOT LIKE 'sqlite_%' "
        "ORDER BY rowid")
    return [row[0] for row in cursor.fetchall()]


def describe_table(conn: Connection, table: str) -> TableInfo:
    """Describe one table; raises :class:`SQLObjectError` if absent."""
    if table not in list_tables(conn):
        raise SQLObjectError(f"no such table: {table}")
    cursor = conn.execute(f"PRAGMA table_info({table!r})")
    columns = tuple(
        ColumnInfo(
            name=row[1],
            type_name=row[2] or "TEXT",
            not_null=bool(row[3]),
            primary_key=bool(row[5]),
            default=row[4],
        )
        for row in cursor.fetchall()
    )
    return TableInfo(name=table, columns=columns)


def row_count(conn: Connection, table: str) -> int:
    if table not in list_tables(conn):
        raise SQLObjectError(f"no such table: {table}")
    cursor = conn.execute(f"SELECT COUNT(*) FROM {table}")
    row = cursor.fetchone()
    assert row is not None
    return int(row[0])
