"""Connections to the relational DBMS substrate.

The paper's system talked to IBM DB2 through its call-level interface; our
substitution (documented in DESIGN.md) is the standard-library ``sqlite3``
module wrapped so that the rest of the code sees a small, DB2-flavoured
surface:

* explicit transaction control (``begin``/``commit``/``rollback``) — the
  gateway decides transaction boundaries, never the driver;
* errors translated to :class:`repro.errors.SQLError` subclasses carrying
  ``sqlcode``/``sqlstate`` attributes that ``%SQL_MESSAGE`` rules match on;
* cursor results exposed through :class:`repro.sql.cursor.Cursor`.
"""

from __future__ import annotations

import re
import sqlite3
import threading
from typing import Any, Iterable, Optional

from repro.errors import (
    ConnectionClosedError,
    SQLConstraintError,
    SQLDataError,
    SQLError,
    SQLObjectError,
    SQLSyntaxError,
)
from repro.sql.cursor import Cursor
from repro.sql.dialect import is_query
from repro.sql.querycache import WriteGeneration

_NO_TABLE_RE = re.compile(r"no such table: (\S+)")
_NO_COLUMN_RE = re.compile(r"no such column: (\S+)")


def translate_error(exc: sqlite3.Error, sql: str = "") -> SQLError:
    """Map a sqlite3 exception onto the gateway's SQLSTATE-bearing errors."""
    message = str(exc)
    if isinstance(exc, sqlite3.OperationalError):
        if _NO_TABLE_RE.search(message):
            return SQLObjectError(message, sqlstate="42704")
        if _NO_COLUMN_RE.search(message):
            return SQLObjectError(message, sqlstate="42703")
        if "syntax error" in message or "incomplete input" in message:
            return SQLSyntaxError(message)
        return SQLError(message, sqlcode=-902, sqlstate="58004")
    if isinstance(exc, sqlite3.IntegrityError):
        return SQLConstraintError(message)
    if isinstance(exc, (sqlite3.DataError, sqlite3.InterfaceError)):
        return SQLDataError(message)
    if isinstance(exc, sqlite3.ProgrammingError):
        if "closed" in message.lower():
            return ConnectionClosedError(message)
        return SQLSyntaxError(message)
    return SQLError(message)


class Connection:
    """A connection to one database.

    Thread-safe for the threaded HTTP server's sake: a lock serialises
    statement execution, matching the one-statement-at-a-time behaviour of
    a 1996 CLI connection handle.

    ``sqlite3`` is opened with ``isolation_level=None`` so the *gateway*
    owns transaction boundaries explicitly — required to implement both of
    the paper's transaction modes (Section 5).
    """

    def __init__(self, database: str = ":memory:", *, uri: bool = False):
        self.database = database
        self._raw = sqlite3.connect(
            database, isolation_level=None, check_same_thread=False,
            uri=uri)
        self._lock = threading.RLock()
        self._closed = False
        self._in_transaction = False
        self._write_pending = False
        #: Shared per-database write counter (attached by the registry
        #: or a :class:`MemoryDatabase`); any non-query statement that
        #: runs through :meth:`execute`/:meth:`executescript` bumps it —
        #: at execution time and again when the enclosing transaction
        #: ends — so the query-result cache invalidates (see
        #: repro.sql.querycache).
        self.generation: Optional[WriteGeneration] = None

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._raw.close()
                self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def ping(self) -> bool:
        """Cheap health probe: can this connection still run a statement?

        Used by the pool to validate connections on release so a broken
        connection is evicted instead of recycled.  Never raises.
        """
        with self._lock:
            if self._closed:
                return False
            try:
                self._raw.execute("SELECT 1").fetchone()
            except sqlite3.Error:
                return False
            return True

    def _check_open(self) -> None:
        if self._closed:
            raise ConnectionClosedError()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution ------------------------------------------------------

    def execute(self, sql: str,
                parameters: Iterable[Any] = ()) -> Cursor:
        """Prepare and execute one SQL statement.

        Returns a :class:`Cursor`; raises :class:`SQLError` subclasses on
        failure.  Dynamic SQL in the paper's sense: the statement text is
        whatever substitution produced, prepared immediately before
        execution.
        """
        with self._lock:
            self._check_open()
            if not sql.strip():
                raise SQLSyntaxError("empty SQL statement")
            try:
                raw_cursor = self._raw.execute(sql, tuple(parameters))
            except sqlite3.Error as exc:
                raise translate_error(exc, sql) from exc
            if self.generation is not None and not is_query(sql):
                # Conservative: bump even if the statement is later
                # rolled back — an extra cache miss is always sound.
                # Inside an explicit transaction the write is not yet
                # visible to other connections, so a second bump is
                # owed at COMMIT/ROLLBACK: a reader that sees this
                # post-execute generation but snapshots pre-commit data
                # must not have its cached result stay current once the
                # write lands.
                self.generation.bump()
                if self._in_transaction:
                    self._write_pending = True
            return Cursor(raw_cursor, sql)

    def executescript(self, script: str) -> None:
        """Run a multi-statement script (schema setup, seeding)."""
        with self._lock:
            self._check_open()
            try:
                self._raw.executescript(script)
            except sqlite3.Error as exc:
                raise translate_error(exc, script) from exc
            # ``executescript`` implicitly commits before it runs and
            # autocommits each statement, so one post-commit bump is
            # enough; any bump owed by the flushed transaction is
            # covered by it too.
            self._write_pending = False
            if self.generation is not None:
                self.generation.bump()

    # -- transactions -----------------------------------------------------

    def begin(self) -> None:
        """Open an explicit transaction (no-op if one is already open)."""
        with self._lock:
            self._check_open()
            if not self._in_transaction:
                self._raw.execute("BEGIN")
                self._in_transaction = True

    def commit(self) -> None:
        with self._lock:
            self._check_open()
            if self._in_transaction:
                self._raw.execute("COMMIT")
                self._in_transaction = False
                self._flush_pending_write()

    def rollback(self) -> None:
        with self._lock:
            self._check_open()
            if self._in_transaction:
                self._raw.execute("ROLLBACK")
                self._in_transaction = False
                self._flush_pending_write()

    def _flush_pending_write(self) -> None:
        """Bump the generation for writes the just-ended transaction made.

        Ordered *after* COMMIT so that once the new generation is
        observable, the data it stands for is already visible; results
        computed during the uncommitted window sit under the pre-flush
        generation and can never be served again.  Rollback also flushes
        — conservative, costing at most a miss.
        """
        if self._write_pending:
            self._write_pending = False
            if self.generation is not None:
                self.generation.bump()

    @property
    def in_transaction(self) -> bool:
        return self._in_transaction


def connect(database: str = ":memory:", *, uri: bool = False) -> Connection:
    """Open a connection (module-level convenience mirroring ``sqlite3``)."""
    return Connection(database, uri=uri)


class MemoryDatabase:
    """A named shared in-memory database.

    Plain ``:memory:`` gives every connection a private database, which
    breaks the pool and the CGI process model.  This wrapper uses SQLite's
    shared-cache URI form so all connections opened through
    :meth:`connect` see the same data, while holding one anchor connection
    open so the database survives between requests.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, name: Optional[str] = None):
        if name is None:
            with MemoryDatabase._counter_lock:
                MemoryDatabase._counter += 1
                name = f"repro_mem_{MemoryDatabase._counter}"
        self.name = name
        self.uri = f"file:{name}?mode=memory&cache=shared"
        #: One write generation for *all* connections to this database,
        #: whether opened through a registry or directly; the registry
        #: adopts this counter when the database is registered.
        self.generation = WriteGeneration()
        self._anchor = Connection(self.uri, uri=True)

    def connect(self) -> Connection:
        connection = Connection(self.uri, uri=True)
        connection.generation = self.generation
        return connection

    def close(self) -> None:
        self._anchor.close()

    def __enter__(self) -> "MemoryDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
