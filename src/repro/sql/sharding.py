"""The sharded and replicated data tier behind one logical database.

Figure 5 of the paper puts the gateway in front of "DB2 databases on a
wide variety of IBM and non-IBM platforms" — plural.  Everything up to
now resolved a macro's ``DATABASE`` variable to exactly one backend;
this module makes a registered name stand for a *topology* instead:

* a :class:`ShardMap` partitions one logical database over N physical
  **shards**, routed by hash or range on a macro-declared shard key
  (``%DEFINE SHARD_KEY = "$(cust_id)"``; explicit ``DATABASE`` pinning
  to a physical name keeps working unchanged);
* each shard may carry read **replicas**; cacheable SELECTs
  (:func:`~repro.sql.dialect.is_cacheable_query` — PRAGMA/EXPLAIN and
  every write always go to the primary) are served by a replica unless
  its circuit breaker is open or its observed lag exceeds the map's
  bound, in which case the read falls back to the primary;
* a statement with **no** shard key fans out: cacheable SELECTs run on
  every shard in parallel threads and their rows merge back through the
  existing streaming row pipeline (:attr:`ExecutionResult.row_iter`) —
  an ordered k-way merge when the statement ends in a recognizable
  ``ORDER BY`` over selected columns, arrival-order interleave
  otherwise; writes and DDL execute on every shard sequentially
  (schema changes must land everywhere).  A trailing ``LIMIT``/
  ``OFFSET`` is *global*: each shard runs without the offset and with
  the limit widened to ``limit + offset`` rows, and the merge
  re-applies the exact ``[offset, offset + limit)`` window over the
  merged order — never ``limit`` rows per shard.  Non-literal bounds,
  and ``ORDER BY ... LIMIT`` whose ordering terms the merge cannot map
  onto the selected columns, are refused with SQLSTATE 0A000 rather
  than answered with the wrong window.

**Correctness core** — the cache can never serve a stale cross-shard
merge: a merged result is stored under the *tuple* of every shard's
:meth:`~repro.sql.querycache.WriteGeneration.stamp`, composed in the
same observed-before-execution order as PR 1's single-database stamps.
A write routed to one shard bumps only that shard's generation (the
owning shard's counter rides the physical connection), so a shard-B-only
cached SELECT survives a shard-A write while every cross-shard merge
containing shard A is invalidated.  Commit/rollback double-bumps
compose per shard exactly as before — the tuple changes whenever any
element does.  Replica-served rows never enter the cache (a replica
whose lag is within the bound may still trail the primary's generation,
and a stale row set stored under a current stamp would validate until
the *next* write — unbounded staleness from bounded lag); replica
sessions read the shared cache but store nothing, and a merged result
is cached only when every shard answered from its primary.

**Degradation** rides the resilience layer: every shard worker gets a
per-shard deadline budget (the request deadline tightened by the map's
``shard_timeout``), breaker-open and connect failures surface per
endpoint, and with ``degrade=True`` a failed shard costs its partition
of the rows — the merge keeps streaming, marks the result ``partial``
and names the ``failed_shards`` — instead of the whole report.  Partial
results are never cached.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import re
import threading
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    SQLConnectError,
    SQLError,
)
from repro.obs.trace import TRACER, Span
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryPolicy
from repro.sql.dialect import is_cacheable_query, is_query
from repro.sql.digest import statement_digest
from repro.sql.querycache import QueryResultCache
from repro.sql.transactions import TransactionMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sql.gateway import (
        DatabaseRegistry, ExecutionResult, MacroSqlSession)

__all__ = ["Replica", "Shard", "ShardMap", "ShardedSqlSession",
           "parse_order_by", "parse_trailing_limit"]

#: Queue depth per shard stream: bounds merge-side memory to
#: ``shards * _STREAM_DEPTH`` rows however fast a shard produces.
_STREAM_DEPTH = 256

#: How often a blocked worker re-checks the abandonment flag.
_PUT_TICK = 0.05


@dataclass
class Replica:
    """One read replica of a shard.

    ``lag`` models observed replication delay in seconds (a real
    deployment would measure it; benches and the chaos harness set it).
    A replica whose lag exceeds the map's ``lag_bound`` is skipped for
    routing until it catches up.
    """

    database: str
    lag: float = 0.0


@dataclass
class Shard:
    """One partition of a sharded logical database."""

    index: int
    database: str                      # physical primary name
    replicas: list[Replica] = field(default_factory=list)
    #: Exclusive upper bound of this shard's key range (range strategy
    #: only; the last shard is the catch-all and has none).
    upper: Optional[str] = None

    @property
    def label(self) -> str:
        return str(self.index)


def _range_point(text: str):
    """A range-comparison key: numeric when the text parses, else text.

    The tag keeps mixed topologies totally ordered (all numerics sort
    before all strings) instead of raising mid-route.
    """
    try:
        return (0, float(text), "")
    except ValueError:
        return (1, 0.0, text)


class ShardMap:
    """Topology and routing policy of one sharded logical database.

    Thread-safe: routing is pure, counters sit under one lock.  The map
    is registered with a :class:`~repro.sql.gateway.DatabaseRegistry`
    under the logical name (``registry.register_sharded``); the shard
    and replica ``database`` names must be registered as ordinary
    physical databases — that is where pools, breakers and fault
    injectors attach, one per endpoint, exactly as before.
    """

    def __init__(self, name: str, *, key_variable: str = "SHARD_KEY",
                 strategy: str = "hash", lag_bound: float = 1.0,
                 shard_timeout: Optional[float] = None):
        if strategy not in ("hash", "range"):
            raise ValueError(f"unknown shard strategy {strategy!r}: "
                             "expected 'hash' or 'range'")
        self.name = name
        self.key_variable = key_variable
        self.strategy = strategy
        self.lag_bound = lag_bound
        #: Per-shard slice of the request deadline; a shard slower than
        #: this degrades (or fails) alone instead of spending the whole
        #: request budget.
        self.shard_timeout = shard_timeout
        self.shards: list[Shard] = []
        self._rr = 0
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}

    # -- topology --------------------------------------------------------

    def add_shard(self, database: str, *,
                  replicas: tuple[str, ...] | list[str] = (),
                  upper: Optional[str] = None) -> Shard:
        """Append one shard (routing order is append order).

        ``upper`` is the exclusive upper key bound for range routing;
        every shard but the last must carry one, in ascending order.
        """
        shard = Shard(index=len(self.shards), database=database,
                      replicas=[Replica(r) for r in replicas],
                      upper=upper)
        self.shards.append(shard)
        return shard

    def replica(self, shard_index: int, database: str) -> Replica:
        """The named replica of one shard (for lag updates in tests,
        benches and an eventual replication prober)."""
        for replica in self.shards[shard_index].replicas:
            if replica.database == database:
                return replica
        raise KeyError(f"shard {shard_index} of {self.name!r} has no "
                       f"replica {database!r}")

    def validate(self) -> None:
        if not self.shards:
            raise ValueError(f"shard map {self.name!r} has no shards")
        if self.strategy == "range":
            uppers = [s.upper for s in self.shards[:-1]]
            if any(u is None for u in uppers):
                raise ValueError(
                    f"range-routed map {self.name!r}: every shard but "
                    "the last needs an upper bound")
            points = [_range_point(u) for u in uppers]  # type: ignore[arg-type]
            if points != sorted(points):
                raise ValueError(
                    f"range-routed map {self.name!r}: upper bounds must "
                    "ascend")

    # -- routing ---------------------------------------------------------

    def route(self, key: str) -> Shard:
        """The shard owning ``key`` (deterministic across processes)."""
        if not self.shards:
            raise ValueError(f"shard map {self.name!r} has no shards")
        if self.strategy == "range":
            point = _range_point(key)
            for shard in self.shards[:-1]:
                if point < _range_point(shard.upper):  # type: ignore[arg-type]
                    return shard
            return self.shards[-1]
        digest = zlib.crc32(key.encode("utf-8", "replace"))
        return self.shards[digest % len(self.shards)]

    def choose_replica(self, shard: Shard) -> Optional[Replica]:
        """A replica eligible to serve a cacheable read, or ``None``.

        Round-robin over the replicas whose observed lag is within the
        bound; the caller still falls back to the primary when the
        chosen replica's breaker is open or its connect fails.
        """
        eligible = [r for r in shard.replicas if r.lag <= self.lag_bound]
        if not eligible:
            if shard.replicas:
                self.count("replica_lagged")
            return None
        with self._lock:
            self._rr += 1
            return eligible[self._rr % len(eligible)]

    # -- observability ---------------------------------------------------

    def count(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def count_shard(self, shard: Shard, key: str) -> None:
        self.count(f"{shard.label}_{key}")

    def stats(self) -> dict[str, int]:
        """Cumulative routing counters, shard-count gauge included."""
        with self._lock:
            stats = dict(self._counters)
        stats["shards"] = len(self.shards)
        stats["replicas"] = sum(len(s.replicas) for s in self.shards)
        return stats

    def labeled_stats(self) -> dict[str, dict[str, int]]:
        """:meth:`stats` split by shard label for the labeled metrics
        source: ``{shard_label: {counter: value}}``, topology-wide
        counters under the empty label."""
        with self._lock:
            counters = dict(self._counters)
        out: dict[str, dict[str, int]] = {"": {}}
        # Longest label first so "10_routed" never matches shard "1".
        labels = sorted((shard.label for shard in self.shards),
                        key=len, reverse=True)
        for key, value in counters.items():
            for label in labels:
                if key.startswith(label + "_"):
                    out.setdefault(label, {})[key[len(label) + 1:]] = value
                    break
            else:
                out[""][key] = value
        out[""]["shards"] = len(self.shards)
        out[""]["replicas"] = sum(len(s.replicas) for s in self.shards)
        return out


# ---------------------------------------------------------------------------
# ORDER BY recognition for the ordered k-way merge
# ---------------------------------------------------------------------------

_ORDER_BY_RE = re.compile(
    r"\border\s+by\s+(?P<terms>[^()]*?)\s*"
    r"(?:limit\s+[^()\s]+(?:\s+offset\s+[^()\s]+)?\s*)?;?\s*$",
    re.IGNORECASE | re.DOTALL)

_ORDER_TERM_RE = re.compile(
    r'^\s*(?:(?P<ordinal>\d+)|(?P<ident>(?:"[^"]+"|[A-Za-z_]\w*)'
    r'(?:\.(?:"[^"]+"|[A-Za-z_]\w*))*))'
    r"(?:\s+(?P<dir>asc|desc))?\s*$",
    re.IGNORECASE)

#: Loose ORDER BY presence check (anywhere, even in a subquery).  Used
#: only to decide whether an unmergeable LIMIT query must be *refused*
#: instead of truncated; a false positive costs a conservative 0A000,
#: never a wrong row window.
_ANY_ORDER_BY_RE = re.compile(r"\border\s+by\b", re.IGNORECASE)

#: A statement-trailing ``LIMIT n [OFFSET m]`` / ``LIMIT m, n`` clause.
#: ``[^()\s,]+`` keeps a subquery's ``LIMIT 5)`` from matching, exactly
#: like the ORDER BY recognizer above.
_TRAILING_LIMIT_RE = re.compile(
    r"\blimit\s+(?P<first>[^()\s,;]+)"
    r"(?:\s*,\s*(?P<second>[^()\s,;]+)"
    r"|\s+offset\s+(?P<offset>[^()\s,;]+))?"
    r"\s*;?\s*$",
    re.IGNORECASE)


def parse_trailing_limit(sql: str) -> tuple[str, Optional[int], int]:
    """Split a statement-trailing ``LIMIT``/``OFFSET`` off ``sql``.

    Returns ``(base_sql, limit, offset)``: the statement with the
    clause removed, the row limit (``None`` when absent or negative —
    SQLite treats a negative limit as unbounded) and the non-negative
    offset.  Both spellings are understood: ``LIMIT n OFFSET m`` and
    the MySQL-style ``LIMIT m, n``.

    The scatter path must re-apply these *globally* after the merge —
    a per-shard ``LIMIT n`` would return up to ``n × shards`` rows and
    a per-shard ``OFFSET m`` would drop rows that belong in the global
    window.  Raises :class:`ValueError` when the clause's bounds are
    not integer literals (an expression cannot be widened or re-applied
    post-merge, so the caller refuses to scatter).
    """
    match = _TRAILING_LIMIT_RE.search(sql)
    if match is None:
        return sql, None, 0

    def bound(text: str) -> int:
        try:
            return int(text, 10)
        except ValueError:
            raise ValueError(
                f"LIMIT/OFFSET bound {text!r} is not an integer literal")

    first = bound(match.group("first"))
    if match.group("second") is not None:
        offset, limit = first, bound(match.group("second"))
    elif match.group("offset") is not None:
        limit, offset = first, bound(match.group("offset"))
    else:
        limit, offset = first, 0
    return (sql[:match.start()].rstrip(),
            None if limit < 0 else limit,
            max(offset, 0))


def parse_order_by(sql: str,
                   columns: list[str]) -> Optional[list[tuple[int, bool]]]:
    """The trailing ``ORDER BY`` as ``(column_index, descending)`` pairs.

    Returns ``None`` whenever the clause is absent or not *provably*
    mappable onto the selected columns (expressions, ``COLLATE``,
    ``NULLS FIRST``, an identifier that names no result column, an
    ordinal out of range) — the merge then degrades to arrival-order
    interleave, which promises nothing and is therefore always safe.
    """
    match = _ORDER_BY_RE.search(sql)
    if match is None:
        return None
    lowered = {name.lower(): index
               for index, name in reversed(list(enumerate(columns)))}
    order: list[tuple[int, bool]] = []
    for term in match.group("terms").split(","):
        parsed = _ORDER_TERM_RE.match(term)
        if parsed is None:
            return None
        if parsed.group("ordinal") is not None:
            index = int(parsed.group("ordinal")) - 1
            if not 0 <= index < len(columns):
                return None
        else:
            # A qualified name orders by its last component; quoted
            # identifiers compare literally, bare ones case-folded.
            leaf = parsed.group("ident").split(".")[-1]
            if leaf.startswith('"'):
                leaf = leaf[1:-1]
            index = lowered.get(leaf.lower(), -1)
            if index < 0:
                return None
        order.append((index, (parsed.group("dir") or "").lower() == "desc"))
    return order or None


class _OrderKey:
    """SQL-flavoured comparison wrapper for one merge-key component.

    Implements SQLite's ordering: NULLs first ascending (so last
    descending — DESC is the exact reverse), and a total order across
    mixed types (numbers before text) instead of a ``TypeError``.
    """

    __slots__ = ("value", "desc")

    def __init__(self, value: Any, desc: bool):
        self.value = value
        self.desc = desc

    def __eq__(self, other: object) -> bool:
        return self.value == other.value  # type: ignore[attr-defined]

    def __lt__(self, other: "_OrderKey") -> bool:
        a, b = self.value, other.value
        if self.desc:
            a, b = b, a
        if a is None:
            return b is not None
        if b is None:
            return False
        try:
            return a < b
        except TypeError:
            a_num = isinstance(a, (int, float))
            b_num = isinstance(b, (int, float))
            if a_num != b_num:
                return a_num
            return str(a) < str(b)


# ---------------------------------------------------------------------------
# Scatter-gather plumbing
# ---------------------------------------------------------------------------


class _Abandoned(Exception):
    """The merge consumer went away; the worker must stop producing."""


class _ShardStream:
    """One shard's half of the scatter: a bounded queue a worker fills.

    Items are ``("columns", list)``, then ``("row", tuple)`` repeated,
    then exactly one of ``("done", None)`` / ``("error", SQLError)``.
    """

    __slots__ = ("shard", "endpoint", "queue", "span")

    def __init__(self, shard: Shard, span: Optional[Span]):
        self.shard = shard
        self.endpoint = shard.database
        self.queue: "queue.Queue[tuple[str, Any]]" = \
            queue.Queue(maxsize=_STREAM_DEPTH)
        self.span = span

    def put(self, item: tuple[str, Any], abandoned: threading.Event) -> None:
        while True:
            if abandoned.is_set():
                raise _Abandoned()
            try:
                self.queue.put(item, timeout=_PUT_TICK)
                return
            except queue.Full:
                continue


class _ReplicaReadCache:
    """A store-nothing view of the shared query cache for replica reads.

    Every cached entry is primary data under a primary generation stamp,
    so a replica session may *serve* hits safely.  It must never *store*:
    a replica within the lag bound can still trail the primary's
    generation, and stale rows written under the current stamp would
    keep validating until the next write — bounded replication lag
    turned into unbounded cache staleness.
    """

    __slots__ = ("_cache",)

    def __init__(self, cache: QueryResultCache):
        self._cache = cache

    def get(self, database, sql, generation):
        return self._cache.get(database, sql, generation)

    def put(self, database, sql, generation, result) -> bool:
        return False


class ShardedSqlSession:
    """All SQL activity of one macro invocation against a sharded tier.

    The engine-facing twin of :class:`~repro.sql.gateway.
    MacroSqlSession`: same ``execute``/``finish``/``failed`` surface,
    but statements route through a :class:`ShardMap`.  Per-shard (and
    per-replica) inner sessions are created lazily — a request that
    pins to one shard touches one connection, one pool, one breaker —
    and all finish together when the request does.

    In ``SINGLE`` transaction mode a shard key is **required** and every
    statement runs on the pinned shard's primary (the all-or-nothing
    bracket of Section 5 cannot span backends); a keyless statement
    raises SQLSTATE 0A000 instead of silently breaking atomicity.
    """

    def __init__(self, registry: "DatabaseRegistry", shard_map: ShardMap, *,
                 shard_key: Optional[str] = None,
                 mode: TransactionMode = TransactionMode.AUTO_COMMIT,
                 cache: Optional[QueryResultCache] = None,
                 retry: Optional[RetryPolicy] = None,
                 deadline: Optional[Deadline] = None,
                 degrade: bool = False):
        shard_map.validate()
        self.registry = registry
        self.map = shard_map
        self.shard_key = shard_key if shard_key else None
        self.mode = mode
        self.cache = cache
        self.retry = retry
        self.deadline = deadline
        self.degrade = degrade
        self.statement_log: list[str] = []
        #: Cross-shard merge results served from cache (inner sessions
        #: count their own single-shard hits).
        self._merge_hits = 0
        self._sessions: dict[tuple[int, str], "MacroSqlSession"] = {}
        self._sessions_lock = threading.Lock()
        self._finished = False

    # -- the MacroSqlSession surface the engine consumes -----------------

    def _all_sessions(self) -> list["MacroSqlSession"]:
        """Snapshot of the inner sessions (scatter workers insert
        concurrently; iterating the live dict would race them)."""
        with self._sessions_lock:
            return list(self._sessions.values())

    @property
    def failed(self) -> bool:
        return any(s.failed for s in self._all_sessions())

    @property
    def retries(self) -> int:
        return sum(s.retries for s in self._all_sessions())

    @property
    def cache_hits(self) -> int:
        return self._merge_hits + sum(s.cache_hits
                                      for s in self._all_sessions())

    def finish(self, success: bool = True) -> None:
        with self._sessions_lock:
            if self._finished:
                return
            self._finished = True
            sessions = list(self._sessions.values())
        for session in sessions:
            session.finish(success=success and not session.failed)

    def __enter__(self) -> "ShardedSqlSession":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.finish(success=exc_type is None)

    # -- execution -------------------------------------------------------

    def execute(self, sql: str, *, stream: bool = False) -> "ExecutionResult":
        """Route one statement through the shard map.

        * shard key present → the owning shard (replica-eligible when
          the statement is a cacheable SELECT);
        * no key, cacheable SELECT → parallel scatter-gather merge;
        * no key, other row-returning statement (PRAGMA/EXPLAIN) → the
          first shard's primary (connection-scoped state is meaningless
          across shards; one backend answers for the topology);
        * no key, write/DDL → every shard sequentially (each bump lands
          on its own shard's generation).
        """
        self.statement_log.append(sql)
        if self.mode is TransactionMode.SINGLE:
            if self.shard_key is None:
                raise SQLError(
                    f"sharded database {self.map.name!r}: single-"
                    "transaction mode requires a shard key (a cross-"
                    "shard transaction cannot be atomic)",
                    sqlstate="0A000")
            shard = self.map.route(self.shard_key)
            self.map.count_shard(shard, "routed")
            return self._primary_session(shard).execute(sql, stream=stream)
        if self.shard_key is not None:
            shard = self.map.route(self.shard_key)
            self.map.count_shard(shard, "routed")
            return self._execute_on(shard, sql, stream=stream)
        if is_cacheable_query(sql):
            return self._scatter(sql, stream=stream)
        if is_query(sql):
            shard = self.map.shards[0]
            self.map.count_shard(shard, "routed")
            return self._primary_session(shard).execute(sql, stream=stream)
        return self._fanout_write(sql)

    # -- single-shard path -----------------------------------------------

    def _execute_on(self, shard: Shard, sql: str, *,
                    stream: bool = False) -> "ExecutionResult":
        session = self._session_for_read(shard, sql)
        return session.execute(sql, stream=stream)

    def _session_for_read(self, shard: Shard,
                          sql: str) -> "MacroSqlSession":
        """The session a routed statement runs on.

        Replica selection consults :func:`is_cacheable_query`, not
        :func:`is_query`: PRAGMA and EXPLAIN return rows but read (or
        mutate) per-connection state, so they — like every write — must
        always reach the primary.
        """
        if not is_cacheable_query(sql):
            return self._primary_session(shard)
        replica = self.map.choose_replica(shard)
        if replica is None:
            return self._primary_session(shard)
        try:
            session = self._endpoint_session(shard, replica.database)
        except (CircuitOpenError, SQLConnectError):
            # Breaker open or the replica would not connect: the
            # primary can always serve a read.
            self.map.count_shard(shard, "replica_fallbacks")
            return self._primary_session(shard)
        self.map.count_shard(shard, "replica_reads")
        return session

    def _primary_session(self, shard: Shard) -> "MacroSqlSession":
        return self._endpoint_session(shard, shard.database)

    def _endpoint_session(self, shard: Shard,
                          endpoint: str) -> "MacroSqlSession":
        """Get-or-create the lazy inner session for one endpoint.

        Every session of a shard — primary or replica — shares the
        shard-scoped cache namespace (``LOGICAL#index``) and consults
        the *primary's* write generation, but a replica session gets a
        store-nothing cache view: it may serve primary-stamped hits,
        never record its own (possibly lagging) rows under a current
        stamp.  After :meth:`finish` no new endpoint session may be
        created — a scatter worker racing the request's teardown gets
        SQLSTATE 08003 instead of leaking an unfinished connection.
        """
        from repro.sql.gateway import MacroSqlSession

        key = (shard.index, endpoint)
        with self._sessions_lock:
            if self._finished:
                raise SQLConnectError(
                    f"sharded session for {self.map.name!r} is finished "
                    f"(connect to {endpoint!r})", sqlstate="08003")
            session = self._sessions.get(key)
        if session is not None:
            return session
        connection = self.registry.connect(endpoint,
                                           deadline=self.deadline)
        generation = self.registry.generation(shard.database)
        # The connection's write-bump counter must be the counter the
        # session stamps cache entries with.  Factories may pre-attach
        # their own (MemoryDatabase does) and the registry leaves those
        # in place — a write would then bump a counter no stamp ever
        # reads, and stale entries would keep validating.
        connection.generation = generation
        cache = self.cache
        if cache is not None and endpoint != shard.database:
            cache = _ReplicaReadCache(cache)
        created = MacroSqlSession(
            connection, mode=self.mode, cache=cache,
            database=f"{self.map.name}#{shard.index}",
            generation=generation,
            retry=self.retry, deadline=self.deadline)
        with self._sessions_lock:
            if self._finished:
                session = None
            else:
                session = self._sessions.setdefault(key, created)
        if session is not created:
            # Lost a (benign) creation race, or the request finished
            # mid-creation: release the spare connection either way.
            created.finish()
            if session is None:
                raise SQLConnectError(
                    f"sharded session for {self.map.name!r} finished "
                    f"during connect to {endpoint!r}", sqlstate="08003")
        return session

    # -- fan-out write ---------------------------------------------------

    def _fanout_write(self, sql: str) -> "ExecutionResult":
        """Run a keyless write/DDL on every shard, summing rowcounts."""
        from repro.sql.gateway import ExecutionResult

        self.map.count("fanout_writes")
        rowcount = 0
        for shard in self.map.shards:
            result = self._primary_session(shard).execute(sql)
            rowcount += result.rowcount
        return ExecutionResult(sql=sql, rowcount=rowcount, is_query=False)

    # -- scatter-gather --------------------------------------------------

    def _composite_stamp(self) -> tuple:
        """Every shard's generation stamp, observed before execution.

        The tuple is the cross-shard analogue of PR 1's single stamp:
        a write on any shard changes its element, so a cached merge can
        go stale but never wrong — and a write bumps *only* its owning
        shard, so entries of other shards keep validating.
        """
        return tuple(self.registry.generation(shard.database).stamp()
                     for shard in self.map.shards)

    def _scatter(self, sql: str, *, stream: bool) -> "ExecutionResult":
        span = TRACER.leaf("sql.execute") if TRACER.enabled else None
        if span is None:
            return self._scatter_run(sql, stream=stream, span=None)
        # The scatter merge executes on worker threads (no ambient span
        # context), so the per-digest statement view would be blind to
        # exactly the expensive cross-shard reports without this
        # wrapper: one ``sql.execute`` span per scatter, its
        # ``shard.execute`` children counting the fan-out.
        handed_off = False
        try:
            span.set("digest", statement_digest(sql))
            span.set("database", self.map.name)
            span.set("sql", sql if len(sql) <= 200 else sql[:200])
            hits_before = self._merge_hits
            result = self._scatter_run(sql, stream=stream, span=span)
            if self._merge_hits > hits_before:
                span.set("cached", True)
            if result.row_iter is not None:
                span.set("streaming", True)
                result.row_iter = self._spanned_drain(
                    result.row_iter, result, span)
                handed_off = True
            else:
                span.set("rows", result.row_total)
                if result.partial:
                    span.set("partial", True)
            return result
        except BaseException as exc:
            span.attrs.setdefault("error", type(exc).__name__)
            sqlstate = getattr(exc, "sqlstate", None)
            if sqlstate:
                span.set("sqlstate", sqlstate)
            raise
        finally:
            if not handed_off:
                span.finish()

    @staticmethod
    def _spanned_drain(rows: Iterator[tuple[Any, ...]],
                       result: "ExecutionResult",
                       span: Span) -> Iterator[tuple[Any, ...]]:
        """Finish the scatter span when the streamed merge drains."""
        count = 0
        try:
            for row in rows:
                count += 1
                yield row
        except BaseException as exc:
            span.attrs.setdefault("error", type(exc).__name__)
            sqlstate = getattr(exc, "sqlstate", None)
            if sqlstate:
                span.set("sqlstate", sqlstate)
            raise
        finally:
            span.set("rows", count)
            if result.partial:
                span.set("partial", True)
            span.finish()

    def _scatter_run(self, sql: str, *, stream: bool,
                     span: Optional[Span]) -> "ExecutionResult":
        from repro.sql.gateway import ExecutionResult

        self.map.count("scatter_queries")
        use_cache = (not stream and self.cache is not None)
        if use_cache:
            stamp = self._composite_stamp()
            cached = self.cache.get(self.map.name, sql, stamp)
            if cached is not None:
                self._merge_hits += 1
                return cached
        try:
            base_sql, limit, offset = parse_trailing_limit(sql)
        except ValueError as exc:
            raise SQLError(
                f"sharded database {self.map.name!r} cannot scatter: "
                f"{exc} (the clause must be re-applied globally after "
                "the merge)", sqlstate="0A000")
        # Per-shard rewrite: drop the OFFSET and widen the limit to
        # limit+offset rows — every row of the global [offset,
        # offset+limit) window ranks within the first limit+offset rows
        # of its own shard, and the merge re-applies the exact window.
        shard_sql = base_sql
        if limit is not None:
            shard_sql = f"{base_sql} LIMIT {limit + offset}"
        result = ExecutionResult(sql=sql, is_query=True)
        replica_served: list[str] = []
        rows = self._merged_rows(shard_sql, result, replica_served,
                                 limit=limit, offset=offset, span=span)
        if stream:
            result.row_iter = rows
            return result
        # Buffered path: drain the merge here so the statement bracket
        # semantics match the eager single-database execute().
        materialised: list[tuple[Any, ...]] = []
        for row in rows:
            materialised.append(row)
        result.rows = materialised
        result.rowcount = len(materialised)
        result.row_iter = None
        result.rows_fetched = 0
        # Never cache a merge that any replica contributed to: a
        # lag-bounded replica may trail the primary generation the
        # composite stamp was read from (see _ReplicaReadCache).
        if use_cache and not result.partial and not replica_served:
            self.cache.put(self.map.name, sql, stamp, result)
        return result

    def _merged_rows(self, sql: str, result: "ExecutionResult",
                     replica_served: list[str], *,
                     limit: Optional[int] = None,
                     offset: int = 0,
                     span: Optional[Span] = None
                     ) -> Iterator[tuple[Any, ...]]:
        """The scatter-gather merge generator.

        Spawns one worker thread per shard (each leasing its own
        connection, replica-preferred), waits for every shard's column
        header — the point the merge strategy is decided — then yields
        merged rows.  A shard that errors or overruns its budget either
        aborts the merge (default) or, under ``degrade``, drops out:
        its name lands in ``result.failed_shards``, the result is
        marked ``partial``, and the surviving shards keep streaming.
        """
        parent = span
        if parent is None:
            parent = TRACER.current() if TRACER.enabled else None
        abandoned = threading.Event()
        streams = [
            _ShardStream(shard, TRACER.child_of(parent, "shard.execute"))
            for shard in self.map.shards]
        threads = []
        for stream in streams:
            if stream.span is not None:
                stream.span.set("shard", stream.shard.label)
            thread = threading.Thread(
                target=self._shard_worker,
                args=(stream, sql, abandoned, replica_served),
                name=f"shard-{self.map.name}-{stream.shard.label}",
                daemon=True)
            threads.append(thread)
            thread.start()
        try:
            yield from self._merge(sql, streams, result, abandoned,
                                   limit=limit, offset=offset)
        finally:
            abandoned.set()
            for stream in streams:
                if stream.span is not None:
                    stream.span.finish()
            for thread in threads:
                thread.join(timeout=5.0)

    def _shard_worker(self, stream: _ShardStream, sql: str,
                      abandoned: threading.Event,
                      replica_served: list[str]) -> None:
        """Produce one shard's rows into its queue (worker thread)."""
        budget = Deadline.tightest(self.deadline,
                                   self.map.shard_timeout)
        row_iter = None
        try:
            session = self._session_for_scatter(stream, budget,
                                                replica_served)
            shard_result = session.execute(sql, stream=True)
            stream.put(("columns", list(shard_result.columns)), abandoned)
            row_iter = shard_result.iter_rows()
            produced = 0
            for row in row_iter:
                if budget is not None:
                    budget.check(f"shard {stream.shard.label}")
                stream.put(("row", row), abandoned)
                produced += 1
            if stream.span is not None:
                stream.span.set("rows", produced)
            stream.put(("done", None), abandoned)
        except _Abandoned:
            pass
        except Exception as exc:  # noqa: BLE001 - an unreported worker
            # death would leave the merge blocked on its queue forever.
            if not isinstance(exc, SQLError):
                exc = SQLError(f"shard {stream.shard.label} worker "
                               f"failed: {exc!r}")
            if stream.span is not None:
                stream.span.set("error", type(exc).__name__)
            try:
                stream.put(("error", exc), abandoned)
            except _Abandoned:
                pass
        finally:
            close = getattr(row_iter, "close", None)
            if close is not None:
                close()

    def _session_for_scatter(self, stream: _ShardStream,
                             budget: Optional[Deadline],
                             replica_served: list[str]
                             ) -> "MacroSqlSession":
        """The scatter path's per-worker session (scatter is SELECT-only,
        so replicas are always eligible here, with the same breaker/lag
        fallback as routed reads).  A replica that does serve is recorded
        in ``replica_served`` so the merged result is never cached."""
        shard = stream.shard
        self.map.count_shard(shard, "scatter")
        replica = self.map.choose_replica(shard)
        if replica is not None:
            try:
                session = self._endpoint_session(shard, replica.database)
                stream.endpoint = replica.database
                replica_served.append(replica.database)
                self.map.count_shard(shard, "replica_reads")
                if stream.span is not None:
                    stream.span.set("endpoint", replica.database)
                return session
            except (CircuitOpenError, SQLConnectError):
                self.map.count_shard(shard, "replica_fallbacks")
        if stream.span is not None:
            stream.span.set("endpoint", shard.database)
        return self._primary_session(shard)

    def _merge(self, sql: str, streams: list[_ShardStream],
               result: "ExecutionResult",
               abandoned: threading.Event, *,
               limit: Optional[int] = None,
               offset: int = 0) -> Iterator[tuple[Any, ...]]:
        """Merge shard streams into one row iterator (request thread).

        A statement-trailing ``LIMIT``/``OFFSET`` (already stripped from
        the per-shard SQL by :meth:`_scatter`) is re-applied here as the
        global ``[offset, offset + limit)`` window over the merged
        order.  That is exact for the ordered merge; without any ORDER
        BY the statement promises no particular rows, so truncating the
        interleave is equally exact.  An ORDER BY the merge cannot map
        onto the selected columns normally degrades to interleave — but
        combined with a row window that would silently pick the *wrong*
        rows, so it is refused with SQLSTATE 0A000 instead.
        """
        live: list[_ShardStream] = []
        for stream in streams:
            header = self._next_item(stream, result)
            if header is None:
                continue
            kind, payload = header
            if kind != "columns":  # pragma: no cover - defensive
                raise SQLError(f"shard {stream.shard.label} protocol "
                               f"error: expected columns, got {kind}")
            if not result.columns:
                result.columns = payload
            live.append(stream)
        order = parse_order_by(sql, result.columns) \
            if result.columns else None
        if order is not None:
            self.map.count("ordered_merges")
            merged: Iterator[tuple[Any, ...]] = heapq.merge(
                *(self._stream_rows(s, result) for s in live),
                key=lambda row: tuple(_OrderKey(row[i], desc)
                                      for i, desc in order))
        else:
            if (result.columns and (limit is not None or offset)
                    and _ANY_ORDER_BY_RE.search(sql) is not None):
                raise SQLError(
                    f"sharded database {self.map.name!r} cannot scatter "
                    "ORDER BY ... LIMIT: the ordering terms do not map "
                    "onto the selected columns, so the global row "
                    "window cannot be computed", sqlstate="0A000")
            self.map.count("interleaved_merges")
            merged = self._interleave(live, result)
        if offset or limit is not None:
            stop = None if limit is None else offset + limit
            merged = itertools.islice(merged, offset, stop)
        for row in merged:
            result.rows_fetched += 1
            yield row

    def _stream_rows(self, stream: _ShardStream,
                     result: "ExecutionResult") -> Iterator[tuple[Any, ...]]:
        """One shard's rows off its queue, until done/error/timeout."""
        while True:
            item = self._next_item(stream, result)
            if item is None:
                return
            kind, payload = item
            if kind == "row":
                yield payload
            elif kind == "done":
                return
            else:  # pragma: no cover - defensive
                raise SQLError(f"shard {stream.shard.label} protocol "
                               f"error: unexpected {kind}")

    def _interleave(self, live: list[_ShardStream],
                    result: "ExecutionResult") -> Iterator[tuple[Any, ...]]:
        """Arrival-order merge: drain whichever shard has rows ready.

        A non-blocking sweep over the live queues; only when *every*
        shard is mid-production does the merge park — briefly, on a
        rotating queue, so a slow shard never gates rows the fast ones
        produce in the meantime.
        """
        pending = list(live)
        park = 0
        while pending:
            progressed = False
            for stream in list(pending):
                while True:
                    try:
                        kind, payload = stream.queue.get_nowait()
                    except queue.Empty:
                        break
                    progressed = True
                    if kind == "row":
                        yield payload
                        continue
                    if kind == "error":
                        self._shard_failed(stream, payload, result)
                    pending.remove(stream)
                    break
            if pending and not progressed:
                park += 1
                stream = pending[park % len(pending)]
                try:
                    kind, payload = stream.queue.get(timeout=_PUT_TICK)
                except queue.Empty:
                    self._check_merge_deadline(pending, result)
                    continue
                if kind == "row":
                    yield payload
                elif kind == "error":
                    self._shard_failed(stream, payload, result)
                    pending.remove(stream)
                else:
                    pending.remove(stream)

    def _check_merge_deadline(self, pending: list[_ShardStream],
                              result: "ExecutionResult") -> None:
        """Fail every still-pending shard once the request budget dies."""
        if self.deadline is None or not self.deadline.expired:
            return
        for stream in list(pending):
            self._shard_failed(
                stream,
                DeadlineExceededError(
                    f"shard {stream.shard.label} exceeded the request "
                    "deadline"),
                result)
            pending.remove(stream)

    def _next_item(self, stream: _ShardStream, result: "ExecutionResult"
                   ) -> Optional[tuple[str, Any]]:
        """One item off a shard queue, deadline-aware (blocking).

        Returns ``None`` when the shard is finished *for this merge* —
        it errored or timed out and degradation swallowed it (the
        failure is recorded on ``result``).  Raises when degradation is
        off.
        """
        deadline = self.deadline
        while True:
            try:
                item = stream.queue.get(timeout=_PUT_TICK)
            except queue.Empty:
                if deadline is not None and deadline.expired:
                    error: SQLError = DeadlineExceededError(
                        f"shard {stream.shard.label} exceeded the "
                        "request deadline")
                    self._shard_failed(stream, error, result)
                    return None
                continue
            kind, payload = item
            if kind == "error":
                self._shard_failed(stream, payload, result)
                return None
            return item

    def _shard_failed(self, stream: _ShardStream, error: SQLError,
                      result: "ExecutionResult") -> None:
        """Record one shard's failure; raise unless degrading."""
        self.map.count_shard(stream.shard, "failures")
        if not self.degrade:
            raise error
        self.map.count("partial_results")
        result.partial = True
        result.failed_shards = result.failed_shards + (stream.shard.label,)


# ---------------------------------------------------------------------------
# CLI topology parsing
# ---------------------------------------------------------------------------


def build_shard_map(registry: "DatabaseRegistry", logical: str,
                    paths: list[str], *,
                    replica_paths: dict[int, list[str]] | None = None,
                    key_variable: str = "SHARD_KEY",
                    strategy: str = "hash",
                    lag_bound: float = 1.0,
                    register: Callable[[str, str], None] | None = None
                    ) -> ShardMap:
    """Register ``paths`` as the shards of ``logical`` (CLI helper).

    Each path becomes a physical database named ``LOGICAL#i`` (replicas
    ``LOGICAL#i.rN``); ``register`` defaults to
    :meth:`DatabaseRegistry.register_path`.
    """
    if register is None:
        register = registry.register_path
    shard_map = ShardMap(logical, key_variable=key_variable,
                         strategy=strategy, lag_bound=lag_bound)
    for index, path in enumerate(paths):
        primary = f"{logical}#{index}"
        register(primary, path)
        replicas = []
        for r_index, r_path in enumerate(
                (replica_paths or {}).get(index, []), start=1):
            name = f"{primary}.r{r_index}"
            register(name, r_path)
            replicas.append(name)
        shard_map.add_shard(primary, replicas=tuple(replicas))
    registry.register_sharded(logical, shard_map)
    return shard_map
