"""Generation-keyed SELECT result caching for the gateway.

The paper's deployment profile — and every read-mostly SQL publishing
system since (DbShare, Mragyati) — repeats identical SELECTs: the same
report URL is fetched by thousands of clients between writes.  The
gateway executes *dynamic* SQL assembled from macro text, so two requests
with the same inputs produce byte-identical statement text; caching the
:class:`~repro.sql.gateway.ExecutionResult` under ``(database,
sql_text)`` turns the repeat into a dictionary hit.

Consistency comes from **write generations**, not TTLs.  Every named
database carries a :class:`WriteGeneration` counter that any non-query
statement bumps — once when the statement executes and again when its
enclosing transaction ends (COMMIT or ROLLBACK; see
:meth:`repro.sql.connection.Connection.commit`).  The double bump is
what closes the uncommitted-write window: a reader that observes the
post-execute generation and snapshots pre-commit data stores its result
under a generation that the commit-time bump immediately makes stale.
Bumping is conservative — a rolled-back write still bumps, which can
only cause an unnecessary miss, never a stale hit.  A cache entry
remembers the generation :meth:`~WriteGeneration.stamp` observed
*before* its query executed; a lookup whose current stamp differs
discards the entry.  There is therefore no window in which a committed
write is visible to the database but not to cache consumers.  Stamps
embed the counter's process-unique identity, so two registries that
happen to register the same database name can share one cache without
their generation numbers colliding.

The cache is bypassed entirely:

* for statements that are not pure reads of table data — only
  ``SELECT``/``VALUES``/``WITH`` results are reusable; ``PRAGMA`` and
  ``EXPLAIN`` return rows but read (or mutate!) per-connection state,
* in ``TransactionMode.SINGLE`` (Section 5's all-or-nothing mode: a
  macro's reads must see its own uncommitted writes and participate in
  the transaction bracket),
* when no generation counter is attached (a connection outside any
  :class:`~repro.sql.gateway.DatabaseRegistry` has no invalidation
  source, so reuse would be unsound).

Thread-safe; shared ``ExecutionResult`` objects are treated as immutable
by all consumers (the report generator only reads them).
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable, Optional

from repro.sql.dialect import is_cacheable_query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sql.gateway import ExecutionResult

__all__ = ["QueryResultCache", "WriteGeneration"]


class WriteGeneration:
    """A monotonically increasing per-database write counter.

    Each counter also carries a process-unique ``token``; cache lookups
    compare :meth:`stamp` (token *and* value) so counters created by
    different registries can never alias each other in a shared cache,
    even when their integer values coincide.
    """

    __slots__ = ("_value", "_lock", "token")

    _tokens = itertools.count(1)

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()
        self.token = next(WriteGeneration._tokens)

    def bump(self) -> int:
        """Record a write; returns the new generation."""
        with self._lock:
            self._value += 1
            return self._value

    @property
    def value(self) -> int:
        return self._value

    def stamp(self) -> tuple[int, int]:
        """An opaque cache stamp: this counter's identity plus its value."""
        return (self.token, self._value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WriteGeneration({self._value})"


class QueryResultCache:
    """A bounded LRU of query results keyed ``(database, sql_text)``.

    ``max_entries`` bounds the entry count (evicting least-recently-used)
    and ``max_rows_per_entry`` refuses to cache oversized result sets so
    one huge SELECT cannot monopolise the budget.  Counters are
    cumulative; :meth:`stats` snapshots them for the metrics/access-log
    surfaces.
    """

    def __init__(self, *, max_entries: int = 128,
                 max_rows_per_entry: int = 100_000):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.max_rows_per_entry = max_rows_per_entry
        self._entries: "OrderedDict[tuple[str, str], tuple[Hashable, ExecutionResult]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        self._invalidations = 0

    # -- lookup / store -------------------------------------------------

    def get(self, database: str, sql: str,
            generation: Hashable) -> Optional["ExecutionResult"]:
        """The cached result, or ``None`` on miss or stale generation.

        ``generation`` is compared for equality with the value recorded
        at :meth:`put` time — typically a :meth:`WriteGeneration.stamp`
        tuple (a bare int also works for standalone use).
        """
        key = (database, sql)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            cached_generation, result = entry
            if cached_generation != generation:
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def put(self, database: str, sql: str, generation: Hashable,
            result: "ExecutionResult") -> bool:
        """Cache ``result``; False when it is not cacheable."""
        if not result.is_query:
            return False
        if not is_cacheable_query(sql):
            # PRAGMA/EXPLAIN and anything else that returns rows without
            # being a pure data read must re-execute on every request.
            return False
        if len(result.rows) > self.max_rows_per_entry:
            return False
        key = (database, sql)
        with self._lock:
            self._entries[key] = (generation, result)
            self._entries.move_to_end(key)
            self._stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
        return True

    # -- invalidation ---------------------------------------------------

    def invalidate_database(self, database: str) -> int:
        """Drop every entry of one database; returns the count dropped."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == database]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- inspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Snapshot of the cumulative counters plus current size."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "entries": len(self._entries),
            }

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = self._stores = 0
            self._evictions = self._invalidations = 0
