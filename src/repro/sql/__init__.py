"""Relational DBMS substrate: connections, cursors, pools, transactions.

This package stands in for the IBM DB2 access layer of the paper (see
DESIGN.md's substitution table).  Public surface:

* :func:`connect` / :class:`Connection` — open a database
* :class:`MemoryDatabase` — named shared in-memory database
* :class:`Cursor` — result-set handle
* :class:`ConnectionPool` / :class:`PerRequestPool` — checkout strategies
* :class:`TransactionMode` / :class:`TransactionScope` — Section 5 modes
* :class:`DatabaseRegistry` / :class:`MacroSqlSession` /
  :class:`ExecutionResult` — the facade the macro engine consumes
* :class:`QueryResultCache` / :class:`WriteGeneration` —
  generation-keyed SELECT result reuse (see repro.sql.querycache)
* :class:`ShardMap` / :class:`ShardedSqlSession` — hash/range-sharded
  logical databases with read replicas and streaming scatter-gather
  merge (see repro.sql.sharding)
* :mod:`repro.sql.dialect` — SQL text helpers (quoting, LIKE patterns)
* :mod:`repro.sql.catalog` — table/column introspection
"""

from repro.sql.catalog import (
    ColumnInfo,
    TableInfo,
    describe_table,
    list_tables,
    row_count,
)
from repro.sql.connection import Connection, MemoryDatabase, connect
from repro.sql.cursor import Cursor, value_to_text
from repro.sql.gateway import (
    DatabaseRegistry,
    ExecutionResult,
    MacroSqlSession,
)
from repro.sql.pool import ConnectionPool, PerRequestPool
from repro.sql.querycache import QueryResultCache, WriteGeneration
from repro.sql.sharding import (
    Replica,
    Shard,
    ShardMap,
    ShardedSqlSession,
    build_shard_map,
)
from repro.sql.transactions import TransactionMode, TransactionScope

__all__ = [
    "ColumnInfo",
    "Connection",
    "ConnectionPool",
    "Cursor",
    "DatabaseRegistry",
    "ExecutionResult",
    "MacroSqlSession",
    "MemoryDatabase",
    "PerRequestPool",
    "QueryResultCache",
    "Replica",
    "Shard",
    "ShardMap",
    "ShardedSqlSession",
    "TableInfo",
    "TransactionMode",
    "TransactionScope",
    "WriteGeneration",
    "build_shard_map",
    "connect",
    "describe_table",
    "list_tables",
    "row_count",
    "value_to_text",
]
