"""Statement fingerprints: normalized SQL digests and per-digest stats.

The macro gateway assembles SQL dynamically — the same ``%SQL`` section
yields a different statement text for every input value, so raw-text
hashing (PR 4's ``repro.obs.trace.statement_digest``) fragments one
logical query into thousands of digests.  This module normalizes the
*shape* of a statement the way ``pg_stat_statements`` does:

* string and numeric literals become ``?``,
* whitespace runs collapse to one space and comments disappear,
* unquoted text is lowercased (quoted identifiers keep their case),
* an all-placeholder ``IN (?, ?, ?)`` list collapses to ``IN (?)``,

so ``SELECT url FROM urls WHERE id IN (1,2,3)`` and
``select url from urls where id in (9)`` share one digest — the right
aggregation key for "which query is burning the SLO."

:class:`StatementStats` keeps bounded per-digest rolling aggregates
(calls, rows, latency histogram, cache-hit ratio, shard fan-out,
error/SQLSTATE counts).  It doubles as a tracer sink: every finished
request trace is walked for ``sql.execute`` spans — including spans
grafted back from app-server worker frames — so one store in the
serving process aggregates statements executed anywhere in the tree.
``repro serve`` publishes it at ``/statements`` and ``repro top``
renders it; the slow-query log attaches the digest's aggregate row to
each dump.
"""

from __future__ import annotations

import hashlib
import re
import threading
from typing import Iterable, Optional

from repro.obs.metrics import Histogram

__all__ = ["normalize_statement", "statement_digest",
           "statement_fingerprint", "StatementStats", "STATEMENTS"]

#: Span names the stats sink recognises (mirrors repro.obs.sinks).
SQL_SPAN_NAME = "sql.execute"
SHARD_SPAN_NAME = "shard.execute"

# Cost-class names mirrored from repro.overload.classify (plain strings;
# importing them would couple the SQL tier to the overload package).
_CACHED = "cached"
_HEAVY = "heavy"

_IN_LIST_RE = re.compile(r"\bin\s*\(\s*\?(?:\s*,\s*\?)+\s*\)")

_fingerprint_cache: dict[str, tuple[str, str]] = {}
_FINGERPRINT_CACHE_LIMIT = 1024


def normalize_statement(sql: str) -> str:
    """The canonical shape of one SQL statement.

    Literal values become ``?`` so differently-parameterised runs of one
    query normalize identically; quoted strings are opaque (a comma or
    paren inside ``'a,b('`` can never split a token); comments vanish;
    whitespace collapses; unquoted text lowercases.  Finally an
    all-placeholder IN list collapses to ``(?)`` so membership tests of
    different arity share a shape.
    """
    out: list[str] = []
    i = 0
    n = len(sql)
    space_pending = False
    while i < n:
        ch = sql[i]
        if ch.isspace():
            space_pending = True
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end
            space_pending = True
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            i = n if end < 0 else end + 2
            space_pending = True
            continue
        if space_pending and out:
            out.append(" ")
        space_pending = False
        if ch == "'":
            i = _skip_quoted(sql, i, "'")
            out.append("?")
            continue
        if ch == '"':
            end = _skip_quoted(sql, i, '"')
            out.append(sql[i:end])  # quoted identifier: case preserved
            i = end
            continue
        if _starts_number(sql, i, out):
            i = _skip_number(sql, i)
            out.append("?")
            continue
        out.append(ch.lower())
        i += 1
    text = "".join(out)
    return _IN_LIST_RE.sub("in (?)", text)


def _skip_quoted(sql: str, start: int, quote: str) -> int:
    """Index just past a quoted run beginning at ``start`` (doubled
    quotes escape; an unterminated literal swallows the rest)."""
    i = start + 1
    n = len(sql)
    while i < n:
        if sql[i] == quote:
            if i + 1 < n and sql[i + 1] == quote:
                i += 2
                continue
            return i + 1
        i += 1
    return n


def _starts_number(sql: str, i: int, out: list[str]) -> bool:
    ch = sql[i]
    if not (ch.isdigit()
            or (ch == "." and i + 1 < len(sql) and sql[i + 1].isdigit())):
        return False
    # A digit continuing an identifier (``t1``, ``col2x``) is not a
    # literal; check the previously emitted character.
    if out:
        prev = out[-1][-1]
        if prev.isalnum() or prev in "_?":
            return False
    return True


def _skip_number(sql: str, i: int) -> int:
    n = len(sql)
    if sql.startswith(("0x", "0X"), i):
        i += 2
        while i < n and sql[i] in "0123456789abcdefABCDEF":
            i += 1
        return i
    while i < n and sql[i].isdigit():
        i += 1
    if i < n and sql[i] == ".":
        i += 1
        while i < n and sql[i].isdigit():
            i += 1
    if i < n and sql[i] in "eE":
        j = i + 1
        if j < n and sql[j] in "+-":
            j += 1
        if j < n and sql[j].isdigit():
            i = j
            while i < n and sql[i].isdigit():
                i += 1
    return i


def statement_fingerprint(sql: str) -> tuple[str, str]:
    """``(digest, normalized_text)`` for one statement, memoised.

    A server executes the same handful of statement *shapes* over and
    over under different literals, but the raw texts churn — the cache
    keys on raw text (cheap dict hit on exact repeats) and is cleared
    wholesale when full, like the trace-layer digest cache.
    """
    cached = _fingerprint_cache.get(sql)
    if cached is not None:
        return cached
    normalized = normalize_statement(sql)
    digest = hashlib.sha1(
        normalized.encode("utf-8", "replace")).hexdigest()[:12]
    if len(_fingerprint_cache) >= _FINGERPRINT_CACHE_LIMIT:
        _fingerprint_cache.clear()
    _fingerprint_cache[sql] = (digest, normalized)
    return digest, normalized


def statement_digest(sql: str) -> str:
    """The normalized digest alone (the ``sql.execute`` span attribute)."""
    return statement_fingerprint(sql)[0]


class _DigestEntry:
    """Rolling aggregates for one statement shape."""

    __slots__ = ("digest", "text", "calls", "errors", "rows",
                 "cache_hits", "fanout_total", "fanout_max",
                 "latency", "sqlstates")

    _MAX_SQLSTATES = 16

    def __init__(self, digest: str, text: str):
        self.digest = digest
        self.text = text
        self.calls = 0
        self.errors = 0
        self.rows = 0
        self.cache_hits = 0
        self.fanout_total = 0
        self.fanout_max = 0
        self.latency = Histogram(digest)
        self.sqlstates: dict[str, int] = {}

    def record(self, *, duration_ms: float, rows: int, cached: bool,
               error: bool, sqlstate: Optional[str],
               fanout: int) -> None:
        self.calls += 1
        self.rows += rows
        if cached:
            self.cache_hits += 1
        if error:
            self.errors += 1
        if sqlstate and (sqlstate in self.sqlstates
                         or len(self.sqlstates) < self._MAX_SQLSTATES):
            self.sqlstates[sqlstate] = self.sqlstates.get(sqlstate, 0) + 1
        self.fanout_total += fanout
        if fanout > self.fanout_max:
            self.fanout_max = fanout
        self.latency.observe(duration_ms)

    def snapshot(self) -> dict:
        latency = self.latency.snapshot()
        calls = self.calls
        return {
            "digest": self.digest,
            "statement": self.text,
            "calls": calls,
            "errors": self.errors,
            "rows": self.rows,
            "cache_hits": self.cache_hits,
            "cache_hit_ratio": round(self.cache_hits / calls, 3)
            if calls else 0.0,
            "fanout_max": self.fanout_max,
            "fanout_mean": round(self.fanout_total / calls, 2)
            if calls else 0.0,
            "sqlstates": dict(self.sqlstates),
            "total_ms": latency["sum"],
            "mean_ms": latency["mean"],
            "p50_ms": latency["p50"],
            "p95_ms": latency["p95"],
            "p99_ms": latency["p99"],
            "max_ms": latency["max"],
        }


class StatementStats:
    """Bounded per-digest rolling statistics, fed from finished traces.

    Used as a tracer sink (``TRACER.add_sink(stats)``): each delivered
    root is walked for ``sql.execute`` spans — local or grafted from a
    worker frame — and their digest/duration/rows/cached/error
    attributes recorded.  ``shard.execute`` children count as scatter
    fan-out.  Beyond ``max_digests`` distinct shapes, further ones
    aggregate into one ``_other`` bucket so cardinality stays bounded
    no matter what SQL an application assembles.

    The store also learns which request targets run which digests (from
    the request root's ``target`` attribute), so :meth:`probe` can
    answer the overload classifier from per-statement evidence.
    """

    #: Statement text kept per digest (display truncation).
    TEXT_LIMIT = 200

    def __init__(self, *, max_digests: int = 128, max_keys: int = 512,
                 cached_threshold_ms: float = 5.0,
                 heavy_threshold_ms: float = 50.0,
                 min_calls: int = 3):
        #: The gate the sink checks first (mirrors ``Tracer.enabled``).
        self.enabled = False
        self.max_digests = max_digests
        self.max_keys = max_keys
        self.cached_threshold_ms = cached_threshold_ms
        self.heavy_threshold_ms = heavy_threshold_ms
        self.min_calls = min_calls
        self._lock = threading.Lock()
        self._entries: dict[str, _DigestEntry] = {}
        self._other = _DigestEntry(
            "_other", "(statements beyond the digest budget)")
        self._overflowed = 0
        self._recorded = 0
        self._keys: dict[str, tuple[str, ...]] = {}

    # -- recording ---------------------------------------------------------

    def record(self, *, digest: str, statement: str = "",
               duration_ms: float = 0.0, rows: int = 0,
               cached: bool = False, error: bool = False,
               sqlstate: Optional[str] = None, fanout: int = 1) -> None:
        """Record one execution of a (pre-digested) statement."""
        with self._lock:
            self._record_locked(digest, statement, duration_ms, rows,
                                cached, error, sqlstate, fanout)

    def _record_locked(self, digest, statement, duration_ms, rows,
                       cached, error, sqlstate, fanout) -> None:
        entry = self._entries.get(digest)
        if entry is None:
            if len(self._entries) < self.max_digests:
                entry = _DigestEntry(digest,
                                     statement[:self.TEXT_LIMIT])
                self._entries[digest] = entry
            else:
                entry = self._other
                self._overflowed += 1
        elif not entry.text and statement:
            entry.text = statement[:self.TEXT_LIMIT]
        self._recorded += 1
        entry.record(duration_ms=duration_ms, rows=rows,
                     cached=cached, error=error, sqlstate=sqlstate,
                     fanout=fanout)

    def __call__(self, root) -> None:
        """Tracer-sink entry point: harvest one finished span tree."""
        if not self.enabled:
            return
        sql_spans = [span for span in root.walk()
                     if span.name == SQL_SPAN_NAME]
        if sql_spans:
            self._harvest(root, sql_spans)

    def on_summary(self, summary) -> None:
        """Pre-walked delivery (see :class:`repro.obs.sinks.FanoutSink`).

        This runs on *every* finished trace, so the records are built
        without touching the lock and land under one lock trip.
        """
        if not self.enabled or not summary.sql_spans:
            return
        self._harvest(summary.root, summary.sql_spans)

    def _harvest(self, root, sql_spans) -> None:
        rows: Optional[list] = None
        for span in sql_spans:
            attrs = span._attrs
            if not attrs:
                continue
            digest = attrs.get("digest")
            if not digest:
                continue
            children = span._children
            fanout = 1
            if children:
                fanout = sum(1 for child in children
                             if child.name == SHARD_SPAN_NAME) or 1
            record = (digest, attrs.get("sql", ""), span.duration_ms,
                      int(attrs.get("rows", 0) or 0),
                      bool(attrs.get("cached")), "error" in attrs,
                      attrs.get("sqlstate"), fanout)
            if rows is None:
                rows = [record]
            else:
                rows.append(record)
        if rows is None:
            return
        root_attrs = root._attrs
        target = None
        if root_attrs:
            target = root_attrs.get("target") or root_attrs.get("path")
        with self._lock:
            for record in rows:
                self._record_locked(*record)
            if target:
                self._note_request_locked(
                    str(target), [record[0] for record in rows])

    def note_request(self, key: str,
                     digests: Iterable[str]) -> None:
        """Remember which digests one request target executed."""
        with self._lock:
            self._note_request_locked(key, digests)

    def _note_request_locked(self, key: str,
                             digests: Iterable[str]) -> None:
        frozen = tuple(sorted(set(digests)))
        if self._keys.get(key) == frozen:
            # The hot path: a repeat target running the same shapes.
            # Skipping the recency reinsertion is safe — a hot key
            # swept in an eviction is re-learned on its next request.
            return
        self._keys.pop(key, None)
        self._keys[key] = frozen
        if len(self._keys) > self.max_keys:
            # Drop the coldest half in one sweep (dict order is
            # recency: observed keys are re-inserted).
            for stale in list(self._keys)[:self.max_keys // 2]:
                del self._keys[stale]

    # -- the overload-classifier probe -------------------------------------

    def probe(self, request) -> Optional[str]:
        """A cost class learned from the request's statement digests.

        Shaped for ``RequestClassifier(probe=...)``: answers ``heavy``
        when any statement the target is known to run has proven heavy,
        ``cached`` when every one is a sub-threshold (or cache-served)
        read, and ``None`` — let the other signals decide — otherwise.
        """
        query = getattr(request, "query", "") or ""
        key = f"{request.path}?{query}" if query else request.path
        with self._lock:
            digests = self._keys.get(key)
            if not digests:
                return None
            classes = [self._classify_locked(d) for d in digests]
        if any(cls is None for cls in classes):
            return None
        if _HEAVY in classes:
            return _HEAVY
        if all(cls == _CACHED for cls in classes):
            return _CACHED
        return None

    def _classify_locked(self, digest: str) -> Optional[str]:
        entry = self._entries.get(digest)
        if entry is None or entry.calls < self.min_calls:
            return None
        mean = entry.latency.sum / entry.calls
        hit_ratio = entry.cache_hits / entry.calls
        if mean >= self.heavy_threshold_ms:
            return _HEAVY
        if hit_ratio >= 0.9 or mean <= self.cached_threshold_ms:
            return _CACHED
        return "interactive"

    # -- read paths --------------------------------------------------------

    def digest_snapshot(self, digest: str) -> Optional[dict]:
        """One digest's aggregate row (slow-query dump attachment)."""
        with self._lock:
            entry = self._entries.get(digest)
            return entry.snapshot() if entry is not None else None

    def snapshot(self, *, limit: int = 0) -> dict:
        """The ``/statements`` body: rows sorted by total time burned."""
        with self._lock:
            rows = [entry.snapshot() for entry in self._entries.values()]
            other = (self._other.snapshot()
                     if self._other.calls else None)
            overflowed = self._overflowed
            recorded = self._recorded
        rows.sort(key=lambda row: row["total_ms"], reverse=True)
        if limit > 0:
            rows = rows[:limit]
        if other is not None:
            rows.append(other)
        return {
            "statements": rows,
            "distinct_digests": len(rows) - (1 if other else 0),
            "recorded_total": recorded,
            "overflowed_total": overflowed,
        }

    def labeled_stats(self) -> dict[str, dict[str, float]]:
        """Per-digest counters for a labeled metrics source
        (``statement_<counter>{digest="..."}`` on the scrape)."""
        with self._lock:
            return {digest: {"calls_total": entry.calls,
                             "errors_total": entry.errors,
                             "rows_total": entry.rows,
                             "cache_hits_total": entry.cache_hits}
                    for digest, entry in self._entries.items()}

    def stats(self) -> dict[str, float]:
        """Aggregate counters for ``attach_stats_source``."""
        with self._lock:
            return {
                "digests": len(self._entries),
                "recorded_total": self._recorded,
                "overflowed_total": self._overflowed,
                "request_keys": len(self._keys),
            }

    def reset(self) -> None:
        """Drop all aggregates (tests)."""
        with self._lock:
            self._entries.clear()
            self._other = _DigestEntry(
                "_other", "(statements beyond the digest budget)")
            self._overflowed = 0
            self._recorded = 0
            self._keys.clear()


#: The process-wide store ``repro serve`` wires as a tracer sink and
#: serves at ``/statements``.  Disabled by default, like the tracer.
STATEMENTS = StatementStats()
