"""SQL text helpers: quoting, escaping, statement classification.

DB2 WWW Connection assembled SQL *textually* from HTML input variables —
that is the whole point of the cross-language substitution mechanism — so
the library ships the helpers a careful 1996 application developer would
have used (and that Section 5's security discussion gestures at): literal
escaping for values interpolated into SQL strings, identifier quoting, and
classification of the statement verb (needed to decide whether a result
set is expected and which transaction behaviour applies).
"""

from __future__ import annotations

import re

_VERB_RE = re.compile(r"^\s*([A-Za-z]+)")

#: Verbs that produce a result set the report generator must render.
QUERY_VERBS = frozenset({"SELECT", "VALUES", "WITH", "EXPLAIN", "PRAGMA"})

#: Query verbs whose result sets are safe to reuse across requests:
#: pure reads of table data.  ``PRAGMA`` and ``EXPLAIN`` return rows but
#: are excluded — a PRAGMA can read or *write* per-connection and
#: database state without registering as a write anywhere else, and
#: EXPLAIN output reflects the planner, not just the data.
CACHEABLE_VERBS = frozenset({"SELECT", "VALUES", "WITH"})

#: Verbs that modify data (relevant to transaction modes, Section 5).
UPDATE_VERBS = frozenset({"INSERT", "UPDATE", "DELETE", "REPLACE", "MERGE"})

#: Verbs that modify schema.
DDL_VERBS = frozenset({"CREATE", "DROP", "ALTER"})


def statement_verb(sql: str) -> str:
    """Return the leading verb of a SQL statement, upper-cased.

    An empty string is returned for blank input; callers treat that as a
    syntax error at prepare time.
    """
    match = _VERB_RE.match(sql)
    if match is None:
        return ""
    return match.group(1).upper()


def is_query(sql: str) -> bool:
    """True when the statement returns a result set."""
    return statement_verb(sql) in QUERY_VERBS


def is_cacheable_query(sql: str) -> bool:
    """True when the statement's result set may be reused across requests."""
    return statement_verb(sql) in CACHEABLE_VERBS


def is_update(sql: str) -> bool:
    return statement_verb(sql) in UPDATE_VERBS


def is_ddl(sql: str) -> bool:
    return statement_verb(sql) in DDL_VERBS


def escape_literal(value: str) -> str:
    """Escape a string for inclusion inside single quotes in SQL text.

    Doubles embedded single quotes (SQL-92) and strips NUL characters,
    which no 1996 DBMS accepted in character data anyway.
    """
    return value.replace("\x00", "").replace("'", "''")


def quote_literal(value: str) -> str:
    """Return ``value`` as a complete single-quoted SQL string literal."""
    return "'" + escape_literal(value) + "'"


def quote_identifier(name: str) -> str:
    """Quote an identifier (table/column name) with double quotes."""
    return '"' + name.replace('"', '""') + '"'


_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def is_plain_identifier(name: str) -> bool:
    """True when ``name`` needs no quoting in SQL text."""
    return _IDENTIFIER_RE.match(name) is not None


def like_pattern(term: str, *, prefix: bool = False,
                 suffix: bool = False) -> str:
    """Build a ``LIKE`` pattern from a user search term.

    Escapes the user's ``%`` and ``_`` wildcard characters (with ``\\``)
    and wraps the term with wildcards: ``prefix`` puts ``%`` before the
    term, ``suffix`` after.  The paper's URL-query application uses the
    ``%term%``-style contains-search.
    """
    escaped = (term.replace("\\", "\\\\")
                   .replace("%", "\\%")
                   .replace("_", "\\_"))
    return ("%" if prefix else "") + escaped + ("%" if suffix else "")
